#!/usr/bin/env python3
"""CI smoke: validate the `swapram-metrics/v1` section of a run report
(`swapram_tool run --metrics --json`) or a sweep document
(`swapram_tool sweep --metrics` with `--sweep`).

Beyond schema shape this pins the accounting invariants the metrics
layer is built on:

 - heatmap per-region totals equal the simulator's Stats access counts
   (every bus access lands in exactly one page);
 - per-page stall cycles and the fram_stall_cycles histogram both sum
   to stats.stall_cycles;
 - miss_handler_cycles matches the swap timeline's miss count and
   handler cycles;
 - histogram aggregates are internally consistent (bucket counts sum
   to count, min <= p50 <= p95 <= p99 <= max, mean * count == sum);
 - top_pages is ordered hottest-first.

Usage:
    check_metrics_json.py report.json
    check_metrics_json.py --sweep sweep.json
    swapram_tool run ... --metrics --json | check_metrics_json.py -
"""

import json
import sys


def check_histogram(name, h):
    assert h["count"] == sum(b["count"] for b in h["buckets"]), name
    if h["count"] == 0:
        assert h["sum"] == 0 and h["max"] == 0, name
        return
    assert h["min"] <= h["p50"] <= h["p95"] <= h["p99"] <= h["max"], name
    assert abs(h["mean"] * h["count"] - h["sum"]) < 1e-6 * max(
        h["sum"], 1
    ), name
    # Bucket upper bounds are increasing and every recorded value is
    # at most the histogram max's bucket bound.
    les = [b["le"] for b in h["buckets"]]
    assert les == sorted(les), name


def page_heat(p):
    return p["fetch"] + p["read"] + p["write"] + p["stall_cycles"]


def check_metrics(m, stats=None, swap=None):
    """Validate one swapram-metrics/v1 object; `stats`/`swap` are the
    single-run report sections to cross-check against, when present."""
    assert m["schema"] == "swapram-metrics/v1", m.get("schema")
    for name, h in m["histograms"].items():
        check_histogram(name, h)

    hm = m["heatmap"]
    assert hm["page_bytes"] == 64, hm["page_bytes"]
    totals = hm["totals"]
    for key in ("fetch", "read", "write", "stall_cycles"):
        assert totals[key] == sum(
            r[key] for r in hm["regions"].values()
        ), key
    assert "unmapped" not in hm["regions"], "accesses outside the map"

    heats = [page_heat(p) for p in hm["top_pages"]]
    assert heats == sorted(heats, reverse=True), "top_pages unordered"

    stalls = m["histograms"]["fram_stall_cycles"]
    assert stalls["sum"] == totals["stall_cycles"]

    if stats is not None:
        for region in ("sram", "fram", "mmio"):
            want = stats[region]
            got = hm["regions"].get(
                region, {"fetch": 0, "read": 0, "write": 0}
            )
            for key in ("fetch", "read", "write"):
                assert got[key] == want[key], (region, key)
        assert totals["stall_cycles"] == stats["stall_cycles"]
        assert stalls["sum"] == stats["stall_cycles"]
    if swap is not None:
        handler = m["histograms"]["miss_handler_cycles"]
        assert handler["count"] == swap["misses"]
        assert handler["sum"] == swap["handler_cycles"]


def check_run_report(doc):
    assert doc["schema"] == "swapram-run-report/v1", doc.get("schema")
    assert doc["done"] and doc["fits"]
    check_metrics(doc["metrics"], stats=doc["stats"],
                  swap=doc.get("swap"))
    print(
        "run metrics ok: %s/%s, %d pages hot, %d stall samples"
        % (
            doc["workload"],
            doc["system"],
            len(doc["metrics"]["heatmap"]["top_pages"]),
            doc["metrics"]["histograms"]["fram_stall_cycles"]["count"],
        )
    )


def check_sweep(doc):
    assert doc["schema"] == "swapram-sweep/v1", doc.get("schema")
    configs = doc["metrics"]["configs"]
    assert configs, "sweep document has no metrics configs"
    for config in configs:
        m = config["metrics"]
        check_metrics(m)
        # The merged roll-up must account for exactly the runs that
        # completed for this system: the "runs" counter merges by sum,
        # and per-run stall cycles sum to the merged histogram.
        assert m["counters"]["runs"] == config["runs"], config["system"]
        run_stalls = sum(
            run["stall_cycles"]
            for run in doc["runs"]
            if run["system"] == config["system"]
            and "stall_cycles" in run
        )
        assert (
            m["histograms"]["fram_stall_cycles"]["sum"] == run_stalls
        ), config["system"]
    print(
        "sweep metrics ok:",
        ", ".join(
            "%s x%d" % (c["system"], c["runs"]) for c in configs
        ),
    )


def main():
    argv = sys.argv[1:]
    sweep = "--sweep" in argv
    argv = [a for a in argv if a != "--sweep"]
    if len(argv) != 1:
        sys.exit("usage: check_metrics_json.py [--sweep] <report.json|->")
    with sys.stdin if argv[0] == "-" else open(argv[0]) as f:
        doc = json.load(f)
    if sweep:
        check_sweep(doc)
    else:
        check_run_report(doc)


if __name__ == "__main__":
    main()
