/**
 * @file
 * Command-line front end for the SwapRAM toolchain — the equivalent of
 * the instrumentation/transformation scripts the paper releases (§4).
 *
 *   swapram_tool assemble  <file.s|--workload name> [options]
 *   swapram_tool transform <file.s|--workload name> [options]
 *   swapram_tool run       <file.s|--workload name> [options]
 *   swapram_tool profile   <file.s|--workload name> [options]
 *   swapram_tool trace     <file.s|--workload name> [options]
 *   swapram_tool faults    <file.s|--workload name> [options]
 *   swapram_tool sweep     [--workload LIST] [--systems LIST] [options]
 *   swapram_tool disasm    <file.s|--workload name> --func NAME
 *
 * Common options:
 *   --workload NAME          use a built-in benchmark instead of a file
 *                            (run/sweep: comma list or "all")
 *   --jobs N                 worker threads for batch commands (run
 *                            over several workloads, faults, sweep);
 *                            default: hardware concurrency. Results
 *                            are byte-identical at any job count.
 *   --system baseline|swapram|block      (default baseline; run/transform)
 *   --placement unified|standard|sram-code|sram-all|split
 *   --clock MHZ              8 or 24 (default 24)
 *   --cache-base A --cache-end B         SwapRAM/block cache region
 *   --policy queue|stack     SwapRAM replacement structure
 *   --blacklist f1,f2        functions excluded from caching
 *   --listing                print the address-annotated listing
 *   --no-superblock          disable block-stepped dispatch; execute
 *                            on the single-step (predecode) path.
 *                            Simulated results are identical either
 *                            way — this exists for conformance runs
 *                            and host-performance comparisons.
 *
 * Observability options (run/profile/trace):
 *   --json                   emit a swapram-run-report/v1 JSON document
 *   --trace-categories LIST  comma list (instr,access,stall,hwcache,
 *                            interrupt,swap) or "all"
 *   --trace-out FILE         write the event stream to FILE
 *   --trace-format FMT       text|csv|chrome (default from FILE
 *                            extension: .json=chrome, .csv=csv)
 *   --trace-limit N          stop streaming after N events
 *   --disasm                 annotate instruction events (text format)
 *   --trace N                deprecated alias for
 *                            "--trace-categories instr --trace-limit N
 *                            --disasm"
 *
 * Fault-injection options (faults):
 *   --fault-periods LIST     comma list of power-failure periods in
 *                            cycles (default: C/2,C/4,C/8,C/16 where C
 *                            is the uninterrupted run's cycle count)
 *   --fault-count N          power failures per run (default 8; the
 *                            final boot always completes)
 *   --fault-seed S           seeded-random gaps in [P/2, 3P/2) instead
 *                            of a fixed period
 *   --no-recovery            disable the generated boot-recovery call
 *                            (demonstrates the stale-metadata crash)
 *
 * Sweep options (sweep):
 *   --systems LIST           comma list of baseline,swapram,block or
 *                            "all" (the default)
 *   --update-golden          rewrite the golden conformance
 *                            expectations from this sweep's results
 *   --golden-out FILE        golden file path (default: the source
 *                            tree's tests/golden/expectations.json)
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "blockcache/builder.hh"
#include "harness/engine.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "masm/parser.hh"
#include "masm/printer.hh"
#include "masm/reimport.hh"
#include "sim/machine.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "swapram/builder.hh"
#include "trace/event.hh"
#include "workloads/workload.hh"

using namespace swapram;

namespace {

struct Args {
    std::string command;
    std::string file;
    std::string workload;
    std::string func;
    harness::System system = harness::System::Baseline;
    harness::Placement placement = harness::Placement::Unified;
    std::uint32_t clock_hz = 24'000'000;
    cache::Options swap;
    bb::Options block;
    bool listing = false;
    bool json = false;
    bool no_superblock = false; ///< force single-step/predecode path
    bool disasm = false;
    std::uint32_t trace_categories = trace::kCatNone;
    std::string trace_out;
    std::string trace_format;
    std::uint64_t trace_limit = 0;
    std::vector<std::uint64_t> fault_periods;
    std::uint32_t fault_count = 8;
    std::uint32_t fault_seed = 0; ///< 0 = fixed-period schedule
    bool no_recovery = false;
    unsigned jobs = 0; ///< engine workers; 0 = hardware concurrency
    std::string systems; ///< sweep: comma list or "all"
    bool update_golden = false;
    std::string golden_out;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: swapram_tool <assemble|transform|run|profile|trace|"
        "faults|sweep|disasm>\n"
        "                    <file.s | --workload NAME[,NAME...|all]> "
        "[options]\n"
        "         --jobs N   --systems LIST   --update-golden\n"
        "         --golden-out FILE\n"
        "options: --system baseline|swapram|block   --placement "
        "unified|standard|sram-code|sram-all|split\n"
        "         --clock 8|24   --cache-base N --cache-end N\n"
        "         --policy queue|stack   --blacklist f1,f2\n"
        "         --func NAME (disasm)   --listing   --json\n"
        "         --no-superblock (single-step execution engine)\n"
        "         --trace-categories LIST   --trace-out FILE\n"
        "         --trace-format text|csv|chrome   --trace-limit N\n"
        "         --disasm   --trace N (deprecated)\n"
        "         --fault-periods N,N,...   --fault-count N\n"
        "         --fault-seed S   --no-recovery   (faults)\n");
    std::exit(2);
}

Args
parseArgs(int argc, char **argv)
{
    if (argc < 2)
        usage();
    Args args;
    args.command = argv[1];
    // sweep defaults to the full workload × system matrix, so it is
    // the one command that needs no input argument.
    if (argc < 3 && args.command != "sweep")
        usage();
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--workload") {
            args.workload = next();
        } else if (a == "--system") {
            std::string v = next();
            if (v == "baseline")
                args.system = harness::System::Baseline;
            else if (v == "swapram")
                args.system = harness::System::SwapRam;
            else if (v == "block")
                args.system = harness::System::BlockCache;
            else
                usage();
        } else if (a == "--placement") {
            std::string v = next();
            if (v == "unified")
                args.placement = harness::Placement::Unified;
            else if (v == "standard")
                args.placement = harness::Placement::Standard;
            else if (v == "sram-code")
                args.placement = harness::Placement::SramCode;
            else if (v == "sram-all")
                args.placement = harness::Placement::SramAll;
            else if (v == "split")
                args.placement = harness::Placement::Split;
            else
                usage();
        } else if (a == "--clock") {
            args.clock_hz = static_cast<std::uint32_t>(
                                std::stoul(next())) *
                            1'000'000u;
        } else if (a == "--cache-base") {
            args.swap.cache_base = static_cast<std::uint16_t>(
                std::stoul(next(), nullptr, 0));
            args.block.cache_base = args.swap.cache_base;
        } else if (a == "--cache-end") {
            args.swap.cache_end = static_cast<std::uint16_t>(
                std::stoul(next(), nullptr, 0));
            args.block.cache_end = args.swap.cache_end;
        } else if (a == "--policy") {
            args.swap.policy = next() == "stack"
                                   ? cache::Policy::Stack
                                   : cache::Policy::CircularQueue;
        } else if (a == "--blacklist") {
            args.swap.blacklist = support::split(next(), ',');
        } else if (a == "--func") {
            args.func = next();
        } else if (a == "--listing") {
            args.listing = true;
        } else if (a == "--json") {
            args.json = true;
        } else if (a == "--no-superblock") {
            args.no_superblock = true;
        } else if (a == "--disasm") {
            args.disasm = true;
        } else if (a == "--trace-categories") {
            args.trace_categories = trace::parseCategories(next());
        } else if (a == "--trace-out") {
            args.trace_out = next();
        } else if (a == "--trace-format") {
            args.trace_format = next();
        } else if (a == "--trace-limit") {
            args.trace_limit = std::stoull(next());
        } else if (a == "--fault-periods") {
            for (const std::string &p : support::split(next(), ','))
                args.fault_periods.push_back(std::stoull(p, nullptr, 0));
        } else if (a == "--fault-count") {
            args.fault_count =
                static_cast<std::uint32_t>(std::stoul(next()));
        } else if (a == "--fault-seed") {
            args.fault_seed = static_cast<std::uint32_t>(
                std::stoul(next(), nullptr, 0));
        } else if (a == "--no-recovery") {
            args.no_recovery = true;
        } else if (a == "--jobs") {
            args.jobs =
                static_cast<unsigned>(std::stoul(next()));
        } else if (a == "--systems") {
            args.systems = next();
        } else if (a == "--update-golden") {
            args.update_golden = true;
        } else if (a == "--golden-out") {
            args.golden_out = next();
        } else if (a == "--trace") {
            support::warn("--trace N is deprecated; use "
                          "--trace-categories instr --trace-limit N "
                          "--disasm");
            args.trace_categories |= trace::kCatInstr;
            args.trace_limit = std::stoull(next());
            args.disasm = true;
        } else if (!a.empty() && a[0] != '-') {
            args.file = a;
        } else {
            usage();
        }
    }
    return args;
}

/** Load assembly source from a file or a built-in workload. */
std::string
loadSource(const Args &args, const workloads::Workload **wl_out)
{
    *wl_out = nullptr;
    if (!args.workload.empty()) {
        const auto *w = workloads::find(args.workload);
        if (!w)
            support::fatal("unknown workload '", args.workload, "'");
        *wl_out = w;
        return w->source + workloads::libSource();
    }
    if (args.file.empty())
        usage();
    std::ifstream in(args.file);
    if (!in)
        support::fatal("cannot open '", args.file, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** The full program: startup (if `main` is used as entry) + source. */
masm::Program
buildProgram(const Args &args, const harness::PlacementPlan &plan,
             const std::string &source)
{
    (void)args;
    if (source.find("__start") != std::string::npos)
        return masm::parse(source);
    return masm::parse(harness::startupSource(plan.stack_top) + source);
}

int
cmdAssemble(const Args &args)
{
    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);
    auto plan = harness::makePlacement(args.placement);
    auto program = buildProgram(args, plan, source);
    auto assembled = masm::assemble(program, plan.layout);
    std::printf("%s", masm::sectionSummary(assembled.image).c_str());
    std::printf("entry %s, %zu symbols, %zu functions\n",
                support::hex16(assembled.image.entry).c_str(),
                assembled.symbols.size(), assembled.functions.size());
    if (args.listing)
        std::printf("\n%s", masm::listing(assembled).c_str());
    return 0;
}

int
cmdTransform(const Args &args)
{
    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);
    auto plan = harness::makePlacement(args.placement);
    auto program = buildProgram(args, plan, source);
    if (args.system == harness::System::BlockCache) {
        auto info = bb::build(program, plan.layout, args.block);
        std::fprintf(stderr,
                     "block cache: %d blocks, %d stubs, app %u B, "
                     "runtime %u B, metadata %u B\n",
                     info.n_blocks, info.n_stubs, info.app_text_bytes,
                     info.runtime_bytes, info.metadata_bytes);
        std::printf("%s", args.listing
                              ? masm::listing(info.assembled).c_str()
                              : info.assembled.relaxed.text().c_str());
        return 0;
    }
    auto info = cache::build(program, plan.layout, args.swap);
    std::fprintf(stderr,
                 "swapram: %d functions, %d relocatable branches, "
                 "%d call sites; app %u B, runtime %u B, metadata %u B\n",
                 info.funcs.count(), info.reloc_count,
                 info.pass_stats.call_sites_instrumented,
                 info.app_text_bytes, info.runtime_text_bytes,
                 info.metadata_bytes);
    std::printf("%s", args.listing
                          ? masm::listing(info.assembled).c_str()
                          : info.assembled.relaxed.text().c_str());
    return 0;
}

/** Resolve --workload as a comma list or "all" against the registry. */
std::vector<const workloads::Workload *>
resolveWorkloads(const std::string &arg)
{
    std::vector<const workloads::Workload *> out;
    if (arg == "all") {
        for (const workloads::Workload &w : workloads::all())
            out.push_back(&w);
        return out;
    }
    for (const std::string &name : support::split(arg, ',')) {
        const workloads::Workload *w = workloads::find(name);
        if (!w)
            support::fatal("unknown workload '", name, "'");
        out.push_back(w);
    }
    if (out.empty())
        support::fatal("no workloads selected");
    return out;
}

/** Resolve --systems as a comma list or "all" (the default). */
std::vector<harness::System>
resolveSystems(const std::string &arg)
{
    using harness::System;
    if (arg.empty() || arg == "all")
        return {System::Baseline, System::SwapRam, System::BlockCache};
    std::vector<System> out;
    for (const std::string &name : support::split(arg, ',')) {
        if (name == "baseline")
            out.push_back(System::Baseline);
        else if (name == "swapram")
            out.push_back(System::SwapRam);
        else if (name == "block")
            out.push_back(System::BlockCache);
        else
            support::fatal("unknown system '", name,
                           "' (want baseline|swapram|block)");
    }
    if (out.empty())
        support::fatal("no systems selected");
    return out;
}

/** One (workload × system) cell of a batch and its outcome. */
struct SweepCell {
    const workloads::Workload *workload = nullptr;
    harness::System system = harness::System::Baseline;
    harness::RunOutcome outcome;

    /** Completed with the workload's golden checksum. */
    bool
    ok() const
    {
        return outcome.ok() && outcome.metrics.fits &&
               outcome.metrics.done &&
               outcome.metrics.checksum == workload->expected;
    }
};

/** Run the full matrix through the engine, submission-ordered. */
std::vector<SweepCell>
runMatrix(const std::vector<const workloads::Workload *> &wls,
          const std::vector<harness::System> &systems,
          harness::Placement placement, std::uint32_t clock_hz,
          unsigned jobs, bool superblock)
{
    std::vector<SweepCell> cells;
    std::vector<harness::RunSpec> specs;
    for (const workloads::Workload *w : wls) {
        for (harness::System system : systems) {
            cells.push_back({w, system, {}});
            harness::RunSpec spec =
                harness::sweepSpec(*w, system, placement, clock_hz);
            spec.superblock = superblock;
            specs.push_back(spec);
        }
    }
    harness::Engine engine(jobs);
    std::vector<harness::RunOutcome> outcomes = engine.runAll(specs);
    for (std::size_t i = 0; i < cells.size(); ++i)
        cells[i].outcome = std::move(outcomes[i]);
    return cells;
}

/**
 * The aggregated sweep document ("swapram-sweep/v1"). Deliberately
 * excludes the job count and any timing of the host so the document is
 * byte-identical at any --jobs value (the determinism contract CI
 * checks with cmp).
 */
support::json::Value
sweepDocument(const std::vector<SweepCell> &cells,
              harness::Placement placement, std::uint32_t clock_hz)
{
    support::json::Array runs;
    for (const SweepCell &cell : cells) {
        const harness::Metrics &m = cell.outcome.metrics;
        support::json::Object o{
            {"workload", cell.workload->name},
            {"system", harness::systemName(cell.system)},
        };
        if (!cell.outcome.ok()) {
            o.emplace("error", cell.outcome.error_text);
            runs.push_back(std::move(o));
            continue;
        }
        o.emplace("fits", m.fits);
        if (!m.fits) {
            o.emplace("fit_note", m.fit_note);
            runs.push_back(std::move(o));
            continue;
        }
        o.emplace("done", m.done);
        o.emplace("checksum", m.checksum);
        o.emplace("golden_ok", m.checksum == cell.workload->expected);
        o.emplace("instructions", m.stats.instructions);
        o.emplace("base_cycles", m.stats.base_cycles);
        o.emplace("stall_cycles", m.stats.stall_cycles);
        o.emplace("total_cycles", m.stats.totalCycles());
        o.emplace("swap_ins", m.swap_summary.copy_ins);
        o.emplace("evictions", m.swap_summary.evictions);
        o.emplace("energy_pj", m.energy_pj);
        runs.push_back(std::move(o));
    }
    return support::json::Object{
        {"schema", "swapram-sweep/v1"},
        {"placement", harness::placementName(placement)},
        {"clock_hz", clock_hz},
        {"runs", std::move(runs)},
    };
}

/** Golden conformance expectations ("swapram-golden/v1") pin checksum,
 *  cycle totals, FRAM stalls, and swap-in counts per matrix cell. */
support::json::Value
goldenDocument(const std::vector<SweepCell> &cells,
               harness::Placement placement, std::uint32_t clock_hz)
{
    support::json::Array expectations;
    for (const SweepCell &cell : cells) {
        const harness::Metrics &m = cell.outcome.metrics;
        expectations.push_back(support::json::Object{
            {"workload", cell.workload->name},
            {"system", harness::systemName(cell.system)},
            {"checksum", m.checksum},
            {"total_cycles", m.stats.totalCycles()},
            {"stall_cycles", m.stats.stall_cycles},
            {"swap_ins", m.swap_summary.copy_ins},
        });
    }
    return support::json::Object{
        {"schema", "swapram-golden/v1"},
        {"placement", harness::placementName(placement)},
        {"clock_hz", clock_hz},
        {"expectations", std::move(expectations)},
    };
}

/** Where --update-golden writes without an explicit --golden-out. */
std::string
defaultGoldenPath()
{
#ifdef SWAPRAM_GOLDEN_FILE
    return SWAPRAM_GOLDEN_FILE;
#else
    return "tests/golden/expectations.json";
#endif
}

/** Pick a stream-sink format from --trace-format or the extension. */
harness::ObserveSpec::Format
streamFormat(const Args &args)
{
    using Format = harness::ObserveSpec::Format;
    if (!args.trace_format.empty()) {
        if (args.trace_format == "text")
            return Format::Text;
        if (args.trace_format == "csv")
            return Format::Csv;
        if (args.trace_format == "chrome")
            return Format::Chrome;
        support::fatal("unknown trace format '", args.trace_format,
                       "' (expected text|csv|chrome)");
    }
    if (args.trace_out.size() > 5 &&
        args.trace_out.ends_with(".json"))
        return Format::Chrome;
    if (args.trace_out.size() > 4 && args.trace_out.ends_with(".csv"))
        return Format::Csv;
    return Format::Text;
}

/** `run` over several workloads at once: engine-parallel, one summary
 *  row (or sweep-document entry) per workload. */
int
cmdRunMany(const Args &args)
{
    std::vector<const workloads::Workload *> wls =
        resolveWorkloads(args.workload);
    std::vector<harness::RunSpec> specs;
    for (const workloads::Workload *w : wls) {
        harness::RunSpec spec;
        spec.workload = w;
        spec.system = args.system;
        spec.placement = args.placement;
        spec.clock_hz = args.clock_hz;
        spec.swap = args.swap;
        spec.block = args.block;
        spec.swap.boot_recovery = !args.no_recovery;
        spec.block.boot_recovery = !args.no_recovery;
        spec.superblock = !args.no_superblock;
        spec.observe.swap_timeline =
            args.system != harness::System::Baseline;
        specs.push_back(spec);
    }
    harness::Engine engine(args.jobs);
    std::vector<harness::RunOutcome> outcomes = engine.runAll(specs);

    std::vector<SweepCell> cells;
    for (std::size_t i = 0; i < wls.size(); ++i)
        cells.push_back({wls[i], args.system, std::move(outcomes[i])});

    if (args.json) {
        std::printf("%s\n",
                    sweepDocument(cells, args.placement, args.clock_hz)
                        .dump(2)
                        .c_str());
    } else {
        harness::Table table({"workload", "cycles", "stalls",
                              "swap_ins", "checksum", "result"});
        for (const SweepCell &cell : cells) {
            const harness::Metrics &m = cell.outcome.metrics;
            std::string result =
                !cell.outcome.ok()
                    ? "ERROR"
                    : (!m.fits ? "DNF"
                               : (!m.done ? "timeout"
                                          : (m.checksum ==
                                                     cell.workload
                                                         ->expected
                                                 ? "ok"
                                                 : "MISMATCH")));
            bool ran = cell.outcome.ok() && m.fits && m.done;
            table.addRow(
                {cell.workload->name,
                 ran ? harness::withCommas(m.stats.totalCycles()) : "-",
                 ran ? harness::withCommas(m.stats.stall_cycles) : "-",
                 ran ? harness::withCommas(m.swap_summary.copy_ins)
                     : "-",
                 ran ? support::hex16(m.checksum) : "-", result});
        }
        std::printf("system=%s placement=%s clock=%u MHz\n%s",
                    harness::systemName(args.system).c_str(),
                    harness::placementName(args.placement).c_str(),
                    args.clock_hz / 1'000'000, table.text().c_str());
    }
    for (const SweepCell &cell : cells) {
        if (!cell.ok())
            return 1;
    }
    return 0;
}

/** Full (workload × system) matrix; aggregated JSON; golden refresh. */
int
cmdSweep(const Args &args)
{
    std::vector<const workloads::Workload *> wls = resolveWorkloads(
        args.workload.empty() ? "all" : args.workload);
    std::vector<harness::System> systems = resolveSystems(args.systems);
    std::vector<SweepCell> cells = runMatrix(
        wls, systems, args.placement, args.clock_hz, args.jobs,
        !args.no_superblock);

    std::printf("%s\n",
                sweepDocument(cells, args.placement, args.clock_hz)
                    .dump(2)
                    .c_str());

    bool all_ok = true;
    for (const SweepCell &cell : cells) {
        if (!cell.ok()) {
            all_ok = false;
            std::fprintf(
                stderr, "sweep: %s/%s failed: %s\n",
                cell.workload->name.c_str(),
                harness::systemName(cell.system).c_str(),
                !cell.outcome.ok()
                    ? cell.outcome.error_text.c_str()
                    : (!cell.outcome.metrics.fits
                           ? cell.outcome.metrics.fit_note.c_str()
                           : "timeout or checksum mismatch"));
        }
    }

    if (args.update_golden) {
        if (!all_ok)
            support::fatal(
                "refusing to write golden expectations from a sweep "
                "with failures");
        std::string path = args.golden_out.empty()
                               ? defaultGoldenPath()
                               : args.golden_out;
        std::ofstream out(path);
        if (!out)
            support::fatal("cannot write '", path, "'");
        out << goldenDocument(cells, args.placement, args.clock_hz)
                   .dump(2)
            << "\n";
        out.close();
        support::inform("golden expectations written to ", path, " (",
                        cells.size(), " entries)");
        std::fprintf(stderr, "updated %s (%zu entries)\n", path.c_str(),
                     cells.size());
    }
    return all_ok ? 0 : 1;
}

/** Shared driver for run / profile / trace. */
int
cmdRun(const Args &args)
{
    // A workload list (or "all") fans out through the engine; the
    // single-workload / file path keeps the detailed report below.
    if (args.command == "run" && args.file.empty() &&
        (args.workload == "all" ||
         args.workload.find(',') != std::string::npos))
        return cmdRunMany(args);

    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);

    workloads::Workload scratch;
    scratch.name = args.file.empty() ? args.workload : args.file;
    scratch.display = scratch.name;
    scratch.source = source;
    if (wl)
        scratch.expected = wl->expected;

    harness::RunSpec spec;
    spec.workload = &scratch;
    spec.system = args.system;
    spec.placement = args.placement;
    spec.clock_hz = args.clock_hz;
    spec.swap = args.swap;
    spec.block = args.block;
    spec.include_lib = false; // already appended for workloads
    spec.swap.boot_recovery = !args.no_recovery;
    spec.block.boot_recovery = !args.no_recovery;
    spec.superblock = !args.no_superblock;
    if (!args.fault_periods.empty()) {
        // run/profile/trace take a single fault period (the faults
        // subcommand sweeps all of them).
        std::uint64_t period = args.fault_periods.front();
        spec.intermittent.plan =
            args.fault_seed
                ? sim::FaultPlan::random(
                      std::max<std::uint64_t>(period / 2, 1),
                      period + period / 2, args.fault_seed,
                      args.fault_count)
                : sim::FaultPlan::periodic(period, args.fault_count);
    }

    harness::ObserveSpec &obs = spec.observe;
    obs.categories = args.trace_categories;
    obs.limit = args.trace_limit;
    obs.disasm = args.disasm;
    if (args.command == "profile" || args.json)
        obs.profile = true;
    if (args.command == "trace" && !obs.categories)
        obs.categories = trace::kCatAll;

    // The event stream goes to --trace-out, or stdout for the trace
    // subcommand (report text then goes to stderr to stay separable).
    std::ofstream trace_file;
    bool stream_stdout =
        args.trace_out.empty() &&
        (args.command == "trace" || obs.categories);
    if (!args.trace_out.empty()) {
        trace_file.open(args.trace_out);
        if (!trace_file)
            support::fatal("cannot write '", args.trace_out, "'");
        obs.out = &trace_file;
        obs.format = streamFormat(args);
    } else if (stream_stdout && obs.categories) {
        obs.out = &std::cout;
        obs.format = streamFormat(args);
    }

    auto m = harness::runOne(spec);
    auto report = harness::RunReport::make(spec, std::move(m));
    const harness::Metrics &rm = report.metrics;
    if (trace_file.is_open()) {
        trace_file.close();
        support::inform("trace written to ", args.trace_out, " (",
                        rm.trace_emitted, " events)");
    }

    if (args.json) {
        std::printf("%s\n", report.json().dump(2).c_str());
    } else if (!rm.fits) {
        std::printf("DNF: %s\n", rm.fit_note.c_str());
    } else if (args.command == "profile") {
        std::printf("%s", report.text().c_str());
    } else if (args.command == "trace") {
        std::fprintf(stderr, "%s", report.text(0).c_str());
    } else {
        if (!rm.console.empty())
            std::printf("--- console ---\n%s\n--- end ---\n",
                        rm.console.c_str());
        const sim::Stats &stats = rm.stats;
        std::printf(
            "instructions  %llu\n",
            static_cast<unsigned long long>(stats.instructions));
        std::printf(
            "cycles        %llu (base %llu + stalls %llu)\n",
            static_cast<unsigned long long>(stats.totalCycles()),
            static_cast<unsigned long long>(stats.base_cycles),
            static_cast<unsigned long long>(stats.stall_cycles));
        std::printf(
            "fram accesses %llu (cache hits %llu, misses %llu)\n",
            static_cast<unsigned long long>(stats.framAccesses()),
            static_cast<unsigned long long>(stats.fram_cache_hits),
            static_cast<unsigned long long>(stats.fram_cache_misses));
        std::printf("runtime       %.3f ms @ %u MHz\n",
                    rm.seconds * 1e3, args.clock_hz / 1'000'000);
        std::printf("energy        %.2f uJ\n", rm.energy_pj / 1e6);
        for (int o = 0; o < sim::kNumOwners; ++o) {
            std::printf("instr[%s] %llu\n",
                        sim::ownerName(static_cast<sim::CodeOwner>(o))
                            .c_str(),
                        static_cast<unsigned long long>(
                            stats.instr_by_owner[o]));
        }
        std::printf("checksum      0x%04X%s\n", rm.checksum,
                    wl ? (rm.checksum == wl->expected
                              ? " (golden ok)"
                              : " (GOLDEN MISMATCH)")
                       : "");
    }
    if (!rm.fits)
        return 1;
    if (!rm.done) {
        std::fprintf(stderr,
                     "did not finish within the cycle budget\n");
        return 1;
    }
    return wl && rm.checksum != wl->expected ? 1 : 0;
}

/** Sweep power-failure periods and report recovery behaviour. */
int
cmdFaults(const Args &args)
{
    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);

    workloads::Workload scratch;
    scratch.name = args.file.empty() ? args.workload : args.file;
    scratch.display = scratch.name;
    scratch.source = source;
    if (wl)
        scratch.expected = wl->expected;

    harness::RunSpec spec;
    spec.workload = &scratch;
    spec.system = args.system;
    spec.placement = args.placement;
    spec.clock_hz = args.clock_hz;
    spec.swap = args.swap;
    spec.block = args.block;
    spec.include_lib = false; // already appended for workloads
    spec.swap.boot_recovery = !args.no_recovery;
    spec.block.boot_recovery = !args.no_recovery;
    spec.superblock = !args.no_superblock;

    harness::Metrics clean = harness::runOne(spec);
    if (!clean.fits) {
        std::printf("DNF: %s\n", clean.fit_note.c_str());
        return 1;
    }
    if (!clean.done) {
        std::fprintf(stderr, "uninterrupted run did not finish\n");
        return 1;
    }
    const std::uint64_t c = clean.stats.totalCycles();

    std::vector<std::uint64_t> periods = args.fault_periods;
    if (periods.empty()) {
        for (std::uint64_t div : {2, 4, 8, 16}) {
            if (c / div >= 100)
                periods.push_back(c / div);
        }
        if (periods.empty())
            periods.push_back(std::max<std::uint64_t>(c / 2, 1));
    }

    struct Sweep {
        std::uint64_t period;
        harness::Metrics m;
        bool crashed = false;
        bool converged = false;
    };

    // All periods are independent: submit the whole sweep to the
    // engine (a crash — e.g. the --no-recovery stale-metadata demo —
    // is captured per-run, exactly like the old try/catch).
    std::vector<harness::RunSpec> specs;
    for (std::uint64_t period : periods) {
        harness::RunSpec faulted = spec;
        faulted.intermittent.plan =
            args.fault_seed
                ? sim::FaultPlan::random(
                      std::max<std::uint64_t>(period / 2, 1),
                      period + period / 2, args.fault_seed,
                      args.fault_count)
                : sim::FaultPlan::periodic(period, args.fault_count);
        specs.push_back(std::move(faulted));
    }
    harness::Engine engine(args.jobs);
    std::vector<harness::RunOutcome> outcomes = engine.runAll(specs);

    std::vector<Sweep> sweeps;
    for (std::size_t i = 0; i < periods.size(); ++i) {
        Sweep s;
        s.period = periods[i];
        if (outcomes[i].error) {
            s.crashed = true;
            s.m.fit_note = outcomes[i].error_text;
        } else {
            s.m = std::move(outcomes[i].metrics);
            s.converged = s.m.done &&
                          s.m.checksum == clean.checksum &&
                          s.m.data_snapshot == clean.data_snapshot &&
                          s.m.console == clean.console;
        }
        sweeps.push_back(std::move(s));
    }

    if (args.json) {
        support::json::Array runs;
        for (const Sweep &s : sweeps) {
            harness::RunSpec faulted = spec;
            auto report = harness::RunReport::make(faulted, s.m);
            support::json::Object o{
                {"period", s.period},
                {"fault_count", args.fault_count},
                {"crashed", s.crashed},
                {"converged", s.converged},
            };
            if (args.fault_seed)
                o.emplace("fault_seed", args.fault_seed);
            if (s.crashed)
                o.emplace("error", s.m.fit_note);
            else
                o.emplace("report", report.json());
            runs.push_back(std::move(o));
        }
        support::json::Object root{
            {"schema", "swapram-fault-sweep/v1"},
            {"workload", scratch.name},
            {"system", harness::systemName(args.system)},
            {"recovery", !args.no_recovery},
            {"clean_cycles", c},
            {"clean_checksum", clean.checksum},
            {"sweeps", std::move(runs)},
        };
        std::printf("%s\n", support::json::Value(std::move(root))
                                .dump(2)
                                .c_str());
    } else {
        std::printf("workload=%s system=%s recovery=%s clean_cycles=%s "
                    "faults/run=%u%s\n",
                    scratch.name.c_str(),
                    harness::systemName(args.system).c_str(),
                    args.no_recovery ? "off" : "on",
                    harness::withCommas(c).c_str(), args.fault_count,
                    args.fault_seed
                        ? support::cat(" seed=", args.fault_seed).c_str()
                        : "");
        harness::Table table({"period", "reboots", "recovery_cyc",
                              "total_cyc", "overhead", "result"});
        for (const Sweep &s : sweeps) {
            std::string result =
                s.crashed ? "CRASH"
                          : (s.converged ? "converged"
                                         : (s.m.done ? "DIVERGED"
                                                     : "timeout"));
            table.addRow(
                {harness::withCommas(s.period),
                 s.crashed ? "-"
                           : harness::withCommas(s.m.stats.reboots),
                 s.crashed
                     ? "-"
                     : harness::withCommas(s.m.stats.recovery_cycles),
                 s.crashed ? "-"
                           : harness::withCommas(s.m.stats.totalCycles()),
                 s.crashed ? "-"
                           : harness::percentDelta(
                                 static_cast<double>(
                                     s.m.stats.totalCycles()),
                                 static_cast<double>(c)),
                 result});
        }
        std::printf("%s", table.text().c_str());
    }

    for (const Sweep &s : sweeps) {
        if (s.crashed || !s.converged)
            return 1;
    }
    return 0;
}

int
cmdDisasm(const Args &args)
{
    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);
    auto plan = harness::makePlacement(args.placement);
    auto program = buildProgram(args, plan, source);
    auto assembled = masm::assemble(program, plan.layout);
    if (args.func.empty()) {
        auto all = masm::reimportAllFunctions(assembled);
        std::printf("%s", all.text().c_str());
        return 0;
    }
    std::unordered_map<std::uint16_t, std::string> names;
    for (const auto &f : assembled.functions)
        names[f.addr] = f.name;
    auto one = masm::reimportFunction(
        assembled.image, assembled.function(args.func), names);
    std::printf("%s", one.text().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args = parseArgs(argc, argv);
        if (args.command == "assemble")
            return cmdAssemble(args);
        if (args.command == "transform")
            return cmdTransform(args);
        if (args.command == "run" || args.command == "profile" ||
            args.command == "trace")
            return cmdRun(args);
        if (args.command == "faults")
            return cmdFaults(args);
        if (args.command == "sweep")
            return cmdSweep(args);
        if (args.command == "disasm")
            return cmdDisasm(args);
        usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
