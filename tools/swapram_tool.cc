/**
 * @file
 * Command-line front end for the SwapRAM toolchain — the equivalent of
 * the instrumentation/transformation scripts the paper releases (§4).
 *
 *   swapram_tool assemble  <file.s|--workload name> [options]
 *   swapram_tool transform <file.s|--workload name> [options]
 *   swapram_tool run       <file.s|--workload name> [options]
 *   swapram_tool profile   <file.s|--workload name> [options]
 *   swapram_tool trace     <file.s|--workload name> [options]
 *   swapram_tool heatmap   <file.s|--workload name> [options]
 *   swapram_tool faults    <file.s|--workload name> [options]
 *   swapram_tool sweep     [--workload LIST] [--systems LIST] [options]
 *   swapram_tool disasm    <file.s|--workload name> --func NAME
 *
 * Common options:
 *   --workload NAME          use a built-in benchmark instead of a file
 *                            (run/sweep: comma list or "all")
 *   --jobs N                 worker threads for batch commands (run
 *                            over several workloads, faults, sweep);
 *                            default: hardware concurrency. Results
 *                            are byte-identical at any job count.
 *   --system baseline|swapram|block      (default baseline; run/transform)
 *   --placement unified|standard|sram-code|sram-all|split
 *   --clock MHZ              8 or 24 (default 24)
 *   --cache-base A --cache-end B         SwapRAM/block cache region
 *   --sram-size N            simulated SRAM bytes (default 4096); a
 *                            default cache region re-anchors to the
 *                            new SRAM end
 *   --no-evict               disable SwapRAM eviction: a blocked miss
 *                            falls back to running from FRAM (the
 *                            pre-eviction runtime, bit-identical)
 *   --data-pool N            data-side SwapRAM pool bytes (power of
 *                            two >= 32), carved from the cache top
 *   --policy queue|stack     SwapRAM replacement structure
 *   --blacklist f1,f2        functions excluded from caching
 *   --listing                print the address-annotated listing
 *   --no-superblock          disable block-stepped dispatch; execute
 *                            on the single-step (predecode) path.
 *                            Simulated results are identical either
 *                            way — this exists for conformance runs
 *                            and host-performance comparisons.
 *
 * Observability options (run/profile/trace):
 *   --json                   emit a swapram-run-report/v1 JSON document
 *   --trace-categories LIST  comma list (instr,access,stall,hwcache,
 *                            interrupt,swap) or "all"
 *   --trace-out FILE         write the event stream to FILE
 *   --trace-format FMT       text|csv|chrome (default from FILE
 *                            extension: .json=chrome, .csv=csv)
 *   --trace-limit N          stop streaming after N events
 *   --disasm                 annotate instruction events (text format)
 *   --trace N                deprecated alias for
 *                            "--trace-categories instr --trace-limit N
 *                            --disasm"
 *   --ring-capacity N        trace ring-buffer size in events (default
 *                            65536). When a traced run drops events the
 *                            tool warns on stderr; raise this to keep
 *                            the full history.
 *   --metrics                collect run metrics (address-space
 *                            heatmap, FRAM stall / miss-handler
 *                            histograms); --json embeds them as a
 *                            swapram-metrics/v1 section. With sweep,
 *                            per-run metrics merge per system into the
 *                            sweep document.
 *   --progress               live batch progress on stderr (run over
 *                            several workloads, faults, sweep):
 *                            done/total, error count, rolling runs/s
 *   --flame-out FILE         write profiled runs' folded call stacks
 *                            ("stack cycles" lines) for flamegraph.pl
 *                            / speedscope; implies --profile wiring
 *
 * Heatmap options (heatmap):
 *   --csv FILE               full per-page heat dump
 *                            (page,base,region,fetch,read,write,
 *                            stall_cycles)
 *
 * Fault-injection options (faults):
 *   --fault-periods LIST     comma list of power-failure periods in
 *                            cycles (default: C/2,C/4,C/8,C/16 where C
 *                            is the uninterrupted run's cycle count)
 *   --fault-count N          power failures per run (default 8; the
 *                            final boot always completes)
 *   --fault-seed S           seeded-random gaps in [P/2, 3P/2) instead
 *                            of a fixed period
 *   --no-recovery            disable the generated boot-recovery call
 *                            (demonstrates the stale-metadata crash)
 *
 * Sweep options (sweep):
 *   --systems LIST           comma list of baseline,swapram,block or
 *                            "all" (the default)
 *   --capacity               append the capacity-pressure matrix: each
 *                            capacity workload as a baseline reference
 *                            plus SwapRAM runs at 1/2/4/8 KiB SRAM
 *                            (the ISSUE-7 hit/thrash curve)
 *   --update-golden          rewrite the golden conformance
 *                            expectations from this sweep's results
 *   --golden-out FILE        golden file path (default: the source
 *                            tree's tests/golden/expectations.json)
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "metrics/run_metrics.hh"

#include "blockcache/builder.hh"
#include "harness/engine.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "masm/parser.hh"
#include "masm/printer.hh"
#include "masm/reimport.hh"
#include "sim/machine.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "swapram/builder.hh"
#include "trace/event.hh"
#include "workloads/workload.hh"

using namespace swapram;

namespace {

struct Args {
    std::string command;
    std::string file;
    std::string workload;
    std::string func;
    harness::System system = harness::System::Baseline;
    harness::Placement placement = harness::Placement::Unified;
    std::uint32_t clock_hz = 24'000'000;
    cache::Options swap;
    bb::Options block;
    std::uint32_t sram_size = platform::kSramSize; ///< --sram-size
    bool capacity = false; ///< sweep: append capacity-pressure rows
    bool listing = false;
    bool json = false;
    bool no_superblock = false; ///< force single-step/predecode path
    bool disasm = false;
    std::uint32_t trace_categories = trace::kCatNone;
    std::string trace_out;
    std::string trace_format;
    std::uint64_t trace_limit = 0;
    std::size_t ring_capacity = 0; ///< 0 = engine default
    bool metrics = false;          ///< collect swapram-metrics/v1
    bool progress = false;         ///< live batch progress on stderr
    std::string flame_out;         ///< folded-stack output file
    std::string heat_csv;          ///< heatmap: per-page CSV dump
    std::vector<std::uint64_t> fault_periods;
    std::uint32_t fault_count = 8;
    std::uint32_t fault_seed = 0; ///< 0 = fixed-period schedule
    bool no_recovery = false;
    unsigned jobs = 0; ///< engine workers; 0 = hardware concurrency
    std::string systems; ///< sweep: comma list or "all"
    bool update_golden = false;
    std::string golden_out;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: swapram_tool <assemble|transform|run|profile|trace|"
        "heatmap|faults|sweep|disasm>\n"
        "                    <file.s | --workload NAME[,NAME...|all]> "
        "[options]\n"
        "         --jobs N   --systems LIST   --update-golden\n"
        "         --golden-out FILE   --capacity (sweep)\n"
        "         --metrics   --progress   --flame-out FILE\n"
        "         --ring-capacity N   --csv FILE (heatmap)\n"
        "options: --system baseline|swapram|block   --placement "
        "unified|standard|sram-code|sram-all|split\n"
        "         --clock 8|24   --cache-base N --cache-end N\n"
        "         --sram-size N   --no-evict   --data-pool N\n"
        "         --policy queue|stack   --blacklist f1,f2\n"
        "         --func NAME (disasm)   --listing   --json\n"
        "         --no-superblock (single-step execution engine)\n"
        "         --trace-categories LIST   --trace-out FILE\n"
        "         --trace-format text|csv|chrome   --trace-limit N\n"
        "         --disasm   --trace N (deprecated)\n"
        "         --fault-periods N,N,...   --fault-count N\n"
        "         --fault-seed S   --no-recovery   (faults)\n");
    std::exit(2);
}

Args
parseArgs(int argc, char **argv)
{
    if (argc < 2)
        usage();
    Args args;
    args.command = argv[1];
    // sweep defaults to the full workload × system matrix, so it is
    // the one command that needs no input argument.
    if (argc < 3 && args.command != "sweep")
        usage();
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--workload") {
            args.workload = next();
        } else if (a == "--system") {
            std::string v = next();
            if (v == "baseline")
                args.system = harness::System::Baseline;
            else if (v == "swapram")
                args.system = harness::System::SwapRam;
            else if (v == "block")
                args.system = harness::System::BlockCache;
            else
                usage();
        } else if (a == "--placement") {
            std::string v = next();
            if (v == "unified")
                args.placement = harness::Placement::Unified;
            else if (v == "standard")
                args.placement = harness::Placement::Standard;
            else if (v == "sram-code")
                args.placement = harness::Placement::SramCode;
            else if (v == "sram-all")
                args.placement = harness::Placement::SramAll;
            else if (v == "split")
                args.placement = harness::Placement::Split;
            else
                usage();
        } else if (a == "--clock") {
            args.clock_hz = static_cast<std::uint32_t>(
                                std::stoul(next())) *
                            1'000'000u;
        } else if (a == "--cache-base") {
            args.swap.cache_base = static_cast<std::uint16_t>(
                std::stoul(next(), nullptr, 0));
            args.block.cache_base = args.swap.cache_base;
        } else if (a == "--cache-end") {
            args.swap.cache_end = static_cast<std::uint16_t>(
                std::stoul(next(), nullptr, 0));
            args.block.cache_end = args.swap.cache_end;
        } else if (a == "--sram-size") {
            args.sram_size = static_cast<std::uint32_t>(
                std::stoul(next(), nullptr, 0));
        } else if (a == "--no-evict") {
            args.swap.evict = false;
        } else if (a == "--data-pool") {
            args.swap.data_pool_bytes = static_cast<std::uint16_t>(
                std::stoul(next(), nullptr, 0));
        } else if (a == "--capacity") {
            args.capacity = true;
        } else if (a == "--policy") {
            args.swap.policy = next() == "stack"
                                   ? cache::Policy::Stack
                                   : cache::Policy::CircularQueue;
        } else if (a == "--blacklist") {
            args.swap.blacklist = support::split(next(), ',');
        } else if (a == "--func") {
            args.func = next();
        } else if (a == "--listing") {
            args.listing = true;
        } else if (a == "--json") {
            args.json = true;
        } else if (a == "--no-superblock") {
            args.no_superblock = true;
        } else if (a == "--disasm") {
            args.disasm = true;
        } else if (a == "--trace-categories") {
            args.trace_categories = trace::parseCategories(next());
        } else if (a == "--trace-out") {
            args.trace_out = next();
        } else if (a == "--trace-format") {
            args.trace_format = next();
        } else if (a == "--trace-limit") {
            args.trace_limit = std::stoull(next());
        } else if (a == "--ring-capacity") {
            args.ring_capacity = std::stoull(next());
        } else if (a == "--metrics") {
            args.metrics = true;
        } else if (a == "--progress") {
            args.progress = true;
        } else if (a == "--flame-out") {
            args.flame_out = next();
        } else if (a == "--csv") {
            args.heat_csv = next();
        } else if (a == "--fault-periods") {
            for (const std::string &p : support::split(next(), ','))
                args.fault_periods.push_back(std::stoull(p, nullptr, 0));
        } else if (a == "--fault-count") {
            args.fault_count =
                static_cast<std::uint32_t>(std::stoul(next()));
        } else if (a == "--fault-seed") {
            args.fault_seed = static_cast<std::uint32_t>(
                std::stoul(next(), nullptr, 0));
        } else if (a == "--no-recovery") {
            args.no_recovery = true;
        } else if (a == "--jobs") {
            args.jobs =
                static_cast<unsigned>(std::stoul(next()));
        } else if (a == "--systems") {
            args.systems = next();
        } else if (a == "--update-golden") {
            args.update_golden = true;
        } else if (a == "--golden-out") {
            args.golden_out = next();
        } else if (a == "--trace") {
            support::warn("--trace N is deprecated; use "
                          "--trace-categories instr --trace-limit N "
                          "--disasm");
            args.trace_categories |= trace::kCatInstr;
            args.trace_limit = std::stoull(next());
            args.disasm = true;
        } else if (!a.empty() && a[0] != '-') {
            args.file = a;
        } else {
            usage();
        }
    }
    return args;
}

/** Load assembly source from a file or a built-in workload. */
std::string
loadSource(const Args &args, const workloads::Workload **wl_out)
{
    *wl_out = nullptr;
    if (!args.workload.empty()) {
        const auto *w = workloads::find(args.workload);
        if (!w)
            support::fatal("unknown workload '", args.workload, "'");
        *wl_out = w;
        return w->source + workloads::libSource();
    }
    if (args.file.empty())
        usage();
    std::ifstream in(args.file);
    if (!in)
        support::fatal("cannot open '", args.file, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** The full program: startup (if `main` is used as entry) + source. */
masm::Program
buildProgram(const Args &args, const harness::PlacementPlan &plan,
             const std::string &source)
{
    (void)args;
    if (source.find("__start") != std::string::npos)
        return masm::parse(source);
    return masm::parse(harness::startupSource(plan.stack_top) + source);
}

int
cmdAssemble(const Args &args)
{
    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);
    auto plan = harness::makePlacement(args.placement);
    auto program = buildProgram(args, plan, source);
    auto assembled = masm::assemble(program, plan.layout);
    std::printf("%s", masm::sectionSummary(assembled.image).c_str());
    std::printf("entry %s, %zu symbols, %zu functions\n",
                support::hex16(assembled.image.entry).c_str(),
                assembled.symbols.size(), assembled.functions.size());
    if (args.listing)
        std::printf("\n%s", masm::listing(assembled).c_str());
    return 0;
}

int
cmdTransform(const Args &args)
{
    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);
    auto plan = harness::makePlacement(args.placement);
    auto program = buildProgram(args, plan, source);
    if (args.system == harness::System::BlockCache) {
        auto info = bb::build(program, plan.layout, args.block);
        std::fprintf(stderr,
                     "block cache: %d blocks, %d stubs, app %u B, "
                     "runtime %u B, metadata %u B\n",
                     info.n_blocks, info.n_stubs, info.app_text_bytes,
                     info.runtime_bytes, info.metadata_bytes);
        std::printf("%s", args.listing
                              ? masm::listing(info.assembled).c_str()
                              : info.assembled.relaxed.text().c_str());
        return 0;
    }
    auto info = cache::build(program, plan.layout, args.swap);
    std::fprintf(stderr,
                 "swapram: %d functions, %d relocatable branches, "
                 "%d call sites; app %u B, runtime %u B, metadata %u B\n",
                 info.funcs.count(), info.reloc_count,
                 info.pass_stats.call_sites_instrumented,
                 info.app_text_bytes, info.runtime_text_bytes,
                 info.metadata_bytes);
    std::printf("%s", args.listing
                          ? masm::listing(info.assembled).c_str()
                          : info.assembled.relaxed.text().c_str());
    return 0;
}

/** Resolve --workload as a comma list or "all" against the registry. */
std::vector<const workloads::Workload *>
resolveWorkloads(const std::string &arg)
{
    std::vector<const workloads::Workload *> out;
    if (arg == "all") {
        for (const workloads::Workload &w : workloads::all())
            out.push_back(&w);
        return out;
    }
    for (const std::string &name : support::split(arg, ',')) {
        const workloads::Workload *w = workloads::find(name);
        if (!w)
            support::fatal("unknown workload '", name, "'");
        out.push_back(w);
    }
    if (out.empty())
        support::fatal("no workloads selected");
    return out;
}

/** Resolve --systems as a comma list or "all" (the default). */
std::vector<harness::System>
resolveSystems(const std::string &arg)
{
    using harness::System;
    if (arg.empty() || arg == "all")
        return {System::Baseline, System::SwapRam, System::BlockCache};
    std::vector<System> out;
    for (const std::string &name : support::split(arg, ',')) {
        if (name == "baseline")
            out.push_back(System::Baseline);
        else if (name == "swapram")
            out.push_back(System::SwapRam);
        else if (name == "block")
            out.push_back(System::BlockCache);
        else
            support::fatal("unknown system '", name,
                           "' (want baseline|swapram|block)");
    }
    if (out.empty())
        support::fatal("no systems selected");
    return out;
}

/**
 * Progress sink for --progress: a live stderr line with done/total,
 * error count, and the rolling rate. A failed run's captured error is
 * printed on its own (persistent) line before the counter refreshes.
 * Everything goes to stderr so JSON documents on stdout stay clean.
 */
harness::ProgressFn
makeProgress(bool enabled, const char *what)
{
    if (!enabled)
        return {};
    return [what](const harness::Progress &p) {
        if (p.outcome && p.outcome->error) {
            std::fprintf(stderr, "\n%s: run %zu failed: %s\n", what,
                         p.index, p.outcome->error_text.c_str());
        }
        std::fprintf(stderr,
                     "\r%s: %zu/%zu done, %zu error%s, %.1f runs/s%s",
                     what, p.done, p.total, p.errors,
                     p.errors == 1 ? "" : "s", p.runs_per_sec,
                     p.done == p.total ? "\n" : "");
        std::fflush(stderr);
    };
}

/** Warn when a traced run overwrote ring entries (ISSUE 6 satellite):
 *  the report only holds the newest --ring-capacity events. */
void
warnDropped(const harness::Metrics &m)
{
    if (!m.trace_dropped)
        return;
    support::warn("trace ring buffer dropped ", m.trace_dropped, " of ",
                  m.trace_emitted,
                  " events (oldest overwritten); re-run with "
                  "--ring-capacity N to keep the full history");
}

/** Write folded call stacks ("stack cycles" lines) for flamegraph.pl
 *  / speedscope. */
void
writeFlame(const std::string &path,
           const std::vector<trace::FoldedStack> &folded)
{
    std::ofstream out(path);
    if (!out)
        support::fatal("cannot write '", path, "'");
    for (const trace::FoldedStack &f : folded)
        out << f.stack << ' ' << f.cycles << '\n';
    support::inform("folded stacks written to ", path, " (",
                    folded.size(), " stacks)");
    std::fprintf(stderr, "folded stacks written to %s (%zu stacks)\n",
                 path.c_str(), folded.size());
}

/** One (workload × system × SRAM size) cell and its outcome. */
struct SweepCell {
    const workloads::Workload *workload = nullptr;
    harness::System system = harness::System::Baseline;
    std::uint32_t sram_size = platform::kSramSize;
    harness::RunOutcome outcome;

    /** Completed with the workload's golden checksum. */
    bool
    ok() const
    {
        return outcome.ok() && outcome.metrics.fits &&
               outcome.metrics.done &&
               outcome.metrics.checksum == workload->expected;
    }
};

/** Run the full matrix through the engine, submission-ordered. The
 *  cache options come from the command line; with no flags they are
 *  default-constructed, so the canonical sweepSpec configuration is
 *  unchanged (--no-evict / --data-pool / --cache-* deliberately flow
 *  into the sweep so variant goldens can be regenerated). */
std::vector<SweepCell>
runMatrix(const std::vector<harness::MatrixCell> &matrix,
          const Args &args, const harness::ProgressFn &progress)
{
    std::vector<SweepCell> cells;
    std::vector<harness::RunSpec> specs;
    for (const harness::MatrixCell &mc : matrix) {
        cells.push_back({mc.workload, mc.system, mc.sram_size, {}});
        harness::RunSpec spec = harness::sweepSpec(
            *mc.workload, mc.system, args.placement, args.clock_hz);
        spec.sram_size = mc.sram_size;
        spec.swap = args.swap;
        spec.block = args.block;
        spec.superblock = !args.no_superblock;
        spec.observe.metrics = args.metrics;
        specs.push_back(spec);
    }
    harness::Engine engine(args.jobs);
    std::vector<harness::RunOutcome> outcomes =
        engine.runAll(specs, progress);
    for (std::size_t i = 0; i < cells.size(); ++i)
        cells[i].outcome = std::move(outcomes[i]);
    return cells;
}

/**
 * Per-system metrics roll-up for the sweep document: every completed
 * run's RunMetrics merged bucket-wise (histograms) and page-wise
 * (heatmap). The merge is associative/commutative and applied in
 * submission order, so this section is as jobs-independent as the rest
 * of the sweep document.
 */
support::json::Value
sweepMetricsSection(const std::vector<SweepCell> &cells,
                    const std::vector<harness::System> &systems)
{
    support::json::Array configs;
    for (harness::System system : systems) {
        metrics::RunMetrics merged;
        std::uint64_t runs = 0;
        for (const SweepCell &cell : cells) {
            if (cell.system != system ||
                !cell.outcome.metrics.run_metrics)
                continue;
            merged.merge(*cell.outcome.metrics.run_metrics);
            ++runs;
        }
        if (!runs)
            continue;
        configs.push_back(support::json::Object{
            {"system", harness::systemName(system)},
            {"runs", runs},
            {"metrics", harness::metricsJson(merged)},
        });
    }
    return support::json::Object{{"configs", std::move(configs)}};
}

/**
 * The aggregated sweep document ("swapram-sweep/v1"). Deliberately
 * excludes the job count and any timing of the host so the document is
 * byte-identical at any --jobs value (the determinism contract CI
 * checks with cmp).
 */
support::json::Value
sweepDocument(const std::vector<SweepCell> &cells,
              harness::Placement placement, std::uint32_t clock_hz,
              support::json::Value metrics_section = {})
{
    support::json::Array runs;
    for (const SweepCell &cell : cells) {
        const harness::Metrics &m = cell.outcome.metrics;
        support::json::Object o{
            {"workload", cell.workload->name},
            {"system", harness::systemName(cell.system)},
            {"sram_size", cell.sram_size},
        };
        if (!cell.outcome.ok()) {
            o.emplace("error", cell.outcome.error_text);
            runs.push_back(std::move(o));
            continue;
        }
        o.emplace("fits", m.fits);
        if (!m.fits) {
            o.emplace("fit_note", m.fit_note);
            runs.push_back(std::move(o));
            continue;
        }
        o.emplace("done", m.done);
        o.emplace("checksum", m.checksum);
        o.emplace("golden_ok", m.checksum == cell.workload->expected);
        o.emplace("instructions", m.stats.instructions);
        o.emplace("base_cycles", m.stats.base_cycles);
        o.emplace("stall_cycles", m.stats.stall_cycles);
        o.emplace("total_cycles", m.stats.totalCycles());
        o.emplace("swap_ins", m.swap_summary.copy_ins);
        o.emplace("evictions", m.swap_summary.evictions);
        o.emplace("energy_pj", m.energy_pj);
        runs.push_back(std::move(o));
    }
    support::json::Object root{
        {"schema", "swapram-sweep/v1"},
        {"placement", harness::placementName(placement)},
        {"clock_hz", clock_hz},
        {"runs", std::move(runs)},
    };
    if (!metrics_section.isNull())
        root.emplace("metrics", std::move(metrics_section));
    return root;
}

/** Golden conformance expectations ("swapram-golden/v1") pin checksum,
 *  cycle totals, FRAM stalls, and swap-in counts per matrix cell. */
support::json::Value
goldenDocument(const std::vector<SweepCell> &cells,
               harness::Placement placement, std::uint32_t clock_hz)
{
    support::json::Array expectations;
    for (const SweepCell &cell : cells) {
        const harness::Metrics &m = cell.outcome.metrics;
        expectations.push_back(support::json::Object{
            {"workload", cell.workload->name},
            {"system", harness::systemName(cell.system)},
            {"sram_size", cell.sram_size},
            {"checksum", m.checksum},
            {"total_cycles", m.stats.totalCycles()},
            {"stall_cycles", m.stats.stall_cycles},
            {"swap_ins", m.swap_summary.copy_ins},
            {"evictions", m.swap_summary.evictions},
        });
    }
    return support::json::Object{
        {"schema", "swapram-golden/v1"},
        {"placement", harness::placementName(placement)},
        {"clock_hz", clock_hz},
        {"expectations", std::move(expectations)},
    };
}

/** Where --update-golden writes without an explicit --golden-out. */
std::string
defaultGoldenPath()
{
#ifdef SWAPRAM_GOLDEN_FILE
    return SWAPRAM_GOLDEN_FILE;
#else
    return "tests/golden/expectations.json";
#endif
}

/** Pick a stream-sink format from --trace-format or the extension. */
harness::ObserveSpec::Format
streamFormat(const Args &args)
{
    using Format = harness::ObserveSpec::Format;
    if (!args.trace_format.empty()) {
        if (args.trace_format == "text")
            return Format::Text;
        if (args.trace_format == "csv")
            return Format::Csv;
        if (args.trace_format == "chrome")
            return Format::Chrome;
        support::fatal("unknown trace format '", args.trace_format,
                       "' (expected text|csv|chrome)");
    }
    if (args.trace_out.size() > 5 &&
        args.trace_out.ends_with(".json"))
        return Format::Chrome;
    if (args.trace_out.size() > 4 && args.trace_out.ends_with(".csv"))
        return Format::Csv;
    return Format::Text;
}

/** `run` over several workloads at once: engine-parallel, one summary
 *  row (or sweep-document entry) per workload. */
int
cmdRunMany(const Args &args)
{
    std::vector<const workloads::Workload *> wls =
        resolveWorkloads(args.workload);
    std::vector<harness::RunSpec> specs;
    for (const workloads::Workload *w : wls) {
        harness::RunSpec spec;
        spec.workload = w;
        spec.system = args.system;
        spec.placement = args.placement;
        spec.clock_hz = args.clock_hz;
        spec.swap = args.swap;
        spec.block = args.block;
        spec.sram_size = args.sram_size;
        spec.swap.boot_recovery = !args.no_recovery;
        spec.block.boot_recovery = !args.no_recovery;
        spec.superblock = !args.no_superblock;
        spec.observe.swap_timeline =
            args.system != harness::System::Baseline;
        spec.observe.metrics = args.metrics;
        if (args.ring_capacity)
            spec.observe.ring_capacity = args.ring_capacity;
        specs.push_back(spec);
    }
    harness::Engine engine(args.jobs);
    std::vector<harness::RunOutcome> outcomes =
        engine.runAll(specs, makeProgress(args.progress, "run"));

    std::vector<SweepCell> cells;
    for (std::size_t i = 0; i < wls.size(); ++i)
        cells.push_back({wls[i], args.system, args.sram_size,
                         std::move(outcomes[i])});

    if (args.json) {
        std::vector<harness::System> systems{args.system};
        std::printf("%s\n",
                    sweepDocument(cells, args.placement, args.clock_hz,
                                  args.metrics
                                      ? sweepMetricsSection(cells,
                                                            systems)
                                      : support::json::Value{})
                        .dump(2)
                        .c_str());
    } else {
        harness::Table table({"workload", "cycles", "stalls",
                              "swap_ins", "checksum", "result"});
        for (const SweepCell &cell : cells) {
            const harness::Metrics &m = cell.outcome.metrics;
            std::string result =
                !cell.outcome.ok()
                    ? "ERROR"
                    : (!m.fits ? "DNF"
                               : (!m.done ? "timeout"
                                          : (m.checksum ==
                                                     cell.workload
                                                         ->expected
                                                 ? "ok"
                                                 : "MISMATCH")));
            bool ran = cell.outcome.ok() && m.fits && m.done;
            table.addRow(
                {cell.workload->name,
                 ran ? harness::withCommas(m.stats.totalCycles()) : "-",
                 ran ? harness::withCommas(m.stats.stall_cycles) : "-",
                 ran ? harness::withCommas(m.swap_summary.copy_ins)
                     : "-",
                 ran ? support::hex16(m.checksum) : "-", result});
        }
        std::printf("system=%s placement=%s clock=%u MHz\n%s",
                    harness::systemName(args.system).c_str(),
                    harness::placementName(args.placement).c_str(),
                    args.clock_hz / 1'000'000, table.text().c_str());
    }
    bool any_bad = false;
    for (const SweepCell &cell : cells) {
        warnDropped(cell.outcome.metrics);
        if (cell.ok())
            continue;
        any_bad = true;
        // Surface the engine-captured error text: the table only has
        // room for "ERROR".
        if (cell.outcome.error) {
            std::fprintf(stderr, "run: %s failed: %s\n",
                         cell.workload->name.c_str(),
                         cell.outcome.error_text.c_str());
        }
    }
    return any_bad ? 1 : 0;
}

/** Full (workload × system) matrix; aggregated JSON; golden refresh. */
int
cmdSweep(const Args &args)
{
    std::vector<const workloads::Workload *> wls = resolveWorkloads(
        args.workload.empty() ? "all" : args.workload);
    std::vector<harness::System> systems = resolveSystems(args.systems);
    std::vector<harness::MatrixCell> matrix;
    for (const workloads::Workload *w : wls)
        for (harness::System system : systems)
            matrix.push_back({w, system, args.sram_size});
    if (args.capacity) {
        for (const harness::MatrixCell &mc : harness::capacityMatrix())
            matrix.push_back(mc);
    }
    std::vector<SweepCell> cells =
        runMatrix(matrix, args, makeProgress(args.progress, "sweep"));

    std::printf("%s\n",
                sweepDocument(cells, args.placement, args.clock_hz,
                              args.metrics
                                  ? sweepMetricsSection(cells, systems)
                                  : support::json::Value{})
                    .dump(2)
                    .c_str());

    bool all_ok = true;
    for (const SweepCell &cell : cells) {
        if (!cell.ok()) {
            all_ok = false;
            std::fprintf(
                stderr, "sweep: %s/%s failed: %s\n",
                cell.workload->name.c_str(),
                harness::systemName(cell.system).c_str(),
                !cell.outcome.ok()
                    ? cell.outcome.error_text.c_str()
                    : (!cell.outcome.metrics.fits
                           ? cell.outcome.metrics.fit_note.c_str()
                           : "timeout or checksum mismatch"));
        }
    }

    if (args.update_golden) {
        if (!all_ok)
            support::fatal(
                "refusing to write golden expectations from a sweep "
                "with failures");
        std::string path = args.golden_out.empty()
                               ? defaultGoldenPath()
                               : args.golden_out;
        std::ofstream out(path);
        if (!out)
            support::fatal("cannot write '", path, "'");
        out << goldenDocument(cells, args.placement, args.clock_hz)
                   .dump(2)
            << "\n";
        out.close();
        support::inform("golden expectations written to ", path, " (",
                        cells.size(), " entries)");
        std::fprintf(stderr, "updated %s (%zu entries)\n", path.c_str(),
                     cells.size());
    }
    return all_ok ? 0 : 1;
}

/** Shared driver for run / profile / trace. */
int
cmdRun(const Args &args)
{
    // A workload list (or "all") fans out through the engine; the
    // single-workload / file path keeps the detailed report below.
    if (args.command == "run" && args.file.empty() &&
        (args.workload == "all" ||
         args.workload.find(',') != std::string::npos))
        return cmdRunMany(args);

    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);

    workloads::Workload scratch;
    scratch.name = args.file.empty() ? args.workload : args.file;
    scratch.display = scratch.name;
    scratch.source = source;
    if (wl)
        scratch.expected = wl->expected;

    harness::RunSpec spec;
    spec.workload = &scratch;
    spec.system = args.system;
    spec.placement = args.placement;
    spec.clock_hz = args.clock_hz;
    spec.swap = args.swap;
    spec.block = args.block;
    spec.sram_size = args.sram_size;
    spec.include_lib = false; // already appended for workloads
    spec.swap.boot_recovery = !args.no_recovery;
    spec.block.boot_recovery = !args.no_recovery;
    spec.superblock = !args.no_superblock;
    if (!args.fault_periods.empty()) {
        // run/profile/trace take a single fault period (the faults
        // subcommand sweeps all of them).
        std::uint64_t period = args.fault_periods.front();
        spec.intermittent.plan =
            args.fault_seed
                ? sim::FaultPlan::random(
                      std::max<std::uint64_t>(period / 2, 1),
                      period + period / 2, args.fault_seed,
                      args.fault_count)
                : sim::FaultPlan::periodic(period, args.fault_count);
    }

    harness::ObserveSpec &obs = spec.observe;
    obs.categories = args.trace_categories;
    obs.limit = args.trace_limit;
    obs.disasm = args.disasm;
    obs.metrics = args.metrics;
    if (args.ring_capacity)
        obs.ring_capacity = args.ring_capacity;
    if (args.command == "profile" || args.json ||
        !args.flame_out.empty())
        obs.profile = true;
    if (args.command == "trace" && !obs.categories)
        obs.categories = trace::kCatAll;

    // The event stream goes to --trace-out, or stdout for the trace
    // subcommand (report text then goes to stderr to stay separable).
    std::ofstream trace_file;
    bool stream_stdout =
        args.trace_out.empty() &&
        (args.command == "trace" || obs.categories);
    if (!args.trace_out.empty()) {
        trace_file.open(args.trace_out);
        if (!trace_file)
            support::fatal("cannot write '", args.trace_out, "'");
        obs.out = &trace_file;
        obs.format = streamFormat(args);
    } else if (stream_stdout && obs.categories) {
        obs.out = &std::cout;
        obs.format = streamFormat(args);
    }

    auto m = harness::runOne(spec);
    auto report = harness::RunReport::make(spec, std::move(m));
    const harness::Metrics &rm = report.metrics;
    if (trace_file.is_open()) {
        trace_file.close();
        support::inform("trace written to ", args.trace_out, " (",
                        rm.trace_emitted, " events)");
    }
    warnDropped(rm);
    if (!args.flame_out.empty())
        writeFlame(args.flame_out, rm.folded);

    if (args.json) {
        std::printf("%s\n", report.json().dump(2).c_str());
    } else if (!rm.fits) {
        std::printf("DNF: %s\n", rm.fit_note.c_str());
    } else if (args.command == "profile") {
        std::printf("%s", report.text().c_str());
    } else if (args.command == "trace") {
        std::fprintf(stderr, "%s", report.text(0).c_str());
    } else {
        if (!rm.console.empty())
            std::printf("--- console ---\n%s\n--- end ---\n",
                        rm.console.c_str());
        const sim::Stats &stats = rm.stats;
        std::printf(
            "instructions  %llu\n",
            static_cast<unsigned long long>(stats.instructions));
        std::printf(
            "cycles        %llu (base %llu + stalls %llu)\n",
            static_cast<unsigned long long>(stats.totalCycles()),
            static_cast<unsigned long long>(stats.base_cycles),
            static_cast<unsigned long long>(stats.stall_cycles));
        std::printf(
            "fram accesses %llu (cache hits %llu, misses %llu)\n",
            static_cast<unsigned long long>(stats.framAccesses()),
            static_cast<unsigned long long>(stats.fram_cache_hits),
            static_cast<unsigned long long>(stats.fram_cache_misses));
        std::printf("runtime       %.3f ms @ %u MHz\n",
                    rm.seconds * 1e3, args.clock_hz / 1'000'000);
        std::printf("energy        %.2f uJ\n", rm.energy_pj / 1e6);
        for (int o = 0; o < sim::kNumOwners; ++o) {
            std::printf("instr[%s] %llu\n",
                        sim::ownerName(static_cast<sim::CodeOwner>(o))
                            .c_str(),
                        static_cast<unsigned long long>(
                            stats.instr_by_owner[o]));
        }
        std::printf("checksum      0x%04X%s\n", rm.checksum,
                    wl ? (rm.checksum == wl->expected
                              ? " (golden ok)"
                              : " (GOLDEN MISMATCH)")
                       : "");
    }
    if (!rm.fits)
        return 1;
    if (!rm.done) {
        std::fprintf(stderr,
                     "did not finish within the cycle budget\n");
        return 1;
    }
    return wl && rm.checksum != wl->expected ? 1 : 0;
}

/** Sweep power-failure periods and report recovery behaviour. */
int
cmdFaults(const Args &args)
{
    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);

    workloads::Workload scratch;
    scratch.name = args.file.empty() ? args.workload : args.file;
    scratch.display = scratch.name;
    scratch.source = source;
    if (wl)
        scratch.expected = wl->expected;

    harness::RunSpec spec;
    spec.workload = &scratch;
    spec.system = args.system;
    spec.placement = args.placement;
    spec.clock_hz = args.clock_hz;
    spec.swap = args.swap;
    spec.block = args.block;
    spec.sram_size = args.sram_size;
    spec.include_lib = false; // already appended for workloads
    spec.swap.boot_recovery = !args.no_recovery;
    spec.block.boot_recovery = !args.no_recovery;
    spec.superblock = !args.no_superblock;

    harness::Metrics clean = harness::runOne(spec);
    if (!clean.fits) {
        std::printf("DNF: %s\n", clean.fit_note.c_str());
        return 1;
    }
    if (!clean.done) {
        std::fprintf(stderr, "uninterrupted run did not finish\n");
        return 1;
    }
    const std::uint64_t c = clean.stats.totalCycles();

    std::vector<std::uint64_t> periods = args.fault_periods;
    if (periods.empty()) {
        for (std::uint64_t div : {2, 4, 8, 16}) {
            if (c / div >= 100)
                periods.push_back(c / div);
        }
        if (periods.empty())
            periods.push_back(std::max<std::uint64_t>(c / 2, 1));
    }

    struct Sweep {
        std::uint64_t period;
        harness::Metrics m;
        bool crashed = false;
        bool converged = false;
    };

    // All periods are independent: submit the whole sweep to the
    // engine (a crash — e.g. the --no-recovery stale-metadata demo —
    // is captured per-run, exactly like the old try/catch).
    std::vector<harness::RunSpec> specs;
    for (std::uint64_t period : periods) {
        harness::RunSpec faulted = spec;
        faulted.intermittent.plan =
            args.fault_seed
                ? sim::FaultPlan::random(
                      std::max<std::uint64_t>(period / 2, 1),
                      period + period / 2, args.fault_seed,
                      args.fault_count)
                : sim::FaultPlan::periodic(period, args.fault_count);
        specs.push_back(std::move(faulted));
    }
    harness::Engine engine(args.jobs);
    std::vector<harness::RunOutcome> outcomes =
        engine.runAll(specs, makeProgress(args.progress, "faults"));

    std::vector<Sweep> sweeps;
    for (std::size_t i = 0; i < periods.size(); ++i) {
        Sweep s;
        s.period = periods[i];
        if (outcomes[i].error) {
            s.crashed = true;
            s.m.fit_note = outcomes[i].error_text;
        } else {
            s.m = std::move(outcomes[i].metrics);
            s.converged = s.m.done &&
                          s.m.checksum == clean.checksum &&
                          s.m.data_snapshot == clean.data_snapshot &&
                          s.m.console == clean.console;
        }
        sweeps.push_back(std::move(s));
    }

    if (args.json) {
        support::json::Array runs;
        for (const Sweep &s : sweeps) {
            harness::RunSpec faulted = spec;
            auto report = harness::RunReport::make(faulted, s.m);
            support::json::Object o{
                {"period", s.period},
                {"fault_count", args.fault_count},
                {"crashed", s.crashed},
                {"converged", s.converged},
            };
            if (args.fault_seed)
                o.emplace("fault_seed", args.fault_seed);
            if (s.crashed)
                o.emplace("error", s.m.fit_note);
            else
                o.emplace("report", report.json());
            runs.push_back(std::move(o));
        }
        support::json::Object root{
            {"schema", "swapram-fault-sweep/v1"},
            {"workload", scratch.name},
            {"system", harness::systemName(args.system)},
            {"recovery", !args.no_recovery},
            {"clean_cycles", c},
            {"clean_checksum", clean.checksum},
            {"sweeps", std::move(runs)},
        };
        std::printf("%s\n", support::json::Value(std::move(root))
                                .dump(2)
                                .c_str());
    } else {
        std::printf("workload=%s system=%s recovery=%s clean_cycles=%s "
                    "faults/run=%u%s\n",
                    scratch.name.c_str(),
                    harness::systemName(args.system).c_str(),
                    args.no_recovery ? "off" : "on",
                    harness::withCommas(c).c_str(), args.fault_count,
                    args.fault_seed
                        ? support::cat(" seed=", args.fault_seed).c_str()
                        : "");
        harness::Table table({"period", "reboots", "recovery_cyc",
                              "total_cyc", "overhead", "result"});
        for (const Sweep &s : sweeps) {
            std::string result =
                s.crashed ? "CRASH"
                          : (s.converged ? "converged"
                                         : (s.m.done ? "DIVERGED"
                                                     : "timeout"));
            table.addRow(
                {harness::withCommas(s.period),
                 s.crashed ? "-"
                           : harness::withCommas(s.m.stats.reboots),
                 s.crashed
                     ? "-"
                     : harness::withCommas(s.m.stats.recovery_cycles),
                 s.crashed ? "-"
                           : harness::withCommas(s.m.stats.totalCycles()),
                 s.crashed ? "-"
                           : harness::percentDelta(
                                 static_cast<double>(
                                     s.m.stats.totalCycles()),
                                 static_cast<double>(c)),
                 result});
        }
        std::printf("%s", table.text().c_str());
    }

    bool any_bad = false;
    for (const Sweep &s : sweeps) {
        if (s.crashed) {
            // The table says CRASH; the captured error text says why.
            std::fprintf(stderr, "faults: period %s crashed: %s\n",
                         harness::withCommas(s.period).c_str(),
                         s.m.fit_note.c_str());
        }
        if (s.crashed || !s.converged)
            any_bad = true;
    }
    return any_bad ? 1 : 0;
}

/**
 * Run once with metrics attached and render the address-space heatmap:
 * a 64-column ASCII heat strip over the 64 KiB address space (1 KiB
 * per column, log-scaled " .:-=+*#%@" ramp), per-region access/stall
 * totals, the hottest pages, and the FRAM stall-latency percentiles.
 * --csv dumps every 64-byte page for external plotting.
 */
int
cmdHeatmap(const Args &args)
{
    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);

    workloads::Workload scratch;
    scratch.name = args.file.empty() ? args.workload : args.file;
    scratch.display = scratch.name;
    scratch.source = source;
    if (wl)
        scratch.expected = wl->expected;

    harness::RunSpec spec;
    spec.workload = &scratch;
    spec.system = args.system;
    spec.placement = args.placement;
    spec.clock_hz = args.clock_hz;
    spec.swap = args.swap;
    spec.block = args.block;
    spec.sram_size = args.sram_size;
    spec.include_lib = false; // already appended for workloads
    spec.swap.boot_recovery = !args.no_recovery;
    spec.block.boot_recovery = !args.no_recovery;
    spec.superblock = !args.no_superblock;
    spec.observe.metrics = true;

    harness::Metrics m = harness::runOne(spec);
    if (!m.fits) {
        std::printf("DNF: %s\n", m.fit_note.c_str());
        return 1;
    }
    const metrics::RunMetrics &rm = *m.run_metrics;
    using Heatmap = metrics::AddressHeatmap;
    const Heatmap &hm = rm.heatmap;

    auto region_name = [](std::uint16_t base) -> const char * {
        switch (sim::regionOf(base)) {
          case sim::RegionKind::Sram: return "sram";
          case sim::RegionKind::Fram: return "fram";
          case sim::RegionKind::Mmio: return "mmio";
          case sim::RegionKind::Unmapped: break;
        }
        return "unmapped";
    };

    if (args.json) {
        auto report = harness::RunReport::make(spec, std::move(m));
        std::printf("%s\n", report.json().dump(2).c_str());
        return 0;
    }

    std::printf("heatmap: workload=%s system=%s placement=%s\n",
                scratch.name.c_str(),
                harness::systemName(args.system).c_str(),
                harness::placementName(args.placement).c_str());

    // Heat strip: 64 columns x 1 KiB (16 pages each), log-scaled onto
    // the ramp so one scorching page doesn't flatten everything else.
    constexpr unsigned kCols = 64;
    constexpr unsigned kPagesPerCol = Heatmap::kPages / kCols;
    static const char kRamp[] = " .:-=+*#%@";
    constexpr int kLevels = sizeof(kRamp) - 2; ///< highest ramp index
    std::uint64_t col_heat[kCols] = {};
    std::uint64_t max_heat = 0;
    for (unsigned i = 0; i < Heatmap::kPages; ++i) {
        col_heat[i / kPagesPerCol] += hm.page(i).heat();
        max_heat = std::max(max_heat, col_heat[i / kPagesPerCol]);
    }
    std::string strip;
    for (unsigned c = 0; c < kCols; ++c) {
        int level = 0;
        if (col_heat[c] && max_heat > 1) {
            level = 1 + static_cast<int>(
                            (kLevels - 1) *
                            std::log(static_cast<double>(col_heat[c])) /
                            std::log(static_cast<double>(max_heat)));
            level = std::min(level, kLevels);
        } else if (col_heat[c]) {
            level = kLevels;
        }
        strip += kRamp[level];
    }
    std::printf("0x0000 |%s| 0xffff   (1 KiB/col, heat = "
                "accesses+stall_cycles)\n\n",
                strip.c_str());

    // Per-region totals (page base classifies the page).
    std::map<std::string, Heatmap::Page> regions;
    for (unsigned i = 0; i < Heatmap::kPages; ++i) {
        if (!hm.page(i).empty())
            regions[region_name(Heatmap::baseOf(i))].merge(hm.page(i));
    }
    harness::Table region_table(
        {"region", "fetch", "read", "write", "stall_cyc"});
    for (const auto &[name, p] : regions) {
        region_table.addRow({name, harness::withCommas(p.fetch),
                             harness::withCommas(p.read),
                             harness::withCommas(p.write),
                             harness::withCommas(p.stall_cycles)});
    }
    std::printf("%s\n", region_table.text().c_str());

    harness::Table top_table({"page", "region", "fetch", "read",
                              "write", "stall_cyc"});
    for (unsigned i : hm.topPages(16)) {
        const Heatmap::Page &p = hm.page(i);
        top_table.addRow(
            {support::hex16(Heatmap::baseOf(i)),
             region_name(Heatmap::baseOf(i)),
             harness::withCommas(p.fetch), harness::withCommas(p.read),
             harness::withCommas(p.write),
             harness::withCommas(p.stall_cycles)});
    }
    std::printf("%s", top_table.text().c_str());

    const metrics::Histogram &stalls = rm.fram_stall_cycles;
    std::printf("\nfram stalls: count=%s sum=%s p50=%llu p95=%llu "
                "p99=%llu max=%llu\n",
                harness::withCommas(stalls.count()).c_str(),
                harness::withCommas(stalls.sum()).c_str(),
                static_cast<unsigned long long>(stalls.p50()),
                static_cast<unsigned long long>(stalls.p95()),
                static_cast<unsigned long long>(stalls.p99()),
                static_cast<unsigned long long>(stalls.max()));
    const metrics::Histogram &handler = rm.miss_handler_cycles;
    if (handler.count()) {
        std::printf("miss handler: count=%s p50=%llu p95=%llu "
                    "max=%llu\n",
                    harness::withCommas(handler.count()).c_str(),
                    static_cast<unsigned long long>(handler.p50()),
                    static_cast<unsigned long long>(handler.p95()),
                    static_cast<unsigned long long>(handler.max()));
    }

    if (!args.heat_csv.empty()) {
        std::ofstream csv(args.heat_csv);
        if (!csv)
            support::fatal("cannot write '", args.heat_csv, "'");
        csv << "page,base,region,fetch,read,write,stall_cycles\n";
        for (unsigned i = 0; i < Heatmap::kPages; ++i) {
            const Heatmap::Page &p = hm.page(i);
            csv << i << ',' << Heatmap::baseOf(i) << ','
                << region_name(Heatmap::baseOf(i)) << ',' << p.fetch
                << ',' << p.read << ',' << p.write << ','
                << p.stall_cycles << '\n';
        }
        std::fprintf(stderr, "heatmap CSV written to %s (%u pages)\n",
                     args.heat_csv.c_str(), Heatmap::kPages);
    }
    return m.done ? 0 : 1;
}

int
cmdDisasm(const Args &args)
{
    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);
    auto plan = harness::makePlacement(args.placement);
    auto program = buildProgram(args, plan, source);
    auto assembled = masm::assemble(program, plan.layout);
    if (args.func.empty()) {
        auto all = masm::reimportAllFunctions(assembled);
        std::printf("%s", all.text().c_str());
        return 0;
    }
    std::unordered_map<std::uint16_t, std::string> names;
    for (const auto &f : assembled.functions)
        names[f.addr] = f.name;
    auto one = masm::reimportFunction(
        assembled.image, assembled.function(args.func), names);
    std::printf("%s", one.text().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args = parseArgs(argc, argv);
        if (args.command == "assemble")
            return cmdAssemble(args);
        if (args.command == "transform")
            return cmdTransform(args);
        if (args.command == "run" || args.command == "profile" ||
            args.command == "trace")
            return cmdRun(args);
        if (args.command == "heatmap")
            return cmdHeatmap(args);
        if (args.command == "faults")
            return cmdFaults(args);
        if (args.command == "sweep")
            return cmdSweep(args);
        if (args.command == "disasm")
            return cmdDisasm(args);
        usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
