/**
 * @file
 * Command-line front end for the SwapRAM toolchain — the equivalent of
 * the instrumentation/transformation scripts the paper releases (§4).
 *
 *   swapram_tool assemble  <file.s|--workload name> [options]
 *   swapram_tool transform <file.s|--workload name> [options]
 *   swapram_tool run       <file.s|--workload name> [options]
 *   swapram_tool profile   <file.s|--workload name> [options]
 *   swapram_tool trace     <file.s|--workload name> [options]
 *   swapram_tool heatmap   <file.s|--workload name> [options]
 *   swapram_tool faults    <file.s|--workload name> [options]
 *   swapram_tool sweep     [--workload LIST] [--systems LIST] [options]
 *   swapram_tool disasm    <file.s|--workload name> --func NAME
 *
 * Common options:
 *   --workload NAME          use a built-in benchmark instead of a file
 *                            (run/sweep: comma list or "all")
 *   --jobs N                 worker threads for batch commands (run
 *                            over several workloads, faults, sweep);
 *                            default: hardware concurrency. Results
 *                            are byte-identical at any job count.
 *   --system baseline|swapram|block      (default baseline; run/transform)
 *   --placement unified|standard|sram-code|sram-all|split
 *   --clock MHZ              8 or 24 (default 24)
 *   --cache-base A --cache-end B         SwapRAM/block cache region
 *   --sram-size N            simulated SRAM bytes (default 4096); a
 *                            default cache region re-anchors to the
 *                            new SRAM end
 *   --no-evict               disable SwapRAM eviction: a blocked miss
 *                            falls back to running from FRAM (the
 *                            pre-eviction runtime, bit-identical)
 *   --data-pool N            data-side SwapRAM pool bytes (power of
 *                            two >= 32), carved from the cache top
 *   --policy queue|stack     SwapRAM replacement structure
 *   --blacklist f1,f2        functions excluded from caching
 *   --listing                print the address-annotated listing
 *   --no-superblock          disable block-stepped dispatch; execute
 *                            on the single-step (predecode) path.
 *                            Simulated results are identical either
 *                            way — this exists for conformance runs
 *                            and host-performance comparisons.
 *   --no-threaded            disable threaded-code dispatch; hot
 *                            blocks stay on block-stepped superblock
 *                            dispatch (same conformance contract)
 *
 * Observability options (run/profile/trace):
 *   --json                   emit a swapram-run-report/v1 JSON document
 *   --trace-categories LIST  comma list (instr,access,stall,hwcache,
 *                            interrupt,swap) or "all"
 *   --trace-out FILE         write the event stream to FILE
 *   --trace-format FMT       text|csv|chrome (default from FILE
 *                            extension: .json=chrome, .csv=csv)
 *   --trace-limit N          stop streaming after N events
 *   --disasm                 annotate instruction events (text format)
 *   --trace N                deprecated alias for
 *                            "--trace-categories instr --trace-limit N
 *                            --disasm"
 *   --ring-capacity N        trace ring-buffer size in events (default
 *                            65536). When a traced run drops events the
 *                            tool warns on stderr; raise this to keep
 *                            the full history.
 *   --metrics                collect run metrics (address-space
 *                            heatmap, FRAM stall / miss-handler
 *                            histograms); --json embeds them as a
 *                            swapram-metrics/v1 section. With sweep,
 *                            per-run metrics merge per system into the
 *                            sweep document.
 *   --progress               live batch progress on stderr (run over
 *                            several workloads, faults, sweep):
 *                            done/total, error count, rolling runs/s
 *   --flame-out FILE         write profiled runs' folded call stacks
 *                            ("stack cycles" lines) for flamegraph.pl
 *                            / speedscope; implies --profile wiring
 *
 * Heatmap options (heatmap):
 *   --csv FILE               full per-page heat dump
 *                            (page,base,region,fetch,read,write,
 *                            stall_cycles)
 *
 * Fault-injection options (faults; --harvest-trace and --ckpt-* also
 * apply to run/profile/trace single runs):
 *   --fault-periods LIST     comma list of power-failure periods in
 *                            cycles (default: C/2,C/4,C/8,C/16 where C
 *                            is the uninterrupted run's cycle count)
 *   --fault-count N          power failures per run (default 8; the
 *                            final boot always completes)
 *   --fault-seed S           seeded-random gaps in [P/2, 3P/2) instead
 *                            of a fixed period
 *   --no-recovery            disable the generated boot-recovery call
 *                            (demonstrates the stale-metadata crash)
 *   --harvest-trace F,F,...  energy-harvesting CSV profiles
 *                            ("time_s,power_w" lines); fault timing
 *                            becomes a deterministic consequence of the
 *                            capacitor model instead of a synthetic
 *                            period schedule. faults sweeps the
 *                            scheme x trace x workload matrix and
 *                            reports forward progress per harvested
 *                            joule.
 *   --ckpt-scheme LIST       checkpoint commit schemes (comma list of
 *                            none|periodic|on-low-energy; default
 *                            none). Non-none schemes generate the
 *                            crash-atomic __ckpt_commit/__ckpt_restore
 *                            runtime (cache systems only) and need an
 *                            SRAM stack — the default unified placement
 *                            auto-upgrades to standard.
 *   --ckpt-period N          periodic: misses between commits (64)
 *   --ckpt-threshold N       on-low-energy: commit below this MMIO
 *                            capacitor level, 0..0xFFFF (0x4000)
 *   --livelock-boots N       abort a run after N consecutive boots
 *                            without persistent-state progress
 *   --cap-capacity UJ        capacitor capacity in uJ (100)
 *   --cap-power-on UJ        boot threshold in uJ (60)
 *   --cap-brown-out UJ       power-fail threshold in uJ (20)
 *   --cap-leak UW            parasitic leak in uW (10)
 *
 * Sweep options (sweep):
 *   --systems LIST           comma list of baseline,swapram,block or
 *                            "all" (the default)
 *   --capacity               append the capacity-pressure matrix: each
 *                            capacity workload as a baseline reference
 *                            plus SwapRAM runs at 1/2/4/8 KiB SRAM
 *                            (the ISSUE-7 hit/thrash curve)
 *   --update-golden          rewrite the golden conformance
 *                            expectations from this sweep's results
 *   --golden-out FILE        golden file path (default: the source
 *                            tree's tests/golden/expectations.json)
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "metrics/run_metrics.hh"

#include "blockcache/builder.hh"
#include "ckpt/options.hh"
#include "harness/engine.hh"
#include "sim/harvest.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "masm/parser.hh"
#include "masm/printer.hh"
#include "masm/reimport.hh"
#include "sim/machine.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "swapram/builder.hh"
#include "trace/event.hh"
#include "workloads/workload.hh"

using namespace swapram;

namespace {

struct Args {
    std::string command;
    std::string file;
    std::string workload;
    std::string func;
    harness::System system = harness::System::Baseline;
    harness::Placement placement = harness::Placement::Unified;
    std::uint32_t clock_hz = 24'000'000;
    cache::Options swap;
    bb::Options block;
    std::uint32_t sram_size = platform::kSramSize; ///< --sram-size
    bool capacity = false; ///< sweep: append capacity-pressure rows
    bool listing = false;
    bool json = false;
    bool no_superblock = false; ///< force single-step/predecode path
    bool no_threaded = false;   ///< force block-stepped dispatch
    bool disasm = false;
    std::uint32_t trace_categories = trace::kCatNone;
    std::string trace_out;
    std::string trace_format;
    std::uint64_t trace_limit = 0;
    std::size_t ring_capacity = 0; ///< 0 = engine default
    bool metrics = false;          ///< collect swapram-metrics/v1
    bool progress = false;         ///< live batch progress on stderr
    std::string flame_out;         ///< folded-stack output file
    std::string heat_csv;          ///< heatmap: per-page CSV dump
    std::vector<std::uint64_t> fault_periods;
    std::uint32_t fault_count = 8;
    std::uint32_t fault_seed = 0; ///< 0 = fixed-period schedule
    bool no_recovery = false;
    bool placement_set = false; ///< explicit --placement given
    std::vector<std::string> harvest_traces; ///< --harvest-trace files
    std::string ckpt_schemes;     ///< --ckpt-scheme comma list
    int ckpt_period = 0;          ///< --ckpt-period (0 = default 64)
    std::uint32_t ckpt_threshold = 0; ///< --ckpt-threshold (0 = default)
    std::uint32_t livelock_boots = 0; ///< --livelock-boots (0 = default)
    double cap_capacity_uj = 0;   ///< --cap-capacity (0 = default 100)
    double cap_power_on_uj = 0;   ///< --cap-power-on (0 = default 60)
    double cap_brown_out_uj = 0;  ///< --cap-brown-out (0 = default 20)
    double cap_leak_uw = -1;      ///< --cap-leak (<0 = default 10)
    unsigned jobs = 0; ///< engine workers; 0 = hardware concurrency
    std::string systems; ///< sweep: comma list or "all"
    bool update_golden = false;
    std::string golden_out;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: swapram_tool <assemble|transform|run|profile|trace|"
        "heatmap|faults|sweep|disasm>\n"
        "                    <file.s | --workload NAME[,NAME...|all]> "
        "[options]\n"
        "         --jobs N   --systems LIST   --update-golden\n"
        "         --golden-out FILE   --capacity (sweep)\n"
        "         --metrics   --progress   --flame-out FILE\n"
        "         --ring-capacity N   --csv FILE (heatmap)\n"
        "options: --system baseline|swapram|block   --placement "
        "unified|standard|sram-code|sram-all|split\n"
        "         --clock 8|24   --cache-base N --cache-end N\n"
        "         --sram-size N   --no-evict   --data-pool N\n"
        "         --policy queue|stack   --blacklist f1,f2\n"
        "         --func NAME (disasm)   --listing   --json\n"
        "         --no-superblock (single-step execution engine)\n"
        "         --no-threaded (block-stepped superblock dispatch)\n"
        "         --trace-categories LIST   --trace-out FILE\n"
        "         --trace-format text|csv|chrome   --trace-limit N\n"
        "         --disasm   --trace N (deprecated)\n"
        "         --fault-periods N,N,...   --fault-count N\n"
        "         --fault-seed S   --no-recovery   (faults)\n"
        "         --harvest-trace F,F,...   --ckpt-scheme LIST\n"
        "         --ckpt-period N   --ckpt-threshold N\n"
        "         --livelock-boots N   --cap-capacity UJ\n"
        "         --cap-power-on UJ --cap-brown-out UJ --cap-leak UW\n");
    std::exit(2);
}

Args
parseArgs(int argc, char **argv)
{
    if (argc < 2)
        usage();
    Args args;
    args.command = argv[1];
    // sweep defaults to the full workload × system matrix, so it is
    // the one command that needs no input argument.
    if (argc < 3 && args.command != "sweep")
        usage();
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--workload") {
            args.workload = next();
        } else if (a == "--system") {
            std::string v = next();
            if (v == "baseline")
                args.system = harness::System::Baseline;
            else if (v == "swapram")
                args.system = harness::System::SwapRam;
            else if (v == "block")
                args.system = harness::System::BlockCache;
            else
                usage();
        } else if (a == "--placement") {
            args.placement_set = true;
            std::string v = next();
            if (v == "unified")
                args.placement = harness::Placement::Unified;
            else if (v == "standard")
                args.placement = harness::Placement::Standard;
            else if (v == "sram-code")
                args.placement = harness::Placement::SramCode;
            else if (v == "sram-all")
                args.placement = harness::Placement::SramAll;
            else if (v == "split")
                args.placement = harness::Placement::Split;
            else
                usage();
        } else if (a == "--clock") {
            args.clock_hz = static_cast<std::uint32_t>(
                                std::stoul(next())) *
                            1'000'000u;
        } else if (a == "--cache-base") {
            args.swap.cache_base = static_cast<std::uint16_t>(
                std::stoul(next(), nullptr, 0));
            args.block.cache_base = args.swap.cache_base;
        } else if (a == "--cache-end") {
            args.swap.cache_end = static_cast<std::uint16_t>(
                std::stoul(next(), nullptr, 0));
            args.block.cache_end = args.swap.cache_end;
        } else if (a == "--sram-size") {
            args.sram_size = static_cast<std::uint32_t>(
                std::stoul(next(), nullptr, 0));
        } else if (a == "--no-evict") {
            args.swap.evict = false;
        } else if (a == "--data-pool") {
            args.swap.data_pool_bytes = static_cast<std::uint16_t>(
                std::stoul(next(), nullptr, 0));
        } else if (a == "--capacity") {
            args.capacity = true;
        } else if (a == "--policy") {
            args.swap.policy = next() == "stack"
                                   ? cache::Policy::Stack
                                   : cache::Policy::CircularQueue;
        } else if (a == "--blacklist") {
            args.swap.blacklist = support::split(next(), ',');
        } else if (a == "--func") {
            args.func = next();
        } else if (a == "--listing") {
            args.listing = true;
        } else if (a == "--json") {
            args.json = true;
        } else if (a == "--no-superblock") {
            args.no_superblock = true;
        } else if (a == "--no-threaded") {
            args.no_threaded = true;
        } else if (a == "--disasm") {
            args.disasm = true;
        } else if (a == "--trace-categories") {
            args.trace_categories = trace::parseCategories(next());
        } else if (a == "--trace-out") {
            args.trace_out = next();
        } else if (a == "--trace-format") {
            args.trace_format = next();
        } else if (a == "--trace-limit") {
            args.trace_limit = std::stoull(next());
        } else if (a == "--ring-capacity") {
            args.ring_capacity = std::stoull(next());
        } else if (a == "--metrics") {
            args.metrics = true;
        } else if (a == "--progress") {
            args.progress = true;
        } else if (a == "--flame-out") {
            args.flame_out = next();
        } else if (a == "--csv") {
            args.heat_csv = next();
        } else if (a == "--fault-periods") {
            for (const std::string &p : support::split(next(), ','))
                args.fault_periods.push_back(std::stoull(p, nullptr, 0));
        } else if (a == "--fault-count") {
            args.fault_count =
                static_cast<std::uint32_t>(std::stoul(next()));
        } else if (a == "--fault-seed") {
            args.fault_seed = static_cast<std::uint32_t>(
                std::stoul(next(), nullptr, 0));
        } else if (a == "--no-recovery") {
            args.no_recovery = true;
        } else if (a == "--harvest-trace") {
            for (const std::string &p : support::split(next(), ','))
                args.harvest_traces.push_back(p);
        } else if (a == "--ckpt-scheme") {
            args.ckpt_schemes = next();
        } else if (a == "--ckpt-period") {
            args.ckpt_period =
                static_cast<int>(std::stoul(next(), nullptr, 0));
        } else if (a == "--ckpt-threshold") {
            args.ckpt_threshold = static_cast<std::uint32_t>(
                std::stoul(next(), nullptr, 0));
        } else if (a == "--livelock-boots") {
            args.livelock_boots =
                static_cast<std::uint32_t>(std::stoul(next()));
        } else if (a == "--cap-capacity") {
            args.cap_capacity_uj = std::stod(next());
        } else if (a == "--cap-power-on") {
            args.cap_power_on_uj = std::stod(next());
        } else if (a == "--cap-brown-out") {
            args.cap_brown_out_uj = std::stod(next());
        } else if (a == "--cap-leak") {
            args.cap_leak_uw = std::stod(next());
        } else if (a == "--jobs") {
            args.jobs =
                static_cast<unsigned>(std::stoul(next()));
        } else if (a == "--systems") {
            args.systems = next();
        } else if (a == "--update-golden") {
            args.update_golden = true;
        } else if (a == "--golden-out") {
            args.golden_out = next();
        } else if (a == "--trace") {
            support::warn("--trace N is deprecated; use "
                          "--trace-categories instr --trace-limit N "
                          "--disasm");
            args.trace_categories |= trace::kCatInstr;
            args.trace_limit = std::stoull(next());
            args.disasm = true;
        } else if (!a.empty() && a[0] != '-') {
            args.file = a;
        } else {
            usage();
        }
    }
    return args;
}

/** Load assembly source from a file or a built-in workload. */
std::string
loadSource(const Args &args, const workloads::Workload **wl_out)
{
    *wl_out = nullptr;
    if (!args.workload.empty()) {
        const auto *w = workloads::find(args.workload);
        if (!w)
            support::fatal("unknown workload '", args.workload, "'");
        *wl_out = w;
        return w->source + workloads::libSource();
    }
    if (args.file.empty())
        usage();
    std::ifstream in(args.file);
    if (!in)
        support::fatal("cannot open '", args.file, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** The full program: startup (if `main` is used as entry) + source. */
masm::Program
buildProgram(const Args &args, const harness::PlacementPlan &plan,
             const std::string &source)
{
    (void)args;
    if (source.find("__start") != std::string::npos)
        return masm::parse(source);
    return masm::parse(harness::startupSource(plan.stack_top) + source);
}

int
cmdAssemble(const Args &args)
{
    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);
    auto plan = harness::makePlacement(args.placement);
    auto program = buildProgram(args, plan, source);
    auto assembled = masm::assemble(program, plan.layout);
    std::printf("%s", masm::sectionSummary(assembled.image).c_str());
    std::printf("entry %s, %zu symbols, %zu functions\n",
                support::hex16(assembled.image.entry).c_str(),
                assembled.symbols.size(), assembled.functions.size());
    if (args.listing)
        std::printf("\n%s", masm::listing(assembled).c_str());
    return 0;
}

int
cmdTransform(const Args &args)
{
    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);
    auto plan = harness::makePlacement(args.placement);
    auto program = buildProgram(args, plan, source);
    if (args.system == harness::System::BlockCache) {
        auto info = bb::build(program, plan.layout, args.block);
        std::fprintf(stderr,
                     "block cache: %d blocks, %d stubs, app %u B, "
                     "runtime %u B, metadata %u B\n",
                     info.n_blocks, info.n_stubs, info.app_text_bytes,
                     info.runtime_bytes, info.metadata_bytes);
        std::printf("%s", args.listing
                              ? masm::listing(info.assembled).c_str()
                              : info.assembled.relaxed.text().c_str());
        return 0;
    }
    auto info = cache::build(program, plan.layout, args.swap);
    std::fprintf(stderr,
                 "swapram: %d functions, %d relocatable branches, "
                 "%d call sites; app %u B, runtime %u B, metadata %u B\n",
                 info.funcs.count(), info.reloc_count,
                 info.pass_stats.call_sites_instrumented,
                 info.app_text_bytes, info.runtime_text_bytes,
                 info.metadata_bytes);
    std::printf("%s", args.listing
                          ? masm::listing(info.assembled).c_str()
                          : info.assembled.relaxed.text().c_str());
    return 0;
}

/** Resolve --workload as a comma list or "all" against the registry. */
std::vector<const workloads::Workload *>
resolveWorkloads(const std::string &arg)
{
    std::vector<const workloads::Workload *> out;
    if (arg == "all") {
        for (const workloads::Workload &w : workloads::all())
            out.push_back(&w);
        return out;
    }
    for (const std::string &name : support::split(arg, ',')) {
        const workloads::Workload *w = workloads::find(name);
        if (!w)
            support::fatal("unknown workload '", name, "'");
        out.push_back(w);
    }
    if (out.empty())
        support::fatal("no workloads selected");
    return out;
}

/** Resolve --systems as a comma list or "all" (the default). */
std::vector<harness::System>
resolveSystems(const std::string &arg)
{
    using harness::System;
    if (arg.empty() || arg == "all")
        return {System::Baseline, System::SwapRam, System::BlockCache};
    std::vector<System> out;
    for (const std::string &name : support::split(arg, ',')) {
        if (name == "baseline")
            out.push_back(System::Baseline);
        else if (name == "swapram")
            out.push_back(System::SwapRam);
        else if (name == "block")
            out.push_back(System::BlockCache);
        else
            support::fatal("unknown system '", name,
                           "' (want baseline|swapram|block)");
    }
    if (out.empty())
        support::fatal("no systems selected");
    return out;
}

/**
 * Progress sink for --progress: a live stderr line with done/total,
 * error count, and the rolling rate. A failed run's captured error is
 * printed on its own (persistent) line before the counter refreshes.
 * Everything goes to stderr so JSON documents on stdout stay clean.
 */
harness::ProgressFn
makeProgress(bool enabled, const char *what)
{
    if (!enabled)
        return {};
    return [what](const harness::Progress &p) {
        if (p.outcome && p.outcome->error) {
            std::fprintf(stderr, "\n%s: run %zu failed: %s\n", what,
                         p.index, p.outcome->error_text.c_str());
        }
        std::fprintf(stderr,
                     "\r%s: %zu/%zu done, %zu error%s, %.1f runs/s%s",
                     what, p.done, p.total, p.errors,
                     p.errors == 1 ? "" : "s", p.runs_per_sec,
                     p.done == p.total ? "\n" : "");
        std::fflush(stderr);
    };
}

/** Warn when a traced run overwrote ring entries (ISSUE 6 satellite):
 *  the report only holds the newest --ring-capacity events. */
void
warnDropped(const harness::Metrics &m)
{
    if (!m.trace_dropped)
        return;
    support::warn("trace ring buffer dropped ", m.trace_dropped, " of ",
                  m.trace_emitted,
                  " events (oldest overwritten); re-run with "
                  "--ring-capacity N to keep the full history");
}

/** Write folded call stacks ("stack cycles" lines) for flamegraph.pl
 *  / speedscope. */
void
writeFlame(const std::string &path,
           const std::vector<trace::FoldedStack> &folded)
{
    std::ofstream out(path);
    if (!out)
        support::fatal("cannot write '", path, "'");
    for (const trace::FoldedStack &f : folded)
        out << f.stack << ' ' << f.cycles << '\n';
    support::inform("folded stacks written to ", path, " (",
                    folded.size(), " stacks)");
    std::fprintf(stderr, "folded stacks written to %s (%zu stacks)\n",
                 path.c_str(), folded.size());
}

/** One (workload × system × SRAM size) cell and its outcome. */
struct SweepCell {
    const workloads::Workload *workload = nullptr;
    harness::System system = harness::System::Baseline;
    std::uint32_t sram_size = platform::kSramSize;
    harness::RunOutcome outcome;

    /** Completed with the workload's golden checksum. */
    bool
    ok() const
    {
        return outcome.ok() && outcome.metrics.fits &&
               outcome.metrics.done &&
               outcome.metrics.checksum == workload->expected;
    }
};

/** Run the full matrix through the engine, submission-ordered. The
 *  cache options come from the command line; with no flags they are
 *  default-constructed, so the canonical sweepSpec configuration is
 *  unchanged (--no-evict / --data-pool / --cache-* deliberately flow
 *  into the sweep so variant goldens can be regenerated). */
std::vector<SweepCell>
runMatrix(const std::vector<harness::MatrixCell> &matrix,
          const Args &args, const harness::ProgressFn &progress)
{
    std::vector<SweepCell> cells;
    std::vector<harness::RunSpec> specs;
    for (const harness::MatrixCell &mc : matrix) {
        cells.push_back({mc.workload, mc.system, mc.sram_size, {}});
        harness::RunSpec spec = harness::sweepSpec(
            *mc.workload, mc.system, args.placement, args.clock_hz);
        spec.sram_size = mc.sram_size;
        spec.swap = args.swap;
        spec.block = args.block;
        spec.superblock = !args.no_superblock;
        spec.threaded = !args.no_threaded && spec.threaded;
        spec.observe.metrics = args.metrics;
        specs.push_back(spec);
    }
    harness::Engine engine(args.jobs);
    std::vector<harness::RunOutcome> outcomes =
        engine.runAll(specs, progress);
    for (std::size_t i = 0; i < cells.size(); ++i)
        cells[i].outcome = std::move(outcomes[i]);
    return cells;
}

/**
 * Per-system metrics roll-up for the sweep document: every completed
 * run's RunMetrics merged bucket-wise (histograms) and page-wise
 * (heatmap). The merge is associative/commutative and applied in
 * submission order, so this section is as jobs-independent as the rest
 * of the sweep document.
 */
support::json::Value
sweepMetricsSection(const std::vector<SweepCell> &cells,
                    const std::vector<harness::System> &systems)
{
    support::json::Array configs;
    for (harness::System system : systems) {
        metrics::RunMetrics merged;
        std::uint64_t runs = 0;
        for (const SweepCell &cell : cells) {
            if (cell.system != system ||
                !cell.outcome.metrics.run_metrics)
                continue;
            merged.merge(*cell.outcome.metrics.run_metrics);
            ++runs;
        }
        if (!runs)
            continue;
        configs.push_back(support::json::Object{
            {"system", harness::systemName(system)},
            {"runs", runs},
            {"metrics", harness::metricsJson(merged)},
        });
    }
    return support::json::Object{{"configs", std::move(configs)}};
}

/**
 * The aggregated sweep document ("swapram-sweep/v1"). Deliberately
 * excludes the job count and any timing of the host so the document is
 * byte-identical at any --jobs value (the determinism contract CI
 * checks with cmp).
 */
support::json::Value
sweepDocument(const std::vector<SweepCell> &cells,
              harness::Placement placement, std::uint32_t clock_hz,
              support::json::Value metrics_section = {})
{
    support::json::Array runs;
    for (const SweepCell &cell : cells) {
        const harness::Metrics &m = cell.outcome.metrics;
        support::json::Object o{
            {"workload", cell.workload->name},
            {"system", harness::systemName(cell.system)},
            {"sram_size", cell.sram_size},
        };
        if (!cell.outcome.ok()) {
            o.emplace("error", cell.outcome.error_text);
            runs.push_back(std::move(o));
            continue;
        }
        o.emplace("fits", m.fits);
        if (!m.fits) {
            o.emplace("fit_note", m.fit_note);
            runs.push_back(std::move(o));
            continue;
        }
        o.emplace("done", m.done);
        o.emplace("checksum", m.checksum);
        o.emplace("golden_ok", m.checksum == cell.workload->expected);
        o.emplace("instructions", m.stats.instructions);
        o.emplace("base_cycles", m.stats.base_cycles);
        o.emplace("stall_cycles", m.stats.stall_cycles);
        o.emplace("total_cycles", m.stats.totalCycles());
        o.emplace("swap_ins", m.swap_summary.copy_ins);
        o.emplace("evictions", m.swap_summary.evictions);
        o.emplace("energy_pj", m.energy_pj);
        runs.push_back(std::move(o));
    }
    support::json::Object root{
        {"schema", "swapram-sweep/v1"},
        {"placement", harness::placementName(placement)},
        {"clock_hz", clock_hz},
        {"runs", std::move(runs)},
    };
    if (!metrics_section.isNull())
        root.emplace("metrics", std::move(metrics_section));
    return root;
}

/** Golden conformance expectations ("swapram-golden/v1") pin checksum,
 *  cycle totals, FRAM stalls, and swap-in counts per matrix cell. */
support::json::Value
goldenDocument(const std::vector<SweepCell> &cells,
               harness::Placement placement, std::uint32_t clock_hz)
{
    support::json::Array expectations;
    for (const SweepCell &cell : cells) {
        const harness::Metrics &m = cell.outcome.metrics;
        expectations.push_back(support::json::Object{
            {"workload", cell.workload->name},
            {"system", harness::systemName(cell.system)},
            {"sram_size", cell.sram_size},
            {"checksum", m.checksum},
            {"total_cycles", m.stats.totalCycles()},
            {"stall_cycles", m.stats.stall_cycles},
            {"swap_ins", m.swap_summary.copy_ins},
            {"evictions", m.swap_summary.evictions},
        });
    }
    return support::json::Object{
        {"schema", "swapram-golden/v1"},
        {"placement", harness::placementName(placement)},
        {"clock_hz", clock_hz},
        {"expectations", std::move(expectations)},
    };
}

/** Where --update-golden writes without an explicit --golden-out. */
std::string
defaultGoldenPath()
{
#ifdef SWAPRAM_GOLDEN_FILE
    return SWAPRAM_GOLDEN_FILE;
#else
    return "tests/golden/expectations.json";
#endif
}

/** Capacitor model from the --cap-* flags (defaults: 100 uJ capacity,
 *  60 uJ power-on, 20 uJ brown-out, 10 uW leak). */
sim::CapacitorModel
capacitorFrom(const Args &args)
{
    sim::CapacitorModel cap;
    if (args.cap_capacity_uj > 0)
        cap.capacity_pj = args.cap_capacity_uj * 1e6;
    if (args.cap_power_on_uj > 0)
        cap.power_on_pj = args.cap_power_on_uj * 1e6;
    if (args.cap_brown_out_uj > 0)
        cap.brown_out_pj = args.cap_brown_out_uj * 1e6;
    if (args.cap_leak_uw >= 0)
        cap.leak_watts = args.cap_leak_uw * 1e-6;
    return cap;
}

/** Apply one checkpoint scheme (plus the --ckpt-* knobs) to both
 *  runtimes' options in @p spec. */
void
applyCkptScheme(harness::RunSpec &spec, ckpt::Scheme scheme,
                const Args &args)
{
    for (ckpt::Options *o : {&spec.swap.ckpt, &spec.block.ckpt}) {
        o->scheme = scheme;
        if (args.ckpt_period)
            o->period = args.ckpt_period;
        if (args.ckpt_threshold) {
            o->low_threshold =
                static_cast<std::uint16_t>(args.ckpt_threshold);
        }
    }
}

/**
 * Checkpointing needs an SRAM stack (the restore rolls SRAM back, and
 * an FRAM stack would survive the rollback). The default unified
 * placement keeps the stack in FRAM, so auto-upgrade it to standard;
 * an explicit incompatible --placement is an error.
 */
void
fixPlacementForCkpt(Args &args, const char *what)
{
    if (args.system == harness::System::Baseline) {
        support::fatal("--ckpt-scheme requires --system swapram|block "
                       "(the checkpoint runtime rides the cache "
                       "runtime's miss handler)");
    }
    if (harness::makePlacement(args.placement).stack_in_sram)
        return;
    if (args.placement_set) {
        support::fatal("checkpointing requires the stack in SRAM; use "
                       "--placement standard|sram-all|split");
    }
    args.placement = harness::Placement::Standard;
    std::fprintf(stderr,
                 "%s: checkpoint schemes need an SRAM stack; using "
                 "--placement standard\n",
                 what);
}

/** Load --harvest-trace files; names are basenames without .csv. */
std::vector<std::shared_ptr<const sim::HarvestTrace>>
loadTraces(const Args &args, std::vector<std::string> *names)
{
    std::vector<std::shared_ptr<const sim::HarvestTrace>> traces;
    for (const std::string &path : args.harvest_traces) {
        traces.push_back(std::make_shared<const sim::HarvestTrace>(
            sim::HarvestTrace::load(path)));
        std::string name = path;
        if (std::size_t slash = name.find_last_of('/');
            slash != std::string::npos)
            name = name.substr(slash + 1);
        if (name.size() > 4 && name.ends_with(".csv"))
            name.resize(name.size() - 4);
        names->push_back(name);
    }
    return traces;
}

/** Pick a stream-sink format from --trace-format or the extension. */
harness::ObserveSpec::Format
streamFormat(const Args &args)
{
    using Format = harness::ObserveSpec::Format;
    if (!args.trace_format.empty()) {
        if (args.trace_format == "text")
            return Format::Text;
        if (args.trace_format == "csv")
            return Format::Csv;
        if (args.trace_format == "chrome")
            return Format::Chrome;
        support::fatal("unknown trace format '", args.trace_format,
                       "' (expected text|csv|chrome)");
    }
    if (args.trace_out.size() > 5 &&
        args.trace_out.ends_with(".json"))
        return Format::Chrome;
    if (args.trace_out.size() > 4 && args.trace_out.ends_with(".csv"))
        return Format::Csv;
    return Format::Text;
}

/** `run` over several workloads at once: engine-parallel, one summary
 *  row (or sweep-document entry) per workload. */
int
cmdRunMany(const Args &args)
{
    std::vector<const workloads::Workload *> wls =
        resolveWorkloads(args.workload);
    std::vector<harness::RunSpec> specs;
    for (const workloads::Workload *w : wls) {
        harness::RunSpec spec;
        spec.workload = w;
        spec.system = args.system;
        spec.placement = args.placement;
        spec.clock_hz = args.clock_hz;
        spec.swap = args.swap;
        spec.block = args.block;
        spec.sram_size = args.sram_size;
        spec.swap.boot_recovery = !args.no_recovery;
        spec.block.boot_recovery = !args.no_recovery;
        spec.superblock = !args.no_superblock;
        spec.threaded = !args.no_threaded && spec.threaded;
        spec.observe.swap_timeline =
            args.system != harness::System::Baseline;
        spec.observe.metrics = args.metrics;
        if (args.ring_capacity)
            spec.observe.ring_capacity = args.ring_capacity;
        specs.push_back(spec);
    }
    harness::Engine engine(args.jobs);
    std::vector<harness::RunOutcome> outcomes =
        engine.runAll(specs, makeProgress(args.progress, "run"));

    std::vector<SweepCell> cells;
    for (std::size_t i = 0; i < wls.size(); ++i)
        cells.push_back({wls[i], args.system, args.sram_size,
                         std::move(outcomes[i])});

    if (args.json) {
        std::vector<harness::System> systems{args.system};
        std::printf("%s\n",
                    sweepDocument(cells, args.placement, args.clock_hz,
                                  args.metrics
                                      ? sweepMetricsSection(cells,
                                                            systems)
                                      : support::json::Value{})
                        .dump(2)
                        .c_str());
    } else {
        harness::Table table({"workload", "cycles", "stalls",
                              "swap_ins", "checksum", "result"});
        for (const SweepCell &cell : cells) {
            const harness::Metrics &m = cell.outcome.metrics;
            std::string result =
                !cell.outcome.ok()
                    ? "ERROR"
                    : (!m.fits ? "DNF"
                               : (!m.done ? "timeout"
                                          : (m.checksum ==
                                                     cell.workload
                                                         ->expected
                                                 ? "ok"
                                                 : "MISMATCH")));
            bool ran = cell.outcome.ok() && m.fits && m.done;
            table.addRow(
                {cell.workload->name,
                 ran ? harness::withCommas(m.stats.totalCycles()) : "-",
                 ran ? harness::withCommas(m.stats.stall_cycles) : "-",
                 ran ? harness::withCommas(m.swap_summary.copy_ins)
                     : "-",
                 ran ? support::hex16(m.checksum) : "-", result});
        }
        std::printf("system=%s placement=%s clock=%u MHz\n%s",
                    harness::systemName(args.system).c_str(),
                    harness::placementName(args.placement).c_str(),
                    args.clock_hz / 1'000'000, table.text().c_str());
    }
    bool any_bad = false;
    for (const SweepCell &cell : cells) {
        warnDropped(cell.outcome.metrics);
        if (cell.ok())
            continue;
        any_bad = true;
        // Surface the engine-captured error text: the table only has
        // room for "ERROR".
        if (cell.outcome.error) {
            std::fprintf(stderr, "run: %s failed: %s\n",
                         cell.workload->name.c_str(),
                         cell.outcome.error_text.c_str());
        }
    }
    return any_bad ? 1 : 0;
}

/** Full (workload × system) matrix; aggregated JSON; golden refresh. */
int
cmdSweep(const Args &args)
{
    std::vector<const workloads::Workload *> wls = resolveWorkloads(
        args.workload.empty() ? "all" : args.workload);
    std::vector<harness::System> systems = resolveSystems(args.systems);
    std::vector<harness::MatrixCell> matrix;
    for (const workloads::Workload *w : wls)
        for (harness::System system : systems)
            matrix.push_back({w, system, args.sram_size});
    if (args.capacity) {
        for (const harness::MatrixCell &mc : harness::capacityMatrix())
            matrix.push_back(mc);
    }
    std::vector<SweepCell> cells =
        runMatrix(matrix, args, makeProgress(args.progress, "sweep"));

    std::printf("%s\n",
                sweepDocument(cells, args.placement, args.clock_hz,
                              args.metrics
                                  ? sweepMetricsSection(cells, systems)
                                  : support::json::Value{})
                    .dump(2)
                    .c_str());

    bool all_ok = true;
    for (const SweepCell &cell : cells) {
        if (!cell.ok()) {
            all_ok = false;
            std::fprintf(
                stderr, "sweep: %s/%s failed: %s\n",
                cell.workload->name.c_str(),
                harness::systemName(cell.system).c_str(),
                !cell.outcome.ok()
                    ? cell.outcome.error_text.c_str()
                    : (!cell.outcome.metrics.fits
                           ? cell.outcome.metrics.fit_note.c_str()
                           : "timeout or checksum mismatch"));
        }
    }

    if (args.update_golden) {
        if (!all_ok)
            support::fatal(
                "refusing to write golden expectations from a sweep "
                "with failures");
        std::string path = args.golden_out.empty()
                               ? defaultGoldenPath()
                               : args.golden_out;
        std::ofstream out(path);
        if (!out)
            support::fatal("cannot write '", path, "'");
        out << goldenDocument(cells, args.placement, args.clock_hz)
                   .dump(2)
            << "\n";
        out.close();
        support::inform("golden expectations written to ", path, " (",
                        cells.size(), " entries)");
        std::fprintf(stderr, "updated %s (%zu entries)\n", path.c_str(),
                     cells.size());
    }
    return all_ok ? 0 : 1;
}

/** Shared driver for run / profile / trace. */
int
cmdRun(const Args &args_in)
{
    Args args = args_in;
    // A workload list (or "all") fans out through the engine; the
    // single-workload / file path keeps the detailed report below.
    if (args.command == "run" && args.file.empty() &&
        (args.workload == "all" ||
         args.workload.find(',') != std::string::npos))
        return cmdRunMany(args);

    // Single-run checkpointing: run/profile/trace take one scheme (the
    // faults subcommand sweeps a scheme list).
    ckpt::Scheme run_scheme = ckpt::Scheme::None;
    if (!args.ckpt_schemes.empty()) {
        run_scheme = ckpt::parseScheme(
            support::split(args.ckpt_schemes, ',').front());
        if (run_scheme != ckpt::Scheme::None)
            fixPlacementForCkpt(args, args.command.c_str());
    }

    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);

    workloads::Workload scratch;
    scratch.name = args.file.empty() ? args.workload : args.file;
    scratch.display = scratch.name;
    scratch.source = source;
    if (wl)
        scratch.expected = wl->expected;

    harness::RunSpec spec;
    spec.workload = &scratch;
    spec.system = args.system;
    spec.placement = args.placement;
    spec.clock_hz = args.clock_hz;
    spec.swap = args.swap;
    spec.block = args.block;
    spec.sram_size = args.sram_size;
    spec.include_lib = false; // already appended for workloads
    spec.swap.boot_recovery = !args.no_recovery;
    spec.block.boot_recovery = !args.no_recovery;
    spec.superblock = !args.no_superblock;
    spec.threaded = !args.no_threaded && spec.threaded;
    applyCkptScheme(spec, run_scheme, args);
    spec.intermittent.livelock_boots = args.livelock_boots;
    if (!args.harvest_traces.empty()) {
        // run/profile/trace take a single harvest trace (the faults
        // subcommand sweeps all of them).
        std::vector<std::string> names;
        auto traces = loadTraces(args, &names);
        spec.intermittent.plan = sim::FaultPlan::harvest(
            traces.front(), capacitorFrom(args));
    } else if (!args.fault_periods.empty()) {
        // Likewise a single fault period.
        std::uint64_t period = args.fault_periods.front();
        spec.intermittent.plan =
            args.fault_seed
                ? sim::FaultPlan::random(
                      std::max<std::uint64_t>(period / 2, 1),
                      period + period / 2, args.fault_seed,
                      args.fault_count)
                : sim::FaultPlan::periodic(period, args.fault_count);
    }

    harness::ObserveSpec &obs = spec.observe;
    obs.categories = args.trace_categories;
    obs.limit = args.trace_limit;
    obs.disasm = args.disasm;
    obs.metrics = args.metrics;
    if (args.ring_capacity)
        obs.ring_capacity = args.ring_capacity;
    if (args.command == "profile" || args.json ||
        !args.flame_out.empty())
        obs.profile = true;
    if (args.command == "trace" && !obs.categories)
        obs.categories = trace::kCatAll;

    // The event stream goes to --trace-out, or stdout for the trace
    // subcommand (report text then goes to stderr to stay separable).
    std::ofstream trace_file;
    bool stream_stdout =
        args.trace_out.empty() &&
        (args.command == "trace" || obs.categories);
    if (!args.trace_out.empty()) {
        trace_file.open(args.trace_out);
        if (!trace_file)
            support::fatal("cannot write '", args.trace_out, "'");
        obs.out = &trace_file;
        obs.format = streamFormat(args);
    } else if (stream_stdout && obs.categories) {
        obs.out = &std::cout;
        obs.format = streamFormat(args);
    }

    auto m = harness::runOne(spec);
    auto report = harness::RunReport::make(spec, std::move(m));
    const harness::Metrics &rm = report.metrics;
    if (trace_file.is_open()) {
        trace_file.close();
        support::inform("trace written to ", args.trace_out, " (",
                        rm.trace_emitted, " events)");
    }
    warnDropped(rm);
    if (!args.flame_out.empty())
        writeFlame(args.flame_out, rm.folded);

    if (args.json) {
        std::printf("%s\n", report.json().dump(2).c_str());
    } else if (!rm.fits) {
        std::printf("DNF: %s\n", rm.fit_note.c_str());
    } else if (args.command == "profile") {
        std::printf("%s", report.text().c_str());
    } else if (args.command == "trace") {
        std::fprintf(stderr, "%s", report.text(0).c_str());
    } else {
        if (!rm.console.empty())
            std::printf("--- console ---\n%s\n--- end ---\n",
                        rm.console.c_str());
        const sim::Stats &stats = rm.stats;
        std::printf(
            "instructions  %llu\n",
            static_cast<unsigned long long>(stats.instructions));
        std::printf(
            "cycles        %llu (base %llu + stalls %llu)\n",
            static_cast<unsigned long long>(stats.totalCycles()),
            static_cast<unsigned long long>(stats.base_cycles),
            static_cast<unsigned long long>(stats.stall_cycles));
        std::printf(
            "fram accesses %llu (cache hits %llu, misses %llu)\n",
            static_cast<unsigned long long>(stats.framAccesses()),
            static_cast<unsigned long long>(stats.fram_cache_hits),
            static_cast<unsigned long long>(stats.fram_cache_misses));
        std::printf("runtime       %.3f ms @ %u MHz\n",
                    rm.seconds * 1e3, args.clock_hz / 1'000'000);
        std::printf("energy        %.2f uJ\n", rm.energy_pj / 1e6);
        for (int o = 0; o < sim::kNumOwners; ++o) {
            std::printf("instr[%s] %llu\n",
                        sim::ownerName(static_cast<sim::CodeOwner>(o))
                            .c_str(),
                        static_cast<unsigned long long>(
                            stats.instr_by_owner[o]));
        }
        std::printf("checksum      0x%04X%s\n", rm.checksum,
                    wl ? (rm.checksum == wl->expected
                              ? " (golden ok)"
                              : " (GOLDEN MISMATCH)")
                       : "");
    }
    if (!rm.fits)
        return 1;
    if (!rm.done) {
        switch (rm.stop) {
          case sim::RunResult::Stop::Livelock:
            std::fprintf(stderr,
                         "livelocked: no persistent progress across "
                         "consecutive boots\n");
            break;
          case sim::RunResult::Stop::Exhausted:
            std::fprintf(stderr,
                         "exhausted: the harvest can never recharge "
                         "the capacitor\n");
            break;
          default:
            std::fprintf(stderr,
                         "did not finish within the cycle budget\n");
            break;
        }
        return 1;
    }
    return wl && rm.checksum != wl->expected ? 1 : 0;
}

/**
 * Sweep power-failure schedules and report recovery behaviour.
 *
 * Two fault sources: a synthetic period sweep (the v1 behaviour), or —
 * with --harvest-trace — deterministic brown-outs from a capacitor
 * charged by energy-harvesting profiles. The matrix is
 * workload x checkpoint-scheme x fault-source; every (workload, scheme)
 * pair gets its own uninterrupted reference run (the checkpoint
 * machinery changes the binary, and data snapshots only compare within
 * one binary). Each faulted run is classified:
 *
 *   converged  — completed; persistent state and console match
 *   degraded   — completed; persistent state matches but the console
 *                differs (a checkpoint resume legitimately replays
 *                console writes made since the last commit)
 *   diverged   — completed with wrong persistent state
 *   livelocked — the watchdog saw no boot-to-boot progress
 *   exhausted  — the harvest can never recharge the capacitor
 *   timeout    — ran out of the cycle budget
 *   crashed    — the simulator faulted (e.g. --no-recovery stale
 *                metadata)
 *
 * Only converged and degraded count as success for the exit code.
 */
int
cmdFaults(const Args &args_in)
{
    Args args = args_in;

    // Workload set: a file is one scratch workload; --workload accepts
    // a comma list or "all".
    workloads::Workload scratch;
    std::vector<const workloads::Workload *> wls;
    const bool from_file = !args.file.empty();
    if (from_file) {
        const workloads::Workload *wl = nullptr;
        scratch.source = loadSource(args, &wl);
        scratch.name = args.file;
        scratch.display = scratch.name;
        if (wl)
            scratch.expected = wl->expected;
        wls.push_back(&scratch);
    } else {
        wls = resolveWorkloads(args.workload);
    }

    // Checkpoint schemes (comma list; default none = v1 behaviour).
    std::vector<ckpt::Scheme> schemes;
    for (const std::string &name : support::split(
             args.ckpt_schemes.empty() ? "none" : args.ckpt_schemes,
             ','))
        schemes.push_back(ckpt::parseScheme(name));
    bool any_ckpt = false;
    for (ckpt::Scheme s : schemes)
        any_ckpt |= s != ckpt::Scheme::None;
    if (any_ckpt)
        fixPlacementForCkpt(args, "faults");

    std::vector<std::string> trace_names;
    auto traces = loadTraces(args, &trace_names);
    const bool harvest = !traces.empty();
    const sim::CapacitorModel cap = capacitorFrom(args);

    auto baseSpec = [&](const workloads::Workload *w,
                        ckpt::Scheme scheme) {
        harness::RunSpec spec;
        spec.workload = w;
        spec.system = args.system;
        spec.placement = args.placement;
        spec.clock_hz = args.clock_hz;
        spec.swap = args.swap;
        spec.block = args.block;
        spec.sram_size = args.sram_size;
        spec.include_lib = !from_file; // files carry their own lib
        spec.swap.boot_recovery = !args.no_recovery;
        spec.block.boot_recovery = !args.no_recovery;
        spec.superblock = !args.no_superblock;
        spec.threaded = !args.no_threaded && spec.threaded;
        applyCkptScheme(spec, scheme, args);
        return spec;
    };

    harness::Engine engine(args.jobs);

    // Phase 1: one uninterrupted reference per (workload, scheme).
    std::vector<harness::RunSpec> clean_specs;
    for (const workloads::Workload *w : wls)
        for (ckpt::Scheme s : schemes)
            clean_specs.push_back(baseSpec(w, s));
    std::vector<harness::RunOutcome> cleans = engine.runAll(
        clean_specs, makeProgress(args.progress, "faults(reference)"));
    auto cleanOf = [&](std::size_t wi,
                       std::size_t si) -> const harness::RunOutcome & {
        return cleans[wi * schemes.size() + si];
    };
    for (std::size_t wi = 0; wi < wls.size(); ++wi) {
        for (std::size_t si = 0; si < schemes.size(); ++si) {
            const harness::RunOutcome &c = cleanOf(wi, si);
            if (c.error) {
                std::fprintf(stderr, "faults: %s/%s reference run "
                             "failed: %s\n",
                             wls[wi]->name.c_str(),
                             ckpt::schemeName(schemes[si]).c_str(),
                             c.error_text.c_str());
                return 1;
            }
            if (!c.metrics.fits) {
                std::printf("DNF: %s\n", c.metrics.fit_note.c_str());
                return 1;
            }
            if (!c.metrics.done) {
                std::fprintf(stderr, "faults: %s/%s uninterrupted run "
                             "did not finish\n",
                             wls[wi]->name.c_str(),
                             ckpt::schemeName(schemes[si]).c_str());
                return 1;
            }
        }
    }

    // Phase 2: the fault matrix.
    struct Cell {
        std::size_t wi = 0, si = 0;
        std::uint64_t period = 0;           ///< period mode
        std::size_t trace = SIZE_MAX;       ///< harvest mode
        harness::Metrics m;
        bool crashed = false;
        std::string verdict;
        bool ok = false; ///< converged or degraded

        std::string
        faultName(const std::vector<std::string> &names) const
        {
            return trace != SIZE_MAX ? names[trace]
                                     : harness::withCommas(period);
        }
    };
    std::vector<Cell> cells;
    std::vector<harness::RunSpec> specs;
    for (std::size_t wi = 0; wi < wls.size(); ++wi) {
        for (std::size_t si = 0; si < schemes.size(); ++si) {
            harness::RunSpec base = baseSpec(wls[wi], schemes[si]);
            // Harvest plans fail forever, so a livelocked run would
            // otherwise burn the whole cycle budget before reporting;
            // arm the watchdog by default there.
            base.intermittent.livelock_boots =
                args.livelock_boots ? args.livelock_boots
                                    : (harvest ? 8 : 0);
            if (harvest) {
                for (std::size_t ti = 0; ti < traces.size(); ++ti) {
                    Cell cell;
                    cell.wi = wi;
                    cell.si = si;
                    cell.trace = ti;
                    cells.push_back(cell);
                    harness::RunSpec spec = base;
                    spec.intermittent.plan =
                        sim::FaultPlan::harvest(traces[ti], cap);
                    specs.push_back(std::move(spec));
                }
                continue;
            }
            const std::uint64_t c =
                cleanOf(wi, si).metrics.stats.totalCycles();
            std::vector<std::uint64_t> periods = args.fault_periods;
            if (periods.empty()) {
                for (std::uint64_t div : {2, 4, 8, 16}) {
                    if (c / div >= 100)
                        periods.push_back(c / div);
                }
                if (periods.empty())
                    periods.push_back(
                        std::max<std::uint64_t>(c / 2, 1));
            }
            for (std::uint64_t period : periods) {
                Cell cell;
                cell.wi = wi;
                cell.si = si;
                cell.period = period;
                cells.push_back(cell);
                harness::RunSpec spec = base;
                spec.intermittent.plan =
                    args.fault_seed
                        ? sim::FaultPlan::random(
                              std::max<std::uint64_t>(period / 2, 1),
                              period + period / 2, args.fault_seed,
                              args.fault_count)
                        : sim::FaultPlan::periodic(period,
                                                   args.fault_count);
                specs.push_back(std::move(spec));
            }
        }
    }

    // Progress with the per-run intermittent counters rolled up
    // (callbacks are engine-serialized, so plain counters are safe).
    harness::ProgressFn progress;
    std::uint64_t prog_reboots = 0, prog_restores = 0;
    std::size_t prog_livelocked = 0;
    if (args.progress) {
        progress = [&](const harness::Progress &p) {
            if (p.outcome && p.outcome->error) {
                std::fprintf(stderr, "\nfaults: run %zu failed: %s\n",
                             p.index, p.outcome->error_text.c_str());
            } else if (p.outcome) {
                const harness::Metrics &m = p.outcome->metrics;
                prog_reboots += m.stats.reboots;
                prog_restores += m.rt_ckpt_restores;
                if (m.stop == sim::RunResult::Stop::Livelock)
                    ++prog_livelocked;
            }
            std::fprintf(
                stderr,
                "\rfaults: %zu/%zu done, %zu error%s, reboots=%llu "
                "recoveries=%llu livelocked=%zu, %.1f runs/s%s",
                p.done, p.total, p.errors, p.errors == 1 ? "" : "s",
                static_cast<unsigned long long>(prog_reboots),
                static_cast<unsigned long long>(prog_restores),
                prog_livelocked, p.runs_per_sec,
                p.done == p.total ? "\n" : "");
            std::fflush(stderr);
        };
    }
    std::vector<harness::RunOutcome> outcomes =
        engine.runAll(specs, progress);

    for (std::size_t i = 0; i < cells.size(); ++i) {
        Cell &cell = cells[i];
        const harness::Metrics &clean =
            cleanOf(cell.wi, cell.si).metrics;
        if (outcomes[i].error) {
            cell.crashed = true;
            cell.m.fit_note = outcomes[i].error_text;
            cell.verdict = "crashed";
            continue;
        }
        cell.m = std::move(outcomes[i].metrics);
        const bool ckpt_on =
            schemes[cell.si] != ckpt::Scheme::None;
        if (cell.m.done) {
            bool state = cell.m.checksum == clean.checksum &&
                         cell.m.data_snapshot == clean.data_snapshot;
            if (!state) {
                cell.verdict = "diverged";
            } else if (cell.m.console == clean.console) {
                cell.verdict = "converged";
                cell.ok = true;
            } else if (ckpt_on) {
                cell.verdict = "degraded";
                cell.ok = true;
            } else {
                // Without checkpointing every boot restarts main, so a
                // console mismatch is real divergence.
                cell.verdict = "diverged";
            }
        } else {
            switch (cell.m.stop) {
              case sim::RunResult::Stop::Livelock:
                cell.verdict = "livelocked";
                break;
              case sim::RunResult::Stop::Exhausted:
                cell.verdict = "exhausted";
                break;
              default: cell.verdict = "timeout"; break;
            }
        }
    }

    // Forward progress per harvested joule: useful work is the
    // reference run's instruction count (re-executed spans between a
    // crash and its last checkpoint do not count), credited only to
    // runs that completed with correct state.
    auto progressPerJoule = [&](const Cell &cell) -> double {
        double joules = cell.m.harvested_pj * 1e-12;
        if (joules <= 0 || !cell.ok)
            return 0;
        return static_cast<double>(
                   cleanOf(cell.wi, cell.si)
                       .metrics.stats.instructions) /
               joules;
    };

    if (args.json) {
        support::json::Array refs;
        for (std::size_t wi = 0; wi < wls.size(); ++wi) {
            for (std::size_t si = 0; si < schemes.size(); ++si) {
                const harness::Metrics &m = cleanOf(wi, si).metrics;
                refs.push_back(support::json::Object{
                    {"workload", wls[wi]->name},
                    {"ckpt_scheme", ckpt::schemeName(schemes[si])},
                    {"cycles", m.stats.totalCycles()},
                    {"instructions", m.stats.instructions},
                    {"checksum", m.checksum},
                    {"ckpt_commits", m.rt_ckpt_commits},
                });
            }
        }
        support::json::Array runs;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const Cell &cell = cells[i];
            support::json::Object o{
                {"workload", wls[cell.wi]->name},
                {"ckpt_scheme", ckpt::schemeName(schemes[cell.si])},
                {"crashed", cell.crashed},
                {"converged", cell.ok},
                {"verdict", cell.verdict},
            };
            if (cell.trace != SIZE_MAX)
                o.emplace("trace", trace_names[cell.trace]);
            else
                o.emplace("period", cell.period);
            if (!harvest) {
                o.emplace("fault_count", args.fault_count);
                if (args.fault_seed)
                    o.emplace("fault_seed", args.fault_seed);
            }
            if (cell.crashed) {
                o.emplace("error", cell.m.fit_note);
            } else {
                if (harvest) {
                    o.emplace("harvested_pj", cell.m.harvested_pj);
                    o.emplace("wall_seconds", cell.m.wall_seconds);
                    double joules = cell.m.harvested_pj * 1e-12;
                    o.emplace("instr_per_joule",
                              joules > 0
                                  ? static_cast<double>(
                                        cell.m.stats.instructions) /
                                        joules
                                  : 0.0);
                    o.emplace("progress_per_joule",
                              progressPerJoule(cell));
                }
                auto report = harness::RunReport::make(
                    specs[i], cell.m);
                o.emplace("report", report.json());
            }
            runs.push_back(std::move(o));
        }
        support::json::Object root{
            {"schema", "swapram-fault-sweep/v2"},
            {"mode", harvest ? "harvest" : "periods"},
            {"system", harness::systemName(args.system)},
            {"placement", harness::placementName(args.placement)},
            {"recovery", !args.no_recovery},
            {"references", std::move(refs)},
            {"sweeps", std::move(runs)},
        };
        if (harvest) {
            support::json::Array tn;
            for (const std::string &n : trace_names)
                tn.push_back(n);
            root.emplace("traces", std::move(tn));
            root.emplace(
                "capacitor",
                support::json::Object{
                    {"capacity_pj", cap.capacity_pj},
                    {"power_on_pj", cap.power_on_pj},
                    {"brown_out_pj", cap.brown_out_pj},
                    {"leak_watts", cap.leak_watts}});
        }
        std::printf("%s\n", support::json::Value(std::move(root))
                                .dump(2)
                                .c_str());
    } else {
        std::printf(
            "system=%s placement=%s recovery=%s mode=%s%s\n",
            harness::systemName(args.system).c_str(),
            harness::placementName(args.placement).c_str(),
            args.no_recovery ? "off" : "on",
            harvest ? "harvest" : "periods",
            harvest ? ""
                    : support::cat(" faults/run=", args.fault_count)
                          .c_str());
        std::vector<std::string> headers{
            "workload", "scheme", harvest ? "trace" : "period",
            "reboots", "commits", "restores", "total_cyc"};
        if (harvest)
            headers.push_back("prog/J");
        headers.push_back("result");
        harness::Table table(headers);
        for (const Cell &cell : cells) {
            std::vector<std::string> row{
                wls[cell.wi]->name,
                ckpt::schemeName(schemes[cell.si]),
                cell.faultName(trace_names)};
            if (cell.crashed) {
                row.insert(row.end(), {"-", "-", "-", "-"});
                if (harvest)
                    row.push_back("-");
            } else {
                row.push_back(
                    harness::withCommas(cell.m.stats.reboots));
                row.push_back(
                    harness::withCommas(cell.m.rt_ckpt_commits));
                row.push_back(
                    harness::withCommas(cell.m.rt_ckpt_restores));
                row.push_back(
                    harness::withCommas(cell.m.stats.totalCycles()));
                if (harvest) {
                    row.push_back(support::cat(
                        support::fixed(progressPerJoule(cell) / 1e6,
                                       2),
                        "M"));
                }
            }
            row.push_back(cell.crashed ? "CRASH" : cell.verdict);
            table.addRow(row);
        }
        std::printf("%s", table.text().c_str());
    }

    bool any_bad = false;
    std::size_t livelocked = 0;
    for (const Cell &cell : cells) {
        if (cell.crashed) {
            // The table says CRASH; the captured error says why.
            std::fprintf(stderr, "faults: %s/%s/%s crashed: %s\n",
                         wls[cell.wi]->name.c_str(),
                         ckpt::schemeName(schemes[cell.si]).c_str(),
                         cell.faultName(trace_names).c_str(),
                         cell.m.fit_note.c_str());
        }
        if (cell.verdict == "livelocked")
            ++livelocked;
        if (!cell.ok)
            any_bad = true;
    }
    if (livelocked) {
        std::fprintf(stderr,
                     "faults: %zu run%s livelocked (no forward "
                     "progress across boots)\n",
                     livelocked, livelocked == 1 ? "" : "s");
    }
    return any_bad ? 1 : 0;
}

/**
 * Run once with metrics attached and render the address-space heatmap:
 * a 64-column ASCII heat strip over the 64 KiB address space (1 KiB
 * per column, log-scaled " .:-=+*#%@" ramp), per-region access/stall
 * totals, the hottest pages, and the FRAM stall-latency percentiles.
 * --csv dumps every 64-byte page for external plotting.
 */
int
cmdHeatmap(const Args &args)
{
    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);

    workloads::Workload scratch;
    scratch.name = args.file.empty() ? args.workload : args.file;
    scratch.display = scratch.name;
    scratch.source = source;
    if (wl)
        scratch.expected = wl->expected;

    harness::RunSpec spec;
    spec.workload = &scratch;
    spec.system = args.system;
    spec.placement = args.placement;
    spec.clock_hz = args.clock_hz;
    spec.swap = args.swap;
    spec.block = args.block;
    spec.sram_size = args.sram_size;
    spec.include_lib = false; // already appended for workloads
    spec.swap.boot_recovery = !args.no_recovery;
    spec.block.boot_recovery = !args.no_recovery;
    spec.superblock = !args.no_superblock;
    spec.threaded = !args.no_threaded && spec.threaded;
    spec.observe.metrics = true;

    harness::Metrics m = harness::runOne(spec);
    if (!m.fits) {
        std::printf("DNF: %s\n", m.fit_note.c_str());
        return 1;
    }
    const metrics::RunMetrics &rm = *m.run_metrics;
    using Heatmap = metrics::AddressHeatmap;
    const Heatmap &hm = rm.heatmap;

    auto region_name = [](std::uint16_t base) -> const char * {
        switch (sim::regionOf(base)) {
          case sim::RegionKind::Sram: return "sram";
          case sim::RegionKind::Fram: return "fram";
          case sim::RegionKind::Mmio: return "mmio";
          case sim::RegionKind::Unmapped: break;
        }
        return "unmapped";
    };

    if (args.json) {
        auto report = harness::RunReport::make(spec, std::move(m));
        std::printf("%s\n", report.json().dump(2).c_str());
        return 0;
    }

    std::printf("heatmap: workload=%s system=%s placement=%s\n",
                scratch.name.c_str(),
                harness::systemName(args.system).c_str(),
                harness::placementName(args.placement).c_str());

    // Heat strip: 64 columns x 1 KiB (16 pages each), log-scaled onto
    // the ramp so one scorching page doesn't flatten everything else.
    constexpr unsigned kCols = 64;
    constexpr unsigned kPagesPerCol = Heatmap::kPages / kCols;
    static const char kRamp[] = " .:-=+*#%@";
    constexpr int kLevels = sizeof(kRamp) - 2; ///< highest ramp index
    std::uint64_t col_heat[kCols] = {};
    std::uint64_t max_heat = 0;
    for (unsigned i = 0; i < Heatmap::kPages; ++i) {
        col_heat[i / kPagesPerCol] += hm.page(i).heat();
        max_heat = std::max(max_heat, col_heat[i / kPagesPerCol]);
    }
    std::string strip;
    for (unsigned c = 0; c < kCols; ++c) {
        int level = 0;
        if (col_heat[c] && max_heat > 1) {
            level = 1 + static_cast<int>(
                            (kLevels - 1) *
                            std::log(static_cast<double>(col_heat[c])) /
                            std::log(static_cast<double>(max_heat)));
            level = std::min(level, kLevels);
        } else if (col_heat[c]) {
            level = kLevels;
        }
        strip += kRamp[level];
    }
    std::printf("0x0000 |%s| 0xffff   (1 KiB/col, heat = "
                "accesses+stall_cycles)\n\n",
                strip.c_str());

    // Per-region totals (page base classifies the page).
    std::map<std::string, Heatmap::Page> regions;
    for (unsigned i = 0; i < Heatmap::kPages; ++i) {
        if (!hm.page(i).empty())
            regions[region_name(Heatmap::baseOf(i))].merge(hm.page(i));
    }
    harness::Table region_table(
        {"region", "fetch", "read", "write", "stall_cyc"});
    for (const auto &[name, p] : regions) {
        region_table.addRow({name, harness::withCommas(p.fetch),
                             harness::withCommas(p.read),
                             harness::withCommas(p.write),
                             harness::withCommas(p.stall_cycles)});
    }
    std::printf("%s\n", region_table.text().c_str());

    harness::Table top_table({"page", "region", "fetch", "read",
                              "write", "stall_cyc"});
    for (unsigned i : hm.topPages(16)) {
        const Heatmap::Page &p = hm.page(i);
        top_table.addRow(
            {support::hex16(Heatmap::baseOf(i)),
             region_name(Heatmap::baseOf(i)),
             harness::withCommas(p.fetch), harness::withCommas(p.read),
             harness::withCommas(p.write),
             harness::withCommas(p.stall_cycles)});
    }
    std::printf("%s", top_table.text().c_str());

    const metrics::Histogram &stalls = rm.fram_stall_cycles;
    std::printf("\nfram stalls: count=%s sum=%s p50=%llu p95=%llu "
                "p99=%llu max=%llu\n",
                harness::withCommas(stalls.count()).c_str(),
                harness::withCommas(stalls.sum()).c_str(),
                static_cast<unsigned long long>(stalls.p50()),
                static_cast<unsigned long long>(stalls.p95()),
                static_cast<unsigned long long>(stalls.p99()),
                static_cast<unsigned long long>(stalls.max()));
    const metrics::Histogram &handler = rm.miss_handler_cycles;
    if (handler.count()) {
        std::printf("miss handler: count=%s p50=%llu p95=%llu "
                    "max=%llu\n",
                    harness::withCommas(handler.count()).c_str(),
                    static_cast<unsigned long long>(handler.p50()),
                    static_cast<unsigned long long>(handler.p95()),
                    static_cast<unsigned long long>(handler.max()));
    }

    if (!args.heat_csv.empty()) {
        std::ofstream csv(args.heat_csv);
        if (!csv)
            support::fatal("cannot write '", args.heat_csv, "'");
        csv << "page,base,region,fetch,read,write,stall_cycles\n";
        for (unsigned i = 0; i < Heatmap::kPages; ++i) {
            const Heatmap::Page &p = hm.page(i);
            csv << i << ',' << Heatmap::baseOf(i) << ','
                << region_name(Heatmap::baseOf(i)) << ',' << p.fetch
                << ',' << p.read << ',' << p.write << ','
                << p.stall_cycles << '\n';
        }
        std::fprintf(stderr, "heatmap CSV written to %s (%u pages)\n",
                     args.heat_csv.c_str(), Heatmap::kPages);
    }
    return m.done ? 0 : 1;
}

int
cmdDisasm(const Args &args)
{
    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);
    auto plan = harness::makePlacement(args.placement);
    auto program = buildProgram(args, plan, source);
    auto assembled = masm::assemble(program, plan.layout);
    if (args.func.empty()) {
        auto all = masm::reimportAllFunctions(assembled);
        std::printf("%s", all.text().c_str());
        return 0;
    }
    std::unordered_map<std::uint16_t, std::string> names;
    for (const auto &f : assembled.functions)
        names[f.addr] = f.name;
    auto one = masm::reimportFunction(
        assembled.image, assembled.function(args.func), names);
    std::printf("%s", one.text().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args = parseArgs(argc, argv);
        if (args.command == "assemble")
            return cmdAssemble(args);
        if (args.command == "transform")
            return cmdTransform(args);
        if (args.command == "run" || args.command == "profile" ||
            args.command == "trace")
            return cmdRun(args);
        if (args.command == "heatmap")
            return cmdHeatmap(args);
        if (args.command == "faults")
            return cmdFaults(args);
        if (args.command == "sweep")
            return cmdSweep(args);
        if (args.command == "disasm")
            return cmdDisasm(args);
        usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
