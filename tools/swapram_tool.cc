/**
 * @file
 * Command-line front end for the SwapRAM toolchain — the equivalent of
 * the instrumentation/transformation scripts the paper releases (§4).
 *
 *   swapram_tool assemble  <file.s|--workload name> [options]
 *   swapram_tool transform <file.s|--workload name> [options]
 *   swapram_tool run       <file.s|--workload name> [options]
 *   swapram_tool disasm    <file.s|--workload name> --func NAME
 *
 * Common options:
 *   --workload NAME          use a built-in benchmark instead of a file
 *   --system baseline|swapram|block      (default baseline; run/transform)
 *   --placement unified|standard|sram-code|sram-all|split
 *   --clock MHZ              8 or 24 (default 24)
 *   --cache-base A --cache-end B         SwapRAM/block cache region
 *   --policy queue|stack     SwapRAM replacement structure
 *   --blacklist f1,f2        functions excluded from caching
 *   --listing                print the address-annotated listing
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "blockcache/builder.hh"
#include "harness/runner.hh"
#include "masm/parser.hh"
#include "masm/printer.hh"
#include "masm/reimport.hh"
#include "sim/machine.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "swapram/builder.hh"
#include "workloads/workload.hh"

using namespace swapram;

namespace {

struct Args {
    std::string command;
    std::string file;
    std::string workload;
    std::string func;
    harness::System system = harness::System::Baseline;
    harness::Placement placement = harness::Placement::Unified;
    std::uint32_t clock_hz = 24'000'000;
    cache::Options swap;
    bb::Options block;
    bool listing = false;
    std::uint64_t trace = 0; ///< instructions to trace during run
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: swapram_tool <assemble|transform|run|disasm>\n"
        "                    <file.s | --workload NAME> [options]\n"
        "options: --system baseline|swapram|block   --placement "
        "unified|standard|sram-code|sram-all|split\n"
        "         --clock 8|24   --cache-base N --cache-end N\n"
        "         --policy queue|stack   --blacklist f1,f2\n"
        "         --func NAME (disasm)   --listing   --trace N\n");
    std::exit(2);
}

Args
parseArgs(int argc, char **argv)
{
    if (argc < 3)
        usage();
    Args args;
    args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--workload") {
            args.workload = next();
        } else if (a == "--system") {
            std::string v = next();
            if (v == "baseline")
                args.system = harness::System::Baseline;
            else if (v == "swapram")
                args.system = harness::System::SwapRam;
            else if (v == "block")
                args.system = harness::System::BlockCache;
            else
                usage();
        } else if (a == "--placement") {
            std::string v = next();
            if (v == "unified")
                args.placement = harness::Placement::Unified;
            else if (v == "standard")
                args.placement = harness::Placement::Standard;
            else if (v == "sram-code")
                args.placement = harness::Placement::SramCode;
            else if (v == "sram-all")
                args.placement = harness::Placement::SramAll;
            else if (v == "split")
                args.placement = harness::Placement::Split;
            else
                usage();
        } else if (a == "--clock") {
            args.clock_hz = static_cast<std::uint32_t>(
                                std::stoul(next())) *
                            1'000'000u;
        } else if (a == "--cache-base") {
            args.swap.cache_base = static_cast<std::uint16_t>(
                std::stoul(next(), nullptr, 0));
            args.block.cache_base = args.swap.cache_base;
        } else if (a == "--cache-end") {
            args.swap.cache_end = static_cast<std::uint16_t>(
                std::stoul(next(), nullptr, 0));
            args.block.cache_end = args.swap.cache_end;
        } else if (a == "--policy") {
            args.swap.policy = next() == "stack"
                                   ? cache::Policy::Stack
                                   : cache::Policy::CircularQueue;
        } else if (a == "--blacklist") {
            args.swap.blacklist = support::split(next(), ',');
        } else if (a == "--func") {
            args.func = next();
        } else if (a == "--listing") {
            args.listing = true;
        } else if (a == "--trace") {
            args.trace = std::stoull(next());
        } else if (!a.empty() && a[0] != '-') {
            args.file = a;
        } else {
            usage();
        }
    }
    return args;
}

/** Load assembly source from a file or a built-in workload. */
std::string
loadSource(const Args &args, const workloads::Workload **wl_out)
{
    *wl_out = nullptr;
    if (!args.workload.empty()) {
        const auto *w = workloads::find(args.workload);
        if (!w)
            support::fatal("unknown workload '", args.workload, "'");
        *wl_out = w;
        return w->source + workloads::libSource();
    }
    if (args.file.empty())
        usage();
    std::ifstream in(args.file);
    if (!in)
        support::fatal("cannot open '", args.file, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** The full program: startup (if `main` is used as entry) + source. */
masm::Program
buildProgram(const Args &args, const harness::PlacementPlan &plan,
             const std::string &source)
{
    (void)args;
    if (source.find("__start") != std::string::npos)
        return masm::parse(source);
    return masm::parse(harness::startupSource(plan.stack_top) + source);
}

int
cmdAssemble(const Args &args)
{
    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);
    auto plan = harness::makePlacement(args.placement);
    auto program = buildProgram(args, plan, source);
    auto assembled = masm::assemble(program, plan.layout);
    std::printf("%s", masm::sectionSummary(assembled.image).c_str());
    std::printf("entry %s, %zu symbols, %zu functions\n",
                support::hex16(assembled.image.entry).c_str(),
                assembled.symbols.size(), assembled.functions.size());
    if (args.listing)
        std::printf("\n%s", masm::listing(assembled).c_str());
    return 0;
}

int
cmdTransform(const Args &args)
{
    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);
    auto plan = harness::makePlacement(args.placement);
    auto program = buildProgram(args, plan, source);
    if (args.system == harness::System::BlockCache) {
        auto info = bb::build(program, plan.layout, args.block);
        std::fprintf(stderr,
                     "block cache: %d blocks, %d stubs, app %u B, "
                     "runtime %u B, metadata %u B\n",
                     info.n_blocks, info.n_stubs, info.app_text_bytes,
                     info.runtime_bytes, info.metadata_bytes);
        std::printf("%s", args.listing
                              ? masm::listing(info.assembled).c_str()
                              : info.assembled.relaxed.text().c_str());
        return 0;
    }
    auto info = cache::build(program, plan.layout, args.swap);
    std::fprintf(stderr,
                 "swapram: %d functions, %d relocatable branches, "
                 "%d call sites; app %u B, runtime %u B, metadata %u B\n",
                 info.funcs.count(), info.reloc_count,
                 info.pass_stats.call_sites_instrumented,
                 info.app_text_bytes, info.runtime_text_bytes,
                 info.metadata_bytes);
    std::printf("%s", args.listing
                          ? masm::listing(info.assembled).c_str()
                          : info.assembled.relaxed.text().c_str());
    return 0;
}

int
cmdRun(const Args &args)
{
    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);

    workloads::Workload scratch;
    scratch.name = args.file.empty() ? args.workload : args.file;
    scratch.display = scratch.name;
    scratch.source = source;
    if (wl)
        scratch.expected = wl->expected;

    harness::RunSpec spec;
    spec.workload = &scratch;
    spec.system = args.system;
    spec.placement = args.placement;
    spec.clock_hz = args.clock_hz;
    spec.swap = args.swap;
    spec.block = args.block;
    spec.include_lib = false; // already appended for workloads
    if (args.trace) {
        spec.trace_limit = args.trace;
        spec.trace_hook = [](std::uint16_t pc, const std::string &text) {
            std::printf("%s  %s\n", support::hex16(pc).c_str(),
                        text.c_str());
        };
    }
    auto m = harness::runOne(spec);
    if (!m.fits) {
        std::printf("DNF: %s\n", m.fit_note.c_str());
        return 1;
    }
    if (!m.done) {
        std::printf("did not finish within the cycle budget\n");
        return 1;
    }
    if (!m.console.empty())
        std::printf("--- console ---\n%s\n--- end ---\n",
                    m.console.c_str());
    std::printf("instructions  %llu\n",
                static_cast<unsigned long long>(m.stats.instructions));
    std::printf("cycles        %llu (base %llu + stalls %llu)\n",
                static_cast<unsigned long long>(m.stats.totalCycles()),
                static_cast<unsigned long long>(m.stats.base_cycles),
                static_cast<unsigned long long>(m.stats.stall_cycles));
    std::printf("fram accesses %llu (cache hits %llu, misses %llu)\n",
                static_cast<unsigned long long>(m.stats.framAccesses()),
                static_cast<unsigned long long>(m.stats.fram_cache_hits),
                static_cast<unsigned long long>(
                    m.stats.fram_cache_misses));
    std::printf("runtime       %.3f ms @ %u MHz\n", m.seconds * 1e3,
                args.clock_hz / 1'000'000);
    std::printf("energy        %.2f uJ\n", m.energy_pj / 1e6);
    for (int o = 0; o < sim::kNumOwners; ++o) {
        std::printf("instr[%s] %llu\n",
                    sim::ownerName(static_cast<sim::CodeOwner>(o))
                        .c_str(),
                    static_cast<unsigned long long>(
                        m.stats.instr_by_owner[o]));
    }
    std::printf("checksum      0x%04X%s\n", m.checksum,
                wl ? (m.checksum == wl->expected ? " (golden ok)"
                                                 : " (GOLDEN MISMATCH)")
                   : "");
    return wl && m.checksum != wl->expected ? 1 : 0;
}

int
cmdDisasm(const Args &args)
{
    const workloads::Workload *wl = nullptr;
    std::string source = loadSource(args, &wl);
    auto plan = harness::makePlacement(args.placement);
    auto program = buildProgram(args, plan, source);
    auto assembled = masm::assemble(program, plan.layout);
    if (args.func.empty()) {
        auto all = masm::reimportAllFunctions(assembled);
        std::printf("%s", all.text().c_str());
        return 0;
    }
    std::unordered_map<std::uint16_t, std::string> names;
    for (const auto &f : assembled.functions)
        names[f.addr] = f.name;
    auto one = masm::reimportFunction(
        assembled.image, assembled.function(args.func), names);
    std::printf("%s", one.text().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args = parseArgs(argc, argv);
        if (args.command == "assemble")
            return cmdAssemble(args);
        if (args.command == "transform")
            return cmdTransform(args);
        if (args.command == "run")
            return cmdRun(args);
        if (args.command == "disasm")
            return cmdDisasm(args);
        usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
