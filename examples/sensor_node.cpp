/**
 * @file
 * Domain example: a duty-cycled sensing node — the paper's motivating
 * deployment (§1). The firmware samples a sensor, frames the readings,
 * computes a CRC, and "transmits" the frame over the console UART.
 * Everything (code, data, stack) lives in FRAM so the node can power
 * down SRAM while hibernating; SwapRAM removes the resulting
 * common-case execution penalty.
 *
 * The example builds the firmware from assembly through the public
 * API, runs it under the baseline and SwapRAM, verifies both produce
 * the identical frame stream, and translates the energy difference
 * into battery-life terms.
 */

#include <cstdio>

#include "harness/runner.hh"
#include "workloads/workload.hh"

using namespace swapram;

namespace {

/** Firmware: 16 wake-ups, each sampling 8 readings, CRC-framing them,
 *  and emitting the frame bytes on the UART. */
const char *kFirmware = R"(
        .text

; sample: advance the simulated sensor (a noisy ramp) and return R12.
        .func sample
        MOV &sn_state, R12
        RLA R12
        ADC R12
        RLA R12
        ADC R12
        RLA R12
        ADC R12
        ADD #0x6D2B, R12
        MOV R12, &sn_state
        AND #0x03FF, R12        ; 10-bit ADC
        RET
        .endfunc

; frame_crc: table-less CRC-16 over the 16-byte frame buffer.
        .func frame_crc
        PUSH R10
        MOV #sn_frame, R15
        MOV #16, R10
        MOV #0xFFFF, R12
fc_byte:
        TST R10
        JZ fc_done
        MOV.B @R15+, R13
        SWPB R13
        XOR R13, R12
        MOV #8, R14
fc_bit:
        RLA R12
        JNC fc_skip
        XOR #0x1021, R12
fc_skip:
        DEC R14
        JNZ fc_bit
        DEC R10
        JMP fc_byte
fc_done:
        POP R10
        RET
        .endfunc

; transmit: write the frame + CRC to the UART.
        .func transmit
        PUSH R10
        MOV #sn_frame, R15
        MOV #16, R10
tx_loop:
        MOV.B @R15+, R14
        MOV.B R14, &__CONSOLE
        DEC R10
        JNZ tx_loop
        MOV &sn_crc, R14
        MOV.B R14, &__CONSOLE
        SWPB R14
        MOV.B R14, &__CONSOLE
        POP R10
        RET
        .endfunc

; wakeup: one duty cycle — sample 8 readings into the frame, CRC, send.
        .func wakeup
        PUSH R10
        PUSH R9
        CLR R9
wk_fill:
        CALL #sample
        MOV R12, R14
        MOV #sn_frame, R15
        ADD R9, R15
        MOV.B R14, 0(R15)
        SWPB R14
        MOV.B R14, 1(R15)
        INCD R9
        CMP #16, R9
        JNE wk_fill
        CALL #frame_crc
        MOV R12, &sn_crc
        CALL #transmit
        ; accumulate a checksum of all CRCs
        MOV &sn_crc, R14
        XOR R14, &bench_result
        POP R9
        POP R10
        RET
        .endfunc

        .func main
        PUSH R10
        MOV #0x1357, R15
        MOV R15, &sn_state
        MOV #64, R10            ; wake-ups per run
mn_loop:
        CALL #wakeup
        DEC R10
        JNZ mn_loop
        MOV &bench_result, R12
        POP R10
        RET
        .endfunc

        .data
        .align 2
sn_state: .word 0
sn_crc:   .word 0
sn_frame: .space 16
bench_result: .word 0
)";

} // namespace

int
main()
{
    workloads::Workload fw;
    fw.name = "sensor-node";
    fw.display = "SENSOR";
    fw.source = kFirmware;

    std::printf("Sensor-node firmware under unified FRAM memory "
                "(code+data+stack in NVRAM)\n\n");

    harness::RunSpec spec;
    spec.workload = &fw;
    spec.include_lib = false;
    spec.system = harness::System::Baseline;
    auto base = harness::runOne(spec);
    spec.system = harness::System::SwapRam;
    auto swap = harness::runOne(spec);

    if (!base.done || !swap.done) {
        std::fprintf(stderr, "firmware did not finish\n");
        return 1;
    }
    std::printf("UART frames: %zu bytes per run; identical stream and "
                "memory state under SwapRAM: %s\n",
                base.console.size(),
                base.console == swap.console &&
                        base.data_snapshot == swap.data_snapshot
                    ? "yes"
                    : "NO (bug!)");
    std::printf("%-10s %12s %12s %10s\n", "system", "cycles",
                "runtime(ms)", "uJ/run");
    auto row = [](const char *name, const harness::Metrics &m) {
        std::printf("%-10s %12llu %12.3f %10.2f\n", name,
                    static_cast<unsigned long long>(
                        m.stats.totalCycles()),
                    m.seconds * 1e3, m.energy_pj / 1e6);
    };
    row("baseline", base);
    row("swapram", swap);

    // Battery-life framing: a 220 mAh coin cell at 3 V is ~2376 J;
    // assume the node wakes once a minute and sleeps at ~0 cost.
    double joules = 2376.0;
    double base_runs = joules / (base.energy_pj * 1e-12);
    double swap_runs = joules / (swap.energy_pj * 1e-12);
    std::printf("\nCR2032-style budget at one wake-up per minute:\n"
                "  baseline: %.1f years of wake-ups\n"
                "  swapram : %.1f years of wake-ups (%.0f%% longer)\n",
                base_runs / (60.0 * 24 * 365),
                swap_runs / (60.0 * 24 * 365),
                (swap_runs / base_runs - 1.0) * 100.0);
    return 0;
}
