/**
 * @file
 * Domain example: a reactive node with a hard-real-time tick ISR.
 *
 * The paper's blacklist interface (§3.1) exists for "functions with
 * strict timing requirements": an interrupt service routine must run
 * with deterministic latency, so it is pinned to FRAM (never cached,
 * never relocated) while the foreground signal-processing loop still
 * executes from SRAM under SwapRAM.
 *
 * The example runs the firmware with a periodic timer, compares tick
 * counts and foreground results against an interrupt-free run, and
 * shows the owner breakdown: ISR instructions from FRAM, foreground
 * from SRAM.
 */

#include <cstdio>

#include "harness/runner.hh"
#include "masm/parser.hh"
#include "sim/machine.hh"
#include "support/platform.hh"
#include "swapram/builder.hh"
#include "workloads/workload.hh"

using namespace swapram;

namespace {

const char *kFirmware = R"(
        .text
        .func main
        PUSH R10
        PUSH R9
        MOV #tick_isr, &0xFFF0
        EINT
        CLR R9
        MOV #400, R10
fg_loop:
        MOV R9, R12
        CALL #filter_step
        MOV R12, R9
        DEC R10
        JNZ fg_loop
        DINT
        MOV R9, R12
        MOV R12, &bench_result
        POP R9
        POP R10
        RET
        .endfunc

; A small IIR-ish filter step: y += (x - y) >> 2, plus scrambling.
        .func filter_step
        MOV &sensor_latest, R13
        SUB R12, R13
        RRA R13
        RRA R13
        ADD R13, R12
        XOR #0x0041, R12
        RET
        .endfunc

; Hard-real-time tick: samples the "sensor" and counts. Blacklisted:
; always runs from FRAM with fixed latency.
        .func tick_isr
        PUSH R15
        MOV &sensor_raw, R15
        RLA R15
        ADC R15
        ADD #0x3D, R15
        MOV R15, &sensor_raw
        AND #0x03FF, R15
        MOV R15, &sensor_latest
        ADD #1, &tick_count
        POP R15
        RETI
        .endfunc

        .data
        .align 2
sensor_raw:    .word 0x1234
sensor_latest: .word 0
tick_count:    .word 0
bench_result:  .word 0
)";

} // namespace

int
main()
{
    std::printf("Reactive node: hard-real-time tick ISR (blacklisted) "
                "+ SwapRAM foreground\n\n");

    auto plan = harness::makePlacement(harness::Placement::Unified);
    std::string source =
        harness::startupSource(plan.stack_top) + kFirmware;
    cache::Options opt;
    opt.blacklist = {"tick_isr"};
    auto info =
        cache::build(masm::parse(source), plan.layout, opt);

    for (std::uint64_t period : {0ull, 400ull}) {
        sim::MachineConfig cfg;
        cfg.timer_period_cycles = period;
        sim::Machine machine(cfg);
        machine.load(info.assembled.image, plan.stack_top);
        machine.addOwnerRange(info.handler_addr, info.handler_end,
                              sim::CodeOwner::Handler);
        machine.addOwnerRange(info.memcpy_addr, info.memcpy_end,
                              sim::CodeOwner::Memcpy);
        auto result = machine.run();
        if (!result.done) {
            std::fprintf(stderr, "firmware did not finish\n");
            return 1;
        }
        auto ticks =
            machine.peek16(info.assembled.symbol("tick_count"));
        const auto &st = machine.stats();
        std::printf("timer %s: %u ticks serviced, %llu cycles, "
                    "result 0x%04X\n",
                    period ? "every 400 cycles" : "off        ", ticks,
                    static_cast<unsigned long long>(st.totalCycles()),
                    machine.peek16(
                        info.assembled.symbol("bench_result")));
        std::printf("  instr: app-sram %llu, app-fram %llu (ISR + "
                    "startup), handler %llu, memcpy %llu\n",
                    static_cast<unsigned long long>(
                        st.instr_by_owner[int(sim::CodeOwner::AppSram)]),
                    static_cast<unsigned long long>(
                        st.instr_by_owner[int(sim::CodeOwner::AppFram)]),
                    static_cast<unsigned long long>(
                        st.instr_by_owner[int(sim::CodeOwner::Handler)]),
                    static_cast<unsigned long long>(
                        st.instr_by_owner[int(
                            sim::CodeOwner::Memcpy)]));
    }
    std::printf(
        "\nThe ISR is pinned to FRAM by the blacklist (deterministic "
        "entry latency:\n6-cycle vectoring + fixed FRAM timing), while "
        "the filter loop runs cached\nfrom SRAM — the use case §3.1's "
        "blacklist interface exists for.\n");
    return 0;
}
