/**
 * @file
 * Quickstart: run one benchmark under the baseline, SwapRAM, and the
 * block-cache port, and print the headline metrics side by side.
 *
 * Usage: quickstart [workload]   (default: crc)
 */

#include <cstdio>
#include <string>

#include "harness/runner.hh"
#include "workloads/workload.hh"

using namespace swapram;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "crc";
    const workloads::Workload *w = workloads::find(name);
    if (!w) {
        std::fprintf(stderr, "unknown workload '%s'; try:", name.c_str());
        for (const auto &each : workloads::all())
            std::fprintf(stderr, " %s", each.name.c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }

    std::printf("workload: %s — %s (expected checksum 0x%04X)\n\n",
                w->display.c_str(), w->description.c_str(), w->expected);
    std::printf("%-10s %10s %12s %12s %12s %10s %8s\n", "system",
                "fram-acc", "base-cycles", "stall-cyc", "total-cyc",
                "energy", "checksum");

    for (auto system : {harness::System::Baseline,
                        harness::System::SwapRam,
                        harness::System::BlockCache}) {
        auto m = harness::run(*w, system);
        if (!m.fits) {
            std::printf("%-10s DNF (%s)\n",
                        harness::systemName(system).c_str(),
                        m.fit_note.c_str());
            continue;
        }
        std::printf("%-10s %10llu %12llu %12llu %12llu %10.0f   0x%04X%s\n",
                    harness::systemName(system).c_str(),
                    static_cast<unsigned long long>(
                        m.stats.framAccesses()),
                    static_cast<unsigned long long>(m.stats.base_cycles),
                    static_cast<unsigned long long>(m.stats.stall_cycles),
                    static_cast<unsigned long long>(
                        m.stats.totalCycles()),
                    m.energy_pj / 1e6,
                    m.checksum,
                    m.checksum == w->expected ? "" : "  MISMATCH!");
    }
    std::printf("\n(energy in microjoules, 24 MHz, unified-memory "
                "placement)\n");
    return 0;
}
