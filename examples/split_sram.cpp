/**
 * @file
 * Domain example: the §5.5 "over-provisioned SRAM" scenario. A crypto
 * gateway runs AES on a device whose SRAM is larger than its program
 * memory needs; the leftover SRAM becomes a SwapRAM code cache
 * (Placement::Split). The example shows where each section lands, how
 * the cache region is carved, and the win over the conventional
 * FRAM-code / SRAM-data configuration.
 */

#include <cstdio>

#include "harness/runner.hh"
#include "support/platform.hh"
#include "workloads/workload.hh"

using namespace swapram;

int
main()
{
    const auto *aes = workloads::find("rsa");
    std::printf("Signing gateway: RSA modexp on a device with "
                "over-provisioned SRAM\n\n");

    for (auto placement :
         {harness::Placement::Standard, harness::Placement::Split}) {
        harness::RunSpec spec;
        spec.workload = aes;
        spec.placement = placement;
        spec.system = placement == harness::Placement::Split
                          ? harness::System::SwapRam
                          : harness::System::Baseline;
        auto m = harness::runOne(spec);
        if (!m.fits || !m.done || m.checksum != aes->expected) {
            std::fprintf(stderr, "run failed: %s\n", m.fit_note.c_str());
            return 1;
        }
        std::printf("--- %s (%s) ---\n",
                    harness::placementName(placement).c_str(),
                    harness::systemName(spec.system).c_str());
        std::printf("  data+bss: %u B in SRAM, stack reserve %u B\n",
                    m.data_bytes + m.bss_bytes, aes->stack_bytes);
        if (placement == harness::Placement::Split) {
            std::uint32_t used = m.data_bytes + m.bss_bytes +
                                 aes->stack_bytes;
            std::printf("  code cache: ~%u B of leftover SRAM\n",
                        platform::kSramSize - used);
        }
        std::printf("  cycles %llu   energy %.2f uJ   checksum 0x%04X"
                    "\n\n",
                    static_cast<unsigned long long>(
                        m.stats.totalCycles()),
                    m.energy_pj / 1e6, m.checksum);
    }

    auto std_cfg = harness::run(*aes, harness::System::Baseline,
                                harness::Placement::Standard);
    auto split = harness::run(*aes, harness::System::SwapRam,
                              harness::Placement::Split);
    std::printf("Split-SRAM SwapRAM vs standard configuration: "
                "%.2fx speed, %+.1f%% energy\n",
                static_cast<double>(std_cfg.stats.totalCycles()) /
                    static_cast<double>(split.stats.totalCycles()),
                (split.energy_pj / std_cfg.energy_pj - 1.0) * 100.0);
    std::printf("(Paper §5.5: split-SRAM SwapRAM gains 22%% speed and "
                "-26%% energy on average.)\n");
    return 0;
}
