/**
 * @file
 * Deployment-exploration tool (the paper open-sources SwapRAM "to
 * enable developers to explore SwapRAM for deployed systems"): sweep
 * cache sizes, compare replacement policies, and try a blacklist for
 * any workload from the registry.
 *
 * Usage: explorer [workload] [--policy stack|queue]
 *                 [--blacklist f1,f2,...]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "support/strings.hh"
#include "workloads/workload.hh"

using namespace swapram;

int
main(int argc, char **argv)
{
    std::string name = "fft";
    cache::Policy policy = cache::Policy::CircularQueue;
    std::vector<std::string> blacklist;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--policy" && i + 1 < argc) {
            policy = std::string(argv[++i]) == "stack"
                         ? cache::Policy::Stack
                         : cache::Policy::CircularQueue;
        } else if (arg == "--blacklist" && i + 1 < argc) {
            blacklist = support::split(argv[++i], ',');
        } else {
            name = arg;
        }
    }
    const auto *w = workloads::find(name);
    if (!w) {
        std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
        return 1;
    }

    auto base = harness::run(*w, harness::System::Baseline);
    std::printf("%s baseline: %llu cycles, %.2f uJ\n\n",
                w->display.c_str(),
                static_cast<unsigned long long>(
                    base.stats.totalCycles()),
                base.energy_pj / 1e6);

    harness::Table table({"cache B", "cycles", "speedup", "energy uJ",
                          "FRAM accesses", "SRAM instr %"});
    for (std::uint16_t size :
         {128, 256, 512, 1024, 1536, 2048, 3072, 4096}) {
        harness::RunSpec spec;
        spec.workload = w;
        spec.system = harness::System::SwapRam;
        spec.swap.cache_base = 0x2000;
        spec.swap.cache_end = static_cast<std::uint16_t>(0x2000 + size);
        spec.swap.policy = policy;
        spec.swap.blacklist = blacklist;
        auto m = harness::runOne(spec);
        if (!m.done || m.checksum != w->expected) {
            std::fprintf(stderr, "run failed at cache %u\n", size);
            return 1;
        }
        double sram_pct =
            100.0 *
            static_cast<double>(
                m.stats.instr_by_owner[int(sim::CodeOwner::AppSram)]) /
            static_cast<double>(m.stats.instructions);
        table.addRow(
            {std::to_string(size),
             harness::withCommas(m.stats.totalCycles()),
             support::fixed(static_cast<double>(
                                base.stats.totalCycles()) /
                                static_cast<double>(
                                    m.stats.totalCycles()),
                            2),
             support::fixed(m.energy_pj / 1e6, 2),
             harness::withCommas(m.stats.framAccesses()),
             support::fixed(sram_pct, 1)});
    }
    std::printf("%s", table.text().c_str());
    std::printf("\npolicy: %s%s\n",
                policy == cache::Policy::Stack ? "stack"
                                               : "circular queue",
                blacklist.empty() ? "" : ", with blacklist");
    return 0;
}
