#include "blockcache/pass.hh"

#include <unordered_map>

#include "blockcache/blocks.hh"
#include "masm/assembler.hh"
#include "support/logging.hh"

namespace swapram::bb {

using masm::AsmOperand;
using masm::Directive;
using masm::Expr;
using masm::OperKind;
using masm::Program;
using masm::Statement;
using support::fatal;

namespace {

/** A block during formation: statement indices plus the terminator. */
struct FormBlock {
    std::vector<std::string> labels; ///< original labels at block start
    std::vector<size_t> body;        ///< indices of plain statements
    Cfi term;                        ///< None kind == fallthrough
    size_t term_stmt = SIZE_MAX;
};

struct FuncBlocks {
    std::string name;
    size_t func_stmt = 0;
    size_t endfunc_stmt = 0;
    std::vector<FormBlock> blocks;
};

} // namespace

TransformResult
transform(const Program &program, const Options &options)
{
    const std::uint16_t slot = options.slot_bytes;
    if (slot < 16)
        fatal("block cache: slot size too small");

    // ---- Pass 1: form blocks ----
    std::vector<FuncBlocks> funcs;
    for (const masm::FuncRange &fr : masm::findFunctions(program)) {
        FuncBlocks fb;
        fb.name = fr.name;
        fb.func_stmt = fr.func_stmt;
        fb.endfunc_stmt = fr.endfunc_stmt;

        FormBlock cur;
        std::uint16_t cur_size = 0;
        bool cur_used = false;
        auto close = [&](const Cfi &term, size_t term_stmt) {
            cur.term = term;
            cur.term_stmt = term_stmt;
            fb.blocks.push_back(std::move(cur));
            cur = FormBlock{};
            cur_size = 0;
            cur_used = false;
        };
        auto atom_cost = [&](size_t stmt_idx) {
            const Statement &a = program.stmts[stmt_idx];
            return transformedCost(classifyInstr(a.instr), a.instr);
        };
        // Split before @p incoming. The runtime destroys flags, so the
        // new block must not start with a flag consumer: trailing
        // producer atoms are carried over into the new block.
        auto split_before = [&](const Statement &incoming) {
            std::vector<size_t> carry;
            const Statement *boundary = &incoming;
            while (!cur.body.empty() && consumesFlags(boundary->instr)) {
                carry.insert(carry.begin(), cur.body.back());
                cur.body.pop_back();
                boundary = &program.stmts[carry.front()];
            }
            if (cur.body.empty() && consumesFlags(boundary->instr))
                fatal("block cache: cannot split flag-dependent "
                      "sequence in ", fb.name);
            close(Cfi{}, SIZE_MAX);
            for (size_t idx : carry) {
                cur.body.push_back(idx);
                cur_size = static_cast<std::uint16_t>(cur_size +
                                                      atom_cost(idx));
                cur_used = true;
            }
        };

        for (size_t i = fr.func_stmt + 1; i < fr.endfunc_stmt; ++i) {
            const Statement &s = program.stmts[i];
            switch (s.kind) {
              case Statement::Kind::Label:
                if (cur_used)
                    close(Cfi{}, SIZE_MAX); // fallthrough into the label
                cur.labels.push_back(s.label);
                break;
              case Statement::Kind::Instr: {
                Cfi cfi = classifyInstr(s.instr);
                std::uint16_t cost = transformedCost(cfi, s.instr);
                if (cfi.kind == CfiKind::None) {
                    if (cur_size + cost + 4 > slot) {
                        if (!cur_used)
                            fatal("block cache: slot too small for one "
                                  "instruction in ", fb.name);
                        split_before(s);
                    }
                    cur.body.push_back(i);
                    cur_size = static_cast<std::uint16_t>(cur_size + cost);
                    cur_used = true;
                } else {
                    if (cur_size + cost > slot) {
                        if (!cur_used)
                            fatal("block cache: slot too small for CFI in ",
                                  fb.name);
                        split_before(s);
                    }
                    cur_used = true;
                    close(cfi, i);
                }
                break;
              }
              case Statement::Kind::Directive:
                fatal("block cache: directive inside .func ", fb.name,
                      " (line ", s.line, ") is unsupported");
            }
        }
        // Verify the size invariant held through carried splits, and
        // that no block *starts* with a flag consumer: every block is
        // entered through the runtime, which destroys flags (e.g. two
        // consecutive conditional jumps off one compare are illegal).
        for (const FormBlock &blk : fb.blocks) {
            std::uint32_t total = 4; // worst-case fallthrough terminator
            for (size_t idx : blk.body)
                total += atom_cost(idx);
            if (blk.term_stmt != SIZE_MAX)
                total += atom_cost(blk.term_stmt) - 4;
            if (total > slot)
                fatal("block cache: block exceeds slot in ", fb.name);
            size_t first = blk.body.empty() ? blk.term_stmt
                                            : blk.body.front();
            if (first != SIZE_MAX &&
                consumesFlags(program.stmts[first].instr)) {
                fatal("block cache: block in ", fb.name, " (line ",
                      program.stmts[first].line,
                      ") begins with a flag-consuming instruction; "
                      "flags do not survive block boundaries");
            }
        }
        if (cur_used || !cur.labels.empty())
            fatal("block cache: function ", fb.name,
                  " falls off its end without a terminator");
        if (fb.blocks.empty())
            fatal("block cache: empty function ", fb.name);
        funcs.push_back(std::move(fb));
    }

    // Assign global block ids and map labels (and function names) to
    // the block that starts with them.
    std::unordered_map<std::string, int> label_block;
    std::vector<std::pair<int, int>> gid_to_fj; // gid -> (func, j)
    {
        int gid = 0;
        for (size_t f = 0; f < funcs.size(); ++f) {
            for (size_t j = 0; j < funcs[f].blocks.size(); ++j) {
                if (j == 0)
                    label_block[funcs[f].name] = gid;
                for (const std::string &l : funcs[f].blocks[j].labels)
                    label_block[l] = gid;
                gid_to_fj.push_back(
                    {static_cast<int>(f), static_cast<int>(j)});
                ++gid;
            }
        }
    }

    auto block_of = [&](const Expr &target, int line) {
        if (!target.isSymbol())
            fatal("block cache: non-symbol branch target at line ", line);
        auto it = label_block.find(target.symbol());
        if (it == label_block.end())
            fatal("block cache: branch target '", target.symbol(),
                  "' is not a block (line ", line, ")");
        return it->second;
    };

    // ---- Pass 2: emit ----
    TransformResult out;
    auto stub = [&](int target_gid) {
        out.stub_target.push_back(target_gid);
        return static_cast<int>(out.stub_target.size()) - 1;
    };
    auto call_stub_stmt = [&](int target_gid, int line) {
        int k = stub(target_gid);
        return Statement::makeInstr(
            masm::callImm(Expr::sym("__bb_e" + std::to_string(k))), line);
    };
    auto absolutized = [&](const Statement &s) {
        Statement copy = s;
        auto fix = [](std::optional<AsmOperand> &op) {
            if (op && op->kind == OperKind::SymbolicMem) {
                op->kind = OperKind::Absolute;
                op->reg = isa::Reg::SR;
            }
        };
        fix(copy.instr.src);
        fix(copy.instr.dst);
        return copy;
    };

    int skip_counter = 0;
    size_t next_func = 0;
    size_t i = 0;
    int gid_base = 0;
    while (i < program.stmts.size()) {
        const Statement &s = program.stmts[i];
        if (next_func < funcs.size() && i == funcs[next_func].func_stmt) {
            const FuncBlocks &fb = funcs[next_func];
            out.program.stmts.push_back(s); // the .func directive
            const int nblocks = static_cast<int>(fb.blocks.size());
            for (int j = 0; j < nblocks; ++j) {
                const FormBlock &blk = fb.blocks[j];
                int gid = gid_base + j;
                std::string blabel = "__bbk_" + std::to_string(gid);
                out.program.stmts.push_back(Statement::makeLabel(blabel));
                for (const std::string &l : blk.labels)
                    out.program.stmts.push_back(Statement::makeLabel(l));
                for (size_t bi : blk.body)
                    out.program.stmts.push_back(
                        absolutized(program.stmts[bi]));

                const int line =
                    blk.term_stmt == SIZE_MAX
                        ? 0
                        : program.stmts[blk.term_stmt].line;
                auto require_next = [&]() {
                    if (j + 1 >= nblocks)
                        fatal("block cache: no successor block in ",
                              fb.name);
                    return gid + 1;
                };
                switch (blk.term.kind) {
                  case CfiKind::None: // fallthrough
                    out.program.stmts.push_back(
                        call_stub_stmt(require_next(), line));
                    break;
                  case CfiKind::Jump:
                    out.program.stmts.push_back(call_stub_stmt(
                        block_of(*blk.term.target, line), line));
                    break;
                  case CfiKind::CondJump: {
                    ++out.cond_sites;
                    int taken = block_of(*blk.term.target, line);
                    int fall = require_next();
                    if (auto inv = invertCond(blk.term.op)) {
                        std::string skip =
                            "__bbs_" + std::to_string(skip_counter++);
                        out.program.stmts.push_back(Statement::makeInstr(
                            masm::jump(*inv, Expr::sym(skip)), line));
                        out.program.stmts.push_back(
                            call_stub_stmt(taken, line));
                        out.program.stmts.push_back(
                            Statement::makeLabel(skip));
                        out.program.stmts.push_back(
                            call_stub_stmt(fall, line));
                    } else { // JN
                        std::string take =
                            "__bbs_" + std::to_string(skip_counter++);
                        out.program.stmts.push_back(Statement::makeInstr(
                            masm::jump(isa::Op::Jn, Expr::sym(take)),
                            line));
                        out.program.stmts.push_back(
                            call_stub_stmt(fall, line));
                        out.program.stmts.push_back(
                            Statement::makeLabel(take));
                        out.program.stmts.push_back(
                            call_stub_stmt(taken, line));
                    }
                    break;
                  }
                  case CfiKind::Call: {
                    // A call whose target is not a transformed block
                    // (e.g. the startup stub calling the runtime's own
                    // __bb_recover) stays a plain CALL: the callee
                    // returns with a hardware RET to the next word,
                    // which is this block's fallthrough re-entry into
                    // the runtime. Cost parity with the internal form
                    // holds (CALL 4 + stub CALL 4 = PUSH 4 + CALL 4).
                    if (blk.term.target->isSymbol() &&
                        !label_block.count(blk.term.target->symbol())) {
                        out.program.stmts.push_back(
                            absolutized(program.stmts[blk.term_stmt]));
                        out.program.stmts.push_back(
                            call_stub_stmt(require_next(), line));
                        break;
                    }
                    ++out.call_sites;
                    int vret_gid = require_next();
                    out.program.stmts.push_back(Statement::makeInstr(
                        [&] {
                            masm::AsmInstr push;
                            push.op = isa::Op::Push;
                            push.dst = AsmOperand::imm(Expr::sym(
                                "__bbk_" + std::to_string(vret_gid)));
                            return push;
                        }(),
                        line));
                    out.program.stmts.push_back(call_stub_stmt(
                        block_of(*blk.term.target, line), line));
                    break;
                  }
                  case CfiKind::Ret:
                    ++out.ret_sites;
                    out.program.stmts.push_back(Statement::makeInstr(
                        masm::brImm(Expr::sym("__bb_ret")), line));
                    break;
                  case CfiKind::Unsupported:
                    fatal("block cache: unsupported CFI in ", fb.name);
                }

                BlockInfo info;
                info.label = blabel;
                info.size_expr =
                    j + 1 < nblocks
                        ? "__bbk_" + std::to_string(gid + 1) + " - " +
                              blabel
                        : "__end_" + fb.name + " - " + blabel;
                out.blocks.push_back(std::move(info));
            }
            gid_base += nblocks;
            out.program.stmts.push_back(
                program.stmts[fb.endfunc_stmt]); // .endfunc
            i = fb.endfunc_stmt + 1;
            ++next_func;
            continue;
        }
        out.program.stmts.push_back(s);
        ++i;
    }

    return out;
}

} // namespace swapram::bb
