#include "blockcache/builder.hh"

#include "blockcache/pass.hh"
#include "blockcache/runtime_gen.hh"
#include "masm/parser.hh"
#include "support/logging.hh"

namespace swapram::bb {

BuildInfo
build(const masm::Program &app, const masm::LayoutSpec &layout,
      const Options &options)
{
    BuildInfo info;

    TransformResult transformed = transform(app, options);
    info.n_blocks = static_cast<int>(transformed.blocks.size());
    info.n_stubs = static_cast<int>(transformed.stub_target.size());

    masm::Program runtime =
        masm::parse(generateRuntimeAsm(transformed, options));
    masm::Program final_program = transformed.program;
    final_program.append(runtime);

    info.assembled = masm::assemble(final_program, layout);

    const auto &miss = info.assembled.function("__bb_miss");
    const auto &ret = info.assembled.function("__bb_ret");
    const auto &stubs = info.assembled.function("__bb_stubs");

    // The runtime (miss + ret + stubs) is contiguous; attribute all of
    // it to Handler, with the copy loop carved out as Memcpy.
    info.runtime_addr = miss.addr;
    info.runtime_end =
        static_cast<std::uint16_t>(stubs.addr + stubs.size);
    info.memcpy_addr = info.assembled.symbol("__bb_copy_loop");
    info.memcpy_end = info.assembled.symbol("__bb_chain");
    const auto &recover = info.assembled.function("__bb_recover");
    info.recover_addr = recover.addr;
    info.recover_end =
        static_cast<std::uint16_t>(recover.addr + recover.size);

    info.runtime_bytes = miss.size + ret.size + recover.size;
    std::uint32_t stub_bytes = stubs.size;
    const int e = hashEntries(options);
    std::uint32_t table_bytes =
        10 + 10 + 2 // cells + save area + boot flag
        + 2 * 2 * static_cast<std::uint32_t>(info.n_blocks) // baddr+bsize
        + 2 * 2 * static_cast<std::uint32_t>(e);            // hash
    info.metadata_bytes = stub_bytes + table_bytes;
    info.app_text_bytes = info.assembled.image.text.size -
                          info.runtime_bytes - stub_bytes;
    return info;
}

} // namespace swapram::bb
