#include "blockcache/builder.hh"

#include <string>

#include "blockcache/pass.hh"
#include "blockcache/runtime_gen.hh"
#include "ckpt/gen.hh"
#include "masm/parser.hh"
#include "support/logging.hh"

namespace swapram::bb {

BuildInfo
build(const masm::Program &app, const masm::LayoutSpec &layout,
      const Options &options)
{
    BuildInfo info;

    TransformResult transformed = transform(app, options);
    info.n_blocks = static_cast<int>(transformed.blocks.size());
    info.n_stubs = static_cast<int>(transformed.stub_target.size());

    // Checkpointing captures any FRAM-resident .data/.bss (crt0
    // reinitialises them every boot). Unlike swapram there is no
    // intermediate assembly to measure them from, so probe-assemble
    // the transformed application alone, with the runtime's entry
    // symbols predefined (absolute operands have a fixed size, so
    // placeholder addresses keep every section size exact).
    ckpt::SectionSizes sections;
    if (options.ckpt.enabled()) {
        masm::LayoutSpec probe_layout = layout;
        for (int k = 0; k < info.n_stubs; ++k)
            probe_layout.predefined.emplace("__bb_e" + std::to_string(k),
                                            0);
        probe_layout.predefined.emplace("__bb_ret", 0);
        probe_layout.predefined.emplace("__bb_recover", 0);
        masm::AssembleResult probe =
            masm::assemble(transformed.program, probe_layout);
        sections = ckpt::measureSections(probe.image, options.ckpt);
    }

    masm::Program runtime = masm::parse(
        generateRuntimeAsm(transformed, options, sections));
    masm::Program final_program = transformed.program;
    final_program.append(runtime);

    info.assembled = masm::assemble(final_program, layout);

    const auto &miss = info.assembled.function("__bb_miss");
    const auto &ret = info.assembled.function("__bb_ret");
    const auto &stubs = info.assembled.function("__bb_stubs");

    // The runtime (miss + ret + stubs) is contiguous; attribute all of
    // it to Handler, with the copy loop carved out as Memcpy.
    info.runtime_addr = miss.addr;
    info.runtime_end =
        static_cast<std::uint16_t>(stubs.addr + stubs.size);
    info.memcpy_addr = info.assembled.symbol("__bb_copy_loop");
    info.memcpy_end = info.assembled.symbol("__bb_chain");
    const auto &recover = info.assembled.function("__bb_recover");
    info.recover_addr = recover.addr;
    info.recover_end =
        static_cast<std::uint16_t>(recover.addr + recover.size);

    info.runtime_bytes = miss.size + ret.size + recover.size;
    std::uint32_t stub_bytes = stubs.size;
    const int e = hashEntries(options);
    std::uint32_t table_bytes =
        10 + 10 + 2 // cells + save area + boot flag
        + 2 * 2 * static_cast<std::uint32_t>(info.n_blocks) // baddr+bsize
        + 2 * 2 * static_cast<std::uint32_t>(e);            // hash
    info.metadata_bytes = stub_bytes + table_bytes;
    if (options.ckpt.enabled()) {
        // __ckpt_memcpy/__ckpt_commit/__ckpt_restore are emitted last,
        // back to back; the triple forms one owner-attribution range
        // (Handler).
        ckpt::GenSpec ckspec =
            checkpointSpec(transformed, options, sections);
        ckpt::verifyLayout(info.assembled, ckspec, "__bb_meta_end");
        const auto &ckmc = info.assembled.function("__ckpt_memcpy");
        const auto &commit = info.assembled.function("__ckpt_commit");
        const auto &restore = info.assembled.function("__ckpt_restore");
        info.ckpt_addr = ckmc.addr;
        info.ckpt_end =
            static_cast<std::uint16_t>(restore.addr + restore.size);
        info.runtime_bytes += ckmc.size + commit.size + restore.size;
        // Staged registers + cursor + scheme cell + both counters +
        // two headed buffers.
        info.metadata_bytes += ckpt::kRegsBytes + 2 + 2 + 4 +
                               2 * (4 + ckspec.payloadBytes());
    }
    info.app_text_bytes = info.assembled.image.text.size -
                          info.runtime_bytes - stub_bytes;
    return info;
}

} // namespace swapram::bb
