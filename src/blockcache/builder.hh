/**
 * @file
 * Block-cache build orchestration: split functions into basic blocks,
 * rewrite every control-flow instruction per the paper's Figure 6,
 * generate per-CFI runtime entry stubs and the hash-table runtime, and
 * assemble the result.
 */

#ifndef SWAPRAM_BLOCKCACHE_BUILDER_HH
#define SWAPRAM_BLOCKCACHE_BUILDER_HH

#include <cstdint>
#include <string>

#include "masm/assembler.hh"
#include "blockcache/options.hh"

namespace swapram::bb {

/** Everything produced by a block-cache build. */
struct BuildInfo {
    masm::AssembleResult assembled;

    int n_blocks = 0;
    int n_stubs = 0; ///< per-CFI runtime entry points

    // Static size accounting (Figure 7).
    std::uint32_t app_text_bytes = 0;  ///< transformed application code
    std::uint32_t runtime_bytes = 0;   ///< miss + return handlers
    std::uint32_t metadata_bytes = 0;  ///< stubs + block tables + hash

    // Owner attribution (Figure 8): the whole runtime (handlers +
    // stubs) counts as Handler; the copy loop as Memcpy.
    std::uint16_t runtime_addr = 0, runtime_end = 0;
    std::uint16_t memcpy_addr = 0, memcpy_end = 0;

    // Boot-recovery routine range (Stats::recovery_cycles attribution).
    std::uint16_t recover_addr = 0, recover_end = 0;

    // Checkpoint routines __ckpt_memcpy/__ckpt_commit/__ckpt_restore
    // (zero when the scheme is None); attributed to Handler.
    std::uint16_t ckpt_addr = 0, ckpt_end = 0;
};

/** Build a block-cache-enabled binary from an application program. */
BuildInfo build(const masm::Program &app, const masm::LayoutSpec &layout,
                const Options &options);

} // namespace swapram::bb

#endif // SWAPRAM_BLOCKCACHE_BUILDER_HH
