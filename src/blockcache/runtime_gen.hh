/**
 * @file
 * Block-cache runtime generator: the miss handler with djb2 hash
 * lookup, slot allocation with flush-when-full, block copy, chaining,
 * and the return-address translation handler — plus the per-CFI entry
 * stubs and the block metadata tables (all FRAM-resident, per §4).
 */

#ifndef SWAPRAM_BLOCKCACHE_RUNTIME_GEN_HH
#define SWAPRAM_BLOCKCACHE_RUNTIME_GEN_HH

#include <string>

#include "blockcache/options.hh"
#include "blockcache/pass.hh"
#include "ckpt/gen.hh"
#include "ckpt/options.hh"

namespace swapram::bb {

/** Hash-table entry count: power of two >= 2 x slot count (0.5 load
 *  factor relative to the maximum resident blocks). */
int hashEntries(const Options &options);

/**
 * The checkpoint emitter parameters this runtime bakes into its
 * generated assembly. The builder calls this again after the final
 * assembly to cross-check the layout (ckpt::verifyLayout).
 */
ckpt::GenSpec checkpointSpec(const TransformResult &transformed,
                             const Options &options,
                             const ckpt::SectionSizes &sections);

/**
 * Generate the runtime + stubs + tables assembly. @p sections carries
 * the FRAM-resident .data/.bss sizes the checkpoint machinery must
 * capture (builder-measured; ignored when options.ckpt.scheme ==
 * None).
 */
std::string generateRuntimeAsm(const TransformResult &transformed,
                               const Options &options,
                               const ckpt::SectionSizes &sections = {});

} // namespace swapram::bb

#endif // SWAPRAM_BLOCKCACHE_RUNTIME_GEN_HH
