/**
 * @file
 * Block-cache runtime generator: the miss handler with djb2 hash
 * lookup, slot allocation with flush-when-full, block copy, chaining,
 * and the return-address translation handler — plus the per-CFI entry
 * stubs and the block metadata tables (all FRAM-resident, per §4).
 */

#ifndef SWAPRAM_BLOCKCACHE_RUNTIME_GEN_HH
#define SWAPRAM_BLOCKCACHE_RUNTIME_GEN_HH

#include <string>

#include "blockcache/options.hh"
#include "blockcache/pass.hh"

namespace swapram::bb {

/** Hash-table entry count: power of two >= 2 x slot count (0.5 load
 *  factor relative to the maximum resident blocks). */
int hashEntries(const Options &options);

/** Generate the runtime + stubs + tables assembly. */
std::string generateRuntimeAsm(const TransformResult &transformed,
                               const Options &options);

} // namespace swapram::bb

#endif // SWAPRAM_BLOCKCACHE_RUNTIME_GEN_HH
