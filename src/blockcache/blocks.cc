#include "blockcache/blocks.hh"

#include "masm/assembler.hh"
#include "support/logging.hh"

namespace swapram::bb {

using masm::OperKind;

Cfi
classifyInstr(const masm::AsmInstr &instr)
{
    Cfi out;
    switch (isa::opFormat(instr.op)) {
      case isa::OpFormat::Jump:
        out.op = instr.op;
        out.target = &instr.jump_target;
        out.kind = instr.op == isa::Op::Jmp ? CfiKind::Jump
                                            : CfiKind::CondJump;
        return out;
      case isa::OpFormat::SingleOperand:
        if (instr.op == isa::Op::Call) {
            if (instr.dst->kind == OperKind::Immediate &&
                instr.dst->expr.isSymbol()) {
                out.kind = CfiKind::Call;
                out.target = &instr.dst->expr;
                return out;
            }
            out.kind = CfiKind::Unsupported;
            return out;
        }
        return out;
      case isa::OpFormat::DoubleOperand: {
        // Any write to PC is a branch.
        if (instr.dst->kind == OperKind::Register &&
            instr.dst->reg == isa::Reg::PC) {
            if (instr.op == isa::Op::Mov &&
                instr.src->kind == OperKind::IndirectInc &&
                instr.src->reg == isa::Reg::SP) {
                out.kind = CfiKind::Ret; // RET
                return out;
            }
            if (instr.op == isa::Op::Mov &&
                instr.src->kind == OperKind::Immediate &&
                instr.src->expr.isSymbol()) {
                out.kind = CfiKind::Jump; // BR #label
                out.target = &instr.src->expr;
                return out;
            }
            out.kind = CfiKind::Unsupported;
            return out;
        }
        return out;
      }
    }
    support::panic("classifyInstr: bad format");
}

std::uint16_t
transformedCost(const Cfi &cfi, const masm::AsmInstr &instr)
{
    switch (cfi.kind) {
      case CfiKind::None:
        return masm::instrSize(instr);
      case CfiKind::Jump:
        return 4; // CALL #stub
      case CfiKind::CondJump:
        return 10; // J!cc skip + CALL + skip: CALL
      case CfiKind::Call:
        return 8; // PUSH #vret + CALL #stub
      case CfiKind::Ret:
        return 4; // BR #__bb_ret
      case CfiKind::Unsupported:
        support::fatal("block cache: computed branch is unsupported");
    }
    support::panic("transformedCost: bad kind");
}

bool
consumesFlags(const masm::AsmInstr &instr)
{
    using isa::Op;
    switch (instr.op) {
      case Op::Addc:
      case Op::Subc:
      case Op::Dadd:
      case Op::Rrc:
        return true;
      default:
        break;
    }
    return isa::opFormat(instr.op) == isa::OpFormat::Jump &&
           instr.op != Op::Jmp;
}

std::optional<isa::Op>
invertCond(isa::Op op)
{
    using isa::Op;
    switch (op) {
      case Op::Jne: return Op::Jeq;
      case Op::Jeq: return Op::Jne;
      case Op::Jnc: return Op::Jc;
      case Op::Jc: return Op::Jnc;
      case Op::Jge: return Op::Jl;
      case Op::Jl: return Op::Jge;
      default: return std::nullopt;
    }
}

} // namespace swapram::bb
