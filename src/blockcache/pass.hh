/**
 * @file
 * Basic-block transformation pass for the Miller-style block cache
 * (paper §4, Figure 6).
 *
 * Every function is sliced into basic blocks no larger than one cache
 * slot. Every control transfer is rewritten to enter the runtime
 * through a per-CFI entry stub that identifies the target block:
 *
 *   JMP t / BR #t      ->  CALL #__bb_e<k>            ; k targets block(t)
 *   Jcc t              ->  J!cc skip
 *                          CALL #__bb_e<k_taken>
 *                  skip:   CALL #__bb_e<k_fall>
 *   CALL #f            ->  PUSH #<next block>         ; virtual return addr
 *                          CALL #__bb_e<k_entry(f)>
 *   RET                ->  BR #__bb_ret               ; translate vret
 *   (fallthrough)      ->  CALL #__bb_e<k_next>
 *
 * The runtime pops the stub-call's return address to find the site for
 * chaining (rewriting the CALL in a cached copy into a direct branch to
 * the target's slot).
 */

#ifndef SWAPRAM_BLOCKCACHE_PASS_HH
#define SWAPRAM_BLOCKCACHE_PASS_HH

#include <string>
#include <vector>

#include "masm/ast.hh"
#include "blockcache/options.hh"

namespace swapram::bb {

/** One transformed block (for table generation). */
struct BlockInfo {
    std::string label;          ///< "__bbk_<id>", at the block start
    std::string size_expr;      ///< assembler expression for its size
};

/** Result of the transformation. */
struct TransformResult {
    masm::Program program;          ///< transformed app (no runtime yet)
    std::vector<BlockInfo> blocks;  ///< in address order
    std::vector<int> stub_target;   ///< stub k -> target block id
    int cond_sites = 0;
    int call_sites = 0;
    int ret_sites = 0;
};

/** Run the transformation over every .func in @p program. */
TransformResult transform(const masm::Program &program,
                          const Options &options);

} // namespace swapram::bb

#endif // SWAPRAM_BLOCKCACHE_PASS_HH
