#include "blockcache/runtime_gen.hh"

#include <sstream>

#include "support/logging.hh"

namespace swapram::bb {

int
hashEntries(const Options &options)
{
    int want = 2 * options.slotCount();
    int e = 8;
    while (e < want)
        e <<= 1;
    return e;
}

ckpt::GenSpec
checkpointSpec(const TransformResult &transformed,
               const Options &options,
               const ckpt::SectionSizes &sections)
{
    ckpt::GenSpec spec;
    spec.options = options.ckpt;
    spec.sections = sections;
    // The block-cache runtime has no callable word-copy routine (its
    // copy loop is inlined in the miss handler), so the emitter
    // provides a private one.
    spec.memcpy_sym = "__ckpt_memcpy";
    spec.emit_memcpy = true;
    spec.meta_begin = "__bb_meta_begin";
    // Byte size of the metadata bracket: six fixed cells + save area,
    // the two per-block tables, both hash arrays, and the staged
    // register file. The builder cross-checks this against the
    // assembled __bb_meta_begin/__bb_meta_end span.
    spec.meta_bytes =
        12 + 10 +
        2u * 2u *
            static_cast<std::uint32_t>(transformed.blocks.size()) +
        2u * 2u * static_cast<std::uint32_t>(hashEntries(options)) +
        ckpt::kRegsBytes;
    return spec;
}

std::string
generateRuntimeAsm(const TransformResult &transformed,
                   const Options &options,
                   const ckpt::SectionSizes &sections)
{
    std::ostringstream os;
    const int n_blocks = static_cast<int>(transformed.blocks.size());
    const int n_stubs = static_cast<int>(transformed.stub_target.size());
    const int e = hashEntries(options);
    const unsigned cbase = options.cache_base;
    const unsigned cend = options.cache_end;
    const unsigned slot = options.slot_bytes;

    // Checkpointing (ISSUE 8): everything is gated on the scheme, so
    // scheme None reproduces the pre-checkpoint runtime byte for byte.
    const bool ck = options.ckpt.enabled();
    ckpt::GenSpec ckspec = checkpointSpec(transformed, options,
                                          sections);

    os << "; ---- block-cache generated runtime (" << n_blocks
       << " blocks, " << n_stubs << " CFI stubs, " << e
       << " hash entries) ----\n";

    // ---- Metadata (FRAM) ----
    os << "        .const\n        .align 2\n";
    if (ck)
        os << "__bb_meta_begin:\n";
    os << "__bb_target: .word 0\n"
          "__bb_key:    .word 0\n"
          "__bb_site:   .word 0\n"
          "__bb_slot:   .word 0\n"
          "__bb_next:   .word " << cbase << "\n"
          "__bb_boot:   .word 0\n"
          "__bb_save:   .space 10\n";
    os << "__bb_baddr:\n";
    for (const BlockInfo &b : transformed.blocks)
        os << "        .word " << b.label << "\n";
    os << "__bb_bsize:\n";
    for (const BlockInfo &b : transformed.blocks)
        os << "        .word " << b.size_expr << "\n";
    os << "__bb_hkey:\n        .space " << 2 * e << "\n"
          "__bb_hkey_end:\n"
          "__bb_hval:\n        .space " << 2 * e << "\n";
    if (ck) {
        // The staged register file lives *inside* the bracket so the
        // metadata copy captures it; the cursor, counters, and buffers
        // live outside so a restore cannot roll them back.
        ckpt::emitRegsCell(os);
        os << "__bb_meta_end:\n";
        ckpt::emitConstCells(os, ckspec);
    }

    // ---- Runtime code ----
    os << "        .text\n";
    os << "        .func __bb_miss\n"
          "        MOV R11, &__bb_save\n"
          "        MOV R12, &__bb_save+2\n"
          "        MOV R13, &__bb_save+4\n"
          "        MOV R14, &__bb_save+6\n"
          "        MOV R15, &__bb_save+8\n";
    // Checkpoint trigger: every stub-call miss passes through here
    // with the app registers just saved, so the hook may clobber
    // scratch freely. (Return-translation misses skip it — calls
    // dominate, and one hook site keeps the accounting simple.)
    if (ck)
        ckpt::emitHook(os, ckspec);
    os << "        POP R14\n"           // stub-call return address
          "        SUB #4, R14\n"       // the CALL site itself
          "        MOV R14, &__bb_site\n"
          "        MOV &__bb_target, R15\n"
          "        MOV __bb_baddr(R15), R12\n"
          "        MOV R12, &__bb_key\n"
          "__bb_find:\n"
          // djb2 over the two key bytes, masked to a byte offset.
          "        MOV &__bb_key, R12\n"
          "        MOV #5381, R13\n"
          "        MOV R13, R11\n"
          "        RLA R11\n        RLA R11\n        RLA R11\n"
          "        RLA R11\n        RLA R11\n"
          "        ADD R11, R13\n"
          "        MOV.B R12, R11\n"
          "        ADD R11, R13\n"
          "        MOV R13, R11\n"
          "        RLA R11\n        RLA R11\n        RLA R11\n"
          "        RLA R11\n        RLA R11\n"
          "        ADD R11, R13\n"
          "        MOV R12, R11\n"
          "        SWPB R11\n"
          "        MOV.B R11, R11\n"
          "        ADD R11, R13\n"
          "        AND #" << (e - 1) << ", R13\n"
          "        RLA R13\n"
          "__bb_probe:\n"
          "        MOV __bb_hkey(R13), R11\n"
          "        TST R11\n"
          "        JZ __bb_insert\n"
          "        CMP R12, R11\n"
          "        JEQ __bb_hit\n"
          "        INCD R13\n"
          "        AND #" << (2 * e - 1) << ", R13\n"
          "        JMP __bb_probe\n"
          "__bb_hit:\n"
          "        MOV __bb_hval(R13), R11\n"
          "        MOV R11, &__bb_slot\n"
          "        JMP __bb_chain\n"
          "__bb_insert:\n"
          "        MOV &__bb_next, R11\n"
          "        CMP #" << (cend - slot + 1) << ", R11\n"
          "        JLO __bb_have\n"
          // Flush: clear the hash keys and restart allocation.
          "        MOV #__bb_hkey, R11\n"
          "__bb_flush_loop:\n"
          "        CMP #__bb_hkey_end, R11\n"
          "        JHS __bb_flush_done\n"
          "        CLR 0(R11)\n"
          "        INCD R11\n"
          "        JMP __bb_flush_loop\n"
          "__bb_flush_done:\n"
          "        MOV #" << cbase << ", R11\n"
          "        MOV R11, &__bb_next\n"
          // The flush freed the slot the calling copy lives in; a chain
          // write could land inside the block about to be copied there.
          // Suppress chaining for this miss.
          "        CLR &__bb_site\n"
          "        JMP __bb_find\n"
          "__bb_have:\n"
          "        MOV R11, &__bb_slot\n"
          "        MOV R12, __bb_hkey(R13)\n"
          "        MOV R11, __bb_hval(R13)\n"
          "        MOV R11, R13\n"
          "        ADD #" << slot << ", R13\n"
          "        MOV R13, &__bb_next\n"
          // Copy the block into its slot (R12 already holds the NVM
          // address == key).
          "        MOV &__bb_target, R15\n"
          "        MOV __bb_bsize(R15), R14\n"
          "__bb_copy_loop:\n"
          "        TST R14\n"
          "        JZ __bb_chain\n"
          "        MOV @R12+, 0(R11)\n"
          "        INCD R11\n"
          "        DECD R14\n"
          "        JMP __bb_copy_loop\n"
          "__bb_chain:\n"
          // Chain: rewrite the CALL site into BR #slot when the site
          // executes from a cached copy (flush discards all chains with
          // the copies, so no undo bookkeeping is needed).
          "        MOV &__bb_site, R14\n"
          "        CMP #" << cbase << ", R14\n"
          "        JLO __bb_go\n"
          "        CMP #" << cend << ", R14\n"
          "        JHS __bb_go\n"
          "        MOV #0x4030, 0(R14)\n" // MOV #imm, PC
          "        MOV &__bb_slot, R15\n"
          "        MOV R15, 2(R14)\n"
          "__bb_go:\n"
          "        MOV &__bb_slot, R15\n"
          "        MOV R15, &__bb_target\n"
          "__bb_exit:\n"
          "        MOV &__bb_save, R11\n"
          "        MOV &__bb_save+2, R12\n"
          "        MOV &__bb_save+4, R13\n"
          "        MOV &__bb_save+6, R14\n"
          "        MOV &__bb_save+8, R15\n"
          "        BR &__bb_target\n"
          "        .endfunc\n";

    // Return translation: pop the virtual (NVM) return address, find
    // its block by binary search, then reuse the lookup path.
    os << "        .func __bb_ret\n"
          "        MOV R11, &__bb_save\n"
          "        MOV R12, &__bb_save+2\n"
          "        MOV R13, &__bb_save+4\n"
          "        MOV R14, &__bb_save+6\n"
          "        MOV R15, &__bb_save+8\n"
          "        POP R12\n"
          "        MOV R12, &__bb_key\n"
          "        CLR R11\n"
          "        MOV R11, &__bb_site\n" // returns never chain
          "        CLR R13\n"             // lo (byte index)
          "        MOV #" << (2 * n_blocks) << ", R14\n" // hi (excl)
          "__bb_bs_loop:\n"
          "        CMP R14, R13\n"
          "        JHS __bb_bs_fail\n"
          "        MOV R13, R15\n"
          "        ADD R14, R15\n"
          "        CLRC\n"
          "        RRC R15\n"
          "        BIC #1, R15\n"
          "        CMP __bb_baddr(R15), R12\n"
          "        JEQ __bb_bs_found\n"
          "        JLO __bb_bs_less\n"
          "        MOV R15, R13\n"
          "        INCD R13\n"
          "        JMP __bb_bs_loop\n"
          "__bb_bs_less:\n"
          "        MOV R15, R14\n"
          "        JMP __bb_bs_loop\n"
          "__bb_bs_found:\n"
          "        MOV R15, &__bb_target\n"
          "        JMP __bb_find\n"
          "__bb_bs_fail:\n"
          // Return into untransformed code: branch to the raw address.
          "        MOV &__bb_key, R15\n"
          "        MOV R15, &__bb_target\n"
          "        JMP __bb_exit\n"
          "        .endfunc\n";

    // ---- Per-CFI entry stubs (the paper's "jump table", §5.2) ----
    os << "        .func __bb_stubs\n";
    for (int k = 0; k < n_stubs; ++k) {
        os << "__bb_e" << k << ":\n"
           << "        MOV #" << 2 * transformed.stub_target[k]
           << ", &__bb_target\n"
           << "        JMP __bb_miss\n";
    }
    if (n_stubs == 0)
        os << "        RET\n";
    os << "        .endfunc\n";

    // ---- Boot recovery (crash consistency) ----
    // The hash table and allocation cursor persist in FRAM, but the
    // SRAM slots (and the chains patched into them) do not: after a
    // reboot every __bb_hval entry points at zeroed memory. Recovery
    // is the flush path run cold: clear the keys, reset the cursor,
    // and forget the pending chain site. A persistent boot flag makes
    // the clean first boot skip the walk (the crt0 "dirty bit" idiom),
    // and R12 is preserved so the startup stub stays transparent to
    // main. Placed after __bb_stubs so it sits outside the Handler
    // owner range and is attributed via Stats::recovery_cycles
    // instead.
    os << "        .func __bb_recover\n"
          "        TST &__bb_boot\n"
          "        JNZ __bb_rc_go\n"
          "        MOV #1, &__bb_boot\n"
          "        RET\n"
          "__bb_rc_go:\n"
          "        PUSH R12\n";
    if (ck)
        os << "        PUSH R11\n"; // restore's cold path clobbers R11
    os << "        MOV #__bb_hkey, R12\n"
          "__bb_rc_loop:\n"
          "        CMP #__bb_hkey_end, R12\n"
          "        JHS __bb_rc_done\n"
          "        CLR 0(R12)\n"
          "        INCD R12\n"
          "        JMP __bb_rc_loop\n"
          "__bb_rc_done:\n"
          "        MOV #" << cbase << ", R12\n"
          "        MOV R12, &__bb_next\n"
          "        CLR &__bb_site\n"
          "        CLR &__bb_target\n";
    if (ck) {
        // Resume from the newest committed checkpoint, if any. The
        // cold-reset walk above still ran first, so a boot without a
        // valid checkpoint keeps today's restart-from-clean-cache
        // behaviour. On resume the call never returns; on the cold
        // path it clobbers only R11/R12, which the pushes preserve.
        os << "        CALL #__ckpt_restore\n"
              "        POP R11\n";
    }
    os << "        POP R12\n"
          "        RET\n"
          "        .endfunc\n";

    if (ck)
        ckpt::emitRoutines(os, ckspec);

    return os.str();
}

} // namespace swapram::bb
