/**
 * @file
 * Options for the basic-block software cache baseline (Miller &
 * Agarwal [33], as ported in the paper's §4): fixed-size SRAM slots, a
 * djb2 hash table at 0.5 load factor kept in FRAM, block chaining, and
 * flush-when-full.
 */

#ifndef SWAPRAM_BLOCKCACHE_OPTIONS_HH
#define SWAPRAM_BLOCKCACHE_OPTIONS_HH

#include <cstdint>

#include "ckpt/options.hh"
#include "support/platform.hh"

namespace swapram::bb {

/** Options for one block-cache build. */
struct Options {
    /** First byte of the SRAM slot region. */
    std::uint16_t cache_base = platform::kSramBase;
    /** One past the last byte of the slot region. */
    std::uint16_t cache_end =
        static_cast<std::uint16_t>(platform::kSramEnd);
    /** Fixed slot size in bytes; transformed blocks are split to fit. */
    std::uint16_t slot_bytes = 64;

    /**
     * Have the startup stub call the generated __bb_recover routine
     * before main. The block hash table persists in FRAM across power
     * loss while the SRAM slots it maps to decay; recovery re-runs the
     * flush path so every lookup misses cold. Disable only to
     * demonstrate the stale-mapping crash (regression tests).
     */
    bool boot_recovery = true;

    /**
     * Crash-atomic checkpointing (ISSUE 8), mirroring the SwapRAM
     * runtime's: scheme None reproduces the pre-checkpoint runtime
     * byte for byte; the other schemes generate the uniform
     * __ckpt_commit/__ckpt_restore pair and hook __bb_miss.
     */
    ckpt::Options ckpt;

    std::uint16_t
    slotCount() const
    {
        return static_cast<std::uint16_t>(
            (cache_end - cache_base) / slot_bytes);
    }
};

} // namespace swapram::bb

#endif // SWAPRAM_BLOCKCACHE_OPTIONS_HH
