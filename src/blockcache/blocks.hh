/**
 * @file
 * Control-flow classification helpers for the block-cache pass.
 */

#ifndef SWAPRAM_BLOCKCACHE_BLOCKS_HH
#define SWAPRAM_BLOCKCACHE_BLOCKS_HH

#include <cstdint>
#include <optional>

#include "masm/ast.hh"

namespace swapram::bb {

/** How an instruction affects control flow. */
enum class CfiKind : std::uint8_t {
    None,     ///< straight-line instruction
    Jump,     ///< JMP label or BR #label
    CondJump, ///< conditional jump
    Call,     ///< CALL #label
    Ret,      ///< MOV @SP+, PC
    Unsupported, ///< computed branch (no static target)
};

/** Classification result; target points into the instruction. */
struct Cfi {
    CfiKind kind = CfiKind::None;
    isa::Op op = isa::Op::Jmp;      ///< original opcode (CondJump)
    const masm::Expr *target = nullptr;
};

/** Classify @p instr. */
Cfi classifyInstr(const masm::AsmInstr &instr);

/** Bytes the transformed form of this atom occupies in a block. */
std::uint16_t transformedCost(const Cfi &cfi, const masm::AsmInstr &instr);

/** Inverse condition, or nullopt for JN (which has none). */
std::optional<isa::Op> invertCond(isa::Op op);

/**
 * True if the instruction reads status flags (ADDC/SUBC/DADD/RRC and
 * conditional jumps). The runtime clobbers flags, so a block boundary
 * must never be placed immediately before such an instruction.
 */
bool consumesFlags(const masm::AsmInstr &instr);

} // namespace swapram::bb

#endif // SWAPRAM_BLOCKCACHE_BLOCKS_HH
