#include "masm/lexer.hh"

#include <cctype>

#include "support/logging.hh"

namespace swapram::masm {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$' || c == '.';
}

bool
identCont(char c)
{
    return identStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

char
unescape(char c, int line)
{
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default:
        support::fatal("line ", line, ": bad escape \\", c);
    }
}

} // namespace

std::vector<Token>
lexLine(const std::string &text, int line)
{
    std::vector<Token> tokens;
    size_t i = 0;
    const size_t n = text.size();
    while (i < n) {
        char c = text[i];
        if (c == ';')
            break; // comment to end of line
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        Token tok;
        tok.column = static_cast<int>(i);
        if (identStart(c)) {
            size_t start = i;
            while (i < n && identCont(text[i]))
                ++i;
            tok.kind = TokKind::Ident;
            tok.text = text.substr(start, i - start);
            tokens.push_back(std::move(tok));
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = i;
            std::int64_t value = 0;
            if (c == '0' && i + 1 < n &&
                (text[i + 1] == 'x' || text[i + 1] == 'X')) {
                i += 2;
                if (i >= n || !std::isxdigit(static_cast<unsigned char>(
                                  text[i]))) {
                    support::fatal("line ", line, ": bad hex literal");
                }
                while (i < n &&
                       std::isxdigit(static_cast<unsigned char>(text[i]))) {
                    char d = text[i];
                    int digit = std::isdigit(
                                    static_cast<unsigned char>(d))
                                    ? d - '0'
                                    : (std::tolower(d) - 'a' + 10);
                    value = value * 16 + digit;
                    ++i;
                }
            } else if (c == '0' && i + 1 < n &&
                       (text[i + 1] == 'b' || text[i + 1] == 'B')) {
                i += 2;
                if (i >= n || (text[i] != '0' && text[i] != '1'))
                    support::fatal("line ", line, ": bad binary literal");
                while (i < n && (text[i] == '0' || text[i] == '1')) {
                    value = value * 2 + (text[i] - '0');
                    ++i;
                }
            } else {
                while (i < n &&
                       std::isdigit(static_cast<unsigned char>(text[i]))) {
                    value = value * 10 + (text[i] - '0');
                    ++i;
                }
            }
            if (i < n && identCont(text[i])) {
                support::fatal("line ", line, ": bad number near '",
                               text.substr(start, i - start + 1), "'");
            }
            tok.kind = TokKind::Number;
            tok.number = value;
            tokens.push_back(std::move(tok));
            continue;
        }
        if (c == '\'') {
            ++i;
            if (i >= n)
                support::fatal("line ", line, ": unterminated char literal");
            char value = text[i];
            if (value == '\\') {
                ++i;
                if (i >= n)
                    support::fatal("line ", line, ": bad char literal");
                value = unescape(text[i], line);
            }
            ++i;
            if (i >= n || text[i] != '\'')
                support::fatal("line ", line, ": unterminated char literal");
            ++i;
            tok.kind = TokKind::Number;
            tok.number = static_cast<unsigned char>(value);
            tokens.push_back(std::move(tok));
            continue;
        }
        if (c == '"') {
            ++i;
            std::string payload;
            while (i < n && text[i] != '"') {
                if (text[i] == '\\') {
                    ++i;
                    if (i >= n)
                        support::fatal("line ", line, ": bad escape");
                    payload += unescape(text[i], line);
                } else {
                    payload += text[i];
                }
                ++i;
            }
            if (i >= n)
                support::fatal("line ", line, ": unterminated string");
            ++i;
            tok.kind = TokKind::String;
            tok.text = std::move(payload);
            tokens.push_back(std::move(tok));
            continue;
        }
        // Punctuation, two-char shifts first.
        if ((c == '<' || c == '>') && i + 1 < n && text[i + 1] == c) {
            tok.kind = TokKind::Punct;
            tok.text = std::string(2, c);
            i += 2;
            tokens.push_back(std::move(tok));
            continue;
        }
        static const std::string kSingle = ":,#&@+-*/()|";
        if (kSingle.find(c) != std::string::npos) {
            tok.kind = TokKind::Punct;
            tok.text = std::string(1, c);
            ++i;
            tokens.push_back(std::move(tok));
            continue;
        }
        support::fatal("line ", line, ": unexpected character '", c, "'");
    }
    tokens.push_back(Token{TokKind::End, "", 0, static_cast<int>(n)});
    return tokens;
}

} // namespace swapram::masm
