#include "masm/assembler.hh"

#include <algorithm>
#include <array>

#include "isa/encode.hh"
#include "support/logging.hh"
#include "support/platform.hh"

namespace swapram::masm {

namespace {

using support::fatal;

enum class Section : std::uint8_t { Text = 0, Const = 1, Data = 2, Bss = 3 };

constexpr int kNumSections = 4;

bool
isSectionDirective(Directive d)
{
    return d == Directive::Text || d == Directive::Const ||
           d == Directive::Data || d == Directive::Bss;
}

Section
sectionOf(Directive d)
{
    switch (d) {
      case Directive::Text: return Section::Text;
      case Directive::Const: return Section::Const;
      case Directive::Data: return Section::Data;
      case Directive::Bss: return Section::Bss;
      default:
        support::panic("sectionOf: not a section directive");
    }
}

/** Symbol environment: label addresses plus lazily evaluated .equ defs. */
struct SymbolEnv {
    std::unordered_map<std::string, std::uint16_t> addrs;
    std::unordered_map<std::string, Expr> equs;
};

std::int64_t
evalExpr(const Expr &e, const SymbolEnv &env, int line, int depth = 0)
{
    if (depth > 32)
        fatal("line ", line, ": .equ recursion too deep");
    switch (e.kind()) {
      case Expr::Kind::Number:
        return e.number();
      case Expr::Kind::Symbol: {
        auto it = env.addrs.find(e.symbol());
        if (it != env.addrs.end())
            return it->second;
        auto eq = env.equs.find(e.symbol());
        if (eq != env.equs.end())
            return evalExpr(eq->second, env, line, depth + 1);
        fatal("line ", line, ": undefined symbol '", e.symbol(), "'");
      }
      case Expr::Kind::Neg:
        return -evalExpr(e.operand(), env, line, depth + 1);
      default: {
        std::int64_t l = evalExpr(e.lhs(), env, line, depth + 1);
        std::int64_t r = evalExpr(e.rhs(), env, line, depth + 1);
        switch (e.kind()) {
          case Expr::Kind::Add: return l + r;
          case Expr::Kind::Sub: return l - r;
          case Expr::Kind::Mul: return l * r;
          case Expr::Kind::Div:
            if (r == 0)
                fatal("line ", line, ": division by zero");
            return l / r;
          case Expr::Kind::ShiftLeft: return l << (r & 63);
          case Expr::Kind::ShiftRight:
            return static_cast<std::int64_t>(
                static_cast<std::uint64_t>(l) >> (r & 63));
          case Expr::Kind::And: return l & r;
          case Expr::Kind::Or: return l | r;
          default:
            support::panic("evalExpr: bad kind");
        }
      }
    }
}

std::uint16_t
toWord(std::int64_t v, int line)
{
    if (v < -32768 || v > 65535)
        fatal("line ", line, ": value ", v, " does not fit in 16 bits");
    return static_cast<std::uint16_t>(v & 0xFFFF);
}

/**
 * Lower one symbolic operand to a numeric isa::Operand. With @p env ==
 * nullptr, only sizes matter: values are placeholders but force_ext is
 * final (which is what makes sizes stable across passes).
 */
isa::Operand
lowerOperand(const AsmOperand &op, bool byte_op, const SymbolEnv *env,
             int line)
{
    (void)byte_op; // CG eligibility is decided by the encoder

    auto value = [&](const Expr &e) -> std::uint16_t {
        if (!env) {
            auto folded = e.constantFold();
            return folded ? toWord(*folded, line) : 0;
        }
        return toWord(evalExpr(e, *env, line), line);
    };
    switch (op.kind) {
      case OperKind::Register:
        return isa::Operand::makeReg(op.reg);
      case OperKind::Indexed:
        return isa::Operand::makeIndexed(op.reg, value(op.expr));
      case OperKind::SymbolicMem:
        return isa::Operand::makeSymbolic(value(op.expr));
      case OperKind::Absolute:
        return isa::Operand::makeAbs(value(op.expr));
      case OperKind::Indirect:
        return isa::Operand::makeIndirect(op.reg, false);
      case OperKind::IndirectInc:
        return isa::Operand::makeIndirect(op.reg, true);
      case OperKind::Immediate: {
        auto folded = op.expr.constantFold();
        if (folded) {
            std::uint16_t v = toWord(*folded, line);
            return isa::Operand::makeImm(v, false);
        }
        // Symbolic immediate: size must not depend on the resolved
        // value, so always use an extension word.
        std::uint16_t v = env ? toWord(evalExpr(op.expr, *env, line), line)
                              : 0;
        return isa::Operand::makeImm(v, true);
      }
    }
    support::panic("lowerOperand: bad kind");
}

isa::Instr
lowerInstr(const AsmInstr &ai, const SymbolEnv *env, int line)
{
    isa::Instr instr;
    instr.op = ai.op;
    instr.byte = ai.byte;
    switch (isa::opFormat(ai.op)) {
      case isa::OpFormat::Jump:
        instr.jump_target =
            env ? toWord(evalExpr(ai.jump_target, *env, line), line) : 0;
        break;
      case isa::OpFormat::SingleOperand:
        if (ai.op != isa::Op::Reti)
            instr.dst = lowerOperand(*ai.dst, ai.byte, env, line);
        break;
      case isa::OpFormat::DoubleOperand:
        instr.src = lowerOperand(*ai.src, ai.byte, env, line);
        instr.dst = lowerOperand(*ai.dst, ai.byte, env, line);
        break;
    }
    return instr;
}

/** Per-statement placement computed by the address walk. */
struct Placement {
    Section section = Section::Text;
    std::uint32_t offset = 0;
};

struct WalkResult {
    std::vector<Placement> places;
    std::array<std::uint32_t, kNumSections> sizes{};
    SymbolEnv env; // labels not yet rebased (offsets); see rebase step
    // Labels are recorded as (section, offset) then rebased.
    std::vector<std::pair<std::string, Placement>> labels;
    std::vector<std::pair<std::string, Placement>> func_starts;
    std::vector<std::pair<std::string, Placement>> func_ends;
};

std::int64_t
literalArg(const Statement &s, size_t index)
{
    if (index >= s.args.size())
        fatal("line ", s.line, ": missing directive argument");
    auto v = s.args[index].constantFold();
    if (!v)
        fatal("line ", s.line, ": argument must be a literal constant");
    return *v;
}

WalkResult
walkAddresses(const Program &program)
{
    WalkResult out;
    out.places.resize(program.stmts.size());
    Section cur = Section::Text;
    std::array<std::uint32_t, kNumSections> off{};
    std::string pending_func;

    auto align_to = [&](std::uint32_t a) {
        std::uint32_t &o = off[static_cast<int>(cur)];
        o = (o + a - 1) & ~(a - 1);
    };

    for (size_t i = 0; i < program.stmts.size(); ++i) {
        const Statement &s = program.stmts[i];
        auto &o = off[static_cast<int>(cur)];
        switch (s.kind) {
          case Statement::Kind::Label:
            out.places[i] = {cur, o};
            out.labels.push_back({s.label, {cur, o}});
            break;
          case Statement::Kind::Instr: {
            if (cur != Section::Text)
                fatal("line ", s.line, ": instruction outside .text");
            if (o & 1)
                fatal("line ", s.line, ": instruction at odd offset");
            out.places[i] = {cur, o};
            o += instrSize(s.instr);
            break;
          }
          case Statement::Kind::Directive: {
            if (isSectionDirective(s.directive)) {
                cur = sectionOf(s.directive);
                out.places[i] = {cur, off[static_cast<int>(cur)]};
                break;
            }
            switch (s.directive) {
              case Directive::Word:
                if (cur == Section::Bss)
                    fatal("line ", s.line, ": .word in .bss");
                if (o & 1)
                    fatal("line ", s.line,
                          ": .word at odd offset; use .align 2");
                out.places[i] = {cur, o};
                o += 2 * static_cast<std::uint32_t>(s.args.size());
                break;
              case Directive::Byte:
                if (cur == Section::Bss)
                    fatal("line ", s.line, ": .byte in .bss");
                out.places[i] = {cur, o};
                o += static_cast<std::uint32_t>(s.args.size());
                break;
              case Directive::Space: {
                std::int64_t n = literalArg(s, 0);
                if (n < 0 || n > 0xFFFF)
                    fatal("line ", s.line, ": bad .space size");
                out.places[i] = {cur, o};
                o += static_cast<std::uint32_t>(n);
                break;
              }
              case Directive::Align: {
                std::int64_t a = literalArg(s, 0);
                if (a != 1 && a != 2 && a != 4 && a != 8 && a != 16 &&
                    a != 32) {
                    fatal("line ", s.line, ": bad .align");
                }
                align_to(static_cast<std::uint32_t>(a));
                out.places[i] = {cur, o};
                break;
              }
              case Directive::Ascii:
              case Directive::Asciz:
                if (cur == Section::Bss)
                    fatal("line ", s.line, ": string data in .bss");
                out.places[i] = {cur, o};
                o += static_cast<std::uint32_t>(s.str.size()) +
                     (s.directive == Directive::Asciz ? 1 : 0);
                break;
              case Directive::Global:
                out.places[i] = {cur, o};
                break;
              case Directive::Equ:
                out.places[i] = {cur, o};
                out.env.equs[s.name] = s.args.at(0);
                break;
              case Directive::Func:
                if (cur != Section::Text)
                    fatal("line ", s.line, ": .func outside .text");
                if (!pending_func.empty())
                    fatal("line ", s.line, ": nested .func");
                align_to(2);
                out.places[i] = {cur, o};
                out.labels.push_back({s.name, {cur, o}});
                out.func_starts.push_back({s.name, {cur, o}});
                pending_func = s.name;
                break;
              case Directive::EndFunc:
                if (pending_func.empty())
                    fatal("line ", s.line, ": .endfunc without .func");
                out.places[i] = {cur, o};
                out.labels.push_back(
                    {"__end_" + pending_func, {cur, o}});
                out.func_ends.push_back({pending_func, {cur, o}});
                pending_func.clear();
                break;
              default:
                support::panic("walkAddresses: unhandled directive");
            }
            break;
          }
        }
    }
    if (!pending_func.empty())
        fatal("unterminated .func ", pending_func);
    out.sizes = off;
    return out;
}

struct Bases {
    std::array<std::uint16_t, kNumSections> base{};
};

Bases
resolveBases(const WalkResult &walk, const LayoutSpec &layout)
{
    auto align2 = [](std::uint32_t v) { return (v + 1) & ~1u; };
    Bases b;
    b.base[0] = layout.text_base;
    std::uint32_t text_end = layout.text_base + walk.sizes[0];
    b.base[1] = layout.const_base.value_or(
        static_cast<std::uint16_t>(align2(text_end)));
    std::uint32_t const_end = b.base[1] + walk.sizes[1];
    b.base[2] = layout.data_base.value_or(
        static_cast<std::uint16_t>(align2(const_end)));
    std::uint32_t data_end = b.base[2] + walk.sizes[2];
    b.base[3] = layout.bss_base.value_or(
        static_cast<std::uint16_t>(align2(data_end)));
    std::uint32_t bss_end = b.base[3] + walk.sizes[3];
    for (int i = 0; i < kNumSections; ++i) {
        std::uint32_t end = b.base[i] + walk.sizes[i];
        if (end > 0x10000)
            fatal("section overflows the 16-bit address space");
    }
    (void)bss_end;
    return b;
}

/** Build the final symbol environment with rebased label addresses. */
SymbolEnv
buildEnv(const WalkResult &walk, const Bases &bases,
         const LayoutSpec &layout)
{
    SymbolEnv env = walk.env;
    namespace plat = swapram::platform;
    env.addrs["__CONSOLE"] = plat::kMmioConsole;
    env.addrs["__DONE"] = plat::kMmioDone;
    env.addrs["__PIN"] = plat::kMmioPin;
    env.addrs["__CYCLO"] = plat::kMmioCycleLo;
    env.addrs["__CYCHI"] = plat::kMmioCycleHi;
    // Linker-style section-boundary symbols (resolved per relaxation
    // pass, like labels): generated runtimes reference .data/.bss
    // without knowing the layout — e.g. the checkpoint machinery
    // snapshots the sections crt0 reinitialises on every boot.
    env.addrs["__sect_data_base"] = bases.base[2];
    env.addrs["__sect_data_size"] =
        static_cast<std::uint16_t>(walk.sizes[2]);
    env.addrs["__sect_bss_base"] = bases.base[3];
    env.addrs["__sect_bss_size"] =
        static_cast<std::uint16_t>(walk.sizes[3]);
    for (const auto &[name, value] : layout.predefined)
        env.addrs[name] = value;
    for (const auto &[name, place] : walk.labels) {
        std::uint16_t addr = static_cast<std::uint16_t>(
            bases.base[static_cast<int>(place.section)] + place.offset);
        auto [it, inserted] = env.addrs.insert({name, addr});
        if (!inserted)
            fatal("duplicate symbol '", name, "'");
    }
    return env;
}

/** Jump-inversion for relaxation; JN has no inverse (handled apart). */
std::optional<isa::Op>
invertJump(isa::Op op)
{
    using isa::Op;
    switch (op) {
      case Op::Jne: return Op::Jeq;
      case Op::Jeq: return Op::Jne;
      case Op::Jnc: return Op::Jc;
      case Op::Jc: return Op::Jnc;
      case Op::Jge: return Op::Jl;
      case Op::Jl: return Op::Jge;
      default: return std::nullopt;
    }
}

} // namespace

std::uint16_t
instrSize(const AsmInstr &instr)
{
    if (isa::opFormat(instr.op) == isa::OpFormat::Jump)
        return 2;
    return isa::encodedSize(lowerInstr(instr, nullptr, 0));
}

std::uint16_t
AssembleResult::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("unknown symbol '", name, "'");
    return it->second;
}

const FunctionInfo &
AssembleResult::function(const std::string &name) const
{
    for (const FunctionInfo &f : functions) {
        if (f.name == name)
            return f;
    }
    fatal("unknown function '", name, "'");
}

FunctionIndex::FunctionIndex(std::vector<FunctionInfo> functions)
    : funcs_(std::move(functions))
{
    std::sort(funcs_.begin(), funcs_.end(),
              [](const FunctionInfo &a, const FunctionInfo &b) {
                  return a.addr < b.addr;
              });
}

const FunctionInfo *
FunctionIndex::at(std::uint16_t addr) const
{
    auto it = std::upper_bound(
        funcs_.begin(), funcs_.end(), addr,
        [](std::uint16_t v, const FunctionInfo &f) {
            return v < f.addr;
        });
    if (it == funcs_.begin())
        return nullptr;
    --it;
    if (addr < static_cast<std::uint32_t>(it->addr) + it->size)
        return &*it;
    return nullptr;
}

std::string
FunctionIndex::label(std::uint16_t addr) const
{
    const FunctionInfo *f = at(addr);
    if (!f)
        return {};
    if (addr == f->addr)
        return f->name;
    return support::cat(f->name, "+0x", std::hex, addr - f->addr);
}

AssembleResult
assemble(const Program &program, const LayoutSpec &layout)
{
    Program work = program;
    int relax_counter = 0;

    for (int iteration = 0;; ++iteration) {
        if (iteration > 64)
            fatal("jump relaxation did not converge");

        WalkResult walk = walkAddresses(work);
        Bases bases = resolveBases(walk, layout);
        SymbolEnv env = buildEnv(walk, bases, layout);

        // Find every out-of-range jump, transform them all (from the
        // back so indices stay valid), and retry.
        std::vector<size_t> to_relax;
        for (size_t i = 0; i < work.stmts.size(); ++i) {
            Statement &s = work.stmts[i];
            if (s.kind != Statement::Kind::Instr)
                continue;
            if (isa::opFormat(s.instr.op) != isa::OpFormat::Jump)
                continue;
            std::uint16_t addr = static_cast<std::uint16_t>(
                bases.base[static_cast<int>(walk.places[i].section)] +
                walk.places[i].offset);
            std::uint16_t target = toWord(
                evalExpr(s.instr.jump_target, env, s.line), s.line);
            if (!isa::jumpInRange(addr, target))
                to_relax.push_back(i);
        }
        for (auto it = to_relax.rbegin(); it != to_relax.rend(); ++it) {
            size_t i = *it;
            Statement &s = work.stmts[i];
            std::vector<Statement> repl;
            Expr target_expr = s.instr.jump_target;
            if (s.instr.op == isa::Op::Jmp) {
                repl.push_back(Statement::makeInstr(
                    brImm(target_expr), s.line));
            } else if (auto inv = invertJump(s.instr.op)) {
                std::string skip =
                    "..rx" + std::to_string(relax_counter++);
                repl.push_back(Statement::makeInstr(
                    jump(*inv, Expr::sym(skip)), s.line));
                repl.push_back(Statement::makeInstr(
                    brImm(target_expr), s.line));
                repl.push_back(Statement::makeLabel(skip, s.line));
            } else {
                // JN: take/skip ladder.
                std::string take =
                    "..rx" + std::to_string(relax_counter++);
                std::string skip =
                    "..rx" + std::to_string(relax_counter++);
                repl.push_back(Statement::makeInstr(
                    jump(isa::Op::Jn, Expr::sym(take)), s.line));
                repl.push_back(Statement::makeInstr(
                    jump(isa::Op::Jmp, Expr::sym(skip)), s.line));
                repl.push_back(Statement::makeLabel(take, s.line));
                repl.push_back(Statement::makeInstr(
                    brImm(target_expr), s.line));
                repl.push_back(Statement::makeLabel(skip, s.line));
            }
            work.stmts.erase(work.stmts.begin() + i);
            work.stmts.insert(work.stmts.begin() + i, repl.begin(),
                              repl.end());
        }
        if (!to_relax.empty())
            continue;

        // Stable: emit.
        AssembleResult out;
        out.relaxed = work;
        out.stmt_addr.resize(work.stmts.size());
        std::array<std::vector<std::uint8_t>, kNumSections> buf;
        for (int sec = 0; sec < kNumSections; ++sec)
            buf[sec].assign(walk.sizes[sec], 0);

        for (size_t i = 0; i < work.stmts.size(); ++i) {
            const Statement &s = work.stmts[i];
            const Placement &place = walk.places[i];
            int sec = static_cast<int>(place.section);
            std::uint16_t addr = static_cast<std::uint16_t>(
                bases.base[sec] + place.offset);
            out.stmt_addr[i] = addr;
            auto put_byte = [&](std::uint32_t off, std::uint8_t v) {
                buf[sec].at(off) = v;
            };
            auto put_word = [&](std::uint32_t off, std::uint16_t v) {
                buf[sec].at(off) = static_cast<std::uint8_t>(v & 0xFF);
                buf[sec].at(off + 1) = static_cast<std::uint8_t>(v >> 8);
            };
            switch (s.kind) {
              case Statement::Kind::Label:
                break;
              case Statement::Kind::Instr: {
                isa::Instr instr = lowerInstr(s.instr, &env, s.line);
                auto words = isa::encode(instr, addr);
                std::uint32_t off = place.offset;
                for (std::uint16_t w : words) {
                    put_word(off, w);
                    off += 2;
                }
                break;
              }
              case Statement::Kind::Directive: {
                switch (s.directive) {
                  case Directive::Word: {
                    std::uint32_t off = place.offset;
                    for (const Expr &arg : s.args) {
                        put_word(off,
                                 toWord(evalExpr(arg, env, s.line),
                                        s.line));
                        off += 2;
                    }
                    break;
                  }
                  case Directive::Byte: {
                    std::uint32_t off = place.offset;
                    for (const Expr &arg : s.args) {
                        std::int64_t v = evalExpr(arg, env, s.line);
                        if (v < -128 || v > 255) {
                            fatal("line ", s.line, ": byte value ", v,
                                  " out of range");
                        }
                        put_byte(off++,
                                 static_cast<std::uint8_t>(v & 0xFF));
                    }
                    break;
                  }
                  case Directive::Ascii:
                  case Directive::Asciz: {
                    std::uint32_t off = place.offset;
                    for (char c : s.str)
                        put_byte(off++, static_cast<std::uint8_t>(c));
                    if (s.directive == Directive::Asciz)
                        put_byte(off, 0);
                    break;
                  }
                  default:
                    break; // space/align are zero fill; others no bytes
                }
                break;
              }
            }
        }

        out.image.text = {bases.base[0], walk.sizes[0]};
        out.image.cnst = {bases.base[1], walk.sizes[1]};
        out.image.data = {bases.base[2], walk.sizes[2]};
        out.image.bss = {bases.base[3], walk.sizes[3]};
        for (int sec = 0; sec < 3; ++sec) {
            if (!buf[sec].empty())
                out.image.chunks.push_back(
                    {bases.base[sec], std::move(buf[sec])});
        }
        for (const auto &[name, value] : env.addrs)
            out.symbols[name] = value;
        for (size_t f = 0; f < walk.func_starts.size(); ++f) {
            const auto &[name, start] = walk.func_starts[f];
            const auto &[end_name, end] = walk.func_ends[f];
            if (end_name != name)
                support::panic("function bookkeeping out of order");
            FunctionInfo info;
            info.name = name;
            info.addr = static_cast<std::uint16_t>(
                bases.base[static_cast<int>(start.section)] +
                start.offset);
            info.size =
                static_cast<std::uint16_t>(end.offset - start.offset);
            out.functions.push_back(std::move(info));
        }
        auto entry_it = out.symbols.find("__start");
        out.image.entry = entry_it != out.symbols.end()
                              ? entry_it->second
                              : bases.base[0];
        return out;
    }
}

} // namespace swapram::masm
