#include "masm/printer.hh"

#include "support/strings.hh"

namespace swapram::masm {

std::string
listing(const AssembleResult &result)
{
    std::string out;
    for (size_t i = 0; i < result.relaxed.stmts.size(); ++i) {
        out += support::hex16(result.stmt_addr[i]);
        out += "  ";
        out += result.relaxed.stmts[i].text();
        out += "\n";
    }
    return out;
}

std::string
sectionSummary(const Image &image)
{
    auto line = [](const char *name, const Range &r) {
        return std::string(name) + " " + support::hex16(r.base) + ".." +
               support::hex16(static_cast<std::uint16_t>(r.end())) + " (" +
               std::to_string(r.size) + " bytes)\n";
    };
    std::string out;
    out += line(".text ", image.text);
    out += line(".const", image.cnst);
    out += line(".data ", image.data);
    out += line(".bss  ", image.bss);
    return out;
}

} // namespace swapram::masm
