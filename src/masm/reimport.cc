#include "masm/reimport.hh"

#include <map>
#include <set>

#include "isa/decode.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace swapram::masm {

namespace {

/** Read one word from the image's chunks. */
std::uint16_t
readWord(const Image &image, std::uint16_t addr)
{
    for (const Chunk &chunk : image.chunks) {
        if (addr >= chunk.base &&
            static_cast<std::size_t>(addr - chunk.base) + 1 <
                chunk.bytes.size()) {
            std::size_t off = addr - chunk.base;
            return static_cast<std::uint16_t>(
                chunk.bytes[off] | (chunk.bytes[off + 1] << 8));
        }
    }
    support::fatal("reimport: address ", support::hex16(addr),
                   " not in any image chunk");
}

std::string
labelFor(std::uint16_t addr)
{
    return "L_" + std::to_string(addr);
}

/** Convert a numeric operand back to symbolic form. */
AsmOperand
liftOperand(const isa::Operand &op, std::uint16_t fbegin,
            std::uint32_t fend,
            const std::map<std::uint16_t, std::string> &addr_syms)
{
    auto lift_value = [&](std::uint16_t value) -> Expr {
        if (value >= fbegin && value < fend)
            return Expr::sym(labelFor(value));
        auto it = addr_syms.find(value);
        if (it != addr_syms.end())
            return Expr::sym(it->second);
        return Expr::num(value);
    };
    switch (op.mode) {
      case isa::Mode::Register:
        return AsmOperand::reg_(op.reg);
      case isa::Mode::Indexed:
        // The index may be a plain offset (stays numeric) or a table
        // base like `tbl(R14)` — lift it when it matches a symbol.
        return AsmOperand::indexed(op.reg, lift_value(op.value));
      case isa::Mode::Symbolic:
        // PC-relative data reference: lift to absolute so the code is
        // relocatable (what SwapRAM's pass would do anyway).
        return AsmOperand::abs(lift_value(op.value));
      case isa::Mode::Absolute:
        return AsmOperand::abs(lift_value(op.value));
      case isa::Mode::Indirect:
        return AsmOperand::indirect(op.reg, false);
      case isa::Mode::IndirectInc:
        return AsmOperand::indirect(op.reg, true);
      case isa::Mode::Immediate:
        return AsmOperand::imm(lift_value(op.value));
    }
    support::panic("liftOperand: bad mode");
}

} // namespace

Program
reimportFunction(
    const Image &image, const FunctionInfo &info,
    const std::unordered_map<std::uint16_t, std::string> &func_names)
{
    const std::uint16_t fbegin = info.addr;
    const std::uint32_t fend = info.addr + info.size;

    // Pass 1: decode everything; gather intra-function branch targets.
    std::vector<std::pair<std::uint16_t, isa::Instr>> instrs;
    std::set<std::uint16_t> targets;
    std::uint16_t addr = fbegin;
    while (addr < fend) {
        std::uint16_t words[3] = {readWord(image, addr), 0, 0};
        isa::Shape shape = isa::decodeShape(words[0]);
        for (int w = 0; w < shape.totalExt(); ++w) {
            words[w + 1] =
                readWord(image, static_cast<std::uint16_t>(addr + 2 * (w + 1)));
        }
        isa::Decoded d = isa::decodeAt(words, addr);
        const isa::Instr &instr = d.instr;
        if (isa::opFormat(instr.op) == isa::OpFormat::Jump) {
            if (instr.jump_target >= fbegin && instr.jump_target < fend)
                targets.insert(instr.jump_target);
            else
                support::fatal("reimport: jump out of function at ",
                               support::hex16(addr));
        }
        // Absolute branch MOV #imm, PC: an intra-function target.
        if (instr.op == isa::Op::Mov &&
            instr.dst.mode == isa::Mode::Register &&
            instr.dst.reg == isa::Reg::PC &&
            instr.src.mode == isa::Mode::Immediate &&
            instr.src.value >= fbegin && instr.src.value < fend) {
            targets.insert(instr.src.value);
        }
        instrs.push_back({addr, instr});
        addr = static_cast<std::uint16_t>(addr + d.size_bytes);
    }

    // Symbol map for lifting call targets and data addresses.
    std::map<std::uint16_t, std::string> addr_syms;
    for (const auto &[faddr, name] : func_names)
        addr_syms[faddr] = name;

    // Pass 2: emit statements.
    Program out;
    Statement func = Statement::makeDirective(Directive::Func);
    func.name = info.name;
    out.stmts.push_back(std::move(func));
    for (const auto &[iaddr, instr] : instrs) {
        if (targets.count(iaddr))
            out.stmts.push_back(Statement::makeLabel(labelFor(iaddr)));
        AsmInstr ai;
        ai.op = instr.op;
        ai.byte = instr.byte;
        switch (isa::opFormat(instr.op)) {
          case isa::OpFormat::Jump:
            ai.jump_target = Expr::sym(labelFor(instr.jump_target));
            break;
          case isa::OpFormat::SingleOperand:
            if (instr.op != isa::Op::Reti)
                ai.dst = liftOperand(instr.dst, fbegin, fend, addr_syms);
            break;
          case isa::OpFormat::DoubleOperand:
            ai.src = liftOperand(instr.src, fbegin, fend, addr_syms);
            ai.dst = liftOperand(instr.dst, fbegin, fend, addr_syms);
            break;
        }
        out.stmts.push_back(Statement::makeInstr(std::move(ai)));
    }
    out.stmts.push_back(Statement::makeDirective(Directive::EndFunc));
    return out;
}

Program
reimportAllFunctions(const AssembleResult &assembled)
{
    // addr -> name for every symbol (functions and data); generated
    // bookkeeping symbols are skipped.
    std::unordered_map<std::uint16_t, std::string> names;
    for (const auto &[name, addr] : assembled.symbols) {
        if (support::startsWith(name, "__end_") ||
            support::startsWith(name, "..rx")) {
            continue;
        }
        auto [it, inserted] = names.emplace(addr, name);
        if (!inserted && name < it->second)
            it->second = name; // deterministic choice
    }
    Program out;
    out.stmts.push_back(Statement::makeDirective(Directive::Text));
    for (const FunctionInfo &f : assembled.functions) {
        Program one = reimportFunction(assembled.image, f, names);
        out.append(one);
    }
    return out;
}

} // namespace swapram::masm
