/**
 * @file
 * Binary re-import: reconstruct instrumentable assembly from an
 * assembled image — the equivalent of the paper's §4 "Library
 * Instrumentation" flow (objdump + a script that regenerates
 * gcc-parsable assembly for precompiled library functions so SwapRAM
 * can cache them).
 *
 * Disassembly recovers exactly the information SwapRAM needs:
 * intra-function branch destinations (turned back into labels) and
 * function boundaries; call targets are resolved back to function
 * names through the symbol table so the instrumentation pass can
 * redirect them.
 */

#ifndef SWAPRAM_MASM_REIMPORT_HH
#define SWAPRAM_MASM_REIMPORT_HH

#include <string>
#include <unordered_map>

#include "masm/assembler.hh"
#include "masm/ast.hh"

namespace swapram::masm {

/**
 * Disassemble the function at [info.addr, info.addr+info.size) from
 * the image bytes back into a `.func` region.
 *
 * @param image      the assembled image holding the code bytes
 * @param info       the function's extent
 * @param func_names addr -> name map used to re-symbolize CALL targets
 *                   (typically built from AssembleResult::functions)
 * @return statements: .func name ... .endfunc, with `L_<addr>` labels
 *         for every intra-function branch target.
 */
Program reimportFunction(
    const Image &image, const FunctionInfo &info,
    const std::unordered_map<std::uint16_t, std::string> &func_names);

/** Re-import every function of an assembled program. */
Program reimportAllFunctions(const AssembleResult &assembled);

} // namespace swapram::masm

#endif // SWAPRAM_MASM_REIMPORT_HH
