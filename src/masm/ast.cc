#include "masm/ast.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace swapram::masm {

Expr
Expr::num(std::int64_t value)
{
    Expr e;
    e.kind_ = Kind::Number;
    e.number_ = value;
    return e;
}

Expr
Expr::sym(std::string name)
{
    Expr e;
    e.kind_ = Kind::Symbol;
    e.symbol_ = std::move(name);
    return e;
}

Expr
Expr::binary(Kind kind, Expr lhs, Expr rhs)
{
    Expr e;
    e.kind_ = kind;
    e.lhs_ = std::make_shared<const Expr>(std::move(lhs));
    e.rhs_ = std::make_shared<const Expr>(std::move(rhs));
    return e;
}

Expr
Expr::add(Expr lhs, Expr rhs)
{
    return binary(Kind::Add, std::move(lhs), std::move(rhs));
}

Expr
Expr::sub(Expr lhs, Expr rhs)
{
    return binary(Kind::Sub, std::move(lhs), std::move(rhs));
}

Expr
Expr::mul(Expr lhs, Expr rhs)
{
    return binary(Kind::Mul, std::move(lhs), std::move(rhs));
}

Expr
Expr::neg(Expr operand)
{
    Expr e;
    e.kind_ = Kind::Neg;
    e.lhs_ = std::make_shared<const Expr>(std::move(operand));
    return e;
}

std::optional<std::int64_t>
Expr::constantFold() const
{
    switch (kind_) {
      case Kind::Number:
        return number_;
      case Kind::Symbol:
        return std::nullopt;
      case Kind::Neg: {
        auto v = lhs_->constantFold();
        if (!v)
            return std::nullopt;
        return -*v;
      }
      default: {
        auto l = lhs_->constantFold();
        auto r = rhs_->constantFold();
        if (!l || !r)
            return std::nullopt;
        switch (kind_) {
          case Kind::Add: return *l + *r;
          case Kind::Sub: return *l - *r;
          case Kind::Mul: return *l * *r;
          case Kind::Div:
            if (*r == 0)
                return std::nullopt;
            return *l / *r;
          case Kind::ShiftLeft: return *l << (*r & 63);
          case Kind::ShiftRight:
            return static_cast<std::int64_t>(
                static_cast<std::uint64_t>(*l) >> (*r & 63));
          case Kind::And: return *l & *r;
          case Kind::Or: return *l | *r;
          default:
            return std::nullopt;
        }
      }
    }
}

std::string
Expr::text() const
{
    switch (kind_) {
      case Kind::Number:
        return std::to_string(number_);
      case Kind::Symbol:
        return symbol_;
      case Kind::Neg:
        return "-(" + lhs_->text() + ")";
      default: {
        const char *op = "?";
        switch (kind_) {
          case Kind::Add: op = "+"; break;
          case Kind::Sub: op = "-"; break;
          case Kind::Mul: op = "*"; break;
          case Kind::Div: op = "/"; break;
          case Kind::ShiftLeft: op = "<<"; break;
          case Kind::ShiftRight: op = ">>"; break;
          case Kind::And: op = "&"; break;
          case Kind::Or: op = "|"; break;
          default: break;
        }
        return "(" + lhs_->text() + op + rhs_->text() + ")";
      }
    }
}

std::string
AsmOperand::text() const
{
    switch (kind) {
      case OperKind::Register:
        return isa::regName(reg);
      case OperKind::Indexed:
        return expr.text() + "(" + isa::regName(reg) + ")";
      case OperKind::SymbolicMem:
        return expr.text();
      case OperKind::Absolute:
        return "&" + expr.text();
      case OperKind::Indirect:
        return "@" + isa::regName(reg);
      case OperKind::IndirectInc:
        return "@" + isa::regName(reg) + "+";
      case OperKind::Immediate:
        return "#" + expr.text();
    }
    support::panic("AsmOperand::text: bad kind");
}

std::string
AsmInstr::text() const
{
    std::string out = isa::opMnemonic(op);
    if (byte)
        out += ".B";
    switch (isa::opFormat(op)) {
      case isa::OpFormat::Jump:
        return out + " " + jump_target.text();
      case isa::OpFormat::SingleOperand:
        if (op == isa::Op::Reti)
            return out;
        return out + " " + dst->text();
      case isa::OpFormat::DoubleOperand:
        return out + " " + src->text() + ", " + dst->text();
    }
    support::panic("AsmInstr::text: bad format");
}

Statement
Statement::makeLabel(std::string name_, int line_)
{
    Statement s;
    s.kind = Kind::Label;
    s.label = std::move(name_);
    s.line = line_;
    return s;
}

Statement
Statement::makeInstr(AsmInstr instr_, int line_)
{
    Statement s;
    s.kind = Kind::Instr;
    s.instr = std::move(instr_);
    s.line = line_;
    return s;
}

Statement
Statement::makeDirective(Directive d, int line_)
{
    Statement s;
    s.kind = Kind::Directive;
    s.directive = d;
    s.line = line_;
    return s;
}

std::string
Statement::text() const
{
    switch (kind) {
      case Kind::Label:
        return label + ":";
      case Kind::Instr:
        return "        " + instr.text();
      case Kind::Directive: {
        auto args_text = [this]() {
            std::string out;
            for (size_t i = 0; i < args.size(); ++i) {
                if (i)
                    out += ", ";
                out += args[i].text();
            }
            return out;
        };
        switch (directive) {
          case Directive::Text: return "        .text";
          case Directive::Const: return "        .const";
          case Directive::Data: return "        .data";
          case Directive::Bss: return "        .bss";
          case Directive::Word: return "        .word " + args_text();
          case Directive::Byte: return "        .byte " + args_text();
          case Directive::Space: return "        .space " + args_text();
          case Directive::Align: return "        .align " + args_text();
          case Directive::Ascii: return "        .ascii \"" + str + "\"";
          case Directive::Asciz: return "        .asciz \"" + str + "\"";
          case Directive::Global: return "        .global " + name;
          case Directive::Equ:
            return "        .equ " + name + ", " + args_text();
          case Directive::Func: return "        .func " + name;
          case Directive::EndFunc: return "        .endfunc";
        }
        support::panic("Statement::text: bad directive");
      }
    }
    support::panic("Statement::text: bad kind");
}

void
Program::append(const Program &other)
{
    stmts.insert(stmts.end(), other.stmts.begin(), other.stmts.end());
}

std::string
Program::text() const
{
    std::string out;
    for (const Statement &s : stmts) {
        out += s.text();
        out += "\n";
    }
    return out;
}

std::vector<FuncRange>
findFunctions(const Program &program)
{
    std::vector<FuncRange> funcs;
    bool open = false;
    size_t open_idx = 0;
    std::string open_name;
    for (size_t i = 0; i < program.stmts.size(); ++i) {
        const Statement &s = program.stmts[i];
        if (s.kind != Statement::Kind::Directive)
            continue;
        if (s.directive == Directive::Func) {
            if (open)
                support::fatal("nested .func at line ", s.line);
            open = true;
            open_idx = i;
            open_name = s.name;
        } else if (s.directive == Directive::EndFunc) {
            if (!open)
                support::fatal(".endfunc without .func at line ", s.line);
            funcs.push_back({open_name, open_idx, i});
            open = false;
        }
    }
    if (open)
        support::fatal("unterminated .func ", open_name);
    return funcs;
}

AsmInstr
movInstr(AsmOperand src, AsmOperand dst, bool byte)
{
    AsmInstr instr;
    instr.op = isa::Op::Mov;
    instr.byte = byte;
    instr.src = std::move(src);
    instr.dst = std::move(dst);
    return instr;
}

AsmInstr
callImm(Expr target)
{
    AsmInstr instr;
    instr.op = isa::Op::Call;
    instr.dst = AsmOperand::imm(std::move(target));
    return instr;
}

AsmInstr
callAbs(Expr cell_address)
{
    AsmInstr instr;
    instr.op = isa::Op::Call;
    instr.dst = AsmOperand::abs(std::move(cell_address));
    return instr;
}

AsmInstr
brImm(Expr target)
{
    return movInstr(AsmOperand::imm(std::move(target)),
                    AsmOperand::reg_(isa::Reg::PC));
}

AsmInstr
brAbs(Expr cell)
{
    return movInstr(AsmOperand::abs(std::move(cell)),
                    AsmOperand::reg_(isa::Reg::PC));
}

AsmInstr
addImmToAbs(std::int64_t value, Expr cell)
{
    AsmInstr instr;
    instr.op = isa::Op::Add;
    instr.src = AsmOperand::imm(Expr::num(value));
    instr.dst = AsmOperand::abs(std::move(cell));
    return instr;
}

AsmInstr
subImmFromAbs(std::int64_t value, Expr cell)
{
    AsmInstr instr;
    instr.op = isa::Op::Sub;
    instr.src = AsmOperand::imm(Expr::num(value));
    instr.dst = AsmOperand::abs(std::move(cell));
    return instr;
}

AsmInstr
jump(isa::Op op, Expr target)
{
    AsmInstr instr;
    instr.op = op;
    instr.jump_target = std::move(target);
    return instr;
}

} // namespace swapram::masm
