#include "masm/parser.hh"

#include <functional>
#include <sstream>
#include <unordered_map>

#include "masm/lexer.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace swapram::masm {

namespace {

/** Token cursor over one line. */
class Cursor
{
  public:
    Cursor(const std::vector<Token> &tokens, int line)
        : tokens_(tokens), line_(line)
    {}

    const Token &peek() const { return tokens_[pos_]; }
    const Token &
    next()
    {
        const Token &t = tokens_[pos_];
        if (t.kind != TokKind::End)
            ++pos_;
        return t;
    }
    bool atEnd() const { return peek().kind == TokKind::End; }

    bool
    eatPunct(const char *p)
    {
        if (peek().isPunct(p)) {
            next();
            return true;
        }
        return false;
    }

    void
    expectPunct(const char *p)
    {
        if (!eatPunct(p))
            fail(std::string("expected '") + p + "'");
    }

    [[noreturn]] void
    fail(const std::string &what) const
    {
        support::fatal("line ", line_, ": ", what);
    }

    int line() const { return line_; }

  private:
    const std::vector<Token> &tokens_;
    int line_;
    size_t pos_ = 0;
};

Expr parseExpr(Cursor &cur);

Expr
parsePrimary(Cursor &cur)
{
    const Token &t = cur.peek();
    if (t.kind == TokKind::Number) {
        cur.next();
        return Expr::num(t.number);
    }
    if (t.kind == TokKind::Ident) {
        cur.next();
        return Expr::sym(t.text);
    }
    if (t.isPunct("(")) {
        cur.next();
        Expr inner = parseExpr(cur);
        cur.expectPunct(")");
        return inner;
    }
    cur.fail("expected expression");
}

Expr
parseUnary(Cursor &cur)
{
    if (cur.eatPunct("-"))
        return Expr::neg(parseUnary(cur));
    if (cur.eatPunct("+"))
        return parseUnary(cur);
    return parsePrimary(cur);
}

Expr
parseMul(Cursor &cur)
{
    Expr lhs = parseUnary(cur);
    while (true) {
        if (cur.eatPunct("*"))
            lhs = Expr::binary(Expr::Kind::Mul, std::move(lhs),
                               parseUnary(cur));
        else if (cur.eatPunct("/"))
            lhs = Expr::binary(Expr::Kind::Div, std::move(lhs),
                               parseUnary(cur));
        else
            return lhs;
    }
}

Expr
parseAdd(Cursor &cur)
{
    Expr lhs = parseMul(cur);
    while (true) {
        if (cur.eatPunct("+"))
            lhs = Expr::add(std::move(lhs), parseMul(cur));
        else if (cur.eatPunct("-"))
            lhs = Expr::sub(std::move(lhs), parseMul(cur));
        else
            return lhs;
    }
}

Expr
parseShift(Cursor &cur)
{
    Expr lhs = parseAdd(cur);
    while (true) {
        if (cur.eatPunct("<<"))
            lhs = Expr::binary(Expr::Kind::ShiftLeft, std::move(lhs),
                               parseAdd(cur));
        else if (cur.eatPunct(">>"))
            lhs = Expr::binary(Expr::Kind::ShiftRight, std::move(lhs),
                               parseAdd(cur));
        else
            return lhs;
    }
}

Expr
parseExprNoBitops(Cursor &cur)
{
    return parseShift(cur);
}

Expr
parseExpr(Cursor &cur)
{
    Expr lhs = parseShift(cur);
    while (true) {
        if (cur.eatPunct("&"))
            lhs = Expr::binary(Expr::Kind::And, std::move(lhs),
                               parseShift(cur));
        else if (cur.eatPunct("|"))
            lhs = Expr::binary(Expr::Kind::Or, std::move(lhs),
                               parseShift(cur));
        else
            return lhs;
    }
}

/**
 * Parse one operand. Binary '&'/'|' are not allowed at the top level of a
 * bare-expression operand (the '&' prefix means absolute mode); use
 * parentheses for them.
 */
AsmOperand
parseOperand(Cursor &cur)
{
    if (cur.eatPunct("#"))
        return AsmOperand::imm(parseExpr(cur));
    if (cur.eatPunct("&"))
        return AsmOperand::abs(parseExpr(cur));
    if (cur.eatPunct("@")) {
        const Token &t = cur.next();
        if (t.kind != TokKind::Ident)
            cur.fail("expected register after '@'");
        auto reg = isa::parseReg(t.text);
        if (!reg)
            cur.fail("bad register '" + t.text + "'");
        bool post_inc = cur.eatPunct("+");
        return AsmOperand::indirect(*reg, post_inc);
    }
    // Bare register?
    if (cur.peek().kind == TokKind::Ident) {
        auto reg = isa::parseReg(cur.peek().text);
        if (reg) {
            // Only a register if not followed by an arithmetic
            // continuation (a symbol could collide with a register name;
            // we forbid such symbols instead).
            cur.next();
            return AsmOperand::reg_(*reg);
        }
    }
    Expr e = parseExprNoBitops(cur);
    if (cur.eatPunct("(")) {
        const Token &t = cur.next();
        if (t.kind != TokKind::Ident)
            cur.fail("expected register in X(Rn)");
        auto reg = isa::parseReg(t.text);
        if (!reg)
            cur.fail("bad register '" + t.text + "'");
        cur.expectPunct(")");
        return AsmOperand::indexed(*reg, std::move(e));
    }
    return AsmOperand::mem(std::move(e));
}

struct Mnemonic {
    std::string base; ///< upper-case, without suffix
    bool byte = false;
};

Mnemonic
splitMnemonic(const std::string &raw, Cursor &cur)
{
    std::string upper = support::toUpper(raw);
    Mnemonic m;
    size_t dot = upper.rfind('.');
    if (dot != std::string::npos && dot > 0) {
        std::string suffix = upper.substr(dot + 1);
        if (suffix == "B") {
            m.byte = true;
            upper = upper.substr(0, dot);
        } else if (suffix == "W") {
            upper = upper.substr(0, dot);
        } else {
            cur.fail("bad mnemonic suffix '." + suffix + "'");
        }
    }
    m.base = upper;
    return m;
}

AsmInstr
makeFormatI(isa::Op op, bool byte, AsmOperand src, AsmOperand dst)
{
    AsmInstr instr;
    instr.op = op;
    instr.byte = byte;
    instr.src = std::move(src);
    instr.dst = std::move(dst);
    return instr;
}

/** Expand an emulated mnemonic, or return nullopt if not one. */
std::optional<AsmInstr>
expandPseudo(const std::string &base, bool byte,
             std::vector<AsmOperand> ops, Cursor &cur)
{
    using isa::Op;
    auto want = [&](size_t n) {
        if (ops.size() != n) {
            cur.fail(base + " expects " + std::to_string(n) +
                     " operand(s)");
        }
    };
    auto sr = AsmOperand::reg_(isa::Reg::SR);
    auto pc = AsmOperand::reg_(isa::Reg::PC);
    auto immN = [](std::int64_t v) { return AsmOperand::imm(Expr::num(v)); };
    auto sp_inc = AsmOperand::indirect(isa::Reg::SP, true);

    if (base == "NOP") {
        want(0);
        return makeFormatI(Op::Mov, false, immN(0),
                           AsmOperand::reg_(isa::Reg::CG2));
    }
    if (base == "RET") {
        want(0);
        return makeFormatI(Op::Mov, false, sp_inc, pc);
    }
    if (base == "POP") {
        want(1);
        return makeFormatI(Op::Mov, byte, sp_inc, std::move(ops[0]));
    }
    if (base == "BR") {
        want(1);
        return makeFormatI(Op::Mov, false, std::move(ops[0]), pc);
    }
    if (base == "CLR") {
        want(1);
        return makeFormatI(Op::Mov, byte, immN(0), std::move(ops[0]));
    }
    if (base == "CLRC") { want(0); return makeFormatI(Op::Bic, false, immN(1), sr); }
    if (base == "SETC") { want(0); return makeFormatI(Op::Bis, false, immN(1), sr); }
    if (base == "CLRZ") { want(0); return makeFormatI(Op::Bic, false, immN(2), sr); }
    if (base == "SETZ") { want(0); return makeFormatI(Op::Bis, false, immN(2), sr); }
    if (base == "CLRN") { want(0); return makeFormatI(Op::Bic, false, immN(4), sr); }
    if (base == "SETN") { want(0); return makeFormatI(Op::Bis, false, immN(4), sr); }
    if (base == "DINT") { want(0); return makeFormatI(Op::Bic, false, immN(8), sr); }
    if (base == "EINT") { want(0); return makeFormatI(Op::Bis, false, immN(8), sr); }
    if (base == "INC") {
        want(1);
        return makeFormatI(Op::Add, byte, immN(1), std::move(ops[0]));
    }
    if (base == "INCD") {
        want(1);
        return makeFormatI(Op::Add, byte, immN(2), std::move(ops[0]));
    }
    if (base == "DEC") {
        want(1);
        return makeFormatI(Op::Sub, byte, immN(1), std::move(ops[0]));
    }
    if (base == "DECD") {
        want(1);
        return makeFormatI(Op::Sub, byte, immN(2), std::move(ops[0]));
    }
    if (base == "INV") {
        want(1);
        return makeFormatI(Op::Xor, byte, immN(0xFFFF), std::move(ops[0]));
    }
    if (base == "TST") {
        want(1);
        return makeFormatI(Op::Cmp, byte, immN(0), std::move(ops[0]));
    }
    if (base == "ADC") {
        want(1);
        return makeFormatI(Op::Addc, byte, immN(0), std::move(ops[0]));
    }
    if (base == "SBC") {
        want(1);
        return makeFormatI(Op::Subc, byte, immN(0), std::move(ops[0]));
    }
    if (base == "DADC") {
        want(1);
        return makeFormatI(Op::Dadd, byte, immN(0), std::move(ops[0]));
    }
    if (base == "RLA") {
        want(1);
        AsmOperand copy = ops[0];
        return makeFormatI(Op::Add, byte, std::move(copy),
                           std::move(ops[0]));
    }
    if (base == "RLC") {
        want(1);
        AsmOperand copy = ops[0];
        return makeFormatI(Op::Addc, byte, std::move(copy),
                           std::move(ops[0]));
    }
    return std::nullopt;
}

Directive
directiveFromName(const std::string &lower, Cursor &cur)
{
    static const std::unordered_map<std::string, Directive> table = {
        {".text", Directive::Text},   {".const", Directive::Const},
        {".data", Directive::Data},   {".bss", Directive::Bss},
        {".word", Directive::Word},   {".byte", Directive::Byte},
        {".space", Directive::Space}, {".align", Directive::Align},
        {".ascii", Directive::Ascii}, {".asciz", Directive::Asciz},
        {".global", Directive::Global}, {".globl", Directive::Global},
        {".equ", Directive::Equ},     {".set", Directive::Equ},
        {".func", Directive::Func},   {".endfunc", Directive::EndFunc},
    };
    auto it = table.find(lower);
    if (it == table.end())
        cur.fail("unknown directive '" + lower + "'");
    return it->second;
}

void
parseDirective(Cursor &cur, const std::string &name, Program &out)
{
    Directive d = directiveFromName(support::toLower(name), cur);
    Statement stmt = Statement::makeDirective(d, cur.line());
    switch (d) {
      case Directive::Text:
      case Directive::Const:
      case Directive::Data:
      case Directive::Bss:
      case Directive::EndFunc:
        break;
      case Directive::Word:
      case Directive::Byte:
      case Directive::Space:
      case Directive::Align: {
        stmt.args.push_back(parseExpr(cur));
        while (cur.eatPunct(","))
            stmt.args.push_back(parseExpr(cur));
        break;
      }
      case Directive::Ascii:
      case Directive::Asciz: {
        const Token &t = cur.next();
        if (t.kind != TokKind::String)
            cur.fail("expected string literal");
        stmt.str = t.text;
        break;
      }
      case Directive::Global:
      case Directive::Func: {
        const Token &t = cur.next();
        if (t.kind != TokKind::Ident)
            cur.fail("expected name");
        stmt.name = t.text;
        break;
      }
      case Directive::Equ: {
        const Token &t = cur.next();
        if (t.kind != TokKind::Ident)
            cur.fail("expected name");
        stmt.name = t.text;
        cur.expectPunct(",");
        stmt.args.push_back(parseExpr(cur));
        break;
      }
    }
    if (!cur.atEnd())
        cur.fail("trailing junk after directive");
    out.stmts.push_back(std::move(stmt));
}

void
parseInstruction(Cursor &cur, const std::string &raw, Program &out)
{
    Mnemonic m = splitMnemonic(raw, cur);
    std::vector<AsmOperand> ops;
    // RETI and pseudo-ops with zero operands have nothing to parse.
    if (!cur.atEnd()) {
        ops.push_back(parseOperand(cur));
        while (cur.eatPunct(","))
            ops.push_back(parseOperand(cur));
    }
    if (!cur.atEnd())
        cur.fail("trailing junk after instruction");

    if (auto pseudo = expandPseudo(m.base, m.byte, ops, cur)) {
        out.stmts.push_back(
            Statement::makeInstr(std::move(*pseudo), cur.line()));
        return;
    }

    auto op = isa::parseOp(m.base);
    if (!op)
        cur.fail("unknown mnemonic '" + m.base + "'");
    if (m.byte && !isa::supportsByte(*op))
        cur.fail(m.base + " has no .B form");

    AsmInstr instr;
    instr.op = *op;
    instr.byte = m.byte;
    switch (isa::opFormat(*op)) {
      case isa::OpFormat::Jump: {
        if (ops.size() != 1)
            cur.fail("jump expects one target");
        const AsmOperand &target = ops[0];
        if (target.kind != OperKind::SymbolicMem)
            cur.fail("jump target must be a label/expression");
        instr.jump_target = target.expr;
        break;
      }
      case isa::OpFormat::SingleOperand: {
        if (*op == isa::Op::Reti) {
            if (!ops.empty())
                cur.fail("RETI takes no operand");
            break;
        }
        if (ops.size() != 1)
            cur.fail(m.base + " expects one operand");
        instr.dst = std::move(ops[0]);
        break;
      }
      case isa::OpFormat::DoubleOperand: {
        if (ops.size() != 2)
            cur.fail(m.base + " expects two operands");
        instr.src = std::move(ops[0]);
        instr.dst = std::move(ops[1]);
        break;
      }
    }
    out.stmts.push_back(Statement::makeInstr(std::move(instr), cur.line()));
}

} // namespace

Program
parse(const std::string &source)
{
    Program program;
    std::istringstream stream(source);
    std::string line_text;
    int line = 0;
    while (std::getline(stream, line_text)) {
        ++line;
        std::vector<Token> tokens = lexLine(line_text, line);
        Cursor cur(tokens, line);
        // Leading labels.
        while (cur.peek().kind == TokKind::Ident &&
               cur.peek().text[0] != '.') {
            // Lookahead for ':' requires a second cursor trick: labels and
            // mnemonics are both idents; a label is an ident followed by
            // ':'.
            Token ident = cur.peek();
            Cursor probe = cur;
            probe.next();
            if (!probe.peek().isPunct(":"))
                break;
            cur.next();
            cur.next(); // ':'
            program.stmts.push_back(
                Statement::makeLabel(ident.text, line));
        }
        if (cur.atEnd())
            continue;
        const Token &head = cur.peek();
        if (head.kind != TokKind::Ident)
            cur.fail("expected mnemonic or directive");
        std::string name = head.text;
        cur.next();
        if (name[0] == '.')
            parseDirective(cur, name, program);
        else
            parseInstruction(cur, name, program);
    }
    return program;
}

} // namespace swapram::masm
