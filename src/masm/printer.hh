/**
 * @file
 * Human-readable listings of assembled programs (address + source text),
 * used by examples and debugging dumps of transformed code.
 */

#ifndef SWAPRAM_MASM_PRINTER_HH
#define SWAPRAM_MASM_PRINTER_HH

#include <string>

#include "masm/assembler.hh"

namespace swapram::masm {

/** Render "ADDR  statement" lines for the whole assembled program. */
std::string listing(const AssembleResult &result);

/** Summarize section placement ("text 0x8000..0x9234 (4660 bytes)"...). */
std::string sectionSummary(const Image &image);

} // namespace swapram::masm

#endif // SWAPRAM_MASM_PRINTER_HH
