/**
 * @file
 * Two-pass assembler with jump relaxation.
 *
 * assemble() computes a layout for the program's sections, iteratively
 * relaxes out-of-range relative jumps into absolute branches (the same
 * behaviour the paper relies on from msp430-gcc, §4), resolves symbols,
 * and emits a loadable Image. The post-relaxation Program is returned so
 * instrumentation passes can scan the *final* instruction forms — e.g.
 * SwapRAM's search for absolute branches to relocate.
 */

#ifndef SWAPRAM_MASM_ASSEMBLER_HH
#define SWAPRAM_MASM_ASSEMBLER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "masm/ast.hh"

namespace swapram::masm {

/** Where each section is placed. nullopt chains after the previous one. */
struct LayoutSpec {
    std::uint16_t text_base = 0x8000;
    std::optional<std::uint16_t> const_base; ///< default: after .text
    std::optional<std::uint16_t> data_base;  ///< default: after .const
    std::optional<std::uint16_t> bss_base;   ///< default: after .data
    /** Extra predefined symbols (MMIO addresses are always defined). */
    std::unordered_map<std::string, std::uint16_t> predefined;
};

/** Contiguous address range. */
struct Range {
    std::uint16_t base = 0;
    std::uint32_t size = 0;
    std::uint32_t end() const { return base + size; }
    bool
    contains(std::uint16_t addr) const
    {
        return addr >= base && static_cast<std::uint32_t>(addr) < end();
    }
};

/** Initialized bytes at an address. */
struct Chunk {
    std::uint16_t base = 0;
    std::vector<std::uint8_t> bytes;
};

/** Loadable output of the assembler. */
struct Image {
    std::vector<Chunk> chunks; ///< .text/.const/.data payloads
    Range text, cnst, data, bss;
    std::uint16_t entry = 0; ///< `__start` if defined, else text base
};

/** Address extent of one assembled function. */
struct FunctionInfo {
    std::string name;
    std::uint16_t addr = 0;
    std::uint16_t size = 0;
};

/** Full result of assembling a program. */
struct AssembleResult {
    Image image;
    std::unordered_map<std::string, std::uint16_t> symbols;
    std::vector<FunctionInfo> functions;
    /** Post-relaxation program; stmt_addr is parallel to its stmts. */
    Program relaxed;
    std::vector<std::uint16_t> stmt_addr;

    /** Address of @p name; fatal()s if undefined. */
    std::uint16_t symbol(const std::string &name) const;
    /** Function info for @p name; fatal()s if not a .func. */
    const FunctionInfo &function(const std::string &name) const;
};

/**
 * Address-sorted index over an image's function table, for fast
 * PC-to-function resolution (profiler attribution, trace
 * symbolization). Does not own the AssembleResult's data.
 */
class FunctionIndex
{
  public:
    explicit FunctionIndex(std::vector<FunctionInfo> functions);

    /** Function whose [addr, addr+size) contains @p addr, or null. */
    const FunctionInfo *at(std::uint16_t addr) const;

    /** "name+0x12"-style label for @p addr ("" if unmapped). */
    std::string label(std::uint16_t addr) const;

    /** All functions, sorted by address. */
    const std::vector<FunctionInfo> &sorted() const { return funcs_; }

  private:
    std::vector<FunctionInfo> funcs_;
};

/** Assemble @p program with section placement @p layout. */
AssembleResult assemble(const Program &program, const LayoutSpec &layout);

/**
 * Encoded size in bytes of one symbolic instruction (stable across
 * passes; symbolic immediates are always sized with an extension word).
 */
std::uint16_t instrSize(const AsmInstr &instr);

} // namespace swapram::masm

#endif // SWAPRAM_MASM_ASSEMBLER_HH
