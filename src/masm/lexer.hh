/**
 * @file
 * Line-oriented tokenizer for the assembler.
 */

#ifndef SWAPRAM_MASM_LEXER_HH
#define SWAPRAM_MASM_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace swapram::masm {

/** Token kinds produced by the lexer. */
enum class TokKind : std::uint8_t {
    Ident,  ///< identifier or mnemonic (may contain '.', '_', '$')
    Number, ///< integer literal (decimal, 0x..., 0b..., 'c')
    String, ///< double-quoted string (unescaped payload in text)
    Punct,  ///< punctuation, possibly two chars ("<<", ">>")
    End,    ///< end of line
};

/** One token. */
struct Token {
    TokKind kind = TokKind::End;
    std::string text;        ///< identifier/punct text
    std::int64_t number = 0; ///< value for Number
    int column = 0;          ///< 0-based start column

    bool isPunct(const char *p) const
    {
        return kind == TokKind::Punct && text == p;
    }
};

/**
 * Tokenize one source line. Comments (';' to end of line) are stripped.
 * fatal()s on malformed literals, mentioning @p line for diagnostics.
 */
std::vector<Token> lexLine(const std::string &text, int line);

} // namespace swapram::masm

#endif // SWAPRAM_MASM_LEXER_HH
