/**
 * @file
 * Parser: assembler source text -> Program AST.
 *
 * Accepts a gcc-flavoured MSP430 syntax: optional `label:` prefixes,
 * core and emulated mnemonics with optional .B/.W suffix, and the
 * directives listed in masm/ast.hh. Emulated instructions (RET, BR, POP,
 * CLR, INC, ...) are expanded into core instructions here, exactly as the
 * MSP430 assembler defines them.
 */

#ifndef SWAPRAM_MASM_PARSER_HH
#define SWAPRAM_MASM_PARSER_HH

#include <string>

#include "masm/ast.hh"

namespace swapram::masm {

/** Parse @p source into a Program. fatal()s with line diagnostics. */
Program parse(const std::string &source);

} // namespace swapram::masm

#endif // SWAPRAM_MASM_PARSER_HH
