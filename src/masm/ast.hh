/**
 * @file
 * Assembly-level program representation.
 *
 * This AST is both the assembler's input and the IR that the SwapRAM and
 * block-cache instrumentation passes transform, mirroring the paper's
 * "assembly-level pass" design (§3.1): parse gcc-flavoured MSP430 assembly
 * into Statements, rewrite call sites / branches, then assemble.
 */

#ifndef SWAPRAM_MASM_AST_HH
#define SWAPRAM_MASM_AST_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "isa/opcodes.hh"
#include "isa/registers.hh"

namespace swapram::masm {

/**
 * Symbolic integer expression (labels, numbers, arithmetic).
 * Value semantics with shared immutable children so Statements copy
 * cheaply inside transformation passes.
 */
class Expr
{
  public:
    enum class Kind : std::uint8_t {
        Number,
        Symbol,
        Add,
        Sub,
        Mul,
        Div,
        ShiftLeft,
        ShiftRight,
        And,
        Or,
        Neg,
    };

    Expr() : kind_(Kind::Number), number_(0) {}

    static Expr num(std::int64_t value);
    static Expr sym(std::string name);
    static Expr binary(Kind kind, Expr lhs, Expr rhs);
    static Expr add(Expr lhs, Expr rhs);
    static Expr sub(Expr lhs, Expr rhs);
    static Expr mul(Expr lhs, Expr rhs);
    static Expr neg(Expr operand);

    Kind kind() const { return kind_; }
    std::int64_t number() const { return number_; }
    const std::string &symbol() const { return symbol_; }
    const Expr &lhs() const { return *lhs_; }
    const Expr &rhs() const { return *rhs_; }
    const Expr &operand() const { return *lhs_; }

    /** True if this expression is a literal number. */
    bool isNumber() const { return kind_ == Kind::Number; }

    /**
     * Value of a symbol-free expression, or nullopt if it references any
     * symbol (or divides by zero). Deterministic, so operand sizes based
     * on it are stable across assembler passes.
     */
    std::optional<std::int64_t> constantFold() const;
    /** True if this expression is a bare symbol reference. */
    bool isSymbol() const { return kind_ == Kind::Symbol; }

    /** Render in assembler syntax. */
    std::string text() const;

  private:
    Kind kind_;
    std::int64_t number_ = 0;
    std::string symbol_;
    std::shared_ptr<const Expr> lhs_;
    std::shared_ptr<const Expr> rhs_;
};

/** Addressing-mode form of a symbolic operand. */
enum class OperKind : std::uint8_t {
    Register,    ///< Rn
    Indexed,     ///< expr(Rn)
    SymbolicMem, ///< expr — memory at expr, PC-relative encoding
    Absolute,    ///< &expr
    Indirect,    ///< @Rn
    IndirectInc, ///< @Rn+
    Immediate,   ///< #expr
};

/** One symbolic operand. */
struct AsmOperand {
    OperKind kind = OperKind::Register;
    isa::Reg reg = isa::Reg::PC;
    Expr expr;

    static AsmOperand reg_(isa::Reg r) { return {OperKind::Register, r, {}}; }
    static AsmOperand imm(Expr e)
    {
        return {OperKind::Immediate, isa::Reg::PC, std::move(e)};
    }
    static AsmOperand abs(Expr e)
    {
        return {OperKind::Absolute, isa::Reg::SR, std::move(e)};
    }
    static AsmOperand indexed(isa::Reg r, Expr e)
    {
        return {OperKind::Indexed, r, std::move(e)};
    }
    static AsmOperand mem(Expr e)
    {
        return {OperKind::SymbolicMem, isa::Reg::PC, std::move(e)};
    }
    static AsmOperand indirect(isa::Reg r, bool post_inc)
    {
        return {post_inc ? OperKind::IndirectInc : OperKind::Indirect, r, {}};
    }

    /** Render in assembler syntax. */
    std::string text() const;
};

/** One symbolic instruction (core ops only; pseudo-ops are expanded by
 *  the parser). */
struct AsmInstr {
    isa::Op op = isa::Op::Mov;
    bool byte = false;
    std::optional<AsmOperand> src; ///< format I only
    std::optional<AsmOperand> dst; ///< format I and II (not RETI)
    Expr jump_target;              ///< jumps only

    /** Render in assembler syntax. */
    std::string text() const;
};

/** Kinds of directives the assembler understands. */
enum class Directive : std::uint8_t {
    Text,    ///< .text
    Const,   ///< .const — FRAM-resident initialized data/metadata
    Data,    ///< .data
    Bss,     ///< .bss
    Word,    ///< .word expr[, expr...]
    Byte,    ///< .byte expr[, expr...]
    Space,   ///< .space N (literal)
    Align,   ///< .align N (power of two; N==2 supported)
    Ascii,   ///< .ascii "..."
    Asciz,   ///< .asciz "..."
    Global,  ///< .global name (documentation only)
    Equ,     ///< .equ name, expr
    Func,    ///< .func name — begins a function; defines label `name`
    EndFunc, ///< .endfunc — ends it; defines `__end_<name>`
};

/** One statement: a label, an instruction, or a directive. */
struct Statement {
    enum class Kind : std::uint8_t { Label, Instr, Directive };

    Kind kind = Kind::Label;
    int line = 0; ///< 1-based source line, 0 for synthesized statements

    // Label
    std::string label;

    // Instr
    AsmInstr instr;

    // Directive
    Directive directive = Directive::Text;
    std::string name;       ///< .func/.equ/.global name
    std::vector<Expr> args; ///< .word/.byte/.space/.align/.equ args
    std::string str;        ///< .ascii/.asciz payload

    static Statement makeLabel(std::string name_, int line_ = 0);
    static Statement makeInstr(AsmInstr instr_, int line_ = 0);
    static Statement makeDirective(Directive d, int line_ = 0);

    /** Render in assembler syntax (no trailing newline). */
    std::string text() const;
};

/** A parsed program: a flat statement list. */
struct Program {
    std::vector<Statement> stmts;

    /** Append all statements of @p other. */
    void append(const Program &other);

    /** Render the whole program as assembler text. */
    std::string text() const;
};

/** Statement-index extent of one .func/.endfunc region. */
struct FuncRange {
    std::string name;
    size_t func_stmt;    ///< index of the .func directive
    size_t endfunc_stmt; ///< index of the matching .endfunc
};

/** All functions in @p program, in order of appearance. */
std::vector<FuncRange> findFunctions(const Program &program);

/** Convenience builders used heavily by the passes. */
AsmInstr movInstr(AsmOperand src, AsmOperand dst, bool byte = false);
AsmInstr callImm(Expr target);
AsmInstr callAbs(Expr cell_address);
AsmInstr brImm(Expr target);   ///< MOV #target, PC
AsmInstr brAbs(Expr cell);     ///< MOV &cell, PC
AsmInstr addImmToAbs(std::int64_t value, Expr cell);
AsmInstr subImmFromAbs(std::int64_t value, Expr cell);
AsmInstr jump(isa::Op op, Expr target);

} // namespace swapram::masm

#endif // SWAPRAM_MASM_AST_HH
