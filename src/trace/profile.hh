/**
 * @file
 * Per-function profiler: attributes instructions, cycles, stalls,
 * memory accesses, and modeled energy to the functions of the
 * assembled image — the function-granularity generalization of the
 * paper's Figure 8 owner breakdown.
 *
 * Static attribution uses the masm::Image function table (NVM
 * addresses). Under SwapRAM, code executes from the SRAM cache after a
 * copy-in, so the profiler also maintains a dynamic overlay of
 * cache-resident ranges (driven by trace::SwapTimeline): a PC inside
 * the SRAM cache is attributed to the function currently resident
 * there. Every recorded instruction lands in exactly one row, so row
 * cycle totals sum to Stats::totalCycles() by construction.
 */

#ifndef SWAPRAM_TRACE_PROFILE_HH
#define SWAPRAM_TRACE_PROFILE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/energy.hh"

namespace swapram::trace {

/** Accumulated costs of one function (or pseudo-bucket). */
struct ProfileRow {
    std::string name;
    std::uint16_t addr = 0; ///< NVM home address (0 for pseudo rows)
    std::uint16_t size = 0;

    std::uint64_t instructions = 0;
    std::uint64_t base_cycles = 0;
    std::uint64_t stall_cycles = 0;
    std::uint64_t fram_fetch = 0, fram_read = 0, fram_write = 0;
    std::uint64_t sram_fetch = 0, sram_read = 0, sram_write = 0;
    /** Instructions executed while this function ran from the cache. */
    std::uint64_t sram_resident_instructions = 0;
    double energy_pj = 0;

    std::uint64_t totalCycles() const
    {
        return base_cycles + stall_cycles;
    }
    std::uint64_t framAccesses() const
    {
        return fram_fetch + fram_read + fram_write;
    }
    std::uint64_t sramAccesses() const
    {
        return sram_fetch + sram_read + sram_write;
    }
};

/** Stat deltas of one executed instruction (or interrupt entry). */
struct StepCosts {
    std::uint64_t base_cycles = 0;
    std::uint64_t stall_cycles = 0;
    std::uint64_t fram_fetch = 0, fram_read = 0, fram_write = 0;
    std::uint64_t sram_fetch = 0, sram_read = 0, sram_write = 0;
};

/** One folded call stack and the cycles spent with it active. */
struct FoldedStack {
    std::string stack; ///< "root;caller;func" (flamegraph.pl folded)
    std::uint64_t cycles = 0;
};

/** Attributes per-instruction costs to function address ranges. */
class FunctionProfiler
{
  public:
    /** Register one static function range (NVM address space). */
    void addFunction(const std::string &name, std::uint16_t addr,
                     std::uint16_t size);

    /** Sort ranges; call once after the last addFunction(). */
    void seal();

    /** Overlay: @p home's body is now cache-resident at
     *  [base, base+bytes) (SwapTimeline calls this on copy-in). */
    void mapResident(std::uint16_t base, std::uint32_t bytes,
                     std::uint16_t home);

    /** Overlay: the range starting at @p base is no longer resident. */
    void unmapResident(std::uint16_t base);

    /** Attribute one instruction at @p pc. @p owner is the
     *  sim::CodeOwner the machine classified the PC as. */
    void record(std::uint16_t pc, std::uint8_t owner,
                const StepCosts &costs);

    /**
     * Snapshot rows, most-expensive first, with energy filled in from
     * @p model at @p clock_hz. All-zero rows are dropped.
     */
    std::vector<ProfileRow>
    rows(const sim::EnergyModel &model, std::uint32_t clock_hz) const;

    /** Sum of cycle attribution across every row (== totalCycles()). */
    std::uint64_t attributedCycles() const;

    /**
     * Folded call stacks for flamegraph rendering (ISSUE 6): one entry
     * per distinct stack, root-first frames joined with ';', cycles as
     * the sample weight. The stack is reconstructed from PC movement —
     * landing on a function entry pushes, returning to a frame already
     * on the stack pops to it, any other transfer replaces the leaf —
     * so it is exact for call/return flow and approximate across
     * tail-jumps. Folded cycle weights sum to attributedCycles().
     * Ordered by stack string for deterministic output.
     */
    std::vector<FoldedStack> foldedStacks() const;

    /** foldedStacks() as `stack count` lines — the folded format
     *  flamegraph.pl and speedscope consume directly. */
    std::string foldedText() const;

  private:
    struct Range {
        std::uint16_t addr;
        std::uint16_t size;
        std::size_t row; ///< index into rows_
    };
    struct Overlay {
        std::uint16_t base;
        std::uint32_t end;
        std::size_t row;
    };

    std::size_t lookup(std::uint16_t pc, std::uint8_t owner);
    std::size_t pseudoRow(std::uint8_t owner);
    void updateStack(std::size_t idx, bool entry);

    std::vector<ProfileRow> rows_;
    std::vector<Range> ranges_; ///< sorted by addr after seal()
    std::vector<Overlay> overlays_;
    std::size_t pseudo_[8] = {}; ///< per-owner fallback rows (1-based)
    std::size_t last_hit_ = SIZE_MAX;
    bool sealed_ = false;

    // Call-stack reconstruction for foldedStacks(). folded_ maps a
    // stack (row indices, root first) to accumulated cycles;
    // fold_cur_ caches the current stack's slot so the per-instruction
    // cost is one pointer add while the stack is unchanged.
    std::vector<std::size_t> stack_;
    std::map<std::vector<std::size_t>, std::uint64_t> folded_;
    std::uint64_t *fold_cur_ = nullptr;
};

} // namespace swapram::trace

#endif // SWAPRAM_TRACE_PROFILE_HH
