#include "trace/swap_timeline.hh"

#include <algorithm>

#include "sim/stats.hh"
#include "support/logging.hh"
#include "trace/profile.hh"

namespace swapram::trace {

namespace {

constexpr std::uint8_t kHandler =
    static_cast<std::uint8_t>(sim::CodeOwner::Handler);
constexpr std::uint8_t kMemcpy =
    static_cast<std::uint8_t>(sim::CodeOwner::Memcpy);

bool
isRuntime(std::uint8_t owner)
{
    return owner == kHandler || owner == kMemcpy;
}

} // namespace

SwapTimeline::SwapTimeline(std::uint16_t cache_base,
                           std::uint16_t cache_end)
    : cache_base_(cache_base), cache_end_(cache_end)
{
}

void
SwapTimeline::addFunction(const std::string &name, std::uint16_t addr,
                          std::uint16_t size)
{
    funcs_.push_back({name, addr, size});
}

const SwapTimeline::Func *
SwapTimeline::functionAt(std::uint16_t addr) const
{
    for (const Func &f : funcs_) {
        if (addr >= f.addr &&
            addr < static_cast<std::uint32_t>(f.addr) + f.size)
            return &f;
    }
    return nullptr;
}

void
SwapTimeline::derive(Event event)
{
    SwapEvent record;
    record.kind = event.kind;
    record.cycle = event.cycle;
    switch (event.kind) {
      case EventKind::MissEnter:
        record.cache_addr = event.addr;
        break;
      case EventKind::MissExit:
        record.handler_cycles = event.extra;
        break;
      case EventKind::CopyIn:
      case EventKind::Evict: {
        record.cache_addr = event.addr;
        record.nvm_addr = event.value;
        record.bytes = event.extra;
        if (const Func *f = functionAt(event.value))
            record.func = f->name;
        break;
      }
      case EventKind::DataSwapIn:
      case EventKind::DataSwapOut:
        record.cache_addr = event.addr;
        record.nvm_addr = event.value;
        record.bytes = event.extra;
        break;
      default: support::panic("SwapTimeline::derive: bad kind");
    }
    events_.push_back(std::move(record));
    if (engine_)
        engine_->emit(event);
}

void
SwapTimeline::sample(std::uint64_t cycle)
{
    OccupancySample s;
    s.cycle = cycle;
    for (const Resident &r : resident_)
        s.resident_bytes += r.end - r.base;
    s.resident_functions = static_cast<int>(resident_.size());
    summary_.peak_resident_bytes =
        std::max(summary_.peak_resident_bytes, s.resident_bytes);
    occupancy_.push_back(s);
}

void
SwapTimeline::finishCopy(std::uint64_t cycle)
{
    in_copy_ = false;
    // Data-pool episodes (__swp_din/__swp_dout drive the same memcpy):
    // writes into the pool are a swap-in from the FRAM home; pool reads
    // paired with writes outside the cache are the write-back. Neither
    // touches the code-residency tracking.
    if (pool_base_ && pool_dst_max_ > pool_dst_min_) {
        derive({cycle, EventKind::DataSwapIn, 0, pool_dst_min_,
                copy_src_addr_, pool_dst_max_ - pool_dst_min_});
        ++summary_.data_swap_ins;
        summary_.data_bytes_copied += pool_dst_max_ - pool_dst_min_;
        resetCopy();
        return;
    }
    if (pool_base_ && copy_read_pool_ && home_dst_max_ > home_dst_min_) {
        derive({cycle, EventKind::DataSwapOut, 0, pool_src_,
                home_dst_min_, home_dst_max_ - home_dst_min_});
        ++summary_.data_swap_outs;
        summary_.data_bytes_copied += home_dst_max_ - home_dst_min_;
        resetCopy();
        return;
    }
    if (copy_dst_max_ <= copy_dst_min_) {
        resetCopy();
        return; // copy loop ran but wrote nothing into the cache
    }
    std::uint16_t dst = copy_dst_min_;
    std::uint32_t end = copy_dst_max_;
    std::uint32_t bytes = end - dst;
    std::uint16_t nvm =
        copy_src_func_ != SIZE_MAX ? funcs_[copy_src_func_].addr : 0;

    // Overlap eviction (§3.4): any resident function the new body
    // lands on is evicted whole.
    for (auto it = resident_.begin(); it != resident_.end();) {
        if (it->base < end && dst < it->end) {
            std::uint16_t evicted_nvm =
                it->func != SIZE_MAX ? funcs_[it->func].addr : 0;
            derive({cycle, EventKind::Evict, 0, it->base, evicted_nvm,
                    it->end - it->base});
            ++summary_.evictions;
            if (profiler_)
                profiler_->unmapResident(it->base);
            it = resident_.erase(it);
        } else {
            ++it;
        }
    }

    resident_.push_back({dst, end, copy_src_func_});
    if (profiler_)
        profiler_->mapResident(dst, bytes, nvm);
    derive({cycle, EventKind::CopyIn, 0, dst, nvm, bytes});
    ++summary_.copy_ins;
    summary_.bytes_copied += bytes;
    ++copies_this_miss_;
    sample(cycle);

    resetCopy();
}

void
SwapTimeline::resetCopy()
{
    copy_src_func_ = SIZE_MAX;
    copy_dst_min_ = 0xFFFF;
    copy_dst_max_ = 0;
    copy_src_addr_ = 0;
    copy_read_pool_ = false;
    pool_src_ = 0;
    pool_dst_min_ = 0xFFFF;
    pool_dst_max_ = 0;
    home_dst_min_ = 0xFFFF;
    home_dst_max_ = 0;
}

void
SwapTimeline::ownerChange(const Event &event)
{
    std::uint8_t prev = static_cast<std::uint8_t>(event.extra & 0xFF);
    std::uint8_t next = static_cast<std::uint8_t>(event.value & 0xFF);

    if (in_copy_ && next != kMemcpy)
        finishCopy(event.cycle);

    if (!in_miss_ && !in_data_ && isRuntime(next)) {
        if (routine_end_ && event.addr >= routine_base_ &&
            event.addr < routine_end_) {
            // Entered through __swp_din/__swp_dout: a data-swap call,
            // not a function miss.
            in_data_ = true;
            return;
        }
        in_miss_ = true;
        miss_begin_ = event.cycle;
        miss_site_ = event.addr;
        copies_this_miss_ = 0;
        ++summary_.misses;
        derive({event.cycle, EventKind::MissEnter, 0, event.addr, 0, 0});
    } else if (in_data_) {
        if (!isRuntime(next))
            in_data_ = false;
        // fall through: the memcpy-start tracking below still applies
    } else if (in_miss_ && !isRuntime(next)) {
        in_miss_ = false;
        std::uint64_t span = event.cycle - miss_begin_;
        summary_.handler_cycles += span;
        derive({event.cycle, EventKind::MissExit, 0, miss_site_,
                static_cast<std::uint16_t>(copies_this_miss_),
                static_cast<std::uint32_t>(span)});
    }
    (void)prev;

    if (next == kMemcpy && !in_copy_) {
        in_copy_ = true;
        resetCopy();
    }
}

void
SwapTimeline::event(const Event &event)
{
    switch (event.kind) {
      case EventKind::OwnerChange:
        ownerChange(event);
        return;
      case EventKind::Read:
        if (!in_copy_)
            return;
        if (inPool(event.addr)) {
            // Pool reads mark the episode as a write-back.
            if (!copy_read_pool_) {
                copy_read_pool_ = true;
                pool_src_ = event.addr;
            }
            return;
        }
        if (copy_src_addr_ == 0)
            copy_src_addr_ = event.addr;
        // The first FRAM read inside a known function range while the
        // copy loop runs identifies the function being cached.
        if (copy_src_func_ == SIZE_MAX) {
            for (std::size_t i = 0; i < funcs_.size(); ++i) {
                const Func &f = funcs_[i];
                if (event.addr >= f.addr &&
                    event.addr <
                        static_cast<std::uint32_t>(f.addr) + f.size) {
                    copy_src_func_ = i;
                    break;
                }
            }
        }
        return;
      case EventKind::Write: {
        if (!in_copy_)
            return;
        std::uint32_t end = static_cast<std::uint32_t>(event.addr) +
                            (event.byte ? 1u : 2u);
        if (inPool(event.addr)) {
            pool_dst_min_ = std::min(pool_dst_min_, event.addr);
            pool_dst_max_ = std::max(pool_dst_max_, end);
        } else if (event.addr >= cache_base_ &&
                   event.addr < codeEnd()) {
            copy_dst_min_ = std::min(copy_dst_min_, event.addr);
            copy_dst_max_ = std::max(copy_dst_max_, end);
        } else if (copy_read_pool_) {
            // Pool-sourced writes land at the FRAM home: write-back.
            home_dst_min_ = std::min(home_dst_min_, event.addr);
            home_dst_max_ = std::max(home_dst_max_, end);
        }
        return;
      }
      case EventKind::PowerFail: {
        // SRAM is gone: drop all residency, abandon any half-tracked
        // miss or copy episode, and mark the reboot in the timeline.
        in_miss_ = false;
        in_data_ = false;
        in_copy_ = false;
        resetCopy();
        if (profiler_) {
            for (const Resident &r : resident_)
                profiler_->unmapResident(r.base);
        }
        resident_.clear();
        ++summary_.power_failures;
        SwapEvent record;
        record.kind = event.kind;
        record.cycle = event.cycle;
        record.cache_addr = event.addr; // pc at the moment of failure
        events_.push_back(std::move(record));
        sample(event.cycle);
        return;
      }
      case EventKind::RecoveryExit: {
        summary_.recovery_cycles += event.extra;
        SwapEvent record;
        record.kind = event.kind;
        record.cycle = event.cycle;
        record.handler_cycles = event.extra; // recovery span length
        events_.push_back(std::move(record));
        return;
      }
      case EventKind::CkptCommit:
        ++summary_.ckpt_commits;
        return;
      case EventKind::CkptRestore:
        ++summary_.ckpt_restores;
        return;
      default:
        return; // derived kinds (our own re-emissions) and others
    }
}

void
SwapTimeline::finish()
{
    if (in_copy_)
        finishCopy(occupancy_.empty() ? 0 : occupancy_.back().cycle);
}

} // namespace swapram::trace
