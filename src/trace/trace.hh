/**
 * @file
 * TraceEngine: the hub every layer emits events into.
 *
 * Design constraints (ISSUE 1):
 *  - zero overhead when tracing is off: emit sites hold a raw
 *    `TraceEngine *` that is nullptr by default, so the disabled path
 *    is a single predictable branch and no allocation ever happens;
 *  - bounded memory: events are recorded into a fixed-capacity ring
 *    buffer (oldest overwritten, drops counted), so tracing a
 *    billion-cycle run cannot OOM the host;
 *  - pluggable sinks: streaming consumers (text/CSV/Chrome writers,
 *    the swap-timeline analyzer) subscribe with their own category
 *    mask; the engine's effective mask is the union of the ring's and
 *    every sink's, so emit sites skip work nobody wants.
 *
 * Sinks may re-emit derived events from inside notify() (SwapTimeline
 * does); delivery order for other sinks is trigger-then-derived as
 * long as derived-emitting sinks are registered last.
 */

#ifndef SWAPRAM_TRACE_TRACE_HH
#define SWAPRAM_TRACE_TRACE_HH

#include <cstdint>
#include <vector>

#include "trace/event.hh"

namespace swapram::trace {

/** Streaming consumer of trace events. */
class Sink
{
  public:
    virtual ~Sink() = default;

    /** Called for every event matching the sink's category mask. */
    virtual void event(const Event &event) = 0;

    /** Called once when the producing run completes (flush point). */
    virtual void finish() {}
};

/** Central event hub: bounded ring buffer + subscribed sinks. */
class TraceEngine
{
  public:
    /** @p ring_mask selects what the ring records; @p capacity bounds
     *  it (0 disables in-memory recording entirely). */
    explicit TraceEngine(std::uint32_t ring_mask = kCatAll,
                         std::size_t capacity = kDefaultCapacity);

    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    /** Subscribe @p sink to categories in @p mask (not owned). */
    void addSink(Sink *sink, std::uint32_t mask = kCatAll);

    /** True when somebody wants events of @p category. */
    bool
    wants(Category category) const
    {
        return (mask_ & category) != 0;
    }

    /** Union of ring and sink masks (0 = nothing to do). */
    std::uint32_t mask() const { return mask_; }

    /** Record @p event and deliver it to matching sinks. */
    void emit(const Event &event);

    /** Signal end of run to every sink (once). */
    void finish();

    /** Events currently held by the ring, oldest first. */
    std::vector<Event> ring() const;

    /** Total events accepted (ring or sink) since construction. */
    std::uint64_t emitted() const { return emitted_; }

    /** Ring-buffer overwrites (events no longer retrievable). */
    std::uint64_t dropped() const { return dropped_; }

    std::size_t ringCapacity() const { return ring_.size(); }
    std::uint32_t ringMask() const { return ring_mask_; }

  private:
    struct Subscription {
        Sink *sink;
        std::uint32_t mask;
    };

    std::uint32_t ring_mask_;
    std::uint32_t mask_;
    std::vector<Event> ring_; ///< fixed-size circular storage
    std::size_t head_ = 0;    ///< next write slot
    std::size_t count_ = 0;   ///< valid entries (<= ring_.size())
    std::uint64_t emitted_ = 0;
    std::uint64_t dropped_ = 0;
    bool finished_ = false;
    std::vector<Subscription> sinks_;
};

} // namespace swapram::trace

#endif // SWAPRAM_TRACE_TRACE_HH
