/**
 * @file
 * Structured trace events shared by every layer of the simulator.
 *
 * An Event is a small POD stamped with the total-cycle time at which it
 * occurred. Primitive events (instruction retire, bus access, FRAM
 * stall, hardware-cache hit/miss, interrupt entry, code-owner change)
 * are emitted by sim::Bus and sim::Machine; derived SwapRAM runtime
 * events (miss-handler span, function copy-in, eviction) are
 * reconstructed from the primitive stream by trace::SwapTimeline and
 * re-emitted under Category::Swap.
 */

#ifndef SWAPRAM_TRACE_EVENT_HH
#define SWAPRAM_TRACE_EVENT_HH

#include <cstdint>
#include <string>

namespace swapram::trace {

/** Coarse event class, used as a filtering bitmask. */
enum Category : std::uint32_t {
    kCatInstr = 1u << 0,     ///< instruction retire
    kCatAccess = 1u << 1,    ///< every bus access (fetch/read/write)
    kCatStall = 1u << 2,     ///< FRAM wait-state / contention stalls
    kCatHwCache = 1u << 3,   ///< hardware read-cache hits and misses
    kCatInterrupt = 1u << 4, ///< interrupt entries
    kCatSwap = 1u << 5,      ///< cache-runtime events (owner changes,
                             ///< miss spans, copy-ins, evictions)
    kCatPower = 1u << 6,     ///< power failures and boot recovery
    kCatAll = (1u << 7) - 1,
    kCatNone = 0,
};

/** Fine-grained event type. */
enum class EventKind : std::uint8_t {
    // Primitive events (emitted by the machine model).
    InstrRetire,    ///< addr=pc, value=base cycles, extra=stall cycles
    Fetch,          ///< addr, value = word fetched
    Read,           ///< addr, value = word/byte read
    Write,          ///< addr, value = word/byte written
    FramStall,      ///< addr, extra = stall cycles charged
    HwCacheHit,     ///< addr
    HwCacheMiss,    ///< addr
    InterruptEnter, ///< addr = vector address
    OwnerChange,    ///< addr = pc, value = new sim::CodeOwner,
                    ///< extra = previous owner

    // Derived SwapRAM runtime events (emitted by SwapTimeline).
    MissEnter, ///< addr = faulting call site pc
    MissExit,  ///< extra = handler cycles, value = copies this miss
    CopyIn,    ///< addr = SRAM dst, value = FRAM src, extra = bytes
    Evict,     ///< addr = SRAM base of evicted range, value = FRAM
               ///< home of the evicted function, extra = bytes
    DataSwapIn,  ///< addr = pool dst, value = FRAM home, extra = bytes
    DataSwapOut, ///< addr = pool src, value = FRAM home, extra = bytes

    // Intermittent execution (emitted by the machine model).
    PowerFail,     ///< addr = pc at failure, value = reboot ordinal
    RecoveryEnter, ///< addr = pc entering the boot-recovery routine
    RecoveryExit,  ///< addr = pc after recovery, extra = cycles spent
    CkptCommit,    ///< addr = __ckpt_commit entry pc
    CkptRestore,   ///< addr = __ckpt_restore entry pc
};

/** Category an event kind belongs to. */
Category categoryOf(EventKind kind);

/** Short stable name ("retire", "copy-in", ...). */
const char *kindName(EventKind kind);

/** Parse a category list like "instr,swap,stall"; fatal()s on junk. */
std::uint32_t parseCategories(const std::string &list);

/** Comma-separated names of the categories set in @p mask. */
std::string categoryNames(std::uint32_t mask);

/** One trace record. */
struct Event {
    std::uint64_t cycle = 0; ///< Stats::totalCycles() at emission
    EventKind kind = EventKind::InstrRetire;
    std::uint8_t byte = 0;   ///< byte-sized access (Fetch/Read/Write)
    std::uint16_t addr = 0;  ///< primary address / pc
    std::uint16_t value = 0; ///< kind-specific payload
    std::uint32_t extra = 0; ///< kind-specific payload

    Category category() const { return categoryOf(kind); }
};

} // namespace swapram::trace

#endif // SWAPRAM_TRACE_EVENT_HH
