/**
 * @file
 * Stream-writing trace sinks: human-readable text, CSV, and Chrome
 * trace_event JSON (loadable in Perfetto / chrome://tracing).
 *
 * Sinks write as events arrive, so arbitrarily long runs stream to
 * disk without buffering. Each sink accepts an optional event limit
 * (the legacy `--trace N` behaviour) and an optional symbolizer that
 * maps an address to a "func+0x12"-style label.
 */

#ifndef SWAPRAM_TRACE_SINKS_HH
#define SWAPRAM_TRACE_SINKS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

#include "trace/trace.hh"

namespace swapram::trace {

/** Maps an address to a symbol label; empty string = no symbol. */
using Symbolizer = std::function<std::string(std::uint16_t addr)>;

/** Shared plumbing for the stream-writing sinks. */
class StreamSink : public Sink
{
  public:
    explicit StreamSink(std::ostream &out) : out_(out) {}

    /** Stop writing after @p limit events (0 = unlimited). */
    void setLimit(std::uint64_t limit) { limit_ = limit; }

    void setSymbolizer(Symbolizer symbolizer)
    {
        symbolize_ = std::move(symbolizer);
    }

    /** Extra per-event annotation (e.g. disassembly for retires). */
    void setAnnotator(std::function<std::string(const Event &)> fn)
    {
        annotate_ = std::move(fn);
    }

  protected:
    bool
    takeSlot()
    {
        if (limit_ && written_ >= limit_)
            return false;
        ++written_;
        return true;
    }

    std::string symbol(std::uint16_t addr) const;
    std::string annotation(const Event &event) const;

    std::ostream &out_;
    std::uint64_t limit_ = 0;
    std::uint64_t written_ = 0;
    Symbolizer symbolize_;
    std::function<std::string(const Event &)> annotate_;
};

/** One line per event, tabular, for eyeballs and grep. */
class TextSink : public StreamSink
{
  public:
    using StreamSink::StreamSink;
    void event(const Event &event) override;
};

/** RFC-4180-ish CSV with a header row; for spreadsheets and pandas. */
class CsvSink : public StreamSink
{
  public:
    explicit CsvSink(std::ostream &out);
    void event(const Event &event) override;
};

/**
 * Chrome trace_event JSON (the "JSON Array Format" wrapped in an
 * object). Owner changes and miss-handler spans become duration
 * events on dedicated tracks; everything else becomes instant events.
 * Open the file in https://ui.perfetto.dev or chrome://tracing.
 */
class ChromeTraceSink : public StreamSink
{
  public:
    /** @p clock_hz converts cycle stamps to microseconds. */
    ChromeTraceSink(std::ostream &out, std::uint32_t clock_hz);

    void event(const Event &event) override;
    void finish() override;

  private:
    double ts(std::uint64_t cycle) const;
    void emitRecord(const std::string &name, const char *cat,
                    const char *phase, double ts, int tid,
                    const std::string &args_json);

    std::uint32_t clock_hz_;
    bool first_ = true;
    bool closed_ = false;
    bool owner_span_open_ = false;
    bool miss_span_open_ = false;
    std::uint64_t last_cycle_ = 0;
};

} // namespace swapram::trace

#endif // SWAPRAM_TRACE_SINKS_HH
