/**
 * @file
 * SwapTimeline: reconstructs cache-runtime behaviour (miss-handler
 * spans, function copy-ins, evictions, SRAM-cache residency and
 * occupancy over time) from the primitive trace stream.
 *
 * The SwapRAM runtime is generated assembly executing *inside* the
 * simulator, so there is no API to hook; instead the timeline watches
 * the existing CodeOwner classification (handler / memcpy ranges
 * registered by the builder) and the bus traffic while the copy loop
 * runs: FRAM reads identify the source function, SRAM writes into the
 * cache region identify the destination and size. Derived events are
 * re-emitted into the engine under Category::Swap so file sinks and
 * the ring record them alongside the primitive stream.
 */

#ifndef SWAPRAM_TRACE_SWAP_TIMELINE_HH
#define SWAPRAM_TRACE_SWAP_TIMELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace swapram::trace {

class FunctionProfiler;

/** One reconstructed cache-runtime event (report form). */
struct SwapEvent {
    EventKind kind = EventKind::MissEnter;
    std::uint64_t cycle = 0;
    std::string func;              ///< copy-in/evict: function name
    std::uint16_t cache_addr = 0;  ///< SRAM address (copy-in/evict)
    std::uint16_t nvm_addr = 0;    ///< FRAM home (copy-in/evict)
    std::uint32_t bytes = 0;       ///< body bytes (copy-in/evict)
    std::uint64_t handler_cycles = 0; ///< miss-exit: span length
};

/** Cache occupancy after each copy-in/evict. */
struct OccupancySample {
    std::uint64_t cycle = 0;
    std::uint32_t resident_bytes = 0;
    int resident_functions = 0;
};

/** Roll-up counters for the report. */
struct SwapSummary {
    std::uint64_t misses = 0;       ///< miss-handler entries
    std::uint64_t copy_ins = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes_copied = 0;
    std::uint64_t data_swap_ins = 0;     ///< pool swap-ins (__swp_din)
    std::uint64_t data_swap_outs = 0;    ///< pool write-backs
    std::uint64_t data_bytes_copied = 0; ///< bytes through the pool
    std::uint64_t handler_cycles = 0; ///< cycles inside handler+memcpy
    std::uint32_t peak_resident_bytes = 0;
    std::uint64_t power_failures = 0;  ///< injected power losses seen
    std::uint64_t recovery_cycles = 0; ///< cycles in boot recovery
    std::uint64_t ckpt_commits = 0;    ///< __ckpt_commit entries seen
    std::uint64_t ckpt_restores = 0;   ///< __ckpt_restore entries seen
};

/** Streaming analyzer; subscribe with
 *  kCatSwap | kCatAccess | kCatPower. */
class SwapTimeline : public Sink
{
  public:
    /** @p cache_base/@p cache_end bound the SRAM code-cache region. */
    SwapTimeline(std::uint16_t cache_base, std::uint16_t cache_end);

    /** Register a function's NVM range for copy-in identification. */
    void addFunction(const std::string &name, std::uint16_t addr,
                     std::uint16_t size);

    /** Mark [pool_base, cache_end) as the data-side pool: memcpy
     *  episodes writing there are data swap-ins, episodes reading from
     *  there are write-backs, and neither enters the code-residency
     *  tracking. [routine_base, routine_end) is the __swp_din/__swp_dout
     *  text range; runtime spans entered there are data-swap calls, not
     *  misses. */
    void setDataPool(std::uint16_t pool_base, std::uint16_t routine_base,
                     std::uint16_t routine_end)
    {
        pool_base_ = pool_base;
        routine_base_ = routine_base;
        routine_end_ = routine_end;
    }

    /** Re-emit derived events into @p engine (register this sink
     *  last so other sinks see trigger-then-derived order). */
    void setEngine(TraceEngine *engine) { engine_ = engine; }

    /** Keep @p profiler's residency overlay in sync with copy-ins. */
    void setProfiler(FunctionProfiler *profiler)
    {
        profiler_ = profiler;
    }

    void event(const Event &event) override;
    void finish() override;

    const std::vector<SwapEvent> &events() const { return events_; }
    const std::vector<OccupancySample> &occupancy() const
    {
        return occupancy_;
    }
    const SwapSummary &summary() const { return summary_; }

  private:
    struct Func {
        std::string name;
        std::uint16_t addr;
        std::uint16_t size;
    };
    struct Resident {
        std::uint16_t base;
        std::uint32_t end;
        std::size_t func; ///< index into funcs_ (SIZE_MAX = unknown)
    };

    const Func *functionAt(std::uint16_t addr) const;
    bool inPool(std::uint16_t addr) const
    {
        return pool_base_ && addr >= pool_base_ && addr < cache_end_;
    }
    /** End of the code-cache region (the pool is carved off the top). */
    std::uint16_t codeEnd() const
    {
        return pool_base_ ? pool_base_ : cache_end_;
    }
    void ownerChange(const Event &event);
    void resetCopy();
    void finishCopy(std::uint64_t cycle);
    void derive(Event event);
    void sample(std::uint64_t cycle);

    std::uint16_t cache_base_, cache_end_;
    std::uint16_t pool_base_ = 0; ///< 0 = no data pool
    std::uint16_t routine_base_ = 0, routine_end_ = 0;
    std::vector<Func> funcs_;
    TraceEngine *engine_ = nullptr;
    FunctionProfiler *profiler_ = nullptr;

    // Owner-state machine.
    bool in_miss_ = false;
    bool in_data_ = false; ///< runtime span entered via din/dout
    bool in_copy_ = false;
    std::uint64_t miss_begin_ = 0;
    std::uint16_t miss_site_ = 0;
    std::uint32_t copies_this_miss_ = 0;

    // Current copy episode.
    std::size_t copy_src_func_ = SIZE_MAX;
    std::uint16_t copy_dst_min_ = 0xFFFF;
    std::uint32_t copy_dst_max_ = 0;
    // Data-pool classification (pool_base_ != 0 only): the episode's
    // first non-pool read (the FRAM home on a swap-in), pool writes
    // (swap-in destination), pool reads (write-back source), and
    // non-cache writes (write-back destination).
    std::uint16_t copy_src_addr_ = 0;
    bool copy_read_pool_ = false;
    std::uint16_t pool_src_ = 0; ///< first pool read (write-back src)
    std::uint16_t pool_dst_min_ = 0xFFFF;
    std::uint32_t pool_dst_max_ = 0;
    std::uint16_t home_dst_min_ = 0xFFFF;
    std::uint32_t home_dst_max_ = 0;

    std::vector<Resident> resident_;
    std::vector<SwapEvent> events_;
    std::vector<OccupancySample> occupancy_;
    SwapSummary summary_;
};

} // namespace swapram::trace

#endif // SWAPRAM_TRACE_SWAP_TIMELINE_HH
