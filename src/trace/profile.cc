#include "trace/profile.hh"

#include <algorithm>

#include "sim/stats.hh"
#include "support/logging.hh"

namespace swapram::trace {

void
FunctionProfiler::addFunction(const std::string &name,
                              std::uint16_t addr, std::uint16_t size)
{
    if (sealed_)
        support::panic("FunctionProfiler: addFunction after seal");
    ProfileRow row;
    row.name = name;
    row.addr = addr;
    row.size = size;
    ranges_.push_back({addr, size, rows_.size()});
    rows_.push_back(std::move(row));
}

void
FunctionProfiler::seal()
{
    std::sort(ranges_.begin(), ranges_.end(),
              [](const Range &a, const Range &b) {
                  return a.addr < b.addr;
              });
    sealed_ = true;
}

void
FunctionProfiler::mapResident(std::uint16_t base, std::uint32_t bytes,
                              std::uint16_t home)
{
    // Find the row of the home function; unknown homes map nowhere
    // (their SRAM execution falls back to the owner pseudo-bucket).
    for (const Range &r : ranges_) {
        if (home >= r.addr &&
            home < static_cast<std::uint32_t>(r.addr) + r.size) {
            overlays_.push_back({base, base + bytes, r.row});
            return;
        }
    }
    support::debug("profiler: copy-in of unknown home address ", home);
}

void
FunctionProfiler::unmapResident(std::uint16_t base)
{
    for (auto it = overlays_.begin(); it != overlays_.end(); ++it) {
        if (it->base == base) {
            overlays_.erase(it);
            return;
        }
    }
}

std::size_t
FunctionProfiler::pseudoRow(std::uint8_t owner)
{
    std::uint8_t slot = owner < 8 ? owner : 7;
    if (!pseudo_[slot]) {
        ProfileRow row;
        row.name =
            owner < sim::kNumOwners
                ? "[" + sim::ownerName(static_cast<sim::CodeOwner>(owner)) +
                      "]"
                : "[unknown]";
        rows_.push_back(std::move(row));
        pseudo_[slot] = rows_.size(); // 1-based so 0 means "unset"
    }
    return pseudo_[slot] - 1;
}

std::size_t
FunctionProfiler::lookup(std::uint16_t pc, std::uint8_t owner)
{
    // Consecutive PCs usually stay in one function: try the last hit.
    if (last_hit_ != SIZE_MAX) {
        const ProfileRow &row = rows_[last_hit_];
        if (row.size && pc >= row.addr &&
            pc < static_cast<std::uint32_t>(row.addr) + row.size)
            return last_hit_;
    }
    // Cache-resident ranges shadow the static table (a SwapRAM PC in
    // SRAM belongs to whichever function is resident there now).
    for (const Overlay &o : overlays_) {
        if (pc >= o.base && pc < o.end)
            return o.row;
    }
    if (!ranges_.empty()) {
        auto it = std::upper_bound(
            ranges_.begin(), ranges_.end(), pc,
            [](std::uint16_t v, const Range &r) { return v < r.addr; });
        if (it != ranges_.begin()) {
            --it;
            if (pc < static_cast<std::uint32_t>(it->addr) + it->size)
                return it->row;
        }
    }
    return pseudoRow(owner);
}

void
FunctionProfiler::updateStack(std::size_t idx, bool entry)
{
    fold_cur_ = nullptr;
    if (entry || stack_.empty()) {
        stack_.push_back(idx);
        return;
    }
    // A non-entry transfer into a frame already on the stack is a
    // return: pop to it. Anything else (tail-jump, stub, pseudo-row)
    // replaces the leaf.
    std::size_t depth = 0;
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it, ++depth) {
        if (*it == idx) {
            stack_.resize(stack_.size() - depth);
            return;
        }
    }
    stack_.back() = idx;
}

void
FunctionProfiler::record(std::uint16_t pc, std::uint8_t owner,
                         const StepCosts &costs)
{
    std::size_t idx = lookup(pc, owner);
    // Overlay hits must not poison the last-hit cache (the static
    // range test above would wrongly match NVM-range PCs); only cache
    // static-range hits.
    const ProfileRow &hit = rows_[idx];
    bool is_static =
        hit.size && pc >= hit.addr &&
        pc < static_cast<std::uint32_t>(hit.addr) + hit.size;
    bool resident = !is_static && hit.size != 0;
    last_hit_ = is_static ? idx : SIZE_MAX;

    if (stack_.empty() || stack_.back() != idx) {
        bool entry = is_static && pc == hit.addr;
        if (resident) {
            for (const Overlay &o : overlays_) {
                if (pc >= o.base && pc < o.end && o.row == idx) {
                    entry = pc == o.base;
                    break;
                }
            }
        }
        updateStack(idx, entry);
    }
    if (!fold_cur_)
        fold_cur_ = &folded_[stack_];
    *fold_cur_ += costs.base_cycles + costs.stall_cycles;

    ProfileRow &row = rows_[idx];
    ++row.instructions;
    if (resident)
        ++row.sram_resident_instructions;
    row.base_cycles += costs.base_cycles;
    row.stall_cycles += costs.stall_cycles;
    row.fram_fetch += costs.fram_fetch;
    row.fram_read += costs.fram_read;
    row.fram_write += costs.fram_write;
    row.sram_fetch += costs.sram_fetch;
    row.sram_read += costs.sram_read;
    row.sram_write += costs.sram_write;
}

std::vector<ProfileRow>
FunctionProfiler::rows(const sim::EnergyModel &model,
                       std::uint32_t clock_hz) const
{
    std::vector<ProfileRow> out;
    double core = model.corePjPerCycle(clock_hz);
    for (const ProfileRow &row : rows_) {
        if (row.instructions == 0 && row.totalCycles() == 0)
            continue;
        ProfileRow copy = row;
        copy.energy_pj =
            core * static_cast<double>(copy.totalCycles()) +
            model.fram_read_pj *
                static_cast<double>(copy.fram_fetch + copy.fram_read) +
            model.fram_write_pj * static_cast<double>(copy.fram_write) +
            model.sram_read_pj *
                static_cast<double>(copy.sram_fetch + copy.sram_read) +
            model.sram_write_pj * static_cast<double>(copy.sram_write);
        out.push_back(std::move(copy));
    }
    std::sort(out.begin(), out.end(),
              [](const ProfileRow &a, const ProfileRow &b) {
                  if (a.totalCycles() != b.totalCycles())
                      return a.totalCycles() > b.totalCycles();
                  return a.name < b.name;
              });
    return out;
}

std::vector<FoldedStack>
FunctionProfiler::foldedStacks() const
{
    // std::map iteration is ordered by the row-index vectors; re-key
    // by name so equal-named stacks (impossible today, but cheap to
    // guard) collapse and the output is sorted for diffing.
    std::map<std::string, std::uint64_t> by_name;
    for (const auto &[stack, cycles] : folded_) {
        if (!cycles)
            continue;
        std::string name;
        for (std::size_t idx : stack) {
            if (!name.empty())
                name += ';';
            name += rows_[idx].name;
        }
        by_name[name] += cycles;
    }
    std::vector<FoldedStack> out;
    out.reserve(by_name.size());
    for (auto &[name, cycles] : by_name)
        out.push_back({name, cycles});
    return out;
}

std::string
FunctionProfiler::foldedText() const
{
    std::string out;
    for (const FoldedStack &f : foldedStacks()) {
        out += f.stack;
        out += ' ';
        out += std::to_string(f.cycles);
        out += '\n';
    }
    return out;
}

std::uint64_t
FunctionProfiler::attributedCycles() const
{
    std::uint64_t sum = 0;
    for (const ProfileRow &row : rows_)
        sum += row.totalCycles();
    return sum;
}

} // namespace swapram::trace
