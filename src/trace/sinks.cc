#include "trace/sinks.hh"

#include <cstdio>

#include "sim/stats.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace swapram::trace {

namespace {

std::string
ownerLabel(std::uint16_t owner)
{
    if (owner < sim::kNumOwners)
        return sim::ownerName(static_cast<sim::CodeOwner>(owner));
    return "?";
}

} // namespace

std::string
StreamSink::symbol(std::uint16_t addr) const
{
    return symbolize_ ? symbolize_(addr) : std::string();
}

std::string
StreamSink::annotation(const Event &event) const
{
    return annotate_ ? annotate_(event) : std::string();
}

void
TextSink::event(const Event &event)
{
    if (!takeSlot())
        return;
    char head[64];
    std::snprintf(head, sizeof(head), "%12llu  %-12s",
                  static_cast<unsigned long long>(event.cycle),
                  kindName(event.kind));
    out_ << head << ' ' << support::hex16(event.addr);
    std::string sym = symbol(event.addr);
    if (!sym.empty())
        out_ << " <" << sym << '>';
    switch (event.kind) {
      case EventKind::InstrRetire:
        out_ << "  cycles=" << event.value << "+" << event.extra;
        break;
      case EventKind::Fetch:
      case EventKind::Read:
      case EventKind::Write:
        out_ << "  value=" << support::hex16(event.value)
             << (event.byte ? " .b" : "");
        break;
      case EventKind::FramStall:
        out_ << "  stall=" << event.extra;
        break;
      case EventKind::OwnerChange:
        out_ << "  " << ownerLabel(event.extra & 0xFF) << " -> "
             << ownerLabel(event.value);
        break;
      case EventKind::MissExit:
        out_ << "  handler-cycles=" << event.extra
             << " copies=" << event.value;
        break;
      case EventKind::CopyIn:
      case EventKind::Evict: {
        out_ << "  nvm=" << support::hex16(event.value)
             << " bytes=" << event.extra;
        std::string fn = symbol(event.value);
        if (!fn.empty())
            out_ << " func=" << fn;
        break;
      }
      case EventKind::DataSwapIn:
      case EventKind::DataSwapOut:
        out_ << "  home=" << support::hex16(event.value)
             << " bytes=" << event.extra;
        break;
      case EventKind::PowerFail:
        out_ << "  reboot=" << event.value;
        break;
      case EventKind::RecoveryExit:
        out_ << "  recovery-cycles=" << event.extra;
        break;
      case EventKind::CkptCommit:
      case EventKind::CkptRestore: {
        std::string fn = symbol(event.addr);
        if (!fn.empty())
            out_ << "  func=" << fn;
        break;
      }
      default: break;
    }
    std::string note = annotation(event);
    if (!note.empty())
        out_ << "  " << note;
    out_ << '\n';
}

CsvSink::CsvSink(std::ostream &out) : StreamSink(out)
{
    out_ << "cycle,category,kind,addr,value,extra,byte,symbol\n";
}

void
CsvSink::event(const Event &event)
{
    if (!takeSlot())
        return;
    std::string sym = symbol(
        event.kind == EventKind::CopyIn || event.kind == EventKind::Evict
            ? event.value
            : event.addr);
    // Symbols are [A-Za-z0-9_+x]-only, so no CSV quoting is needed.
    out_ << event.cycle << ',' << categoryNames(event.category()) << ','
         << kindName(event.kind) << ',' << support::hex16(event.addr)
         << ',' << support::hex16(event.value) << ',' << event.extra
         << ',' << int(event.byte) << ',' << sym << '\n';
}

ChromeTraceSink::ChromeTraceSink(std::ostream &out,
                                 std::uint32_t clock_hz)
    : StreamSink(out), clock_hz_(clock_hz ? clock_hz : 1)
{
    out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

double
ChromeTraceSink::ts(std::uint64_t cycle) const
{
    return static_cast<double>(cycle) * 1e6 /
           static_cast<double>(clock_hz_);
}

void
ChromeTraceSink::emitRecord(const std::string &name, const char *cat,
                            const char *phase, double ts, int tid,
                            const std::string &args_json)
{
    if (!first_)
        out_ << ',';
    first_ = false;
    std::string quoted;
    support::json::escape(quoted, name);
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "%.4f", ts);
    out_ << "\n{\"name\":" << quoted << ",\"cat\":\"" << cat
         << "\",\"ph\":\"" << phase << "\",\"ts\":" << stamp
         << ",\"pid\":1,\"tid\":" << tid;
    if (phase[0] == 'i')
        out_ << ",\"s\":\"t\"";
    if (!args_json.empty())
        out_ << ",\"args\":{" << args_json << "}";
    out_ << "}";
}

void
ChromeTraceSink::event(const Event &event)
{
    if (closed_ || !takeSlot())
        return;
    last_cycle_ = event.cycle;
    std::string addr_arg = support::cat(
        "\"addr\":\"", support::hex16(event.addr), "\"");
    switch (event.kind) {
      case EventKind::OwnerChange: {
        // One span per code owner on the "owner" track (tid 1).
        if (owner_span_open_) {
            emitRecord(ownerLabel(event.extra & 0xFF), "owner", "E",
                       ts(event.cycle), 1, "");
        }
        emitRecord(ownerLabel(event.value), "owner", "B",
                   ts(event.cycle), 1, addr_arg);
        owner_span_open_ = true;
        return;
      }
      case EventKind::MissEnter: {
        if (!miss_span_open_) {
            emitRecord("miss handler", "swap", "B", ts(event.cycle), 2,
                       support::cat("\"site\":\"",
                                    support::hex16(event.addr), "\""));
            miss_span_open_ = true;
        }
        return;
      }
      case EventKind::MissExit: {
        if (miss_span_open_) {
            emitRecord("miss handler", "swap", "E", ts(event.cycle), 2,
                       support::cat("\"cycles\":", event.extra,
                                    ",\"copies\":", event.value));
            miss_span_open_ = false;
        }
        return;
      }
      case EventKind::CopyIn:
      case EventKind::Evict:
      case EventKind::DataSwapIn:
      case EventKind::DataSwapOut: {
        std::string name = kindName(event.kind);
        if (event.kind == EventKind::CopyIn ||
            event.kind == EventKind::Evict) {
            std::string fn = symbol(event.value);
            if (!fn.empty())
                name += " " + fn;
        }
        emitRecord(name, "swap", "i", ts(event.cycle), 2,
                   support::cat("\"sram\":\"",
                                support::hex16(event.addr),
                                "\",\"nvm\":\"",
                                support::hex16(event.value),
                                "\",\"bytes\":", event.extra));
        return;
      }
      default: {
        std::string args = addr_arg;
        if (event.kind == EventKind::InstrRetire) {
            std::string fn = symbol(event.addr);
            if (!fn.empty())
                args += support::cat(",\"func\":\"", fn, "\"");
            args += support::cat(",\"cycles\":",
                                 event.value + event.extra);
        } else if (event.kind == EventKind::FramStall) {
            args += support::cat(",\"stall\":", event.extra);
        }
        emitRecord(kindName(event.kind),
                   categoryNames(event.category()).c_str(), "i",
                   ts(event.cycle), 0, args);
        return;
      }
    }
}

void
ChromeTraceSink::finish()
{
    if (closed_)
        return;
    if (miss_span_open_)
        emitRecord("miss handler", "swap", "E", ts(last_cycle_), 2, "");
    if (owner_span_open_)
        emitRecord("owner", "owner", "E", ts(last_cycle_), 1, "");
    closed_ = true;
    out_ << "\n]}\n";
    out_.flush();
}

} // namespace swapram::trace
