#include "trace/trace.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace swapram::trace {

Category
categoryOf(EventKind kind)
{
    switch (kind) {
      case EventKind::InstrRetire: return kCatInstr;
      case EventKind::Fetch:
      case EventKind::Read:
      case EventKind::Write: return kCatAccess;
      case EventKind::FramStall: return kCatStall;
      case EventKind::HwCacheHit:
      case EventKind::HwCacheMiss: return kCatHwCache;
      case EventKind::InterruptEnter: return kCatInterrupt;
      case EventKind::OwnerChange:
      case EventKind::MissEnter:
      case EventKind::MissExit:
      case EventKind::CopyIn:
      case EventKind::Evict:
      case EventKind::DataSwapIn:
      case EventKind::DataSwapOut: return kCatSwap;
      case EventKind::PowerFail:
      case EventKind::RecoveryEnter:
      case EventKind::RecoveryExit:
      case EventKind::CkptCommit:
      case EventKind::CkptRestore: return kCatPower;
    }
    support::panic("categoryOf: bad kind");
}

const char *
kindName(EventKind kind)
{
    switch (kind) {
      case EventKind::InstrRetire: return "retire";
      case EventKind::Fetch: return "fetch";
      case EventKind::Read: return "read";
      case EventKind::Write: return "write";
      case EventKind::FramStall: return "fram-stall";
      case EventKind::HwCacheHit: return "hwcache-hit";
      case EventKind::HwCacheMiss: return "hwcache-miss";
      case EventKind::InterruptEnter: return "interrupt";
      case EventKind::OwnerChange: return "owner-change";
      case EventKind::MissEnter: return "miss-enter";
      case EventKind::MissExit: return "miss-exit";
      case EventKind::CopyIn: return "copy-in";
      case EventKind::Evict: return "evict";
      case EventKind::DataSwapIn: return "data-swap-in";
      case EventKind::DataSwapOut: return "data-swap-out";
      case EventKind::PowerFail: return "power-fail";
      case EventKind::RecoveryEnter: return "recovery-enter";
      case EventKind::RecoveryExit: return "recovery-exit";
      case EventKind::CkptCommit: return "ckpt-commit";
      case EventKind::CkptRestore: return "ckpt-restore";
    }
    support::panic("kindName: bad kind");
}

namespace {

struct CategoryName {
    const char *name;
    Category bit;
};

constexpr CategoryName kCategoryNames[] = {
    {"instr", kCatInstr},     {"access", kCatAccess},
    {"stall", kCatStall},     {"hwcache", kCatHwCache},
    {"interrupt", kCatInterrupt}, {"swap", kCatSwap},
    {"power", kCatPower},
};

} // namespace

std::uint32_t
parseCategories(const std::string &list)
{
    std::uint32_t mask = 0;
    for (const std::string &raw : support::split(list, ',')) {
        std::string name = support::toLower(
            std::string(support::trim(raw)));
        if (name.empty())
            continue;
        if (name == "all") {
            mask |= kCatAll;
            continue;
        }
        bool found = false;
        for (const auto &entry : kCategoryNames) {
            if (name == entry.name) {
                mask |= entry.bit;
                found = true;
                break;
            }
        }
        if (!found) {
            support::fatal("unknown trace category '", name,
                           "' (want instr,access,stall,hwcache,"
                           "interrupt,swap,power,all)");
        }
    }
    return mask;
}

std::string
categoryNames(std::uint32_t mask)
{
    std::string out;
    for (const auto &entry : kCategoryNames) {
        if (mask & entry.bit) {
            if (!out.empty())
                out += ',';
            out += entry.name;
        }
    }
    return out;
}

TraceEngine::TraceEngine(std::uint32_t ring_mask, std::size_t capacity)
    : ring_mask_(capacity ? ring_mask : 0), mask_(ring_mask_)
{
    ring_.resize(capacity);
}

void
TraceEngine::addSink(Sink *sink, std::uint32_t mask)
{
    if (!sink)
        support::panic("TraceEngine::addSink: null sink");
    sinks_.push_back({sink, mask});
    mask_ |= mask;
}

void
TraceEngine::emit(const Event &event)
{
    std::uint32_t category = event.category();
    if (!(mask_ & category))
        return;
    ++emitted_;
    if (ring_mask_ & category) {
        if (count_ == ring_.size())
            ++dropped_;
        else
            ++count_;
        ring_[head_] = event;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    }
    // Index loop (not iterators): a sink may re-emit derived events,
    // which recurses into emit(); sinks_ itself never changes mid-run.
    for (std::size_t i = 0; i < sinks_.size(); ++i) {
        if (sinks_[i].mask & category)
            sinks_[i].sink->event(event);
    }
}

void
TraceEngine::finish()
{
    if (finished_)
        return;
    finished_ = true;
    for (auto &sub : sinks_)
        sub.sink->finish();
}

std::vector<Event>
TraceEngine::ring() const
{
    std::vector<Event> out;
    out.reserve(count_);
    std::size_t start =
        count_ == ring_.size() ? head_ : (head_ + ring_.size() - count_) %
                                             ring_.size();
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

} // namespace swapram::trace
