/**
 * @file
 * Shared checkpoint assembly emitter, used by both caching runtimes'
 * generators (swapram/runtime_gen, blockcache/runtime_gen).
 *
 * The commit/restore protocol (torn-write safe at every instruction
 * boundary — the machine only faults between instructions, and every
 * store here is a single word):
 *
 *   __ckpt_commit
 *     1. Stage PC/SP/SR and R4..R15 into __ckpt_regs (inside the
 *        runtime's metadata bracket, so the meta copy captures them).
 *        The resume PC is the commit call's own return address; the
 *        staged SP has that call unwound.
 *     2. DINT, so no ISR mutates SRAM mid-snapshot.
 *     3. Pick the target buffer by the parity of seq+1 — always the
 *        *older* buffer — and clear its magic word first, so a crash
 *        mid-copy can never leave a stale-but-valid-looking header
 *        over a half-new payload.
 *     4. Copy segments into the buffer: metadata bracket, SRAM image,
 *        then any FRAM-resident .data/.bss.
 *     5. Seal: write seq, then the magic word (the commit point), then
 *        advance the __ckpt_seq cursor and the commit counter.
 *     6. Reload R11..R15 and SR from the staging area and RET, so the
 *        live path continues in exactly the state a resumed execution
 *        would see.
 *
 *   __ckpt_restore (tail of the boot-recovery routine)
 *     1. Pick the newest valid buffer (magic check; both valid → the
 *        signed seq difference decides). Neither valid → plain RET,
 *        preserving only R4..R10/R14 (callers save the scratch set).
 *     2. Recompute __ckpt_seq from the chosen header (idempotent: a
 *        crash mid-restore just reruns recovery + restore).
 *     3. Copy the metadata and .data/.bss segments home, then the SRAM
 *        segment with an inline loop — it overwrites the live stack,
 *        so no calls or pushes may follow.
 *     4. Load R4..R15, then SP, then SR (in that order, so a
 *        GIE-deferred interrupt pushes onto the resumed stack), and
 *        branch through the staged resume PC.
 */

#ifndef SWAPRAM_CKPT_GEN_HH
#define SWAPRAM_CKPT_GEN_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "ckpt/options.hh"
#include "masm/assembler.hh"

namespace swapram::ckpt {

/** Bytes of the __ckpt_regs staging area: PC, SP, SR, R4..R15. */
inline constexpr std::uint32_t kRegsBytes = 30;

/** "Committed" marker; buffers are zero-initialised, so 0 is never a
 *  valid magic. */
inline constexpr std::uint16_t kMagic = 0x5AC3;

/** Everything the emitter needs from the host runtime generator. */
struct GenSpec {
    Options options;
    SectionSizes sections;

    /** The runtime's word-copy routine (dst R12, src R13, byte count
     *  R14; all three advanced). */
    std::string memcpy_sym = "__swp_memcpy";
    /** Emit a private __ckpt_memcpy (runtimes without a shared one). */
    bool emit_memcpy = false;

    /** Label bracketing the runtime's .const metadata block. */
    std::string meta_begin = "__swp_meta_begin";
    /** Size of the bracket in bytes, including __ckpt_regs. The
     *  builder cross-checks this against the assembled symbols. */
    std::uint32_t meta_bytes = 0;

    /** Bytes of one buffer's payload (metadata + SRAM + sections). */
    std::uint32_t payloadBytes() const;
    /** SRAM segment size, [kSramBase, options.sram_end). */
    std::uint32_t sramBytes() const;
};

/** The __ckpt_regs staging cell; emit inside the metadata bracket. */
void emitRegsCell(std::ostream &os);

/** Cursor, scheme cells, counters, and the two buffers; emit in
 *  .const *outside* the metadata bracket (they must not roll back
 *  when a restore copies the bracket home). */
void emitConstCells(std::ostream &os, const GenSpec &spec);

/** The scheme's commit trigger; emit at the miss-handler entry, after
 *  the R11..R15 saves (the handler body reloads from its save area, so
 *  clobbering scratch registers here is safe). */
void emitHook(std::ostream &os, const GenSpec &spec);

/** __ckpt_commit and __ckpt_restore (and __ckpt_memcpy when
 *  requested); emit at the end of .text so the pair forms one
 *  contiguous owner-attribution range. */
void emitRoutines(std::ostream &os, const GenSpec &spec);

/**
 * Classify .data/.bss from a probe image (the application assembled
 * without the runtime — appending the runtime never changes these
 * sections' sizes): SRAM-placed sections must fit inside the captured
 * SRAM range (fatal otherwise) and contribute 0; FRAM-placed sections
 * contribute their size, since crt0 reinitialises them on every boot.
 */
SectionSizes measureSections(const masm::Image &image,
                             const Options &options);

/**
 * Cross-check a final assembly against the generated layout: the
 * bracket span and the buffer stride must agree with the sizes the
 * emitter baked into the copy code, and the probe-measured sections
 * must not have changed. Panics on mismatch.
 */
void verifyLayout(const masm::AssembleResult &assembled,
                  const GenSpec &spec, const char *meta_end_sym);

} // namespace swapram::ckpt

#endif // SWAPRAM_CKPT_GEN_HH
