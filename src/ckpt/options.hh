/**
 * @file
 * Crash-atomic checkpointing options shared by both caching runtimes
 * (swapram/runtime_gen, blockcache/runtime_gen).
 *
 * A checkpoint is a double-buffered FRAM snapshot of everything a
 * resumed execution needs: the runtime's metadata block, the live SRAM
 * image, any FRAM-resident .data/.bss (crt0 reinitialises those on
 * every boot, so they are volatile in effect), and a staged register
 * file. Each buffer carries a [seq, magic] header; the magic word is
 * written last, so a power failure at any intermediate store leaves
 * exactly one committed snapshot — never a blend (the torn-window
 * matrix test injects a fault at every cycle of __ckpt_commit to prove
 * it).
 */

#ifndef SWAPRAM_CKPT_OPTIONS_HH
#define SWAPRAM_CKPT_OPTIONS_HH

#include <cstdint>
#include <string>

#include "support/platform.hh"

namespace swapram::ckpt {

/** When the generated runtime commits a checkpoint. */
enum class Scheme : std::uint8_t {
    /** No checkpoint machinery is generated at all; every power
     *  failure restarts from boot (the pre-checkpoint behaviour,
     *  byte-for-byte). */
    None,
    /** Commit every N cache misses (the hook lives at the miss-handler
     *  entry, the one place every swap passes through). */
    Periodic,
    /** Commit once per low-energy episode: when the MMIO capacitor
     *  register drops below a threshold, with hysteresis so one
     *  draining capacitor triggers one commit, not one per miss. */
    OnLowEnergy,
};

std::string schemeName(Scheme scheme);

/** Parse a scheme name ("none", "periodic", "on-low-energy");
 *  fatal()s on anything else. */
Scheme parseScheme(const std::string &name);

/** Checkpointing options for one runtime build. */
struct Options {
    Scheme scheme = Scheme::None;

    /** Periodic: misses between commits. */
    int period = 64;

    /** OnLowEnergy: commit when the capacitor register (0..0xFFFF of
     *  capacity) drops below this. The default 0x4000 (25%) sits
     *  between the 60% power-on and 20% brown-out defaults, leaving
     *  5% of capacity to finish the commit copy. */
    std::uint16_t low_threshold = 0x4000;

    /** One past the last SRAM byte the checkpoint captures, from
     *  platform::kSramBase. Must cover the stack, the cache region,
     *  and any SRAM-placed .data/.bss — the default captures the whole
     *  4 KiB device SRAM; capacity sweeps override it to the
     *  configured SRAM end. */
    std::uint16_t sram_end = static_cast<std::uint16_t>(
        platform::kSramEnd);

    bool enabled() const { return scheme != Scheme::None; }
};

/**
 * Sizes of the FRAM-resident .data/.bss the checkpoint must capture,
 * measured by the builder from a probe assembly (the sections keep
 * their sizes when the runtime is appended; their *bases* are taken at
 * final assembly time through the assembler's __sect_* symbols).
 * Sections that live inside the captured SRAM range are already part
 * of the SRAM segment and must be reported as 0 here.
 */
struct SectionSizes {
    std::uint32_t data_bytes = 0;
    std::uint32_t bss_bytes = 0;
};

} // namespace swapram::ckpt

#endif // SWAPRAM_CKPT_OPTIONS_HH
