#include "ckpt/gen.hh"

#include <ostream>

#include "support/logging.hh"
#include "support/platform.hh"
#include "support/strings.hh"

namespace swapram::ckpt {

namespace plat = swapram::platform;

namespace {

/** Round a section size up to whole words (the copy routine moves
 *  words; reading one byte past an odd-sized section is harmless —
 *  .bss is the last section, and the copy stays inside its region's
 *  address space). */
std::uint32_t
round2(std::uint32_t n)
{
    return (n + 1) & ~1u;
}

} // namespace

std::string
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::None: return "none";
      case Scheme::Periodic: return "periodic";
      case Scheme::OnLowEnergy: return "on-low-energy";
    }
    support::panic("schemeName: bad scheme");
}

Scheme
parseScheme(const std::string &name)
{
    if (name == "none")
        return Scheme::None;
    if (name == "periodic")
        return Scheme::Periodic;
    if (name == "on-low-energy")
        return Scheme::OnLowEnergy;
    support::fatal("unknown checkpoint scheme '", name,
                   "' (none, periodic, on-low-energy)");
}

std::uint32_t
GenSpec::sramBytes() const
{
    if (options.sram_end <= plat::kSramBase ||
        (options.sram_end & 1) != 0) {
        support::fatal("checkpoint SRAM end ", options.sram_end,
                       " must be even and above the SRAM base");
    }
    return options.sram_end - plat::kSramBase;
}

std::uint32_t
GenSpec::payloadBytes() const
{
    return meta_bytes + sramBytes() + round2(sections.data_bytes) +
           round2(sections.bss_bytes);
}

void
emitRegsCell(std::ostream &os)
{
    // Layout: +0 PC, +2 SP, +4 SR, +6..+28 R4..R15.
    os << "__ckpt_regs:   .space " << kRegsBytes << "\n";
}

void
emitConstCells(std::ostream &os, const GenSpec &spec)
{
    const std::uint32_t payload = spec.payloadBytes();
    if (payload > 0xFFFF)
        support::fatal("checkpoint payload too large: ", payload);
    // The cursor and counters live outside the metadata bracket: a
    // restore copies the bracket home, and these must not roll back
    // with it (the cursor orders commits across restores; the counters
    // are monotonic diagnostics the harness reads post-run).
    os << "__ckpt_seq:     .word 0\n";
    if (spec.options.scheme == Scheme::Periodic) {
        // Initialised to the period so the cold first boot counts down
        // like any other.
        os << "__ckpt_ctr:     .word " << spec.options.period << "\n";
    }
    if (spec.options.scheme == Scheme::OnLowEnergy)
        os << "__ckpt_low:     .word 0\n"; // hysteresis latch
    os << "__ckpt_ncommit: .word 0\n"
          "__ckpt_nrestore: .word 0\n";
    for (const char *buf : {"__ckpt_buf0", "__ckpt_buf1"}) {
        os << buf << ":\n"
           << "        .word 0\n"  // seq
           << "        .word 0\n"  // magic (0 = invalid)
           << "        .space " << payload << "\n";
    }
}

void
emitHook(std::ostream &os, const GenSpec &spec)
{
    switch (spec.options.scheme) {
      case Scheme::None:
        break;
      case Scheme::Periodic:
        // Commit every Nth miss. The counter is reset *before* the
        // commit and a persisted zero fires immediately, so a crash in
        // the DEC-to-zero window cannot wrap the counter to 0xFFFF and
        // postpone the next commit by 64 Ki misses.
        if (spec.options.period < 1)
            support::fatal("checkpoint period must be >= 1");
        os << "        TST &__ckpt_ctr\n"
              "        JZ __ckpt_hk_fire\n"
              "        DEC &__ckpt_ctr\n"
              "        JNZ __ckpt_hk_done\n"
              "__ckpt_hk_fire:\n"
              "        MOV #" << spec.options.period
           << ", &__ckpt_ctr\n"
              "        CALL #__ckpt_commit\n"
              "__ckpt_hk_done:\n";
        break;
      case Scheme::OnLowEnergy:
        // Commit once per low-energy episode: latch when the capacitor
        // register first drops below the threshold, re-arm when it
        // climbs back above (each boot starts at the power-on level,
        // which re-arms the latch). The static MMIO operand also keeps
        // the read on the single-step path under the superblock
        // engine.
        os << "        CMP #" << spec.options.low_threshold << ", &"
           << plat::kMmioEnergy << "\n"
           << "        JLO __ckpt_hk_low\n"
              "        CLR &__ckpt_low\n"
              "        JMP __ckpt_hk_done\n"
              "__ckpt_hk_low:\n"
              "        TST &__ckpt_low\n"
              "        JNZ __ckpt_hk_done\n"
              "        MOV #1, &__ckpt_low\n"
              "        CALL #__ckpt_commit\n"
              "__ckpt_hk_done:\n";
        break;
    }
}

void
emitRoutines(std::ostream &os, const GenSpec &spec)
{
    const std::uint32_t sram = spec.sramBytes();
    const std::uint32_t data = round2(spec.sections.data_bytes);
    const std::uint32_t bss = round2(spec.sections.bss_bytes);
    const std::string &mc = spec.memcpy_sym;

    if (spec.emit_memcpy) {
        // Same contract as swapram's __swp_memcpy: dst R12, src R13,
        // even byte count R14; all three advance to their segment ends.
        os << "        .func __ckpt_memcpy\n"
              "__ckpt_mc_loop:\n"
              "        TST R14\n"
              "        JZ __ckpt_mc_done\n"
              "        MOV @R13+, 0(R12)\n"
              "        INCD R12\n"
              "        DECD R14\n"
              "        JMP __ckpt_mc_loop\n"
              "__ckpt_mc_done:\n"
              "        RET\n"
              "        .endfunc\n";
    }

    // ---- Commit ----
    os << "        .func __ckpt_commit\n";
    // Stage the register file first: R4..R15 still hold the caller's
    // live values. Slots: +0 PC, +2 SP, +4 SR, +6.. R4..R15.
    for (int r = 4; r <= 15; ++r) {
        os << "        MOV R" << r << ", &__ckpt_regs+"
           << (6 + 2 * (r - 4)) << "\n";
    }
    os << "        MOV SR, &__ckpt_regs+4\n"
          // DINT: an ISR firing mid-copy would tear the SRAM snapshot.
          // SR (with GIE) is reloaded from the staging slot on exit.
          "        BIC #8, SR\n"
          // Resume point: our own return address, with the call frame
          // unwound from the staged SP.
          "        MOV 0(SP), &__ckpt_regs+0\n"
          "        MOV SP, R15\n"
          "        INCD R15\n"
          "        MOV R15, &__ckpt_regs+2\n"
          // Target = buffer (seq+1) & 1 — always the older one.
          "        MOV &__ckpt_seq, R15\n"
          "        INC R15\n"
          "        MOV #__ckpt_buf0, R11\n"
          "        BIT #1, R15\n"
          "        JZ __ckpt_cm_pick\n"
          "        MOV #__ckpt_buf1, R11\n"
          "__ckpt_cm_pick:\n"
          // Invalidate the target's magic before touching its payload.
          "        CLR 2(R11)\n"
          "        MOV R11, R12\n"
          "        INCD R12\n"
          "        INCD R12\n"
          // Metadata bracket (includes the staged registers).
          "        MOV #" << spec.meta_begin << ", R13\n"
          "        MOV #" << spec.meta_bytes << ", R14\n"
          "        CALL #" << mc << "\n"
          // SRAM image (the copy routine left R12 at the segment end).
          "        MOV #" << plat::kSramBase << ", R13\n"
          "        MOV #" << sram << ", R14\n"
          "        CALL #" << mc << "\n";
    if (data) {
        os << "        MOV #__sect_data_base, R13\n"
              "        MOV #" << data << ", R14\n"
              "        CALL #" << mc << "\n";
    }
    if (bss) {
        os << "        MOV #__sect_bss_base, R13\n"
              "        MOV #" << bss << ", R14\n"
              "        CALL #" << mc << "\n";
    }
    // Seal: seq, then the magic (the commit point), then the cursor.
    os << "        MOV R15, 0(R11)\n"
          "        MOV #" << kMagic << ", 2(R11)\n"
          "        MOV R15, &__ckpt_seq\n"
          "        INC &__ckpt_ncommit\n"
          // Reload scratch registers and SR from the staging area: the
          // live path continues in exactly the state a resumed
          // execution sees (and SR regains GIE after the DINT above).
          "        MOV &__ckpt_regs+20, R11\n"
          "        MOV &__ckpt_regs+22, R12\n"
          "        MOV &__ckpt_regs+24, R13\n"
          "        MOV &__ckpt_regs+26, R14\n"
          "        MOV &__ckpt_regs+28, R15\n"
          "        MOV &__ckpt_regs+4, SR\n"
          "        RET\n"
          "        .endfunc\n";

    // ---- Restore ----
    os << "        .func __ckpt_restore\n"
          // Pick the newest valid buffer into R11. The cold path (no
          // valid checkpoint) clobbers only R11..R13 and flags, which
          // the recovery routine saves around this call.
          "        MOV #__ckpt_buf0, R11\n"
          "        MOV #__ckpt_buf1, R12\n"
          "        CMP #" << kMagic << ", 2(R11)\n"
          "        JEQ __ckpt_rs_b0\n"
          "        CMP #" << kMagic << ", 2(R12)\n"
          "        JNE __ckpt_rs_cold\n"
          "        MOV R12, R11\n"
          "        JMP __ckpt_rs_go\n"
          "__ckpt_rs_b0:\n"
          "        CMP #" << kMagic << ", 2(R12)\n"
          "        JNE __ckpt_rs_go\n"
          // Both valid: the signed seq difference names the newer one
          // (they alternate, so the distance is exactly 1, wrap-safe).
          "        MOV 0(R12), R13\n"
          "        SUB 0(R11), R13\n"
          "        JN __ckpt_rs_go\n"
          "        MOV R12, R11\n"
          "__ckpt_rs_go:\n"
          // Recompute the cursor from the chosen header. Everything
          // from here on is idempotent: a crash mid-restore reruns
          // recovery + restore and redoes the same stores.
          "        MOV 0(R11), R15\n"
          "        MOV R15, &__ckpt_seq\n"
          "        INC &__ckpt_nrestore\n"
          "        MOV R11, R13\n"
          "        INCD R13\n"
          "        INCD R13\n"
          // Metadata home (restores __ckpt_regs too).
          "        MOV #" << spec.meta_begin << ", R12\n"
          "        MOV #" << spec.meta_bytes << ", R14\n"
          "        CALL #" << mc << "\n"
          // Hold the SRAM segment's buffer address; it is copied last.
          "        MOV R13, R11\n";
    if (data) {
        os << "        ADD #" << sram << ", R13\n"
              "        MOV #__sect_data_base, R12\n"
              "        MOV #" << data << ", R14\n"
              "        CALL #" << mc << "\n";
    }
    if (bss) {
        if (!data)
            os << "        ADD #" << sram << ", R13\n";
        os << "        MOV #__sect_bss_base, R12\n"
              "        MOV #" << bss << ", R14\n"
              "        CALL #" << mc << "\n";
    }
    // SRAM image, inline: this overwrites the live stack, so no calls
    // or pushes from here on.
    os << "        MOV R11, R13\n"
          "        MOV #" << plat::kSramBase << ", R12\n"
          "        MOV #" << sram << ", R14\n"
          "__ckpt_rs_sram:\n"
          "        TST R14\n"
          "        JZ __ckpt_rs_regs\n"
          "        MOV @R13+, 0(R12)\n"
          "        INCD R12\n"
          "        DECD R14\n"
          "        JMP __ckpt_rs_sram\n"
          "__ckpt_rs_regs:\n";
    for (int r = 4; r <= 15; ++r) {
        os << "        MOV &__ckpt_regs+" << (6 + 2 * (r - 4)) << ", R"
           << r << "\n";
    }
    // SP before SR: if SR re-enables GIE with an interrupt pending,
    // the ISR must push onto the resumed stack.
    os << "        MOV &__ckpt_regs+2, SP\n"
          "        MOV &__ckpt_regs+4, SR\n"
          "        BR &__ckpt_regs\n"
          "__ckpt_rs_cold:\n"
          "        RET\n"
          "        .endfunc\n";
}

SectionSizes
measureSections(const masm::Image &image, const Options &options)
{
    SectionSizes sizes;
    auto classify = [&](const char *name, const masm::Range &range)
        -> std::uint32_t {
        if (range.size == 0)
            return 0;
        const bool in_sram = range.base >= plat::kSramBase &&
                             range.base < plat::kFramBase;
        if (!in_sram)
            return range.size;
        if (range.end() > options.sram_end) {
            support::fatal("checkpointing: ", name, " section [",
                           support::hex16(range.base), ", ",
                           range.end(), ") extends past the captured "
                           "SRAM range end ", options.sram_end);
        }
        return 0; // covered by the SRAM segment
    };
    sizes.data_bytes = classify("data", image.data);
    sizes.bss_bytes = classify("bss", image.bss);
    return sizes;
}

void
verifyLayout(const masm::AssembleResult &assembled, const GenSpec &spec,
             const char *meta_end_sym)
{
    const std::uint32_t span =
        static_cast<std::uint16_t>(assembled.symbol(meta_end_sym) -
                                   assembled.symbol(spec.meta_begin));
    if (span != spec.meta_bytes) {
        support::panic("checkpoint bracket ", spec.meta_begin, "..",
                       meta_end_sym, " spans ", span,
                       " bytes but the generator accounted ",
                       spec.meta_bytes,
                       " (a metadata cell is missing from the count)");
    }
    const std::uint32_t stride =
        static_cast<std::uint16_t>(assembled.symbol("__ckpt_buf1") -
                                   assembled.symbol("__ckpt_buf0"));
    if (stride != 4 + spec.payloadBytes()) {
        support::panic("checkpoint buffer stride ", stride,
                       " != header + payload ",
                       4 + spec.payloadBytes());
    }
    // The emitter baked the probe-measured section sizes into the copy
    // code; the final image must still match.
    SectionSizes now = measureSections(assembled.image, spec.options);
    if (now.data_bytes != spec.sections.data_bytes ||
        now.bss_bytes != spec.sections.bss_bytes) {
        support::panic("checkpoint section sizes moved between probe "
                       "and final assembly: data ",
                       spec.sections.data_bytes, " -> ", now.data_bytes,
                       ", bss ", spec.sections.bss_bytes, " -> ",
                       now.bss_bytes);
    }
}

} // namespace swapram::ckpt
