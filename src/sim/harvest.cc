#include "sim/harvest.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace swapram::sim {

HarvestTrace
HarvestTrace::parse(const std::string &csv, const std::string &what)
{
    std::vector<Point> points;
    std::istringstream in(csv);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::size_t start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos)
            continue;
        std::size_t comma = line.find(',');
        if (comma == std::string::npos) {
            support::fatal(what, ":", lineno,
                           ": expected \"time_s,power_w\"");
        }
        char *end = nullptr;
        double t = std::strtod(line.c_str() + start, &end);
        double w = std::strtod(line.c_str() + comma + 1, &end);
        if (t < 0 || w < 0) {
            support::fatal(what, ":", lineno,
                           ": negative time or power");
        }
        if (!points.empty() && t <= points.back().t_s) {
            support::fatal(what, ":", lineno,
                           ": times must be strictly increasing");
        }
        points.push_back({t, w});
    }
    if (points.empty())
        support::fatal(what, ": no data points");
    if (points.front().t_s != 0.0)
        support::fatal(what, ": first point must be at time 0");
    return fromPoints(std::move(points));
}

HarvestTrace
HarvestTrace::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        support::fatal("cannot open harvest trace '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str(), path);
}

HarvestTrace
HarvestTrace::fromPoints(std::vector<Point> points)
{
    HarvestTrace t;
    t.points_ = std::move(points);
    t.buildPrefix();
    return t;
}

void
HarvestTrace::buildPrefix()
{
    prefix_pj_.resize(points_.size());
    double acc = 0;
    for (std::size_t i = 0; i < points_.size(); ++i) {
        if (i) {
            acc += points_[i - 1].watts *
                   (points_[i].t_s - points_[i - 1].t_s) * 1e12;
        }
        prefix_pj_[i] = acc;
    }
}

/** Index of the segment containing @p t_s (last whose start <= t). */
static std::size_t
segmentAt(const std::vector<HarvestTrace::Point> &points, double t_s)
{
    // Binary search on segment starts; points are non-empty and start
    // at 0, so there is always a containing segment for t >= 0.
    std::size_t lo = 0, hi = points.size();
    while (hi - lo > 1) {
        std::size_t mid = (lo + hi) / 2;
        if (points[mid].t_s <= t_s)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

double
HarvestTrace::powerWatts(double t_s) const
{
    if (t_s < 0)
        return 0;
    return points_[segmentAt(points_, t_s)].watts;
}

double
HarvestTrace::energyPj(double t_s) const
{
    if (t_s <= 0)
        return 0;
    std::size_t i = segmentAt(points_, t_s);
    return prefix_pj_[i] + points_[i].watts * (t_s - points_[i].t_s) * 1e12;
}

RechargeResult
rechargeTime(const HarvestTrace &trace, const CapacitorModel &cap,
             double level_pj, double wall_s)
{
    double level = std::clamp(level_pj, 0.0, cap.capacity_pj);
    double target = std::min(cap.power_on_pj, cap.capacity_pj);
    if (level >= target)
        return {true, 0};

    const auto &points = trace.points();
    std::size_t i = segmentAt(points, wall_s);
    double t = wall_s;
    for (;; ++i) {
        double net_w = points[i].watts - cap.leak_watts;
        bool last = i + 1 == points.size();
        double seg_end = last ? 0 : points[i + 1].t_s;
        if (net_w > 0) {
            double need_s = (target - level) / (net_w * 1e12);
            if (last || t + need_s <= seg_end)
                return {true, t + need_s - wall_s};
            // target not reached inside this segment (and clamping at
            // capacity cannot overshoot it: power_on <= capacity).
            level = std::min(cap.capacity_pj,
                             level + net_w * 1e12 * (seg_end - t));
        } else {
            if (last)
                return {false, 0}; // drains (or holds) forever
            level = std::max(0.0,
                             level + net_w * 1e12 * (seg_end - t));
        }
        t = seg_end;
    }
}

} // namespace swapram::sim
