/**
 * @file
 * Predecode fast path: a direct-mapped cache of decoded instructions
 * keyed by PC, so steady-state simulation skips decodeShape() /
 * decodeWords() / baseCycles() and replays only the bus fetches (which
 * carry all timing and statistics side effects).
 *
 * Correctness rests on invalidation: SwapRAM copies code into SRAM at
 * runtime, so any bus write must kill cached decodes whose words the
 * write could overlap. PCs are word-aligned and an instruction spans at
 * most three words, so a write to byte `addr` can only affect the
 * instructions starting at the three word slots at and below `addr` —
 * invalidation is three stores. Writes that bypass the bus
 * (Machine::load, Machine::powerCycle's SRAM decay + crt0 re-copy) must
 * call invalidateAll().
 *
 * The cache holds one slot per word of the 64 KiB address space, so
 * the slot index *is* the PC (no tags, no aliasing, no replacement).
 * MMIO-resident "instructions" are never cached: device reads are
 * time-dependent, so those fetches always decode fresh.
 */

#ifndef SWAPRAM_SIM_PREDECODE_HH
#define SWAPRAM_SIM_PREDECODE_HH

#include <cstdint>
#include <vector>

#include "isa/instruction.hh"

namespace swapram::sim {

/** Direct-mapped decoded-instruction cache (one slot per word). */
class PredecodeCache
{
  public:
    /** One cached decode; `n_words` == 0 marks the slot invalid. */
    struct Entry {
        isa::Instr instr{};
        std::uint8_t n_words = 0;     ///< 1..3 fetched words
        std::uint8_t base_cycles = 0; ///< isa::baseCycles(instr)
    };

    PredecodeCache() : slots_(kSlots) {}

    /** Cached entry for @p pc, or nullptr on miss. */
    const Entry *
    find(std::uint16_t pc) const
    {
        const Entry &e = slots_[pc >> 1];
        return e.n_words ? &e : nullptr;
    }

    /** Record the decode of the @p n_words-word instruction at @p pc. */
    void
    insert(std::uint16_t pc, const isa::Instr &instr,
           std::uint8_t n_words, std::uint8_t base_cycles)
    {
        Entry &e = slots_[pc >> 1];
        e.instr = instr;
        e.n_words = n_words;
        e.base_cycles = base_cycles;
    }

    /**
     * A bus write touched @p addr (and, for word writes, @p addr + 1):
     * drop any cached instruction whose fetched words could include it.
     * Word-aligned starts within 6 bytes below the write are exactly
     * the slot of @p addr and the two slots before it.
     */
    void
    invalidateWrite(std::uint16_t addr)
    {
        std::uint32_t s = addr >> 1;
        slots_[s].n_words = 0;
        slots_[(s + kSlots - 1) & (kSlots - 1)].n_words = 0;
        slots_[(s + kSlots - 2) & (kSlots - 1)].n_words = 0;
    }

    /** Drop every cached decode (image load, power cycle). */
    void
    invalidateAll()
    {
        for (Entry &e : slots_)
            e.n_words = 0;
    }

  private:
    /** One slot per word-aligned PC: 64 KiB / 2. */
    static constexpr std::uint32_t kSlots = 32768;

    std::vector<Entry> slots_;
};

} // namespace swapram::sim

#endif // SWAPRAM_SIM_PREDECODE_HH
