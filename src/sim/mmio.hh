/**
 * @file
 * Memory-mapped test devices: console byte output, run-termination
 * register, pin-toggle marker, and a latched cycle counter.
 */

#ifndef SWAPRAM_SIM_MMIO_HH
#define SWAPRAM_SIM_MMIO_HH

#include <cstdint>
#include <string>

namespace swapram::sim {

class FaultInjector;

/** State of the harness MMIO devices. */
class Mmio
{
  public:
    /** Wire the energy register to a fault injector's capacitor level
     *  (nullptr detaches; reads then return 0xFFFF, "mains power"). */
    void setEnergyProbe(const FaultInjector *injector)
    {
        energy_ = injector;
    }

    /** Handle a write of @p value to MMIO @p addr.
     *  @param cycles_now total cycles, for the cycle-counter latch. */
    void write(std::uint16_t addr, std::uint16_t value,
               std::uint64_t cycles_now);

    /** Handle a read from MMIO @p addr. */
    std::uint16_t read(std::uint16_t addr, std::uint64_t cycles_now);

    /** Power loss: all device state is volatile and clears (console
     *  output restarts, so a completed run's output reflects the final
     *  boot only). */
    void powerCycle();

    bool done() const { return done_; }
    std::uint8_t exitCode() const { return exit_code_; }
    const std::string &console() const { return console_; }
    std::uint64_t pinToggles() const { return pin_toggles_; }

  private:
    const FaultInjector *energy_ = nullptr; ///< not owned
    bool done_ = false;
    std::uint8_t exit_code_ = 0;
    std::string console_;
    std::uint64_t pin_toggles_ = 0;
    std::uint64_t latched_cycles_ = 0;
};

} // namespace swapram::sim

#endif // SWAPRAM_SIM_MMIO_HH
