#include "sim/memory.hh"

#include "support/platform.hh"

namespace swapram::sim {

namespace plat = swapram::platform;

RegionKind
regionOf(std::uint16_t addr)
{
    return regionOf(addr, plat::kSramEnd);
}

RegionKind
regionOf(std::uint16_t addr, std::uint32_t sram_end)
{
    if (addr >= plat::kFramBase)
        return RegionKind::Fram;
    if (addr >= plat::kSramBase && addr < sram_end)
        return RegionKind::Sram;
    if (addr >= plat::kMmioBase && addr < plat::kMmioEnd)
        return RegionKind::Mmio;
    return RegionKind::Unmapped;
}

Memory::Memory() : bytes_(0x10000, 0)
{
}

void
Memory::loadImage(const masm::Image &image)
{
    for (const masm::Chunk &chunk : image.chunks) {
        for (size_t i = 0; i < chunk.bytes.size(); ++i) {
            bytes_[static_cast<std::uint16_t>(chunk.base + i)] =
                chunk.bytes[i];
        }
    }
}

} // namespace swapram::sim
