#include "sim/bus.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/strings.hh"

namespace swapram::sim {

Bus::Bus(Memory &memory, Mmio &mmio, Stats &stats,
         const MachineConfig &config)
    : memory_(memory), mmio_(mmio), stats_(stats), config_(config)
{
}

void
Bus::beginInstruction()
{
    fram_accesses_this_instr_ = 0;
}

void
Bus::account(std::uint16_t addr, RegionKind region, AccessKind kind)
{
    AccessCounts *counts = nullptr;
    switch (region) {
      case RegionKind::Sram: counts = &stats_.sram; break;
      case RegionKind::Fram: counts = &stats_.fram; break;
      case RegionKind::Mmio: counts = &stats_.mmio; break;
      case RegionKind::Unmapped:
        support::fatal("access to unmapped address ",
                       support::hex16(addr));
    }
    switch (kind) {
      case AccessKind::Fetch: ++counts->fetch; break;
      case AccessKind::Read: ++counts->read; break;
      case AccessKind::Write: ++counts->write; break;
    }
    if (metrics_) {
        // Mirrors the region counters above one-for-one, so heatmap
        // page totals sum exactly to the Stats access counts.
        switch (kind) {
          case AccessKind::Fetch: metrics_->heatmap.recordFetch(addr);
            break;
          case AccessKind::Read: metrics_->heatmap.recordRead(addr);
            break;
          case AccessKind::Write: metrics_->heatmap.recordWrite(addr);
            break;
        }
    }

    if (region != RegionKind::Mmio) {
        bool code = addr >= code_base_ &&
                    static_cast<std::uint32_t>(addr) < code_end_;
        if (code)
            ++stats_.code_space_accesses;
        else
            ++stats_.data_space_accesses;
    }

    if (region == RegionKind::Fram) {
        std::uint32_t ws = config_.effectiveWaitStates();
        // Contention (paper §2.2/§5.4): one instruction dispatching
        // multiple accesses to *distant* FRAM addresses bottlenecks at
        // the cache controller regardless of clock frequency: the
        // second and later FRAM accesses of an instruction contend if
        // they touch a different 8-byte line than the previous one.
        // An access stalls for max(wait states, contention) — a miss's
        // wait states already serialize it against the earlier access.
        std::uint32_t line = addr >> 3;
        bool contends =
            fram_accesses_this_instr_ > 0 && line != last_fram_line_;
        last_fram_line_ = line;
        ++fram_accesses_this_instr_;
        std::uint32_t contention =
            contends ? config_.contention_stall : 0;

        std::uint32_t stall = 0;
        if (kind == AccessKind::Write) {
            // Writes go to the FRAM array directly (write-through
            // controller); they pay the wait states but do not disturb
            // the read cache's tag state.
            stall = std::max(ws, contention);
        } else if (config_.hw_cache_enabled) {
            bool hit = hw_cache_.access(addr);
            if (hit) {
                ++stats_.fram_cache_hits;
                stall = contention;
            } else {
                ++stats_.fram_cache_misses;
                stall = std::max(ws, contention);
            }
            if (trace_ && trace_->wants(trace::kCatHwCache)) {
                trace_->emit({now(),
                              hit ? trace::EventKind::HwCacheHit
                                  : trace::EventKind::HwCacheMiss,
                              0, addr, 0, 0});
            }
        } else {
            ++stats_.fram_cache_misses;
            stall = std::max(ws, contention);
        }
        stats_.stall_cycles += stall;
        if (stall && metrics_) {
            metrics_->heatmap.recordStall(addr, stall);
            metrics_->fram_stall_cycles.record(stall);
        }
        if (stall && trace_ && trace_->wants(trace::kCatStall)) {
            trace_->emit({now(), trace::EventKind::FramStall, 0, addr,
                          0, stall});
        }
    }
}

std::uint16_t
Bus::read16(std::uint16_t addr, AccessKind kind)
{
    if (addr & 1)
        support::fatal("unaligned word read at ", support::hex16(addr));
    RegionKind region = regionOf(addr, config_.sramEnd());
    account(addr, region, kind);
    std::uint16_t value;
    if (region == RegionKind::Mmio)
        value = mmio_.read(addr, now());
    else
        value = memory_.read16(addr);
    traceAccess(addr, value, kind, false);
    return value;
}

std::uint8_t
Bus::read8(std::uint16_t addr, AccessKind kind)
{
    RegionKind region = regionOf(addr, config_.sramEnd());
    account(addr, region, kind);
    std::uint8_t value;
    if (region == RegionKind::Mmio)
        value = static_cast<std::uint8_t>(mmio_.read(addr, now()));
    else
        value = memory_.read8(addr);
    traceAccess(addr, value, AccessKind::Read, true);
    return value;
}

void
Bus::write16(std::uint16_t addr, std::uint16_t value)
{
    if (addr & 1)
        support::fatal("unaligned word write at ", support::hex16(addr));
    RegionKind region = regionOf(addr, config_.sramEnd());
    account(addr, region, AccessKind::Write);
    if (region == RegionKind::Mmio)
        mmio_.write(addr, value, now());
    else
        memory_.write16(addr, value);
    if (predecode_) {
        predecode_->invalidateWrite(addr);
        ++stats_.predecode_invalidations;
    }
    if (page_gens_)
        page_gens_->noteWrite(addr, 2);
    traceAccess(addr, value, AccessKind::Write, false);
}

void
Bus::write8(std::uint16_t addr, std::uint8_t value)
{
    RegionKind region = regionOf(addr, config_.sramEnd());
    account(addr, region, AccessKind::Write);
    if (region == RegionKind::Mmio)
        mmio_.write(addr, value, now());
    else
        memory_.write8(addr, value);
    if (predecode_) {
        predecode_->invalidateWrite(addr);
        ++stats_.predecode_invalidations;
    }
    if (page_gens_)
        page_gens_->noteWrite(addr, 1);
    traceAccess(addr, value, AccessKind::Write, true);
}

} // namespace swapram::sim
