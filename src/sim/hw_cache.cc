#include "sim/hw_cache.hh"

namespace swapram::sim {

void
HwCache::reset()
{
    for (Set &set : sets_) {
        for (Way &way : set.ways)
            way.valid = false;
        set.lru = 0;
    }
}

bool
HwCache::probe(std::uint16_t addr) const
{
    std::uint32_t line = addr >> kLineShift;
    const Set &set = sets_[line & (kSets - 1)];
    std::uint32_t tag = line >> 1;
    for (int w = 0; w < kWays; ++w) {
        if (set.ways[w].valid && set.ways[w].tag == tag)
            return true;
    }
    return false;
}

} // namespace swapram::sim
