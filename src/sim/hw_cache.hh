/**
 * @file
 * Timing model of the FRAM controller's hardware read cache
 * (MSP430FR2355: 2-way set associative, four 8-byte lines). The cache
 * stores tags only — data always comes from the flat memory array — so
 * it influences stall cycles and hit/miss statistics, never values.
 */

#ifndef SWAPRAM_SIM_HW_CACHE_HH
#define SWAPRAM_SIM_HW_CACHE_HH

#include <array>
#include <cstdint>

#include "support/platform.hh"

namespace swapram::sim {

/** Tag-only model of the 2-way FRAM read cache. */
class HwCache
{
  public:
    HwCache() { reset(); }

    /** Invalidate every line. */
    void reset();

    /**
     * Look up the line containing @p addr, filling it on a miss.
     * @return true on hit.
     *
     * Inline: this sits on the per-access hot path of both the bus and
     * the superblock fast path.
     */
    bool
    access(std::uint16_t addr)
    {
        std::uint32_t line = addr >> kLineShift;
        Set &set = sets_[line & (kSets - 1)];
        std::uint32_t tag = line >> 1;
        for (int w = 0; w < kWays; ++w) {
            if (set.ways[w].valid && set.ways[w].tag == tag) {
                // other way is LRU
                set.lru = static_cast<std::uint8_t>(1 - w);
                return true;
            }
        }
        Way &victim = set.ways[set.lru];
        victim.valid = true;
        victim.tag = tag;
        set.lru = static_cast<std::uint8_t>(1 - set.lru);
        return false;
    }

    /** True if the line containing @p addr is present (no state change). */
    bool probe(std::uint16_t addr) const;

  private:
    static constexpr int kSets = platform::kHwCacheSets;
    static constexpr int kWays = platform::kHwCacheWays;
    static constexpr int kLineShift = 3; // 8-byte lines

    struct Way {
        bool valid = false;
        std::uint32_t tag = 0;
    };
    struct Set {
        std::array<Way, kWays> ways{};
        std::uint8_t lru = 0; ///< way to replace next
    };

    std::array<Set, kSets> sets_;
};

} // namespace swapram::sim

#endif // SWAPRAM_SIM_HW_CACHE_HH
