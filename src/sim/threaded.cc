#include "sim/threaded.hh"

#include "isa/cycles.hh"
#include "sim/exec.hh"
#include "support/logging.hh"
#include "support/platform.hh"
#include "support/strings.hh"

#if SWAPRAM_THREADED_AVAILABLE

#include <algorithm>
#include <cstring>

namespace swapram::sim {

using isa::Mode;
using isa::Op;
using isa::Operand;

/**
 * One lowered instruction: a kernel label plus flattened operands and
 * the static accounting it contributes. Fields are family-specific:
 *   - sp/dp: source/destination cells. For register and immediate
 *     operands these are native uint16_t cells (the register file, or
 *     the op's own `a` field); for static memory operands they point
 *     into the flat simulated memory (little-endian bytes).
 *   - a/b: immediate value (the cell sp may point at), jump target,
 *     or the static source/destination address.
 *   - runs/fa0/fa1: dynamic FRAM fetch probes. Three sequential fetch
 *     words span at most two 8-byte lines, so a fetch stream collapses
 *     to at most two hardware-cache probes; same-line followers are
 *     guaranteed hits with zero stall (a hit on the just-used way does
 *     not move the LRU) and fold into the static totals.
 *   - probe/d0_hit/d0_miss: one dynamic data-read probe for a static
 *     FRAM address with the hardware cache on; the line-contention
 *     component of the stall is static (the fetch stream's addresses
 *     are fixed), so both outcomes' stalls are precomputed.
 *   - d_*: this op's share of the block's static totals, subtracted
 *     back on the rare bail-out walk over the unexecuted suffix.
 */
struct alignas(64) TOp {
    const void *h = nullptr;
    const std::uint8_t *sp = nullptr;
    std::uint8_t *dp = nullptr;
    std::uint16_t next_pc = 0;
    std::uint16_t a = 0;
    std::uint16_t b = 0; ///< static dst addr; instr index for generic
    std::uint16_t mask = 0xFFFF;
    std::uint16_t msb = 0x8000;
    std::uint16_t fa0 = 0, fa1 = 0;
    std::uint16_t fc0 = 0, fm0 = 0; ///< first fetch probe hit/miss stall
    std::uint16_t d0_hit = 0, d0_miss = 0;
    std::uint16_t lastline = 0;
    std::uint8_t byte = 0;
    std::uint8_t runs = 0;
    std::uint8_t probe = 0;
    std::uint8_t ra = 0;  ///< dyn src reg index / jump polarity
    std::uint8_t rd = 0;  ///< dyn dst reg index
    std::uint8_t inc = 0; ///< @Rn+ post-increment amount
    std::uint8_t smc = 0; ///< static store into the block's own code
    std::uint8_t chain = 0; ///< FRAM fetch words seeding data contention
};
static_assert(sizeof(TOp) == 64, "TOp must stay one cache line");

/** Accumulator indices: one contiguous order shared by the dispatch
 *  context's dynamic accumulators (u64) and each block's static totals
 *  (u32), so block entry applies the totals with one vectorizable
 *  loop. */
enum AccIdx {
    kAccBase = 0,
    kAccStall,
    kAccSramFetch,
    kAccSramRead,
    kAccSramWrite,
    kAccFramFetch,
    kAccFramRead,
    kAccFramWrite,
    kAccHits,
    kAccMisses,
    kAccCode,
    kAccData,
    kAccPreInval,
    kAccOwner0, // + kNumOwners entries
    kNumAcc = kAccOwner0 + kNumOwners
};

/** Per-op static accounting deltas, only touched on a mid-block
 *  bail-out (the suffix walk) and at lowering time — kept out of TOp
 *  so the dispatch loop streams one cache line per op. */
struct TDelta {
    std::uint32_t d_stall = 0;
    std::uint8_t d_base = 0, d_fetch = 0, d_code = 0, d_data = 0;
    std::uint8_t d_sram_r = 0, d_sram_w = 0;
    std::uint8_t d_fram_r = 0, d_fram_w = 0;
    std::uint8_t d_hits = 0, d_misses = 0, d_pre = 0;
    std::uint8_t owner = 0;
};

/** Lowered form of one superblock: the op array (with a trailing
 *  block-end sentinel) and the block's static accounting totals,
 *  applied in one shot at block entry. */
class ThreadedCode
{
  public:
    std::vector<TOp> ops;
    std::vector<TDelta> deltas;
    bool fram_code = false;
    /** Static block totals, indexed by AccIdx (the fetch count is
     *  already in the fram/sram slot matching fetch_region). */
    alignas(32) std::array<std::uint32_t, kNumAcc> tot{};
};

namespace {

/** Kernel identifiers, in exact label-table order. The four Format I
 *  families are contiguous runs indexed by (op - Op::Mov). */
enum KernelId : int {
    kNRBase = 0,    ///< imm/reg src -> reg dst, fully static accounting
    kMRBase = 12,   ///< static mem src -> reg dst
    kNMBase = 24,   ///< imm/reg src -> static mem dst
    kDRBase = 36,   ///< dynamic mem src -> reg dst
    kNDBase = 48,   ///< imm/reg src -> dynamic Indexed dst
    kRrc = 60,
    kRra,
    kSwpb,
    kSxt,
    kPush,
    kCallImm,
    kJmp,
    kJcc,
    kJSigned,
    kGeneric,
    kBlockEnd,
    kNumKernels,
};

#define SWAPRAM_FMT1_OPS(X)                                              \
    X(Mov) X(Add) X(Addc) X(Subc) X(Sub) X(Cmp) X(Dadd) X(Bit) X(Bic)    \
    X(Bis) X(Xor) X(And)

/** Shared chain state + accumulators for one runChain invocation. */
struct DCtx {
    std::uint16_t *regs = nullptr;
    std::array<std::uint16_t, 16> *regs_arr = nullptr;
    std::uint8_t *bytes = nullptr;
    HwCache *hw = nullptr;
    PredecodeCache *pre = nullptr;
    PageGenTable *gens = nullptr;

    // Dynamic accumulators (AccIdx order), flushed to Stats once per
    // chain. The static per-block totals are added here at block entry
    // too, so a bail-out only has to subtract the unexecuted suffix.
    alignas(32) std::array<std::uint64_t, kNumAcc> acc{};

    // Timing-model constants.
    std::uint32_t ws = 0, cstall = 0, ms = 0; ///< ms = max(ws, cstall)
    std::uint32_t sram_size = 0;
    std::uint16_t code_base = 0;
    std::uint32_t code_end = 0;
    bool hw_on = true;

    // Per-block self-modification window.
    std::uint16_t blk_start = 0;
    std::uint32_t blk_end = 0;
    bool smc = false;

    /// The dispatched block's decoded instructions (generic kernel).
    const SuperblockEngine::BlockInstr *instrs = nullptr;

    // Chain state for block transitions inside the dispatch loop
    // (ThreadedEngine::advanceChain).
    ThreadedEngine *eng = nullptr;
    const SuperblockEngine::ChainLimits *limits = nullptr;
    ThreadedCode *cur_tc = nullptr; ///< dispatched block's lowered code
    TOp *cur_ops = nullptr;
    std::size_t cur_n = 0;
    std::uint64_t total = 0;      ///< retired instructions this chain
    std::uint64_t dispatches = 0; ///< blocks with progress this chain
    bool first = true;
    bool chain_in_recovery = false;

    // Per-instruction FRAM line-contention chain (dynamic paths).
    std::uint32_t fram_count = 0, last_line = 0;

    // Bail-out report: the op the dispatch stopped at, and why.
    TOp *bail_op = nullptr;
    int bail_kind = 0; ///< 0 done, 1 operand (uncommitted), 2 SMC
};

inline bool
mappedAddr(const DCtx *st, std::uint16_t addr)
{
    return addr >= platform::kFramBase ||
           static_cast<std::uint16_t>(addr - platform::kSramBase) <
               st->sram_size;
}

inline void
setF(std::uint16_t *regs, bool n, bool z, bool c, bool v)
{
    namespace sr = isa::sr;
    std::uint16_t s = regs[2];
    s &= static_cast<std::uint16_t>(~(sr::kN | sr::kZ | sr::kC | sr::kV));
    if (n)
        s |= sr::kN;
    if (z)
        s |= sr::kZ;
    if (c)
        s |= sr::kC;
    if (v)
        s |= sr::kV;
    regs[2] = s;
}

/** Format I ops that write the destination / that set flags. */
template <Op OP>
constexpr bool
fmt1Writes()
{
    return OP != Op::Cmp && OP != Op::Bit;
}
template <Op OP>
constexpr bool
fmt1Flags()
{
    return OP != Op::Mov && OP != Op::Bic && OP != Op::Bis;
}

struct AluR {
    std::uint32_t r;
    bool n, z, c, v;
};

/** The Format I ALU, result + flags; mirrors ExecCore::executeFormatI
 *  op by op (the kernels then store-before-set-flags in the same
 *  order, which matters when the destination is SR). */
template <Op OP>
inline AluR
fmt1Alu(std::uint32_t src, std::uint32_t dst, std::uint16_t sr_val,
        std::uint32_t mask, std::uint32_t msb)
{
    namespace sr = isa::sr;
    AluR o{0, false, false, false, false};
    if constexpr (OP == Op::Mov) {
        o.r = src & mask;
        return o;
    } else if constexpr (OP == Op::Add || OP == Op::Addc ||
                         OP == Op::Sub || OP == Op::Subc ||
                         OP == Op::Cmp) {
        std::uint32_t a = src;
        std::uint32_t cin = 0;
        if constexpr (OP == Op::Add) {
            cin = 0;
        } else if constexpr (OP == Op::Addc) {
            cin = (sr_val & sr::kC) ? 1 : 0;
        } else if constexpr (OP == Op::Sub || OP == Op::Cmp) {
            a = (~src) & mask;
            cin = 1;
        } else { // Subc
            a = (~src) & mask;
            cin = (sr_val & sr::kC) ? 1 : 0;
        }
        std::uint32_t sum = a + dst + cin;
        o.r = sum & mask;
        o.c = sum > mask;
        o.z = o.r == 0;
        o.n = (o.r & msb) != 0;
        o.v = ((~(a ^ dst)) & (a ^ o.r) & msb) != 0;
        return o;
    } else if constexpr (OP == Op::Dadd) {
        std::uint32_t carry = (sr_val & sr::kC) ? 1 : 0;
        std::uint32_t r = 0;
        int nibbles = mask == 0xFF ? 2 : 4;
        for (int i = 0; i < nibbles; ++i) {
            std::uint32_t a = (src >> (4 * i)) & 0xF;
            std::uint32_t b = (dst >> (4 * i)) & 0xF;
            std::uint32_t d = a + b + carry;
            carry = d >= 10 ? 1 : 0;
            if (carry)
                d -= 10;
            r |= (d & 0xF) << (4 * i);
        }
        o.r = r;
        o.n = (r & msb) != 0;
        o.z = r == 0;
        o.c = carry != 0;
        return o;
    } else if constexpr (OP == Op::Bit || OP == Op::And) {
        o.r = src & dst;
        o.n = (o.r & msb) != 0;
        o.z = o.r == 0;
        o.c = o.r != 0;
        return o;
    } else if constexpr (OP == Op::Bic) {
        o.r = dst & ~src & mask;
        return o;
    } else if constexpr (OP == Op::Bis) {
        o.r = dst | src;
        return o;
    } else { // Xor
        o.r = (dst ^ src) & mask;
        o.n = (o.r & msb) != 0;
        o.z = o.r == 0;
        o.c = o.r != 0;
        o.v = ((src & msb) != 0) && ((dst & msb) != 0);
        return o;
    }
}

/** Native u16 cell load (register file or the op's immediate cell). */
inline std::uint32_t
cellLoad(const std::uint8_t *sp, std::uint32_t mask)
{
    std::uint16_t v;
    std::memcpy(&v, sp, 2);
    return v & mask;
}

/** Native u16 cell store (register file); byte ops clear the upper
 *  byte, exactly storeLoc's register rule, because mask is 0xFF. */
inline void
cellStore(std::uint8_t *dp, std::uint32_t r, std::uint32_t mask)
{
    std::uint16_t v = static_cast<std::uint16_t>(r & mask);
    std::memcpy(dp, &v, 2);
}

/** Simulated-memory load (little-endian flat array). */
inline std::uint32_t
simLoad(const std::uint8_t *sp, std::uint32_t mask)
{
    if (mask == 0xFF)
        return sp[0];
    return static_cast<std::uint32_t>(sp[0]) |
           (static_cast<std::uint32_t>(sp[1]) << 8);
}

inline void
simStore(std::uint8_t *dp, std::uint32_t r, std::uint32_t mask)
{
    dp[0] = static_cast<std::uint8_t>(r & 0xFF);
    if (mask != 0xFF)
        dp[1] = static_cast<std::uint8_t>((r >> 8) & 0xFF);
}


/** The bus's FRAM read timing model for one dynamic data access;
 *  returns after updating the contention chain and the dynamic
 *  counters. Mirrors superblock FastMem::framStall(is_write=false). */
inline void
dynFramRead(DCtx *st, std::uint16_t addr)
{
    std::uint32_t line = addr >> 3;
    bool contends = st->fram_count > 0 && line != st->last_line;
    st->last_line = line;
    ++st->fram_count;
    std::uint32_t contention = contends ? st->cstall : 0;
    std::uint32_t stall;
    if (st->hw_on) {
        if (st->hw->access(addr)) {
            ++st->acc[kAccHits];
            stall = contention;
        } else {
            ++st->acc[kAccMisses];
            stall = std::max(st->ws, contention);
        }
    } else {
        ++st->acc[kAccMisses];
        stall = std::max(st->ws, contention);
    }
    st->acc[kAccStall] += stall;
}

/** FastMem::framStall(is_write=true). */
inline void
dynFramWrite(DCtx *st, std::uint16_t addr)
{
    std::uint32_t line = addr >> 3;
    bool contends = st->fram_count > 0 && line != st->last_line;
    st->last_line = line;
    ++st->fram_count;
    st->acc[kAccStall] += std::max(st->ws, contends ? st->cstall : 0u);
}

inline void
dynClassify(DCtx *st, std::uint16_t addr)
{
    if (addr >= st->code_base &&
        static_cast<std::uint32_t>(addr) < st->code_end)
        ++st->acc[kAccCode];
    else
        ++st->acc[kAccData];
}

/** Dynamic-address load with full accounting (FastMem::read8/read16;
 *  the caller pre-checked the address lies in SRAM/FRAM). */
inline std::uint32_t
dynLoad(DCtx *st, std::uint16_t addr, bool byte)
{
    if (!byte && (addr & 1))
        support::fatal("unaligned word read at ", support::hex16(addr));
    dynClassify(st, addr);
    if (addr >= platform::kFramBase) {
        ++st->acc[kAccFramRead];
        dynFramRead(st, addr);
    } else {
        ++st->acc[kAccSramRead];
    }
    if (byte)
        return st->bytes[addr];
    return static_cast<std::uint32_t>(st->bytes[addr]) |
           (static_cast<std::uint32_t>(
                st->bytes[static_cast<std::uint16_t>(addr + 1)])
            << 8);
}

/** Store-side invalidation duties (FastMem::noteStore): predecode
 *  3-slot drop, page-generation bump, own-block SMC detection. */
inline void
dynNoteStore(DCtx *st, std::uint16_t addr, unsigned nbytes)
{
    if (st->pre) {
        st->pre->invalidateWrite(addr);
        ++st->acc[kAccPreInval];
    }
    st->gens->noteWrite(addr, nbytes);
    std::uint32_t lo = addr;
    if (lo < st->blk_end && lo + nbytes > st->blk_start)
        st->smc = true;
}

/** Dynamic-address store with full accounting (FastMem::write8/16). */
inline void
dynStore(DCtx *st, std::uint16_t addr, std::uint32_t value, bool byte)
{
    if (!byte && (addr & 1))
        support::fatal("unaligned word write at ", support::hex16(addr));
    dynClassify(st, addr);
    if (addr >= platform::kFramBase) {
        ++st->acc[kAccFramWrite];
        dynFramWrite(st, addr);
    } else {
        ++st->acc[kAccSramWrite];
    }
    st->bytes[addr] = static_cast<std::uint8_t>(value & 0xFF);
    if (!byte)
        st->bytes[static_cast<std::uint16_t>(addr + 1)] =
            static_cast<std::uint8_t>((value >> 8) & 0xFF);
    dynNoteStore(st, addr, byte ? 1 : 2);
}

/**
 * FastMem-equivalent memory policy over DCtx for the generic kernel's
 * ExecCore, so instructions with no specialized kernel still run the
 * single-sourced semantics with identical accounting.
 */
class ShimMem
{
  public:
    explicit ShimMem(DCtx &st) : st_(&st) {}

    std::uint16_t
    read16(std::uint16_t addr, AccessKind)
    {
        return static_cast<std::uint16_t>(dynLoad(st_, addr, false));
    }

    std::uint8_t
    read8(std::uint16_t addr, AccessKind)
    {
        return static_cast<std::uint8_t>(dynLoad(st_, addr, true));
    }

    void
    write16(std::uint16_t addr, std::uint16_t value)
    {
        dynStore(st_, addr, value, false);
    }

    void
    write8(std::uint16_t addr, std::uint8_t value)
    {
        dynStore(st_, addr, value, true);
    }

  private:
    DCtx *st_;
};

#define SWAPRAM_INLINE inline __attribute__((always_inline))

/** Replay the fetch stream's dynamic hardware-cache probes (at most
 *  two line runs; same-line followers are folded statically). The
 *  first probe's stall contributions are per-op (fc0/fm0): normally
 *  0/ws (a leading run never contends), but when cross-op folding
 *  removed the leading run, the surviving probe is a contending line
 *  change and carries cstall/ms instead. */
SWAPRAM_INLINE void
tFetch(DCtx *st, const TOp *op)
{
    if (op->runs) {
        if (st->hw->access(op->fa0)) {
            ++st->acc[kAccHits];
            st->acc[kAccStall] += op->fc0;
        } else {
            ++st->acc[kAccMisses];
            st->acc[kAccStall] += op->fm0;
        }
        if (op->runs > 1) {
            if (st->hw->access(op->fa1)) {
                ++st->acc[kAccHits];
                st->acc[kAccStall] += st->cstall;
            } else {
                ++st->acc[kAccMisses];
                st->acc[kAccStall] += st->ms;
            }
        }
    }
}

/** One dynamic data-read probe of a static FRAM address. */
SWAPRAM_INLINE void
tProbe(DCtx *st, const TOp *op, std::uint16_t addr)
{
    if (op->probe) {
        if (st->hw->access(addr)) {
            ++st->acc[kAccHits];
            st->acc[kAccStall] += op->d0_hit;
        } else {
            ++st->acc[kAccMisses];
            st->acc[kAccStall] += op->d0_miss;
        }
    }
}

/** imm/reg src -> reg dst: no memory, fully static accounting. */
template <Op OP>
SWAPRAM_INLINE int
kernNR(DCtx *st, TOp *op)
{
    tFetch(st, op);
    std::uint16_t *regs = st->regs;
    regs[0] = op->next_pc;
    std::uint32_t src = cellLoad(op->sp, op->mask);
    std::uint32_t dst = 0;
    if constexpr (OP != Op::Mov)
        dst = cellLoad(op->dp, op->mask);
    AluR o = fmt1Alu<OP>(src, dst, regs[2], op->mask, op->msb);
    if constexpr (fmt1Writes<OP>())
        cellStore(op->dp, o.r, op->mask);
    if constexpr (fmt1Flags<OP>())
        setF(regs, o.n, o.z, o.c, o.v);
    return 0;
}

/** Static mem src -> reg dst: at most one dynamic probe. */
template <Op OP>
SWAPRAM_INLINE int
kernMR(DCtx *st, TOp *op)
{
    tFetch(st, op);
    tProbe(st, op, op->a);
    std::uint16_t *regs = st->regs;
    regs[0] = op->next_pc;
    std::uint32_t src = simLoad(op->sp, op->mask);
    std::uint32_t dst = 0;
    if constexpr (OP != Op::Mov)
        dst = cellLoad(op->dp, op->mask);
    AluR o = fmt1Alu<OP>(src, dst, regs[2], op->mask, op->msb);
    if constexpr (fmt1Writes<OP>())
        cellStore(op->dp, o.r, op->mask);
    if constexpr (fmt1Flags<OP>())
        setF(regs, o.n, o.z, o.c, o.v);
    return 0;
}

/** imm/reg src -> static mem dst: probe covers the non-Mov dst read;
 *  the write's stall and the SMC outcome are static. Invalidation
 *  side effects (predecode, page generations) stay dynamic. */
template <Op OP>
SWAPRAM_INLINE int
kernNM(DCtx *st, TOp *op)
{
    tFetch(st, op);
    if constexpr (OP != Op::Mov)
        tProbe(st, op, op->b);
    std::uint16_t *regs = st->regs;
    regs[0] = op->next_pc;
    std::uint32_t src = cellLoad(op->sp, op->mask);
    std::uint32_t dst = 0;
    if constexpr (OP != Op::Mov)
        dst = simLoad(op->dp, op->mask);
    AluR o = fmt1Alu<OP>(src, dst, regs[2], op->mask, op->msb);
    if constexpr (fmt1Writes<OP>()) {
        simStore(op->dp, o.r, op->mask);
        if (st->pre)
            st->pre->invalidateWrite(op->b);
        st->gens->noteWrite(op->b, op->byte ? 1 : 2);
    }
    if constexpr (fmt1Flags<OP>())
        setF(regs, o.n, o.z, o.c, o.v);
    if constexpr (fmt1Writes<OP>()) {
        if (op->smc)
            return 2;
    }
    return 0;
}

/** Dynamic mem src -> reg dst: mapped pre-check, then fully dynamic
 *  source accounting (the contention chain seeds from the fetch). */
template <Op OP>
SWAPRAM_INLINE int
kernDR(DCtx *st, TOp *op)
{
    std::uint16_t *regs = st->regs;
    std::uint16_t addr =
        static_cast<std::uint16_t>(regs[op->ra] + op->a);
    if (!mappedAddr(st, addr))
        return 1;
    tFetch(st, op);
    st->fram_count = op->chain;
    st->last_line = op->lastline;
    regs[0] = op->next_pc;
    regs[op->ra] = static_cast<std::uint16_t>(regs[op->ra] + op->inc);
    std::uint32_t src = dynLoad(st, addr, op->byte != 0);
    std::uint32_t dst = 0;
    if constexpr (OP != Op::Mov)
        dst = cellLoad(op->dp, op->mask);
    AluR o = fmt1Alu<OP>(src, dst, regs[2], op->mask, op->msb);
    if constexpr (fmt1Writes<OP>())
        cellStore(op->dp, o.r, op->mask);
    if constexpr (fmt1Flags<OP>())
        setF(regs, o.n, o.z, o.c, o.v);
    return 0;
}

/** imm/reg src -> dynamic Indexed dst: mapped pre-check on the
 *  destination, fully dynamic read-modify-write accounting. */
template <Op OP>
SWAPRAM_INLINE int
kernND(DCtx *st, TOp *op)
{
    std::uint16_t *regs = st->regs;
    std::uint16_t addr =
        static_cast<std::uint16_t>(regs[op->rd] + op->b);
    if (!mappedAddr(st, addr))
        return 1;
    tFetch(st, op);
    st->fram_count = op->chain;
    st->last_line = op->lastline;
    regs[0] = op->next_pc;
    std::uint32_t src = cellLoad(op->sp, op->mask);
    std::uint32_t dst = 0;
    if constexpr (OP != Op::Mov)
        dst = dynLoad(st, addr, op->byte != 0);
    AluR o = fmt1Alu<OP>(src, dst, regs[2], op->mask, op->msb);
    if constexpr (fmt1Writes<OP>())
        dynStore(st, addr, o.r, op->byte != 0);
    if constexpr (fmt1Flags<OP>())
        setF(regs, o.n, o.z, o.c, o.v);
    if constexpr (fmt1Writes<OP>()) {
        if (st->smc)
            return 2;
    }
    return 0;
}

/** RRC/RRA on a register destination (mask distinguishes .B). */
template <bool RRC>
SWAPRAM_INLINE int
kernRot(DCtx *st, TOp *op)
{
    namespace sr = isa::sr;
    tFetch(st, op);
    std::uint16_t *regs = st->regs;
    regs[0] = op->next_pc;
    std::uint32_t v = cellLoad(op->dp, op->mask);
    std::uint32_t r;
    if constexpr (RRC)
        r = ((v >> 1) | ((regs[2] & sr::kC) ? op->msb : 0)) & op->mask;
    else
        r = ((v >> 1) | (v & op->msb)) & op->mask;
    cellStore(op->dp, r, op->mask);
    setF(regs, (r & op->msb) != 0, r == 0, (v & 1) != 0, false);
    return 0;
}

/** PUSH of a register/immediate source: one dynamic stack write. */
SWAPRAM_INLINE int
kernPush(DCtx *st, TOp *op)
{
    std::uint16_t *regs = st->regs;
    std::uint16_t nsp = static_cast<std::uint16_t>(regs[1] - 2);
    if (!mappedAddr(st, nsp))
        return 1;
    tFetch(st, op);
    st->fram_count = op->chain;
    st->last_line = op->lastline;
    regs[0] = op->next_pc;
    std::uint32_t v = cellLoad(op->sp, op->mask);
    regs[1] = nsp;
    dynStore(st, nsp, v, op->byte != 0);
    return st->smc ? 2 : 0;
}

/** CALL #imm: static target, one dynamic stack write. Terminator. */
SWAPRAM_INLINE int
kernCallImm(DCtx *st, TOp *op)
{
    std::uint16_t *regs = st->regs;
    std::uint16_t nsp = static_cast<std::uint16_t>(regs[1] - 2);
    if (!mappedAddr(st, nsp))
        return 1;
    tFetch(st, op);
    st->fram_count = op->chain;
    st->last_line = op->lastline;
    regs[0] = op->next_pc;
    regs[1] = nsp;
    dynStore(st, nsp, op->next_pc, false);
    regs[0] = op->a;
    return st->smc ? 2 : 0;
}

/** Everything else: the shared ExecCore over the FastMem-equivalent
 *  shim, with the superblock tier's exact per-instruction protocol. */
SWAPRAM_INLINE int
kernGeneric(DCtx *st, TOp *op, ExecCore<ShimMem> &core)
{
    const SuperblockEngine::BlockInstr *bi = &st->instrs[op->b];
    if ((bi->flags & SuperblockEngine::kFlagDynMem) &&
        !SuperblockEngine::dynOperandsMapped(bi->instr, *st->regs_arr,
                                             st->sram_size))
        return 1;
    tFetch(st, op);
    st->fram_count = op->chain;
    st->last_line = op->lastline;
    st->regs[0] = op->next_pc;
    core.execute(bi->instr);
    return st->smc ? 2 : 0;
}

/**
 * The dispatch loop: a computed-goto chain over a lowered block.
 * Called with st == nullptr it returns the kernel label table (indexed
 * by KernelId) so lowering can resolve handlers; otherwise it runs ops
 * from @p op until a bail-out or the block-end sentinel, recording the
 * stop point and reason in the context.
 */
const void *const *
dispatchRun(DCtx *st, TOp *op)
{
    static const void *const kLabels[kNumKernels] = {
#define X(N) &&L_nr_##N,
        SWAPRAM_FMT1_OPS(X)
#undef X
#define X(N) &&L_mr_##N,
        SWAPRAM_FMT1_OPS(X)
#undef X
#define X(N) &&L_nm_##N,
        SWAPRAM_FMT1_OPS(X)
#undef X
#define X(N) &&L_dr_##N,
        SWAPRAM_FMT1_OPS(X)
#undef X
#define X(N) &&L_nd_##N,
        SWAPRAM_FMT1_OPS(X)
#undef X
        &&L_rrc,     &&L_rra, &&L_swpb, &&L_sxt,     &&L_push,
        &&L_callimm, &&L_jmp, &&L_jcc,  &&L_jsigned, &&L_generic,
        &&L_end,
    };
    if (!st)
        return kLabels;

    ShimMem shim(*st);
    ExecCore<ShimMem> core(*st->regs_arr, shim);

#define SWAPRAM_NEXT                                                     \
    do {                                                                 \
        ++op;                                                            \
        goto *op->h;                                                     \
    } while (0)
#define SWAPRAM_RUN(call)                                                \
    do {                                                                 \
        int k_ = (call);                                                 \
        if (k_ != 0) {                                                   \
            if (k_ == 1)                                                 \
                goto L_bail_operand;                                     \
            goto L_bail_smc;                                             \
        }                                                                \
    } while (0)

    goto *op->h;

#define X(N)                                                             \
    L_nr_##N : SWAPRAM_RUN(kernNR<Op::N>(st, op));                       \
    SWAPRAM_NEXT;
    SWAPRAM_FMT1_OPS(X)
#undef X
#define X(N)                                                             \
    L_mr_##N : SWAPRAM_RUN(kernMR<Op::N>(st, op));                       \
    SWAPRAM_NEXT;
    SWAPRAM_FMT1_OPS(X)
#undef X
#define X(N)                                                             \
    L_nm_##N : SWAPRAM_RUN(kernNM<Op::N>(st, op));                       \
    SWAPRAM_NEXT;
    SWAPRAM_FMT1_OPS(X)
#undef X
#define X(N)                                                             \
    L_dr_##N : SWAPRAM_RUN(kernDR<Op::N>(st, op));                       \
    SWAPRAM_NEXT;
    SWAPRAM_FMT1_OPS(X)
#undef X
#define X(N)                                                             \
    L_nd_##N : SWAPRAM_RUN(kernND<Op::N>(st, op));                       \
    SWAPRAM_NEXT;
    SWAPRAM_FMT1_OPS(X)
#undef X

L_rrc:
    SWAPRAM_RUN(kernRot<true>(st, op));
    SWAPRAM_NEXT;
L_rra:
    SWAPRAM_RUN(kernRot<false>(st, op));
    SWAPRAM_NEXT;
L_swpb : {
    tFetch(st, op);
    st->regs[0] = op->next_pc;
    std::uint32_t v = cellLoad(op->dp, 0xFFFF);
    cellStore(op->dp, ((v >> 8) | (v << 8)) & 0xFFFF, 0xFFFF);
    SWAPRAM_NEXT;
}
L_sxt : {
    tFetch(st, op);
    st->regs[0] = op->next_pc;
    std::uint32_t v = cellLoad(op->dp, 0xFF);
    std::uint32_t r = (v & 0x80) ? (v | 0xFF00) : v;
    cellStore(op->dp, r, 0xFFFF);
    setF(st->regs, (r & 0x8000) != 0, r == 0, r != 0, false);
    SWAPRAM_NEXT;
}
L_push:
    SWAPRAM_RUN(kernPush(st, op));
    SWAPRAM_NEXT;
L_callimm:
    SWAPRAM_RUN(kernCallImm(st, op));
    SWAPRAM_NEXT;
L_jmp:
    tFetch(st, op);
    st->regs[0] = op->a;
    SWAPRAM_NEXT;
L_jcc : {
    tFetch(st, op);
    bool taken =
        ((st->regs[2] & op->mask) != 0) == (op->ra != 0);
    st->regs[0] = taken ? op->a : op->next_pc;
    SWAPRAM_NEXT;
}
L_jsigned : {
    namespace sr = isa::sr;
    tFetch(st, op);
    bool n = (st->regs[2] & sr::kN) != 0;
    bool v = (st->regs[2] & sr::kV) != 0;
    st->regs[0] = ((n == v) == (op->ra != 0)) ? op->a : op->next_pc;
    SWAPRAM_NEXT;
}
L_generic:
    SWAPRAM_RUN(kernGeneric(st, op, core));
    SWAPRAM_NEXT;

L_bail_operand:
    st->bail_op = op;
    st->bail_kind = 1;
    return kLabels;
L_bail_smc:
    st->bail_op = op;
    st->bail_kind = 2;
    return kLabels;
L_end:
    // Block completed: hand over to the chain-advance helper, which
    // accounts it and enters the next block (guards, lazy lowering,
    // static totals) — the dispatch function itself is entered once
    // per chain, not once per block.
    op = static_cast<TOp *>(st->eng->advanceChain(st));
    if (op)
        goto *op->h;
    st->bail_op = nullptr;
    st->bail_kind = 0;
    return kLabels;

#undef SWAPRAM_NEXT
#undef SWAPRAM_RUN
}

} // namespace

ThreadedEngine::ThreadedEngine(Cpu &cpu, Memory &memory, Bus &bus,
                               Stats &stats, const MachineConfig &config,
                               SuperblockEngine &sb)
    : cpu_(cpu), memory_(memory), bus_(bus), stats_(stats),
      config_(config), sb_(sb)
{
    labels_ = dispatchRun(nullptr, nullptr);
}

void
ThreadedEngine::lower(SuperblockEngine::Block &block)
{
    auto tc = std::make_shared<ThreadedCode>();
    const bool fram_code = block.fetch_region == RegionKind::Fram;
    const bool hw_on = config_.hw_cache_enabled;
    const std::uint32_t ws = config_.effectiveWaitStates();
    const std::uint32_t cstall = config_.contention_stall;
    const std::uint32_t ms = std::max(ws, cstall);
    const std::uint16_t code_base = bus_.codeBase();
    const std::uint32_t code_end = bus_.codeEnd();
    std::uint16_t *regs = cpu_.regs().data();
    std::uint8_t *bytes = memory_.bytes();
    tc->fram_code = fram_code;

    const std::size_t n = block.instrs.size();
    // Sized once up front: ops never reallocate afterwards, so an
    // immediate's source cell may point into its own TOp.
    tc->ops.resize(n + 1);
    tc->deltas.resize(n);

    auto regCell = [regs](isa::Reg r) {
        return reinterpret_cast<std::uint8_t *>(regs + isa::regIndex(r));
    };
    // Fold one static-address data read into op statics. The fetch
    // stream's addresses are fixed, so the line-contention component
    // is static; with the hardware cache on, only the hit/miss
    // outcome stays a runtime probe.
    auto staticRead = [&](std::uint16_t addr, TOp &t, TDelta &dl) {
        if (addr >= code_base && static_cast<std::uint32_t>(addr) <
                                     code_end)
            ++dl.d_code;
        else
            ++dl.d_data;
        if (addr >= platform::kFramBase) {
            ++dl.d_fram_r;
            std::uint32_t line = addr >> 3;
            bool contends = t.chain > 0 && line != t.lastline;
            std::uint32_t cont = contends ? cstall : 0;
            if (hw_on) {
                t.probe = 1;
                t.d0_hit = static_cast<std::uint16_t>(cont);
                t.d0_miss = static_cast<std::uint16_t>(std::max(ws, cont));
            } else {
                ++dl.d_misses;
                dl.d_stall += std::max(ws, cont);
            }
        } else {
            ++dl.d_sram_r;
        }
    };
    // Fold one static-address data write: the stall is fully static
    // (after_read: the preceding read of the same cell already seeded
    // the contention chain with this line, so the write never
    // contends). The SMC outcome is static too — both the address and
    // the block's code window are fixed.
    auto staticWrite = [&](std::uint16_t addr, TOp &t, TDelta &dl,
                           bool after_read, unsigned nbytes) {
        if (addr >= code_base && static_cast<std::uint32_t>(addr) <
                                     code_end)
            ++dl.d_code;
        else
            ++dl.d_data;
        if (addr >= platform::kFramBase) {
            ++dl.d_fram_w;
            std::uint32_t cont = 0;
            if (!after_read) {
                std::uint32_t line = addr >> 3;
                cont = (t.chain > 0 && line != t.lastline) ? cstall : 0;
            }
            dl.d_stall += std::max(ws, cont);
        } else {
            ++dl.d_sram_w;
        }
        if (predecode_)
            ++dl.d_pre;
        if (static_cast<std::uint32_t>(addr) < block.end_addr &&
            static_cast<std::uint32_t>(addr) + nbytes > block.start_pc)
            t.smc = 1;
    };

    // Cross-op fetch-run folding. After an instruction's fetch stream,
    // its last line is the most-recently-used way of its set; if the
    // next instruction starts on that same line and nothing in between
    // could have touched the hardware cache (no data-read probe — FRAM
    // data writes never probe), its leading fetch probe is a guaranteed
    // hit on the MRU way: hits += 1, stall 0, LRU unchanged. Fold it
    // into the statics and drop the runtime probe.
    std::uint32_t fold_line = 0xFFFFFFFF;
    bool fold_clean = false;

    for (std::size_t i = 0; i < n; ++i) {
        const SuperblockEngine::BlockInstr &bi = block.instrs[i];
        const isa::Instr &in = bi.instr;
        TOp &t = tc->ops[i];
        TDelta &dl = tc->deltas[i];
        t.next_pc = bi.next_pc;
        dl.owner = bi.owner;
        dl.d_base = bi.base_cycles;
        t.byte = in.byte ? 1 : 0;
        t.mask = in.byte ? 0xFF : 0xFFFF;
        t.msb = in.byte ? 0x80 : 0x8000;

        // Fetch statics: collapse the FRAM stream to its line runs.
        dl.d_fetch = bi.n_words;
        if (fram_code) {
            t.chain = bi.n_words;
            t.lastline = static_cast<std::uint16_t>(bi.last_fetch_line);
            if (hw_on) {
                int runs = 0;
                for (int w = 0; w < bi.n_words; ++w) {
                    if (w == 0 || bi.fetch_contends[w]) {
                        std::uint16_t wa = static_cast<std::uint16_t>(
                            bi.pc + 2 * w);
                        if (runs == 0)
                            t.fa0 = wa;
                        else
                            t.fa1 = wa;
                        ++runs;
                    }
                }
                t.fm0 = static_cast<std::uint16_t>(ws);
                if (runs > 0 && fold_clean &&
                    (static_cast<std::uint32_t>(bi.pc) >> 3) ==
                        fold_line) {
                    // The surviving probe (if any) is the old second
                    // run — a contending line change, not a leading
                    // run — so it keeps run-1 stall contributions.
                    t.fa0 = t.fa1;
                    t.fc0 = static_cast<std::uint16_t>(cstall);
                    t.fm0 = static_cast<std::uint16_t>(ms);
                    --runs;
                }
                t.runs = static_cast<std::uint8_t>(runs);
                dl.d_hits = static_cast<std::uint8_t>(bi.n_words - runs);
            } else {
                for (int w = 0; w < bi.n_words; ++w)
                    dl.d_stall += bi.fetch_contends[w] ? ms : ws;
                dl.d_misses = bi.n_words;
            }
        }
        dl.d_code = bi.code_words;
        dl.d_data = static_cast<std::uint8_t>(bi.n_words - bi.code_words);

        // Kernel selection.
        int kid = kGeneric;
        const Op o = in.op;
        switch (isa::opFormat(o)) {
          case isa::OpFormat::Jump: {
            namespace sr = isa::sr;
            t.a = in.jump_target;
            if (o == Op::Jmp) {
                kid = kJmp;
            } else if (o == Op::Jge || o == Op::Jl) {
                kid = kJSigned;
                t.ra = o == Op::Jge ? 1 : 0;
            } else {
                kid = kJcc;
                switch (o) {
                  case Op::Jne: t.mask = sr::kZ; t.ra = 0; break;
                  case Op::Jeq: t.mask = sr::kZ; t.ra = 1; break;
                  case Op::Jnc: t.mask = sr::kC; t.ra = 0; break;
                  case Op::Jc: t.mask = sr::kC; t.ra = 1; break;
                  case Op::Jn: t.mask = sr::kN; t.ra = 1; break;
                  default: kid = kGeneric; break;
                }
            }
            break;
          }
          case isa::OpFormat::DoubleOperand: {
            const Operand &s = in.src;
            const Operand &d = in.dst;
            const int op_off = static_cast<int>(o) -
                               static_cast<int>(Op::Mov);
            const bool src_nonmem = s.mode == Mode::Register ||
                                    s.mode == Mode::Immediate;
            const bool src_static = s.mode == Mode::Symbolic ||
                                    s.mode == Mode::Absolute;
            const bool dst_reg = d.mode == Mode::Register &&
                                 d.reg != isa::Reg::CG2;
            const bool dst_static = d.mode == Mode::Symbolic ||
                                    d.mode == Mode::Absolute;
            const bool word_ok_src = in.byte || !(s.value & 1);
            const bool word_ok_dst = in.byte || !(d.value & 1);
            if (s.mode == Mode::Immediate) {
                t.a = s.value;
                t.sp = reinterpret_cast<const std::uint8_t *>(&t.a);
            } else if (s.mode == Mode::Register) {
                t.sp = regCell(s.reg);
            }
            if (src_nonmem && dst_reg) {
                kid = kNRBase + op_off;
                t.dp = regCell(d.reg);
            } else if (src_static && dst_reg && word_ok_src) {
                kid = kMRBase + op_off;
                t.a = s.value;
                t.sp = bytes + s.value;
                t.dp = regCell(d.reg);
                staticRead(s.value, t, dl);
            } else if (src_nonmem && dst_static && word_ok_dst) {
                kid = kNMBase + op_off;
                t.b = d.value;
                t.dp = bytes + d.value;
                const bool reads_dst = o != Op::Mov;
                if (reads_dst)
                    staticRead(d.value, t, dl);
                if (o != Op::Cmp && o != Op::Bit)
                    staticWrite(d.value, t, dl, reads_dst,
                                in.byte ? 1 : 2);
            } else if ((s.mode == Mode::Indexed ||
                        s.mode == Mode::Indirect ||
                        s.mode == Mode::IndirectInc) &&
                       dst_reg) {
                kid = kDRBase + op_off;
                t.ra = isa::regIndex(s.reg);
                t.a = s.mode == Mode::Indexed ? s.value : 0;
                t.inc = s.mode == Mode::IndirectInc
                            ? (in.byte ? 1 : 2)
                            : 0;
                t.dp = regCell(d.reg);
            } else if (src_nonmem && d.mode == Mode::Indexed) {
                kid = kNDBase + op_off;
                t.rd = isa::regIndex(d.reg);
                t.b = d.value;
            }
            break;
          }
          case isa::OpFormat::SingleOperand: {
            const Operand &d = in.dst;
            const bool d_reg = d.mode == Mode::Register &&
                               d.reg != isa::Reg::CG2;
            switch (o) {
              case Op::Rrc:
                if (d_reg) {
                    kid = kRrc;
                    t.dp = regCell(d.reg);
                }
                break;
              case Op::Rra:
                if (d_reg) {
                    kid = kRra;
                    t.dp = regCell(d.reg);
                }
                break;
              case Op::Swpb:
                if (d_reg) {
                    kid = kSwpb;
                    t.dp = regCell(d.reg);
                }
                break;
              case Op::Sxt:
                if (d_reg) {
                    kid = kSxt;
                    t.dp = regCell(d.reg);
                }
                break;
              case Op::Push:
                if (d.mode == Mode::Register) {
                    kid = kPush;
                    t.sp = regCell(d.reg);
                } else if (d.mode == Mode::Immediate) {
                    kid = kPush;
                    t.a = d.value;
                    t.sp =
                        reinterpret_cast<const std::uint8_t *>(&t.a);
                }
                break;
              case Op::Call:
                if (d.mode == Mode::Immediate) {
                    kid = kCallImm;
                    t.a = d.value;
                }
                break;
              default:
                break; // RETI and memory-destination forms: generic
            }
            break;
          }
        }
        if (kid == kGeneric)
            t.b = static_cast<std::uint16_t>(i);
        t.h = labels_[kid];

        // Fold state for the next instruction's leading fetch run:
        // dirty when this op can issue a data-read probe (static FRAM
        // read, dynamic-address read, or anything via the generic
        // core). Dynamic and generic writes go through framStall's
        // write path, which never probes, but a dynamic *read* might
        // land in FRAM, so DR / read-modify-write ND / generic all
        // invalidate the MRU assumption.
        fold_line = bi.last_fetch_line;
        const bool may_probe =
            t.probe != 0 || (kid >= kDRBase && kid < kDRBase + 12) ||
            (kid >= kNDBase && kid < kNDBase + 12 && o != Op::Mov) ||
            kid == kGeneric;
        fold_clean = !may_probe;

        tc->tot[kAccBase] += dl.d_base;
        tc->tot[kAccStall] += dl.d_stall;
        tc->tot[fram_code ? kAccFramFetch : kAccSramFetch] += dl.d_fetch;
        tc->tot[kAccCode] += dl.d_code;
        tc->tot[kAccData] += dl.d_data;
        tc->tot[kAccSramRead] += dl.d_sram_r;
        tc->tot[kAccSramWrite] += dl.d_sram_w;
        tc->tot[kAccFramRead] += dl.d_fram_r;
        tc->tot[kAccFramWrite] += dl.d_fram_w;
        tc->tot[kAccHits] += dl.d_hits;
        tc->tot[kAccMisses] += dl.d_misses;
        tc->tot[kAccPreInval] += dl.d_pre;
        ++tc->tot[kAccOwner0 + dl.owner];
    }
    tc->ops[n].h = labels_[kBlockEnd];

    block.threaded = std::move(tc);
    ++stats_.threaded_blocks_lowered;
}

void *
ThreadedEngine::advanceChain(void *p)
{
    DCtx &st = *static_cast<DCtx *>(p);
    const SuperblockEngine::ChainLimits &limits = *st.limits;

    // Account the block that just ran to completion (mid-block
    // bail-outs are accounted by runChain's suffix walk instead).
    if (st.cur_tc) {
        ++st.dispatches;
        st.total += st.cur_n;
        st.cur_tc = nullptr;
    }

    const std::uint16_t pc = st.regs[0];
    SuperblockEngine::Block *block = sb_.lookup(pc);
    if (!block)
        return nullptr;

    // Same boundary discipline as the superblock tier: a block only
    // runs when its worst-case cycle bound provably keeps every
    // intermediate step short of the run loop's per-step checks
    // (max_cycles, fault injection, timer delivery).
    const std::uint64_t now = limits.now + st.acc[kAccBase] + st.acc[kAccStall];
    const std::uint64_t bound = block->worst_case_cycles;
    if (now + bound >= limits.limit_cycles) {
        ++stats_.threaded_bail_boundary;
        return nullptr;
    }
    if (limits.timer_period) {
        bool gie = cpu_.interruptsEnabled();
        bool pending = limits.timer_pending || now >= limits.timer_fire;
        if (gie) {
            if (pending)
                return nullptr; // interrupt entry happens this step
            if (now + bound >= limits.timer_fire) {
                ++stats_.threaded_bail_boundary;
                return nullptr;
            }
        } else if (block->writes_sr &&
                   (pending || now + bound >= limits.timer_fire)) {
            ++stats_.threaded_bail_boundary;
            return nullptr;
        }
    }
    if (recovery_end_) {
        bool in = pc >= recovery_base_ &&
                  static_cast<std::uint32_t>(pc) < recovery_end_;
        if (st.first)
            st.chain_in_recovery = in;
        else if (in != st.chain_in_recovery)
            return nullptr;
    }
    st.first = false;

    if (!block->threaded)
        lower(*block);
    ThreadedCode &tc = *block->threaded;

    // Static totals up front; a bail-out subtracts the suffix.
    // One vectorizable pass: both sides share AccIdx order, and the
    // fetch count was routed to the right region slot at lowering.
    const std::uint32_t *tot = tc.tot.data();
    std::uint64_t *acc = st.acc.data();
    for (int i = 0; i < kNumAcc; ++i)
        acc[i] += tot[i];

    st.blk_start = block->start_pc;
    st.blk_end = block->end_addr;
    st.smc = false;
    st.instrs = block->instrs.data();
    st.cur_tc = &tc;
    st.cur_ops = tc.ops.data();
    st.cur_n = block->instrs.size();
    return st.cur_ops;
}

SuperblockEngine::ChainResult
ThreadedEngine::runChain(const SuperblockEngine::ChainLimits &limits)
{
    DCtx st;
    st.regs_arr = &cpu_.regs();
    st.regs = cpu_.regs().data();
    st.bytes = memory_.bytes();
    st.hw = &bus_.hwCache();
    st.pre = predecode_;
    st.gens = &sb_.pageGens();
    st.ws = config_.effectiveWaitStates();
    st.cstall = config_.contention_stall;
    st.ms = std::max(st.ws, st.cstall);
    st.sram_size = config_.sram_size;
    st.code_base = bus_.codeBase();
    st.code_end = bus_.codeEnd();
    st.hw_on = config_.hw_cache_enabled;

    st.eng = this;
    st.limits = &limits;

    // Enter the first block; dispatchRun then chains block-to-block
    // through advanceChain until a bail-out or chain end.
    TOp *op0 = static_cast<TOp *>(advanceChain(&st));
    while (op0) {
        dispatchRun(&st, op0);
        if (st.bail_kind == 0)
            break; // chain ended at a block boundary (advanceChain)

        // Mid-block bail-out (dyn operand or own-block SMC): subtract
        // the unexecuted suffix and account what retired.
        ThreadedCode &tc = *st.cur_tc;
        const std::size_t n = st.cur_n;
        const std::size_t idx =
            static_cast<std::size_t>(st.bail_op - st.cur_ops);
        const std::size_t executed = st.bail_kind == 2 ? idx + 1 : idx;
        if (executed < n) {
            for (std::size_t i = executed; i < n; ++i) {
                const TDelta &t = tc.deltas[i];
                st.acc[kAccBase] -= t.d_base;
                st.acc[kAccStall] -= t.d_stall;
                if (tc.fram_code)
                    st.acc[kAccFramFetch] -= t.d_fetch;
                else
                    st.acc[kAccSramFetch] -= t.d_fetch;
                st.acc[kAccCode] -= t.d_code;
                st.acc[kAccData] -= t.d_data;
                st.acc[kAccSramRead] -= t.d_sram_r;
                st.acc[kAccSramWrite] -= t.d_sram_w;
                st.acc[kAccFramRead] -= t.d_fram_r;
                st.acc[kAccFramWrite] -= t.d_fram_w;
                st.acc[kAccHits] -= t.d_hits;
                st.acc[kAccMisses] -= t.d_misses;
                st.acc[kAccPreInval] -= t.d_pre;
                --st.acc[kAccOwner0 + t.owner];
            }
        }
        if (st.bail_kind == 1)
            ++stats_.threaded_bail_operand;
        else
            ++stats_.threaded_bail_smc;
        if (executed) {
            ++st.dispatches;
            st.total += executed;
        }
        st.cur_tc = nullptr; // accounted here, not by advanceChain
        if (executed < n)
            break; // bailed mid-block: the oracle decides what's next
        // Committed own-block SMC on the block's last instruction:
        // the block completed, so the chain may continue (the next
        // lookup sees the bumped generations and rebuilds).
        op0 = static_cast<TOp *>(advanceChain(&st));
    }

    const std::uint64_t total = st.total;
    stats_.threaded_dispatches += st.dispatches;
    if (total) {
        stats_.instructions += total;
        stats_.base_cycles += st.acc[kAccBase];
        stats_.stall_cycles += st.acc[kAccStall];
        stats_.sram.fetch += st.acc[kAccSramFetch];
        stats_.sram.read += st.acc[kAccSramRead];
        stats_.sram.write += st.acc[kAccSramWrite];
        stats_.fram.fetch += st.acc[kAccFramFetch];
        stats_.fram.read += st.acc[kAccFramRead];
        stats_.fram.write += st.acc[kAccFramWrite];
        stats_.fram_cache_hits += st.acc[kAccHits];
        stats_.fram_cache_misses += st.acc[kAccMisses];
        stats_.code_space_accesses += st.acc[kAccCode];
        stats_.data_space_accesses += st.acc[kAccData];
        stats_.predecode_invalidations += st.acc[kAccPreInval];
        for (int i = 0; i < kNumOwners; ++i)
            stats_.instr_by_owner[i] += st.acc[kAccOwner0 + i];
        stats_.threaded_instructions += total;
    }
    return {total, st.acc[kAccBase] + st.acc[kAccStall]};
}

} // namespace swapram::sim

#else // !SWAPRAM_THREADED_AVAILABLE

namespace swapram::sim {

/** Placeholder so Block's shared_ptr<ThreadedCode> has a complete
 *  deleter on toolchains without computed goto. */
class ThreadedCode
{
};

ThreadedEngine::ThreadedEngine(Cpu &cpu, Memory &memory, Bus &bus,
                               Stats &stats, const MachineConfig &config,
                               SuperblockEngine &sb)
    : cpu_(cpu), memory_(memory), bus_(bus), stats_(stats),
      config_(config), sb_(sb)
{
}

void
ThreadedEngine::lower(SuperblockEngine::Block &)
{
}

SuperblockEngine::ChainResult
ThreadedEngine::runChain(const SuperblockEngine::ChainLimits &)
{
    return {0, 0};
}

void *
ThreadedEngine::advanceChain(void *)
{
    return nullptr;
}

} // namespace swapram::sim

#endif // SWAPRAM_THREADED_AVAILABLE
