#include "sim/fault.hh"

#include <algorithm>

#include "support/logging.hh"

namespace swapram::sim {

FaultInjector::FaultInjector(const FaultPlan &plan)
    : plan_(plan), rng_(plan.seed)
{
    switch (plan_.kind) {
      case FaultPlan::Kind::None:
        break;
      case FaultPlan::Kind::Once:
        next_ = plan_.first_cycle;
        break;
      case FaultPlan::Kind::Periodic:
        if (plan_.period == 0)
            support::fatal("FaultPlan: periodic plan needs a period");
        next_ = plan_.first_cycle ? plan_.first_cycle : plan_.period;
        break;
      case FaultPlan::Kind::Random:
        if (plan_.max_gap < plan_.min_gap || plan_.max_gap == 0)
            support::fatal("FaultPlan: bad random gap bounds");
        next_ = gap();
        break;
      case FaultPlan::Kind::Trace: {
        if (!plan_.trace || plan_.trace->empty())
            support::fatal("FaultPlan: trace plan needs a harvest trace");
        const CapacitorModel &cap = plan_.capacitor;
        if (cap.capacity_pj <= 0 || cap.power_on_pj > cap.capacity_pj)
            support::fatal("FaultPlan: capacitor power-on threshold "
                           "must fit the capacity");
        if (cap.brown_out_pj >= cap.power_on_pj)
            support::fatal("FaultPlan: brown-out threshold must be "
                           "below the power-on threshold (a boot would "
                           "brown out before it starts)");
        if (cap.leak_watts < 0)
            support::fatal("FaultPlan: negative capacitor leakage");
        break;
      }
    }
}

void
FaultInjector::bindEnergy(const Stats *stats, const EnergyModel &model,
                          std::uint32_t clock_hz)
{
    if (plan_.kind != FaultPlan::Kind::Trace)
        return;
    stats_ = stats;
    energy_ = model;
    clock_hz_ = clock_hz;
    // Worst-case discharge per cycle: core energy plus one access of
    // every kind plus leakage. Deliberately paranoid (no instruction
    // makes an access of every kind in a single cycle) — it only has
    // to be an upper bound so nextFailureCycle() never overshoots the
    // true brown-out.
    worst_pj_per_cycle_ = model.corePjPerCycle(clock_hz) +
                          model.fram_read_pj + model.fram_write_pj +
                          model.sram_read_pj + model.sram_write_pj +
                          plan_.capacitor.leak_watts / clock_hz * 1e12;
    boot_wall_s_ = 0;
    boot_stored_pj_ = std::min(plan_.capacitor.startPj(),
                               plan_.capacitor.capacity_pj);
    boot_consumed_pj_ = consumedPj();
    next_ = 0; // recomputed by the first shouldFail()
}

std::uint64_t
FaultInjector::gap()
{
    std::uint64_t span = plan_.max_gap - plan_.min_gap + 1;
    if (span > UINT32_MAX)
        span = UINT32_MAX;
    std::uint64_t g =
        plan_.min_gap + rng_.below(static_cast<std::uint32_t>(span));
    // A zero-cycle uptime would power-cycle at the same cycle forever:
    // the counter never advances, so the run cannot even time out.
    return std::max<std::uint64_t>(g, 1);
}

double
FaultInjector::consumedPj() const
{
    return energy_.totalPj(*stats_, clock_hz_);
}

double
FaultInjector::wallSeconds(std::uint64_t now_cycles) const
{
    return static_cast<double>(now_cycles) / clock_hz_ + off_seconds_;
}

double
FaultInjector::harvestedPj(std::uint64_t now_cycles) const
{
    if (plan_.kind != FaultPlan::Kind::Trace || !stats_)
        return 0;
    return plan_.trace->energyPj(wallSeconds(now_cycles));
}

double
FaultInjector::storedPj(std::uint64_t now_cycles) const
{
    // Pure function of (Stats, wall time): level at boot, plus harvest
    // inflow since boot, minus compute energy and leakage since boot.
    // Deliberately NOT clamped at capacity while powered — a clamp
    // would make the value depend on when it was evaluated, and block
    // dispatch evaluates it only at block boundaries. Consumption
    // steps only at instruction boundaries and inflow is monotonic, so
    // the brown-out instruction is identical either way.
    double wall = wallSeconds(now_cycles);
    double inflow = plan_.trace->energyPj(wall) -
                    plan_.trace->energyPj(boot_wall_s_);
    double leak = plan_.capacitor.leak_watts * (wall - boot_wall_s_) * 1e12;
    return boot_stored_pj_ + inflow - (consumedPj() - boot_consumed_pj_) -
           leak;
}

std::uint16_t
FaultInjector::levelWord(std::uint64_t now_cycles) const
{
    if (plan_.kind != FaultPlan::Kind::Trace || !stats_)
        return 0xFFFF; // mains powered: always full
    double frac = storedPj(now_cycles) / plan_.capacitor.capacity_pj;
    frac = std::clamp(frac, 0.0, 1.0);
    return static_cast<std::uint16_t>(frac * 0xFFFF);
}

bool
FaultInjector::traceShouldFail(std::uint64_t now_cycles)
{
    if (!stats_) {
        support::fatal("FaultInjector: Trace plan used without "
                       "bindEnergy()");
    }
    if (exhausted_)
        return false; // the caller already stopped the run
    const CapacitorModel &cap = plan_.capacitor;
    double stored = storedPj(now_cycles);
    if (stored > cap.brown_out_pj) {
        // Safe dispatch horizon: even at worst-case drain (and with
        // all harvest inflow ignored) the capacitor stays above the
        // brown-out threshold until next_.
        double margin = (stored - cap.brown_out_pj) / worst_pj_per_cycle_;
        std::uint64_t cycles =
            margin >= 1e18 ? UINT64_MAX - now_cycles
                           : static_cast<std::uint64_t>(margin);
        next_ = now_cycles + std::max<std::uint64_t>(cycles, 1);
        return false;
    }

    // Brown-out. Power stays off while the capacitor recharges from
    // the trace; the walk is closed-form, so off-time costs nothing to
    // simulate and the whole schedule stays deterministic.
    ++failures_;
    double wall = wallSeconds(now_cycles);
    RechargeResult r =
        rechargeTime(*plan_.trace, cap, std::max(stored, 0.0), wall);
    if (!r.reachable) {
        exhausted_ = true;
        next_ = UINT64_MAX;
        return true;
    }
    off_seconds_ += r.seconds;
    boot_wall_s_ = wall + r.seconds;
    boot_stored_pj_ = cap.power_on_pj;
    boot_consumed_pj_ = consumedPj();
    next_ = now_cycles; // recomputed on the next shouldFail()
    return true;
}

bool
FaultInjector::shouldFail(std::uint64_t now_cycles)
{
    if (plan_.kind == FaultPlan::Kind::Trace)
        return traceShouldFail(now_cycles);
    if (next_ == UINT64_MAX || now_cycles < next_)
        return false;
    ++failures_;
    if (plan_.max_failures && failures_ >= plan_.max_failures) {
        next_ = UINT64_MAX;
        return true;
    }
    switch (plan_.kind) {
      case FaultPlan::Kind::Once:
        next_ = UINT64_MAX;
        break;
      case FaultPlan::Kind::Periodic:
        // Each boot gets `period` cycles of uptime, measured from the
        // reboot point rather than the absolute cycle grid.
        next_ = now_cycles + plan_.period;
        break;
      case FaultPlan::Kind::Random:
        next_ = now_cycles + gap();
        break;
      case FaultPlan::Kind::None:
      case FaultPlan::Kind::Trace:
        next_ = UINT64_MAX;
        break;
    }
    return true;
}

} // namespace swapram::sim
