#include "sim/fault.hh"

#include "support/logging.hh"

namespace swapram::sim {

FaultInjector::FaultInjector(const FaultPlan &plan)
    : plan_(plan), rng_(plan.seed)
{
    switch (plan_.kind) {
      case FaultPlan::Kind::None:
        break;
      case FaultPlan::Kind::Once:
        next_ = plan_.first_cycle;
        break;
      case FaultPlan::Kind::Periodic:
        if (plan_.period == 0)
            support::fatal("FaultPlan: periodic plan needs a period");
        next_ = plan_.first_cycle ? plan_.first_cycle : plan_.period;
        break;
      case FaultPlan::Kind::Random:
        if (plan_.max_gap < plan_.min_gap || plan_.max_gap == 0)
            support::fatal("FaultPlan: bad random gap bounds");
        next_ = gap();
        break;
    }
}

std::uint64_t
FaultInjector::gap()
{
    std::uint64_t span = plan_.max_gap - plan_.min_gap + 1;
    if (span > UINT32_MAX)
        span = UINT32_MAX;
    return plan_.min_gap + rng_.below(static_cast<std::uint32_t>(span));
}

bool
FaultInjector::shouldFail(std::uint64_t now_cycles)
{
    if (next_ == UINT64_MAX || now_cycles < next_)
        return false;
    ++failures_;
    if (plan_.max_failures && failures_ >= plan_.max_failures) {
        next_ = UINT64_MAX;
        return true;
    }
    switch (plan_.kind) {
      case FaultPlan::Kind::Once:
        next_ = UINT64_MAX;
        break;
      case FaultPlan::Kind::Periodic:
        // Each boot gets `period` cycles of uptime, measured from the
        // reboot point rather than the absolute cycle grid.
        next_ = now_cycles + plan_.period;
        break;
      case FaultPlan::Kind::Random:
        next_ = now_cycles + gap();
        break;
      case FaultPlan::Kind::None:
        next_ = UINT64_MAX;
        break;
    }
    return true;
}

} // namespace swapram::sim
