#include "sim/energy.hh"

namespace swapram::sim {

double
EnergyModel::corePjPerCycle(std::uint32_t clock_hz) const
{
    // Linear in frequency between the two calibrated points, clamped.
    const double f8 = 8e6;
    const double f24 = 24e6;
    double f = static_cast<double>(clock_hz);
    if (f <= f8)
        return core_pj_per_cycle_8mhz;
    if (f >= f24)
        return core_pj_per_cycle_24mhz;
    double t = (f - f8) / (f24 - f8);
    return core_pj_per_cycle_8mhz +
           t * (core_pj_per_cycle_24mhz - core_pj_per_cycle_8mhz);
}

double
EnergyModel::totalPj(const Stats &stats, std::uint32_t clock_hz) const
{
    double core = corePjPerCycle(clock_hz) *
                  static_cast<double>(stats.totalCycles());
    double fram =
        fram_read_pj *
            static_cast<double>(stats.fram.fetch + stats.fram.read) +
        fram_write_pj * static_cast<double>(stats.fram.write);
    double sram =
        sram_read_pj *
            static_cast<double>(stats.sram.fetch + stats.sram.read) +
        sram_write_pj * static_cast<double>(stats.sram.write);
    return core + fram + sram;
}

} // namespace swapram::sim
