/**
 * @file
 * The MSP430 execution core, templated on the memory interface.
 *
 * Every operand-resolution, ALU, and flag rule lives here exactly once.
 * Two instantiations exist:
 *   - ExecCore<Bus>: the single-step oracle (sim/cpu.cc), where each
 *     access pays full bus dispatch (region routing, MMIO devices,
 *     stall accounting, trace emission);
 *   - ExecCore<superblock FastMem>: the block fast path, where accesses
 *     are pre-checked to hit plain SRAM/FRAM and go straight to the
 *     flat memory array with inlined accounting.
 * Because both paths run the same template, semantic equivalence is by
 * construction — the differential suites then pin the accounting.
 *
 * The memory policy must provide:
 *   std::uint16_t read16(std::uint16_t addr, AccessKind kind);
 *   std::uint8_t  read8(std::uint16_t addr, AccessKind kind);
 *   void write16(std::uint16_t addr, std::uint16_t value);
 *   void write8(std::uint16_t addr, std::uint8_t value);
 */

#ifndef SWAPRAM_SIM_EXEC_HH
#define SWAPRAM_SIM_EXEC_HH

#include <array>
#include <cstdint>

#include "isa/instruction.hh"
#include "sim/bus.hh"
#include "support/logging.hh"

namespace swapram::sim {

/** Register-file + memory instruction executor. Callers must have set
 *  PC past the full instruction (fetch semantics) before execute(). */
template <class MemT>
class ExecCore
{
  public:
    ExecCore(std::array<std::uint16_t, 16> &regs, MemT &mem)
        : regs_(regs), mem_(mem)
    {
    }

    void
    execute(const isa::Instr &instr)
    {
        switch (isa::opFormat(instr.op)) {
          case isa::OpFormat::DoubleOperand:
            executeFormatI(instr);
            return;
          case isa::OpFormat::SingleOperand:
            executeFormatII(instr);
            return;
          case isa::OpFormat::Jump:
            executeJump(instr);
            return;
        }
    }

    void
    push16(std::uint16_t value)
    {
        regs_[1] = static_cast<std::uint16_t>(regs_[1] - 2);
        mem_.write16(regs_[1], value);
    }

    std::uint16_t
    pop16()
    {
        std::uint16_t value = mem_.read16(regs_[1], AccessKind::Read);
        regs_[1] = static_cast<std::uint16_t>(regs_[1] + 2);
        return value;
    }

  private:
    /** Resolved operand location. */
    struct Loc {
        enum class Kind : std::uint8_t { Reg, Mem, Imm } kind;
        isa::Reg reg;
        std::uint16_t addr;
        std::uint16_t imm;
    };

    bool flag(std::uint16_t bit) const { return (regs_[2] & bit) != 0; }

    void
    setFlags(bool n, bool z, bool c, bool v)
    {
        namespace sr = isa::sr;
        std::uint16_t s = regs_[2];
        s &= static_cast<std::uint16_t>(
            ~(sr::kN | sr::kZ | sr::kC | sr::kV));
        if (n)
            s |= sr::kN;
        if (z)
            s |= sr::kZ;
        if (c)
            s |= sr::kC;
        if (v)
            s |= sr::kV;
        regs_[2] = s;
    }

    Loc
    resolve(const isa::Operand &op, bool byte)
    {
        using isa::Mode;
        using isa::Reg;
        switch (op.mode) {
          case Mode::Register:
            return {Loc::Kind::Reg, op.reg, 0, 0};
          case Mode::Immediate:
            return {Loc::Kind::Imm, Reg::PC, 0, op.value};
          case Mode::Indexed: {
            std::uint16_t addr = static_cast<std::uint16_t>(
                regs_[isa::regIndex(op.reg)] + op.value);
            return {Loc::Kind::Mem, op.reg, addr, 0};
          }
          case Mode::Symbolic:
          case Mode::Absolute:
            return {Loc::Kind::Mem, Reg::PC, op.value, 0};
          case Mode::Indirect:
            return {Loc::Kind::Mem, op.reg,
                    regs_[isa::regIndex(op.reg)], 0};
          case Mode::IndirectInc: {
            std::uint8_t idx = isa::regIndex(op.reg);
            std::uint16_t addr = regs_[idx];
            regs_[idx] = static_cast<std::uint16_t>(addr + (byte ? 1 : 2));
            return {Loc::Kind::Mem, op.reg, addr, 0};
          }
        }
        support::panic("ExecCore::resolve: bad mode");
    }

    std::uint16_t
    loadLoc(const Loc &loc, bool byte)
    {
        switch (loc.kind) {
          case Loc::Kind::Reg: {
            std::uint16_t v = regs_[isa::regIndex(loc.reg)];
            return byte ? static_cast<std::uint16_t>(v & 0xFF) : v;
          }
          case Loc::Kind::Imm:
            return byte ? static_cast<std::uint16_t>(loc.imm & 0xFF)
                        : loc.imm;
          case Loc::Kind::Mem:
            if (byte)
                return mem_.read8(loc.addr, AccessKind::Read);
            return mem_.read16(loc.addr, AccessKind::Read);
        }
        support::panic("ExecCore::loadLoc: bad kind");
    }

    void
    storeLoc(const Loc &loc, bool byte, std::uint16_t value)
    {
        using isa::Reg;
        switch (loc.kind) {
          case Loc::Kind::Reg: {
            if (loc.reg == Reg::CG2)
                return; // writes to the constant generator are discarded
            std::uint8_t idx = isa::regIndex(loc.reg);
            // Byte operations on a register clear the upper byte.
            regs_[idx] = byte ? static_cast<std::uint16_t>(value & 0xFF)
                              : value;
            return;
          }
          case Loc::Kind::Mem:
            if (byte)
                mem_.write8(loc.addr,
                            static_cast<std::uint8_t>(value & 0xFF));
            else
                mem_.write16(loc.addr, value);
            return;
          case Loc::Kind::Imm:
            support::panic("ExecCore::storeLoc: store to immediate");
        }
    }

    void
    executeFormatI(const isa::Instr &instr)
    {
        using isa::Op;
        namespace sr = isa::sr;
        const bool byte = instr.byte;
        const std::uint32_t mask = byte ? 0xFFu : 0xFFFFu;
        const std::uint32_t msb = byte ? 0x80u : 0x8000u;

        Loc src_loc = resolve(instr.src, byte);
        std::uint32_t src = loadLoc(src_loc, byte);
        Loc dst_loc = resolve(instr.dst, byte);
        const bool needs_dst_read = instr.op != Op::Mov;
        std::uint32_t dst = needs_dst_read ? loadLoc(dst_loc, byte) : 0;

        auto add_common = [&](std::uint32_t a, std::uint32_t b,
                              std::uint32_t cin, bool writeback) {
            std::uint32_t sum = a + b + cin;
            std::uint32_t r = sum & mask;
            bool c = sum > mask;
            bool z = r == 0;
            bool n = (r & msb) != 0;
            bool v = ((~(a ^ b)) & (a ^ r) & msb) != 0;
            if (writeback)
                storeLoc(dst_loc, byte, static_cast<std::uint16_t>(r));
            setFlags(n, z, c, v);
        };

        switch (instr.op) {
          case Op::Mov:
            storeLoc(dst_loc, byte, static_cast<std::uint16_t>(src));
            return;
          case Op::Add:
            add_common(src, dst, 0, true);
            return;
          case Op::Addc:
            add_common(src, dst, flag(sr::kC) ? 1 : 0, true);
            return;
          case Op::Sub:
            add_common((~src) & mask, dst, 1, true);
            return;
          case Op::Subc:
            add_common((~src) & mask, dst, flag(sr::kC) ? 1 : 0, true);
            return;
          case Op::Cmp:
            add_common((~src) & mask, dst, 1, false);
            return;
          case Op::Dadd: {
            // Nibble-serial BCD addition with carry in.
            std::uint32_t carry = flag(sr::kC) ? 1 : 0;
            std::uint32_t r = 0;
            int nibbles = byte ? 2 : 4;
            for (int i = 0; i < nibbles; ++i) {
                std::uint32_t a = (src >> (4 * i)) & 0xF;
                std::uint32_t b = (dst >> (4 * i)) & 0xF;
                std::uint32_t d = a + b + carry;
                carry = d >= 10 ? 1 : 0;
                if (carry)
                    d -= 10;
                r |= (d & 0xF) << (4 * i);
            }
            storeLoc(dst_loc, byte, static_cast<std::uint16_t>(r));
            setFlags((r & msb) != 0, r == 0, carry != 0, false);
            return;
          }
          case Op::Bit: {
            std::uint32_t r = src & dst;
            setFlags((r & msb) != 0, r == 0, r != 0, false);
            return;
          }
          case Op::And: {
            std::uint32_t r = src & dst;
            storeLoc(dst_loc, byte, static_cast<std::uint16_t>(r));
            setFlags((r & msb) != 0, r == 0, r != 0, false);
            return;
          }
          case Op::Bic:
            storeLoc(dst_loc, byte,
                     static_cast<std::uint16_t>(dst & ~src & mask));
            return;
          case Op::Bis:
            storeLoc(dst_loc, byte,
                     static_cast<std::uint16_t>(dst | src));
            return;
          case Op::Xor: {
            std::uint32_t r = (dst ^ src) & mask;
            bool v = ((src & msb) != 0) && ((dst & msb) != 0);
            storeLoc(dst_loc, byte, static_cast<std::uint16_t>(r));
            setFlags((r & msb) != 0, r == 0, r != 0, v);
            return;
          }
          default:
            support::panic("executeFormatI: bad op");
        }
    }

    void
    executeFormatII(const isa::Instr &instr)
    {
        using isa::Op;
        namespace sr = isa::sr;
        const bool byte = instr.byte;
        const std::uint32_t mask = byte ? 0xFFu : 0xFFFFu;
        const std::uint32_t msb = byte ? 0x80u : 0x8000u;

        if (instr.op == Op::Reti) {
            regs_[2] = pop16();
            regs_[0] = pop16();
            return;
        }

        Loc loc = resolve(instr.dst, byte);

        switch (instr.op) {
          case Op::Rrc: {
            std::uint32_t v = loadLoc(loc, byte);
            std::uint32_t r =
                ((v >> 1) | (flag(sr::kC) ? msb : 0)) & mask;
            storeLoc(loc, byte, static_cast<std::uint16_t>(r));
            setFlags((r & msb) != 0, r == 0, (v & 1) != 0, false);
            return;
          }
          case Op::Rra: {
            std::uint32_t v = loadLoc(loc, byte);
            std::uint32_t r = ((v >> 1) | (v & msb)) & mask;
            storeLoc(loc, byte, static_cast<std::uint16_t>(r));
            setFlags((r & msb) != 0, r == 0, (v & 1) != 0, false);
            return;
          }
          case Op::Swpb: {
            std::uint16_t v = loadLoc(loc, false);
            std::uint16_t r =
                static_cast<std::uint16_t>((v >> 8) | (v << 8));
            storeLoc(loc, false, r);
            return;
          }
          case Op::Sxt: {
            std::uint16_t v = loadLoc(loc, false);
            std::uint16_t r = static_cast<std::uint16_t>(
                static_cast<std::int16_t>(
                    static_cast<std::int8_t>(v & 0xFF)));
            storeLoc(loc, false, r);
            setFlags((r & 0x8000) != 0, r == 0, r != 0, false);
            return;
          }
          case Op::Push: {
            std::uint16_t v = loadLoc(loc, byte);
            regs_[1] = static_cast<std::uint16_t>(regs_[1] - 2);
            if (byte)
                mem_.write8(regs_[1], static_cast<std::uint8_t>(v));
            else
                mem_.write16(regs_[1], v);
            return;
          }
          case Op::Call: {
            std::uint16_t target = loadLoc(loc, false);
            push16(regs_[0]);
            regs_[0] = target;
            return;
          }
          default:
            support::panic("executeFormatII: bad op");
        }
    }

    void
    executeJump(const isa::Instr &instr)
    {
        using isa::Op;
        namespace sr = isa::sr;
        bool taken = false;
        switch (instr.op) {
          case Op::Jne: taken = !flag(sr::kZ); break;
          case Op::Jeq: taken = flag(sr::kZ); break;
          case Op::Jnc: taken = !flag(sr::kC); break;
          case Op::Jc: taken = flag(sr::kC); break;
          case Op::Jn: taken = flag(sr::kN); break;
          case Op::Jge: taken = flag(sr::kN) == flag(sr::kV); break;
          case Op::Jl: taken = flag(sr::kN) != flag(sr::kV); break;
          case Op::Jmp: taken = true; break;
          default:
            support::panic("executeJump: bad op");
        }
        if (taken)
            regs_[0] = instr.jump_target;
    }

    std::array<std::uint16_t, 16> &regs_;
    MemT &mem_;
};

} // namespace swapram::sim

#endif // SWAPRAM_SIM_EXEC_HH
