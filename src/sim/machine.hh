/**
 * @file
 * Machine: composes memory, bus, MMIO, and CPU; loads an assembled
 * image; runs to completion; attributes instructions to code owners
 * (application FRAM/SRAM, miss handler, memcpy) for Figure 8.
 *
 * Observability: an attached trace::TraceEngine receives instruction
 * retires, code-owner changes, and interrupt entries (the bus adds
 * accesses/stalls); an attached trace::FunctionProfiler receives the
 * exact stat deltas of every executed instruction, so per-function
 * cycle attribution sums to Stats::totalCycles(). Both default to
 * nullptr and cost one branch per step when absent.
 */

#ifndef SWAPRAM_SIM_MACHINE_HH
#define SWAPRAM_SIM_MACHINE_HH

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include <memory>

#include "masm/assembler.hh"
#include "sim/bus.hh"
#include "sim/config.hh"
#include "sim/cpu.hh"
#include "sim/fault.hh"
#include "sim/memory.hh"
#include "sim/mmio.hh"
#include "sim/predecode.hh"
#include "sim/stats.hh"
#include "sim/superblock.hh"
#include "sim/threaded.hh"

namespace swapram::trace {
class FunctionProfiler;
} // namespace swapram::trace

namespace swapram::sim {

/** Outcome of Machine::run(). */
struct RunResult {
    /** Why the run loop returned. */
    enum class Stop : std::uint8_t {
        Done,      ///< program wrote __DONE
        MaxCycles, ///< cycle budget exhausted
        Livelock,  ///< livelock watchdog tripped (config.livelock_boots)
        Exhausted, ///< harvest can never recharge the capacitor
    };

    bool done = false;          ///< program wrote __DONE
    std::uint8_t exit_code = 0; ///< low byte of the __DONE write
    Stop stop = Stop::Done;
};

/** A loaded, runnable system instance. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config = {});

    /** Load an assembled image; sets PC to the entry point and SP to
     *  @p stack_top. */
    void load(const masm::Image &image, std::uint16_t stack_top);

    /**
     * Attribute instructions fetched from [base, end) to @p owner
     * (e.g. the SwapRAM miss handler's range). Later registrations win
     * on overlap.
     */
    void addOwnerRange(std::uint16_t base, std::uint32_t end,
                       CodeOwner owner);

    /** Attach the trace engine (this machine and its bus emit into
     *  it); nullptr detaches. */
    void setTraceEngine(trace::TraceEngine *engine);

    /** Attach a per-function profiler; nullptr detaches. */
    void setProfiler(trace::FunctionProfiler *profiler)
    {
        profiler_ = profiler;
    }

    /**
     * Attach run metrics (heatmap + histograms, recorded by the bus);
     * nullptr detaches. Not owned. Like tracing and profiling, an
     * attached collector forces single-step execution — the superblock
     * fast path accounts accesses in bulk and would bypass per-access
     * recording — while simulated results stay identical.
     */
    void setMetrics(metrics::RunMetrics *metrics)
    {
        metrics_ = metrics;
        bus_.setMetrics(metrics);
    }

    /** Attach a power-failure injector checked before every step of
     *  run(); nullptr detaches. Not owned. The MMIO energy register
     *  reads the injector's capacitor level. */
    void setFaultInjector(FaultInjector *injector)
    {
        fault_ = injector;
        mmio_.setEnergyProbe(injector);
    }

    /** Emit trace::CkptCommit / trace::CkptRestore whenever the PC
     *  lands on the named entry points (the generated checkpoint
     *  routines). 0 disables either probe. */
    void setCkptProbe(std::uint16_t commit_entry,
                      std::uint16_t restore_entry)
    {
        ckpt_commit_entry_ = commit_entry;
        ckpt_restore_entry_ = restore_entry;
    }

    /** Exclude FRAM [base, end) from the livelock boot watermark.
     *  Register ranges holding persistent counters that advance even
     *  when a boot makes no real progress (runtime statistics cells,
     *  checkpoint sequence numbers) — hashing them would make every
     *  boot look distinct and blind the watchdog. */
    void addWatermarkSkip(std::uint16_t base, std::uint32_t end);

    /** Attribute cycles spent with PC in [base, end) to
     *  Stats::recovery_cycles (the generated boot-recovery routine). */
    void setRecoveryRange(std::uint16_t base, std::uint32_t end)
    {
        recovery_base_ = base;
        recovery_end_ = end;
        // Superblocks must not span the attribution boundary.
        if (superblock_)
            superblock_->setRecoveryRange(base, end);
        if (threaded_)
            threaded_->setRecoveryRange(base, end);
    }

    /**
     * Power loss + reboot: SRAM decays to zero, the CPU / MMIO devices
     * / hardware FRAM cache reset, FRAM is preserved byte-for-byte,
     * and the crt0 model re-runs — image chunks targeting SRAM and the
     * .data initialisers are re-copied and .bss is re-zeroed, while
     * .text and .const keep whatever FRAM held at the failure point.
     */
    void powerCycle();

    /** Run until the program signals completion or max_cycles pass. */
    RunResult run();

    /** Execute exactly one instruction (testing). */
    void step();

    const Stats &stats() const { return stats_; }
    const Mmio &mmio() const { return mmio_; }
    Cpu &cpu() { return cpu_; }
    Memory &memory() { return memory_; }
    Bus &bus() { return bus_; }
    const MachineConfig &config() const { return config_; }

    /** Convenience memory peek for result checking. */
    std::uint16_t peek16(std::uint16_t addr) const
    {
        return memory_.read16(addr);
    }
    std::uint8_t peek8(std::uint16_t addr) const
    {
        return memory_.read8(addr);
    }

  private:
    CodeOwner classifyPc(std::uint16_t pc) const;

    /** Boot-progress watermark for the livelock watchdog: the failure
     *  PC folded into an FNV-1a hash of the persistent (FRAM) state. */
    std::uint64_t bootWatermark() const;

    /** step()/interrupt with observability hooks engaged. */
    void stepObserved(std::uint16_t pc, CodeOwner owner);
    void interruptObserved(std::uint16_t pc);

    /**
     * Attempt a superblock dispatch at the current PC. Returns true if
     * at least one instruction retired; false means the caller must
     * single-step (no block here, or a cycle boundary — fault, timer,
     * max_cycles — could land inside the block's worst-case bound).
     */
    bool trySuperblock();

    MachineConfig config_;
    Memory memory_;
    Mmio mmio_;
    Stats stats_;
    Bus bus_;
    Cpu cpu_;

    /** Decoded-instruction cache (null when config disables it). The
     *  machine owns it and keeps the CPU (lookup/insert) and bus
     *  (write invalidation) wired to the same instance. */
    std::unique_ptr<PredecodeCache> predecode_;

    /** Superblock dispatch engine (null when config disables it); the
     *  bus's write paths share its page-generation table. */
    std::unique_ptr<SuperblockEngine> superblock_;
    std::unique_ptr<ThreadedEngine> threaded_;

    std::uint64_t timer_next_fire_ = 0;
    bool timer_pending_ = false;

    trace::TraceEngine *trace_ = nullptr;
    trace::FunctionProfiler *profiler_ = nullptr;
    metrics::RunMetrics *metrics_ = nullptr;
    FaultInjector *fault_ = nullptr;
    std::uint8_t last_owner_ = 0xFF; ///< 0xFF = no owner seen yet

    // Retained for powerCycle()'s crt0-style re-initialisation.
    masm::Image image_;
    std::uint16_t stack_top_ = 0;

    /// Watermarks of every boot so far; a boot landing on a member
    /// made no progress (8 bytes per reboot while the watchdog is on).
    std::unordered_set<std::uint64_t> seen_watermarks_;
    std::uint32_t livelock_streak_ = 0; ///< consecutive stale boots
    /// Sorted [base, end) FRAM spans excluded from the watermark.
    std::vector<std::pair<std::uint16_t, std::uint32_t>> wm_skip_;

    std::uint16_t recovery_base_ = 0;
    std::uint32_t recovery_end_ = 0; ///< 0 = no recovery range
    bool in_recovery_ = false;
    std::uint64_t recovery_enter_cycle_ = 0;

    std::uint16_t ckpt_commit_entry_ = 0;  ///< 0 = probe disabled
    std::uint16_t ckpt_restore_entry_ = 0; ///< 0 = probe disabled

    struct OwnerRange {
        std::uint16_t base;
        std::uint32_t end;
        CodeOwner owner;
    };
    std::vector<OwnerRange> owner_ranges_;
};

} // namespace swapram::sim

#endif // SWAPRAM_SIM_MACHINE_HH
