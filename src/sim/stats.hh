/**
 * @file
 * Execution statistics collected by the machine model: instruction and
 * cycle counts, per-region access counts, hardware-cache behaviour, and
 * the classifications the paper's evaluation is built on (code vs data
 * space accesses for Table 1; instruction attribution by code owner for
 * Figure 8; FRAM accesses and unstalled cycles for Table 2).
 */

#ifndef SWAPRAM_SIM_STATS_HH
#define SWAPRAM_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <string>

namespace swapram::sim {

/** Who "owns" the code an instruction was fetched from (Figure 8). */
enum class CodeOwner : std::uint8_t {
    AppFram = 0, ///< application code executing from FRAM
    AppSram = 1, ///< application code executing from SRAM (cached)
    Handler = 2, ///< cache-runtime code (miss handler, entry stubs)
    Memcpy = 3,  ///< the runtime's copy loop
};
inline constexpr int kNumOwners = 4;

/** Human-readable owner name. */
std::string ownerName(CodeOwner owner);

/** Fetch/read/write counters for one memory region. */
struct AccessCounts {
    std::uint64_t fetch = 0;
    std::uint64_t read = 0;
    std::uint64_t write = 0;

    std::uint64_t total() const { return fetch + read + write; }
};

/** All counters for one run. */
struct Stats {
    std::uint64_t instructions = 0;
    /** Unstalled CPU cycles (Table 2's "CPU Cycles"). */
    std::uint64_t base_cycles = 0;
    /** FRAM wait-state and contention stalls. */
    std::uint64_t stall_cycles = 0;

    AccessCounts sram, fram, mmio;
    std::uint64_t fram_cache_hits = 0;
    std::uint64_t fram_cache_misses = 0;

    /** Accesses whose target address lies in the .text range. */
    std::uint64_t code_space_accesses = 0;
    /** Accesses to any non-text, non-MMIO address. */
    std::uint64_t data_space_accesses = 0;

    std::array<std::uint64_t, kNumOwners> instr_by_owner{};

    /** Timer interrupts serviced. */
    std::uint64_t interrupts = 0;

    /** Power failures injected (each one is a reboot). */
    std::uint64_t reboots = 0;
    /** Cycles spent inside the registered boot-recovery routine. */
    std::uint64_t recovery_cycles = 0;

    /**
     * Predecode fast-path behaviour (host-side only: these never feed
     * back into simulated timing, which must be identical with the
     * cache disabled). Invalidations count bus writes that dropped at
     * least one potentially-cached slot.
     */
    std::uint64_t predecode_hits = 0;
    std::uint64_t predecode_misses = 0;
    std::uint64_t predecode_invalidations = 0;

    /**
     * Superblock engine behaviour (host-side only, like the predecode
     * counters: block coverage never feeds back into simulated timing,
     * which must be identical with the engine disabled).
     */
    std::uint64_t superblock_blocks_built = 0; ///< non-empty builds
    std::uint64_t superblock_dispatches = 0;   ///< blocks executed
    std::uint64_t superblock_instructions = 0; ///< retired in block mode
    /** Mid-block stop: an operand resolved to MMIO/unmapped, so the
     *  instruction was handed to the single-step oracle untouched. */
    std::uint64_t superblock_bail_operand = 0;
    /** Mid-block stop: a store hit the executing block's own code. */
    std::uint64_t superblock_bail_smc = 0;
    /** Dispatch refused: the block's worst-case cycle bound could cross
     *  a fault/timer/max-cycle boundary (single-step until past it). */
    std::uint64_t superblock_bail_boundary = 0;
    /** Cached block found stale (write generations moved) and rebuilt. */
    std::uint64_t superblock_invalidations = 0;

    /**
     * Threaded-code tier behaviour (host-side only, same contract as
     * the superblock counters: simulated results are identical with
     * the tier disabled). When the threaded tier is active it replaces
     * superblock dispatch, so the two counter families are mutually
     * exclusive per run; block builds/invalidations still land on the
     * shared superblock_* counters (one block table serves both).
     */
    std::uint64_t threaded_blocks_lowered = 0; ///< blocks lowered
    std::uint64_t threaded_dispatches = 0;     ///< blocks executed
    std::uint64_t threaded_instructions = 0;   ///< retired threaded
    std::uint64_t threaded_bail_operand = 0; ///< dyn operand to MMIO
    std::uint64_t threaded_bail_smc = 0;     ///< store into own block
    std::uint64_t threaded_bail_boundary = 0; ///< cycle-bound refusal

    std::uint64_t totalCycles() const { return base_cycles + stall_cycles; }
    std::uint64_t framAccesses() const { return fram.total(); }
};

} // namespace swapram::sim

#endif // SWAPRAM_SIM_STATS_HH
