#include "sim/superblock.hh"

#include <algorithm>

#include "isa/cycles.hh"
#include "isa/decode.hh"
#include "sim/exec.hh"
#include "support/logging.hh"
#include "support/platform.hh"
#include "support/strings.hh"

namespace swapram::sim {

using isa::Mode;
using isa::Op;
using isa::Operand;

namespace {

/** Block-table geometry: one slot per word-aligned PC. */
constexpr std::uint32_t kSlots = 32768;

/** Shorthand for the shared mapped-space predicate. */
inline bool
addrMapped(std::uint16_t addr, std::uint32_t sram_size)
{
    return SuperblockEngine::addrMapped(addr, sram_size);
}

/** Build-time classification of one decoded instruction. */
struct Analysis {
    bool include = true;     ///< false: stop the block before it
    bool terminator = false; ///< include it, then stop
    std::uint8_t flags = 0;
    std::uint32_t max_data = 0; ///< data accesses upper bound
};

Analysis
analyze(const isa::Instr &in, std::uint32_t sram_size)
{
    Analysis a;
    auto static_ok = [sram_size](const Operand &op) {
        // Symbolic/Absolute effective addresses are fixed at decode:
        // reject device/unmapped space once, at build time.
        if (op.mode == Mode::Symbolic || op.mode == Mode::Absolute)
            return addrMapped(op.value, sram_size);
        return true;
    };
    auto is_dyn = [](const Operand &op) {
        return op.mode == Mode::Indexed || op.mode == Mode::Indirect ||
               op.mode == Mode::IndirectInc;
    };
    auto is_mem = [](const Operand &op) {
        return op.mode != Mode::Register && op.mode != Mode::Immediate;
    };
    switch (isa::opFormat(in.op)) {
      case isa::OpFormat::Jump:
        a.terminator = true;
        return a;
      case isa::OpFormat::DoubleOperand: {
        if (!static_ok(in.src) || !static_ok(in.dst)) {
            a.include = false;
            return a;
        }
        if (is_dyn(in.src) || is_dyn(in.dst))
            a.flags |= SuperblockEngine::kFlagDynMem;
        if (in.dst.mode == Mode::Register) {
            if (in.dst.reg == isa::Reg::PC)
                a.terminator = true;
            if (in.dst.reg == isa::Reg::SR)
                a.flags |= SuperblockEngine::kFlagWritesSr;
        }
        a.max_data = (is_mem(in.src) ? 1u : 0u) +
                     (is_mem(in.dst) ? 2u : 0u);
        return a;
      }
      case isa::OpFormat::SingleOperand: {
        if (in.op == Op::Reti) {
            // Pops SR (may set GIE) and PC off a dynamic SP.
            a.terminator = true;
            a.flags = SuperblockEngine::kFlagDynMem |
                      SuperblockEngine::kFlagWritesSr;
            a.max_data = 2;
            return a;
        }
        if (!static_ok(in.dst)) {
            a.include = false;
            return a;
        }
        if (is_dyn(in.dst))
            a.flags |= SuperblockEngine::kFlagDynMem;
        if (in.op == Op::Push || in.op == Op::Call)
            a.flags |= SuperblockEngine::kFlagDynMem; // stack write
        if (in.op == Op::Call)
            a.terminator = true;
        if (in.dst.mode == Mode::Register && in.op != Op::Push &&
            in.op != Op::Call) {
            if (in.dst.reg == isa::Reg::PC)
                a.terminator = true; // e.g. RRA PC
            if (in.dst.reg == isa::Reg::SR)
                a.flags |= SuperblockEngine::kFlagWritesSr;
        }
        a.max_data = 2;
        return a;
      }
    }
    return a;
}

} // namespace

/** MachineConfig's sram_size shapes the mapped window
 *  (capacity-pressure runs shrink or grow the SRAM). */
bool
SuperblockEngine::addrMapped(std::uint16_t addr,
                             std::uint32_t sram_size)
{
    return addr >= platform::kFramBase ||
           static_cast<std::uint16_t>(addr - platform::kSramBase) <
               sram_size;
}

/** MMIO device effects and unmapped fatals must happen exactly as a
 *  single step would produce them, so any register-dependent address
 *  that leaves SRAM/FRAM sends the whole instruction to the oracle. */
bool
SuperblockEngine::dynOperandsMapped(
    const isa::Instr &in, const std::array<std::uint16_t, 16> &regs,
    std::uint32_t sram_size)
{
    auto addrMapped = [sram_size](std::uint16_t addr) {
        return SuperblockEngine::addrMapped(addr, sram_size);
    };
    switch (isa::opFormat(in.op)) {
      case isa::OpFormat::Jump:
        return true;
      case isa::OpFormat::DoubleOperand: {
        int inc_reg = -1;
        std::uint16_t inc = 0;
        const Operand &s = in.src;
        switch (s.mode) {
          case Mode::Indexed:
            if (!addrMapped(static_cast<std::uint16_t>(
                    regs[isa::regIndex(s.reg)] + s.value)))
                return false;
            break;
          case Mode::Indirect:
            if (!addrMapped(regs[isa::regIndex(s.reg)]))
                return false;
            break;
          case Mode::IndirectInc:
            if (!addrMapped(regs[isa::regIndex(s.reg)]))
                return false;
            inc_reg = isa::regIndex(s.reg);
            inc = in.byte ? 1 : 2;
            break;
          default:
            break;
        }
        const Operand &d = in.dst;
        if (d.mode == Mode::Indexed) {
            std::uint16_t base = regs[isa::regIndex(d.reg)];
            if (isa::regIndex(d.reg) == inc_reg)
                base = static_cast<std::uint16_t>(base + inc);
            if (!addrMapped(static_cast<std::uint16_t>(base + d.value)))
                return false;
        }
        return true;
      }
      case isa::OpFormat::SingleOperand: {
        if (in.op == Op::Reti) {
            return addrMapped(regs[1]) &&
                   addrMapped(static_cast<std::uint16_t>(regs[1] + 2));
        }
        std::uint16_t sp = regs[1];
        const Operand &d = in.dst;
        switch (d.mode) {
          case Mode::Indexed:
            if (!addrMapped(static_cast<std::uint16_t>(
                    regs[isa::regIndex(d.reg)] + d.value)))
                return false;
            break;
          case Mode::Indirect:
            if (!addrMapped(regs[isa::regIndex(d.reg)]))
                return false;
            break;
          case Mode::IndirectInc:
            if (!addrMapped(regs[isa::regIndex(d.reg)]))
                return false;
            if (isa::regIndex(d.reg) == 1)
                sp = static_cast<std::uint16_t>(sp + (in.byte ? 1 : 2));
            break;
          default:
            break;
        }
        if (in.op == Op::Push || in.op == Op::Call) {
            if (!addrMapped(static_cast<std::uint16_t>(sp - 2)))
                return false;
        }
        return true;
      }
    }
    return true;
}

namespace {

/** Block-local counter accumulator, flushed to Stats once per block. */
struct Acc {
    std::uint64_t base = 0, stall = 0;
    std::uint64_t sram_fetch = 0, sram_read = 0, sram_write = 0;
    std::uint64_t fram_fetch = 0, fram_read = 0, fram_write = 0;
    std::uint64_t hits = 0, misses = 0;
    std::uint64_t code = 0, data = 0;
    std::uint64_t pre_inval = 0;
    std::array<std::uint64_t, kNumOwners> owner{};
};

/**
 * Direct-memory access policy for ExecCore: data reads/writes go
 * straight to the flat byte array while reproducing every piece of the
 * bus's accounting — region counters, code/data classification, FRAM
 * hardware-cache lookups, wait-state and line-contention stalls — plus
 * the write-invalidation duties (predecode 3-slot drop, page-gen bump,
 * and detection of stores into the executing block itself). Addresses
 * reaching here are pre-checked to lie in SRAM/FRAM; only alignment
 * can still fatal, with the exact message the bus would produce.
 */
class FastMem
{
  public:
    FastMem(std::uint8_t *bytes, HwCache &hw, Acc &acc,
            const MachineConfig &config, std::uint16_t code_base,
            std::uint32_t code_end, PredecodeCache *predecode,
            PageGenTable &gens)
        : bytes_(bytes), hw_(hw), acc_(acc),
          ws_(config.effectiveWaitStates()),
          contention_stall_(config.contention_stall),
          hw_enabled_(config.hw_cache_enabled), code_base_(code_base),
          code_end_(code_end), predecode_(predecode), gens_(gens)
    {
    }

    /** Switch to the next block in a chain: set the self-modification
     *  detection window and clear the flag. */
    void
    setBlock(std::uint16_t start, std::uint32_t end)
    {
        blk_start_ = start;
        blk_end_ = end;
        smc_ = false;
    }

    /** Seed the per-instruction FRAM contention chain with the fetch
     *  stream the block replay just accounted. */
    void
    beginInstr(std::uint32_t fram_fetches, std::uint32_t last_fetch_line)
    {
        fram_count_ = fram_fetches;
        last_line_ = last_fetch_line;
    }

    bool smc() const { return smc_; }

    std::uint16_t
    read16(std::uint16_t addr, AccessKind)
    {
        if (addr & 1)
            support::fatal("unaligned word read at ",
                           support::hex16(addr));
        accountRead(addr, &Acc::sram_read, &Acc::fram_read);
        return static_cast<std::uint16_t>(
            bytes_[addr] |
            (bytes_[static_cast<std::uint16_t>(addr + 1)] << 8));
    }

    std::uint8_t
    read8(std::uint16_t addr, AccessKind)
    {
        accountRead(addr, &Acc::sram_read, &Acc::fram_read);
        return bytes_[addr];
    }

    void
    write16(std::uint16_t addr, std::uint16_t value)
    {
        if (addr & 1)
            support::fatal("unaligned word write at ",
                           support::hex16(addr));
        accountWrite(addr);
        bytes_[addr] = static_cast<std::uint8_t>(value & 0xFF);
        bytes_[static_cast<std::uint16_t>(addr + 1)] =
            static_cast<std::uint8_t>(value >> 8);
        noteStore(addr, 2);
    }

    void
    write8(std::uint16_t addr, std::uint8_t value)
    {
        accountWrite(addr);
        bytes_[addr] = value;
        noteStore(addr, 1);
    }

  private:
    void
    classify(std::uint16_t addr)
    {
        if (addr >= code_base_ &&
            static_cast<std::uint32_t>(addr) < code_end_)
            ++acc_.code;
        else
            ++acc_.data;
    }

    /** The bus's FRAM timing model for one data access. */
    void
    framStall(std::uint16_t addr, bool is_write)
    {
        std::uint32_t line = addr >> 3;
        bool contends = fram_count_ > 0 && line != last_line_;
        last_line_ = line;
        ++fram_count_;
        std::uint32_t contention = contends ? contention_stall_ : 0;
        std::uint32_t stall;
        if (is_write) {
            stall = std::max(ws_, contention);
        } else if (hw_enabled_) {
            if (hw_.access(addr)) {
                ++acc_.hits;
                stall = contention;
            } else {
                ++acc_.misses;
                stall = std::max(ws_, contention);
            }
        } else {
            ++acc_.misses;
            stall = std::max(ws_, contention);
        }
        acc_.stall += stall;
    }

    void
    accountRead(std::uint16_t addr, std::uint64_t Acc::*sram_counter,
                std::uint64_t Acc::*fram_counter)
    {
        classify(addr);
        if (addr >= platform::kFramBase) {
            ++(acc_.*fram_counter);
            framStall(addr, false);
        } else {
            ++(acc_.*sram_counter);
        }
    }

    void
    accountWrite(std::uint16_t addr)
    {
        classify(addr);
        if (addr >= platform::kFramBase) {
            ++acc_.fram_write;
            framStall(addr, true);
        } else {
            ++acc_.sram_write;
        }
    }

    void
    noteStore(std::uint16_t addr, unsigned bytes)
    {
        if (predecode_) {
            predecode_->invalidateWrite(addr);
            ++acc_.pre_inval;
        }
        gens_.noteWrite(addr, bytes);
        // Store into the executing block's own code: finish this
        // instruction, then stop (the generations just moved, so the
        // block rebuilds before its next dispatch).
        std::uint32_t lo = addr;
        if (lo < blk_end_ && lo + bytes > blk_start_)
            smc_ = true;
    }

    std::uint8_t *bytes_;
    HwCache &hw_;
    Acc &acc_;
    const std::uint32_t ws_;
    const std::uint32_t contention_stall_;
    const bool hw_enabled_;
    const std::uint16_t code_base_;
    const std::uint32_t code_end_;
    PredecodeCache *predecode_;
    PageGenTable &gens_;
    std::uint16_t blk_start_ = 0;
    std::uint32_t blk_end_ = 0;

    std::uint32_t fram_count_ = 0;
    std::uint32_t last_line_ = 0;
    bool smc_ = false;
};

} // namespace

SuperblockEngine::SuperblockEngine(Cpu &cpu, Memory &memory, Bus &bus,
                                   Stats &stats,
                                   const MachineConfig &config)
    : cpu_(cpu), memory_(memory), bus_(bus), stats_(stats),
      config_(config), blocks_(kSlots)
{
}

std::unique_ptr<SuperblockEngine::Block>
SuperblockEngine::build(std::uint16_t pc)
{
    auto b = std::make_unique<Block>();
    b->start_pc = pc;
    b->end_addr = pc;
    b->fetch_region = regionOf(pc, config_.sramEnd());

    const std::uint32_t ws = config_.effectiveWaitStates();
    const std::uint32_t stall_max =
        std::max(ws, config_.contention_stall);
    const std::uint16_t code_base = bus_.codeBase();
    const std::uint32_t code_end = bus_.codeEnd();
    const bool fram_code = b->fetch_region == RegionKind::Fram;
    std::uint32_t worst = 0;

    if (b->fetch_region == RegionKind::Sram ||
        b->fetch_region == RegionKind::Fram) {
        const bool block_in_recovery =
            recovery_end_ && pc >= recovery_base_ &&
            static_cast<std::uint32_t>(pc) < recovery_end_;
        std::uint32_t cur = pc;
        while (b->instrs.size() < kMaxBlockInstrs &&
               cur - pc < kMaxBlockBytes) {
            bool in_recovery =
                recovery_end_ && cur >= recovery_base_ &&
                cur < recovery_end_;
            if (in_recovery != block_in_recovery)
                break; // recovery attribution boundary
            std::uint16_t w0 =
                memory_.read16(static_cast<std::uint16_t>(cur));
            if (!isa::validLeadingWord(w0))
                break; // garbage: only the oracle may diagnose it
            isa::Shape shape = isa::decodeShape(w0);
            int n_words = 1 + shape.totalExt();
            std::uint32_t end = cur + 2 * static_cast<std::uint32_t>(
                                          n_words);
            if (end > 0x10000)
                break; // instruction would wrap the address space
            bool crosses = false;
            for (int w = 0; w < n_words; ++w) {
                if (regionOf(static_cast<std::uint16_t>(cur + 2 * w),
                             config_.sramEnd()) != b->fetch_region)
                    crosses = true;
            }
            if (crosses)
                break; // region-crossing fetch
            std::uint16_t ext_src =
                shape.src_ext
                    ? memory_.read16(static_cast<std::uint16_t>(cur + 2))
                    : 0;
            std::uint16_t ext_dst =
                shape.dst_ext
                    ? memory_.read16(static_cast<std::uint16_t>(
                          cur + 2 + (shape.src_ext ? 2 : 0)))
                    : 0;
            isa::Instr instr = isa::decodeWords(
                w0, ext_src, ext_dst, static_cast<std::uint16_t>(cur));
            Analysis a = analyze(instr, config_.sram_size);
            if (!a.include)
                break; // statically MMIO/unmapped operand

            BlockInstr bi;
            bi.instr = instr;
            bi.pc = static_cast<std::uint16_t>(cur);
            bi.next_pc = static_cast<std::uint16_t>(end);
            bi.n_words = static_cast<std::uint8_t>(n_words);
            bi.base_cycles =
                static_cast<std::uint8_t>(isa::baseCycles(instr));
            bi.owner = classify_
                           ? classify_(static_cast<std::uint16_t>(cur))
                           : 0;
            bi.flags = a.flags;
            std::uint32_t prev_line = 0;
            for (int w = 0; w < n_words; ++w) {
                std::uint16_t waddr =
                    static_cast<std::uint16_t>(cur + 2 * w);
                if (waddr >= code_base &&
                    static_cast<std::uint32_t>(waddr) < code_end)
                    ++bi.code_words;
                if (fram_code) {
                    std::uint32_t line = waddr >> 3;
                    bi.fetch_contends[w] =
                        (w > 0 && line != prev_line) ? 1 : 0;
                    prev_line = line;
                    bi.last_fetch_line = line;
                }
            }
            if (a.flags & kFlagWritesSr)
                b->writes_sr = true;
            worst += bi.base_cycles +
                     stall_max * ((fram_code ? n_words : 0) + a.max_data);
            b->instrs.push_back(bi);
            b->end_addr = end;
            if (a.terminator || end >= 0x10000)
                break;
            cur = end;
        }
    }

    b->worst_case_cycles = worst;
    b->global_gen = gens_.globalGen();
    b->first_page = PageGenTable::pageOf(pc);
    b->last_page = PageGenTable::pageOf(static_cast<std::uint16_t>(
        b->end_addr > pc ? b->end_addr - 1 : pc));
    for (std::uint32_t i = 0;
         i <= static_cast<std::uint32_t>(b->last_page - b->first_page);
         ++i) {
        b->page_gens[i] = gens_.pageGen(
            static_cast<std::uint16_t>(b->first_page + i));
    }
    return b;
}

bool
SuperblockEngine::valid(const Block &b) const
{
    if (b.global_gen != gens_.globalGen())
        return false;
    for (std::uint32_t i = 0;
         i <= static_cast<std::uint32_t>(b.last_page - b.first_page);
         ++i) {
        if (b.page_gens[i] !=
            gens_.pageGen(static_cast<std::uint16_t>(b.first_page + i)))
            return false;
    }
    return true;
}

SuperblockEngine::Block *
SuperblockEngine::lookup(std::uint16_t pc)
{
    if (pc & 1)
        return nullptr; // the oracle owns the odd-PC fatal
    std::unique_ptr<Block> &slot = blocks_[pc >> 1];
    if (slot) {
        if (valid(*slot))
            return slot->instrs.empty() ? nullptr : slot.get();
        ++stats_.superblock_invalidations;
    }
    slot = build(pc);
    if (slot->instrs.empty())
        return nullptr;
    ++stats_.superblock_blocks_built;
    return slot.get();
}

SuperblockEngine::ChainResult
SuperblockEngine::runChain(const ChainLimits &limits)
{
    Acc acc;
    FastMem mem(memory_.bytes(), bus_.hwCache(), acc, config_,
                bus_.codeBase(), bus_.codeEnd(), predecode_, gens_);
    ExecCore<FastMem> core(cpu_.regs(), mem);
    std::array<std::uint16_t, 16> &regs = cpu_.regs();
    HwCache &hw = bus_.hwCache();
    const bool hw_on = config_.hw_cache_enabled;
    const std::uint32_t ws = config_.effectiveWaitStates();
    const std::uint32_t cstall = config_.contention_stall;

    std::uint64_t total = 0;
    bool first = true;
    bool chain_in_recovery = false;

    for (;;) {
        const std::uint16_t pc = regs[0];
        const Block *block = lookup(pc);
        if (!block)
            break;

        // The run loop re-checks its boundaries (max_cycles, fault
        // injection, timer delivery) every single step; a block may
        // only run if its worst-case cycle cost provably keeps every
        // intermediate step short of them. Unflushed chain cycles are
        // in the accumulator.
        const std::uint64_t now = limits.now + acc.base + acc.stall;
        const std::uint64_t bound = block->worst_case_cycles;
        if (now + bound >= limits.limit_cycles) {
            ++stats_.superblock_bail_boundary;
            break;
        }
        if (limits.timer_period) {
            bool gie = cpu_.interruptsEnabled();
            bool pending =
                limits.timer_pending || now >= limits.timer_fire;
            if (gie) {
                if (pending)
                    break; // interrupt entry happens this step
                if (now + bound >= limits.timer_fire) {
                    ++stats_.superblock_bail_boundary;
                    break;
                }
            } else if (block->writes_sr &&
                       (pending || now + bound >= limits.timer_fire)) {
                // GIE is clear, but the block could set it while the
                // timer is (or becomes) due: let the oracle sequence
                // it. (The fire cycle is fixed until delivery and time
                // is monotone, so pending-ness at the next oracle
                // check recomputes to exactly the sticky flag the
                // per-step path would have kept.)
                ++stats_.superblock_bail_boundary;
                break;
            }
        }
        // Chains never cross the recovery attribution boundary (the
        // caller books the whole chain's cycles to the entry side).
        if (recovery_end_) {
            bool in = pc >= recovery_base_ &&
                      static_cast<std::uint32_t>(pc) < recovery_end_;
            if (first)
                chain_in_recovery = in;
            else if (in != chain_in_recovery)
                break;
        }
        first = false;

        mem.setBlock(block->start_pc, block->end_addr);
        const bool fram_code =
            block->fetch_region == RegionKind::Fram;
        std::uint32_t executed = 0;
        for (const BlockInstr &bi : block->instrs) {
            if ((bi.flags & kFlagDynMem) &&
                !dynOperandsMapped(bi.instr, regs,
                                   config_.sram_size)) {
                // Nothing committed: the oracle single-steps this one.
                ++stats_.superblock_bail_operand;
                break;
            }
            // Replay the fetch stream's accounting (addresses are
            // static; the hardware-cache state transitions are not,
            // so run them).
            if (fram_code) {
                acc.fram_fetch += bi.n_words;
                std::uint16_t a = bi.pc;
                for (int w = 0; w < bi.n_words; ++w,
                         a = static_cast<std::uint16_t>(a + 2)) {
                    std::uint32_t contention =
                        bi.fetch_contends[w] ? cstall : 0;
                    std::uint32_t stall;
                    if (hw_on) {
                        if (hw.access(a)) {
                            ++acc.hits;
                            stall = contention;
                        } else {
                            ++acc.misses;
                            stall = std::max(ws, contention);
                        }
                    } else {
                        ++acc.misses;
                        stall = std::max(ws, contention);
                    }
                    acc.stall += stall;
                }
                mem.beginInstr(bi.n_words, bi.last_fetch_line);
            } else {
                acc.sram_fetch += bi.n_words;
                mem.beginInstr(0, 0);
            }
            acc.code += bi.code_words;
            acc.data += static_cast<std::uint32_t>(bi.n_words) -
                        bi.code_words;
            regs[0] = bi.next_pc;
            core.execute(bi.instr);
            acc.base += bi.base_cycles;
            ++acc.owner[bi.owner];
            ++executed;
            if (mem.smc()) {
                // The store already bumped the generations, so the
                // rest of this block's decodes are suspect — but the
                // committed instruction stands, and the next lookup
                // revalidates, so the chain itself may continue.
                ++stats_.superblock_bail_smc;
                break;
            }
        }
        if (executed) {
            ++stats_.superblock_dispatches;
            total += executed;
        }
        if (executed < block->instrs.size())
            break; // bailed mid-block: the oracle decides what's next
    }

    if (total) {
        stats_.instructions += total;
        stats_.base_cycles += acc.base;
        stats_.stall_cycles += acc.stall;
        stats_.sram.fetch += acc.sram_fetch;
        stats_.sram.read += acc.sram_read;
        stats_.sram.write += acc.sram_write;
        stats_.fram.fetch += acc.fram_fetch;
        stats_.fram.read += acc.fram_read;
        stats_.fram.write += acc.fram_write;
        stats_.fram_cache_hits += acc.hits;
        stats_.fram_cache_misses += acc.misses;
        stats_.code_space_accesses += acc.code;
        stats_.data_space_accesses += acc.data;
        stats_.predecode_invalidations += acc.pre_inval;
        for (int i = 0; i < kNumOwners; ++i)
            stats_.instr_by_owner[i] += acc.owner[i];
        stats_.superblock_instructions += total;
    }
    return {total, acc.base + acc.stall};
}

} // namespace swapram::sim
