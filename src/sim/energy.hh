/**
 * @file
 * Energy model for the FRAM platform.
 *
 * The paper measures current through a sense resistor on a real
 * MSP430FR2355; we substitute a linear model: core energy per cycle
 * (frequency-dependent — 24 MHz is the device's most efficient operating
 * point, §5.4) plus per-access energies for FRAM and SRAM. Units are
 * picojoules; the constants are calibrated so the *relative* results
 * (who wins, by roughly what factor) match the paper's Figures 1/9/10.
 * EXPERIMENTS.md documents the calibration.
 */

#ifndef SWAPRAM_SIM_ENERGY_HH
#define SWAPRAM_SIM_ENERGY_HH

#include <cstdint>

#include "sim/stats.hh"

namespace swapram::sim {

/** Linear energy model, all values in picojoules. */
struct EnergyModel {
    /** Core energy per cycle at 8 MHz (less efficient per cycle). */
    double core_pj_per_cycle_8mhz = 110.0;
    /** Core energy per cycle at 24 MHz (the efficient operating point). */
    double core_pj_per_cycle_24mhz = 80.0;

    double fram_read_pj = 55.0;  ///< per FRAM read/fetch access
    double fram_write_pj = 65.0; ///< per FRAM write access
    double sram_read_pj = 10.0;  ///< per SRAM read/fetch access
    double sram_write_pj = 12.0; ///< per SRAM write access

    /** Core energy per cycle at @p clock_hz (linear interpolation). */
    double corePjPerCycle(std::uint32_t clock_hz) const;

    /** Total energy of a run, in picojoules. */
    double totalPj(const Stats &stats, std::uint32_t clock_hz) const;

    /** Run time in seconds at @p clock_hz. */
    static double
    seconds(const Stats &stats, std::uint32_t clock_hz)
    {
        return static_cast<double>(stats.totalCycles()) / clock_hz;
    }
};

} // namespace swapram::sim

#endif // SWAPRAM_SIM_ENERGY_HH
