/**
 * @file
 * Flat 64 KiB physical memory with region classification. The memory
 * array holds data for every region; timing and statistics are handled
 * by the bus, which asks regionOf() where an address lives.
 */

#ifndef SWAPRAM_SIM_MEMORY_HH
#define SWAPRAM_SIM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "masm/assembler.hh"

namespace swapram::sim {

/** Physical region of an address. */
enum class RegionKind : std::uint8_t { Sram, Fram, Mmio, Unmapped };

/** Region of @p addr in the modelled memory map. */
RegionKind regionOf(std::uint16_t addr);

/** Region of @p addr with a configurable SRAM end (exclusive). The
 *  one-argument overload above fixes it at platform::kSramEnd. */
RegionKind regionOf(std::uint16_t addr, std::uint32_t sram_end);

/** Backing store: a flat array; the loader writes image chunks into it. */
class Memory
{
  public:
    Memory();

    std::uint8_t read8(std::uint16_t addr) const { return bytes_[addr]; }
    std::uint16_t
    read16(std::uint16_t addr) const
    {
        return static_cast<std::uint16_t>(
            bytes_[addr] |
            (bytes_[static_cast<std::uint16_t>(addr + 1)] << 8));
    }
    void write8(std::uint16_t addr, std::uint8_t v) { bytes_[addr] = v; }
    void
    write16(std::uint16_t addr, std::uint16_t v)
    {
        bytes_[addr] = static_cast<std::uint8_t>(v & 0xFF);
        bytes_[static_cast<std::uint16_t>(addr + 1)] =
            static_cast<std::uint8_t>(v >> 8);
    }

    /** Copy all image chunks into the array. */
    void loadImage(const masm::Image &image);

    /** Raw backing span for the superblock fast path. Accesses through
     *  it bypass the bus, so the caller owns all accounting and
     *  invalidation duties. */
    std::uint8_t *bytes() { return bytes_.data(); }

  private:
    std::vector<std::uint8_t> bytes_;
};

} // namespace swapram::sim

#endif // SWAPRAM_SIM_MEMORY_HH
