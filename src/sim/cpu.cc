#include "sim/cpu.hh"

#include "isa/cycles.hh"
#include "isa/decode.hh"
#include "support/logging.hh"
#include "support/platform.hh"
#include "support/strings.hh"

namespace swapram::sim {

using isa::Mode;
using isa::Op;
using isa::Operand;
using isa::Reg;

namespace sr = isa::sr;

void
Cpu::setFlags(bool n, bool z, bool c, bool v)
{
    std::uint16_t s = regs_[2];
    s &= static_cast<std::uint16_t>(~(sr::kN | sr::kZ | sr::kC | sr::kV));
    if (n)
        s |= sr::kN;
    if (z)
        s |= sr::kZ;
    if (c)
        s |= sr::kC;
    if (v)
        s |= sr::kV;
    regs_[2] = s;
}

Cpu::Loc
Cpu::resolve(const Operand &op, bool byte)
{
    switch (op.mode) {
      case Mode::Register:
        return {Loc::Kind::Reg, op.reg, 0, 0};
      case Mode::Immediate:
        return {Loc::Kind::Imm, Reg::PC, 0, op.value};
      case Mode::Indexed: {
        std::uint16_t addr = static_cast<std::uint16_t>(
            regs_[isa::regIndex(op.reg)] + op.value);
        return {Loc::Kind::Mem, op.reg, addr, 0};
      }
      case Mode::Symbolic:
      case Mode::Absolute:
        return {Loc::Kind::Mem, Reg::PC, op.value, 0};
      case Mode::Indirect:
        return {Loc::Kind::Mem, op.reg, regs_[isa::regIndex(op.reg)], 0};
      case Mode::IndirectInc: {
        std::uint8_t idx = isa::regIndex(op.reg);
        std::uint16_t addr = regs_[idx];
        regs_[idx] = static_cast<std::uint16_t>(addr + (byte ? 1 : 2));
        return {Loc::Kind::Mem, op.reg, addr, 0};
      }
    }
    support::panic("Cpu::resolve: bad mode");
}

std::uint16_t
Cpu::loadLoc(const Loc &loc, bool byte)
{
    switch (loc.kind) {
      case Loc::Kind::Reg: {
        std::uint16_t v = regs_[isa::regIndex(loc.reg)];
        return byte ? static_cast<std::uint16_t>(v & 0xFF) : v;
      }
      case Loc::Kind::Imm:
        return byte ? static_cast<std::uint16_t>(loc.imm & 0xFF) : loc.imm;
      case Loc::Kind::Mem:
        if (byte)
            return bus_.read8(loc.addr, AccessKind::Read);
        return bus_.read16(loc.addr, AccessKind::Read);
    }
    support::panic("Cpu::loadLoc: bad kind");
}

void
Cpu::storeLoc(const Loc &loc, bool byte, std::uint16_t value)
{
    switch (loc.kind) {
      case Loc::Kind::Reg: {
        if (loc.reg == Reg::CG2)
            return; // writes to the constant generator are discarded
        std::uint8_t idx = isa::regIndex(loc.reg);
        // Byte operations on a register clear the upper byte.
        regs_[idx] = byte ? static_cast<std::uint16_t>(value & 0xFF)
                          : value;
        return;
      }
      case Loc::Kind::Mem:
        if (byte)
            bus_.write8(loc.addr, static_cast<std::uint8_t>(value & 0xFF));
        else
            bus_.write16(loc.addr, value);
        return;
      case Loc::Kind::Imm:
        support::panic("Cpu::storeLoc: store to immediate");
    }
}

void
Cpu::push16(std::uint16_t value)
{
    regs_[1] = static_cast<std::uint16_t>(regs_[1] - 2);
    bus_.write16(regs_[1], value);
}

std::uint16_t
Cpu::pop16()
{
    std::uint16_t value = bus_.read16(regs_[1], AccessKind::Read);
    regs_[1] = static_cast<std::uint16_t>(regs_[1] + 2);
    return value;
}

void
Cpu::executeFormatI(const isa::Instr &instr)
{
    const bool byte = instr.byte;
    const std::uint32_t mask = byte ? 0xFFu : 0xFFFFu;
    const std::uint32_t msb = byte ? 0x80u : 0x8000u;

    Loc src_loc = resolve(instr.src, byte);
    std::uint32_t src = loadLoc(src_loc, byte);
    Loc dst_loc = resolve(instr.dst, byte);
    const bool needs_dst_read = instr.op != Op::Mov;
    std::uint32_t dst = needs_dst_read ? loadLoc(dst_loc, byte) : 0;

    auto add_common = [&](std::uint32_t a, std::uint32_t b,
                          std::uint32_t cin, bool writeback) {
        std::uint32_t sum = a + b + cin;
        std::uint32_t r = sum & mask;
        bool c = sum > mask;
        bool z = r == 0;
        bool n = (r & msb) != 0;
        bool v = ((~(a ^ b)) & (a ^ r) & msb) != 0;
        if (writeback)
            storeLoc(dst_loc, byte, static_cast<std::uint16_t>(r));
        setFlags(n, z, c, v);
    };

    switch (instr.op) {
      case Op::Mov:
        storeLoc(dst_loc, byte, static_cast<std::uint16_t>(src));
        return;
      case Op::Add:
        add_common(src, dst, 0, true);
        return;
      case Op::Addc:
        add_common(src, dst, flag(sr::kC) ? 1 : 0, true);
        return;
      case Op::Sub:
        add_common((~src) & mask, dst, 1, true);
        return;
      case Op::Subc:
        add_common((~src) & mask, dst, flag(sr::kC) ? 1 : 0, true);
        return;
      case Op::Cmp:
        add_common((~src) & mask, dst, 1, false);
        return;
      case Op::Dadd: {
        // Nibble-serial BCD addition with carry in.
        std::uint32_t carry = flag(sr::kC) ? 1 : 0;
        std::uint32_t r = 0;
        int nibbles = byte ? 2 : 4;
        for (int i = 0; i < nibbles; ++i) {
            std::uint32_t a = (src >> (4 * i)) & 0xF;
            std::uint32_t b = (dst >> (4 * i)) & 0xF;
            std::uint32_t d = a + b + carry;
            carry = d >= 10 ? 1 : 0;
            if (carry)
                d -= 10;
            r |= (d & 0xF) << (4 * i);
        }
        storeLoc(dst_loc, byte, static_cast<std::uint16_t>(r));
        setFlags((r & msb) != 0, r == 0, carry != 0, false);
        return;
      }
      case Op::Bit: {
        std::uint32_t r = src & dst;
        setFlags((r & msb) != 0, r == 0, r != 0, false);
        return;
      }
      case Op::And: {
        std::uint32_t r = src & dst;
        storeLoc(dst_loc, byte, static_cast<std::uint16_t>(r));
        setFlags((r & msb) != 0, r == 0, r != 0, false);
        return;
      }
      case Op::Bic:
        storeLoc(dst_loc, byte,
                 static_cast<std::uint16_t>(dst & ~src & mask));
        return;
      case Op::Bis:
        storeLoc(dst_loc, byte, static_cast<std::uint16_t>(dst | src));
        return;
      case Op::Xor: {
        std::uint32_t r = (dst ^ src) & mask;
        bool v = ((src & msb) != 0) && ((dst & msb) != 0);
        storeLoc(dst_loc, byte, static_cast<std::uint16_t>(r));
        setFlags((r & msb) != 0, r == 0, r != 0, v);
        return;
      }
      default:
        support::panic("executeFormatI: bad op");
    }
}

void
Cpu::executeFormatII(const isa::Instr &instr)
{
    const bool byte = instr.byte;
    const std::uint32_t mask = byte ? 0xFFu : 0xFFFFu;
    const std::uint32_t msb = byte ? 0x80u : 0x8000u;

    if (instr.op == Op::Reti) {
        regs_[2] = pop16();
        regs_[0] = pop16();
        return;
    }

    Loc loc = resolve(instr.dst, byte);

    switch (instr.op) {
      case Op::Rrc: {
        std::uint32_t v = loadLoc(loc, byte);
        std::uint32_t r =
            ((v >> 1) | (flag(sr::kC) ? msb : 0)) & mask;
        storeLoc(loc, byte, static_cast<std::uint16_t>(r));
        setFlags((r & msb) != 0, r == 0, (v & 1) != 0, false);
        return;
      }
      case Op::Rra: {
        std::uint32_t v = loadLoc(loc, byte);
        std::uint32_t r = ((v >> 1) | (v & msb)) & mask;
        storeLoc(loc, byte, static_cast<std::uint16_t>(r));
        setFlags((r & msb) != 0, r == 0, (v & 1) != 0, false);
        return;
      }
      case Op::Swpb: {
        std::uint16_t v = loadLoc(loc, false);
        std::uint16_t r = static_cast<std::uint16_t>((v >> 8) | (v << 8));
        storeLoc(loc, false, r);
        return;
      }
      case Op::Sxt: {
        std::uint16_t v = loadLoc(loc, false);
        std::uint16_t r = static_cast<std::uint16_t>(
            static_cast<std::int16_t>(static_cast<std::int8_t>(v & 0xFF)));
        storeLoc(loc, false, r);
        setFlags((r & 0x8000) != 0, r == 0, r != 0, false);
        return;
      }
      case Op::Push: {
        std::uint16_t v = loadLoc(loc, byte);
        regs_[1] = static_cast<std::uint16_t>(regs_[1] - 2);
        if (byte)
            bus_.write8(regs_[1], static_cast<std::uint8_t>(v));
        else
            bus_.write16(regs_[1], v);
        return;
      }
      case Op::Call: {
        std::uint16_t target = loadLoc(loc, false);
        push16(regs_[0]);
        regs_[0] = target;
        return;
      }
      default:
        support::panic("executeFormatII: bad op");
    }
}

void
Cpu::executeJump(const isa::Instr &instr)
{
    bool taken = false;
    switch (instr.op) {
      case Op::Jne: taken = !flag(sr::kZ); break;
      case Op::Jeq: taken = flag(sr::kZ); break;
      case Op::Jnc: taken = !flag(sr::kC); break;
      case Op::Jc: taken = flag(sr::kC); break;
      case Op::Jn: taken = flag(sr::kN); break;
      case Op::Jge: taken = flag(sr::kN) == flag(sr::kV); break;
      case Op::Jl: taken = flag(sr::kN) != flag(sr::kV); break;
      case Op::Jmp: taken = true; break;
      default:
        support::panic("executeJump: bad op");
    }
    if (taken)
        regs_[0] = instr.jump_target;
}

void
Cpu::execute(const isa::Instr &instr)
{
    switch (isa::opFormat(instr.op)) {
      case isa::OpFormat::DoubleOperand:
        executeFormatI(instr);
        return;
      case isa::OpFormat::SingleOperand:
        executeFormatII(instr);
        return;
      case isa::OpFormat::Jump:
        executeJump(instr);
        return;
    }
}

void
Cpu::interrupt(std::uint16_t vector_addr, Stats &stats)
{
    bus_.beginInstruction();
    push16(regs_[0]);
    push16(regs_[2]);
    regs_[2] = 0; // SR cleared on entry (GIE off)
    regs_[0] = bus_.read16(vector_addr, AccessKind::Read);
    stats.base_cycles += platform::kInterruptCycles;
    ++stats.interrupts;
}

void
Cpu::step(Stats &stats)
{
    bus_.beginInstruction();
    std::uint16_t iaddr = regs_[0];
    if (iaddr & 1)
        support::fatal("PC at odd address ", support::hex16(iaddr));
    if (predecode_) {
        if (const PredecodeCache::Entry *e = predecode_->find(iaddr)) {
            // Replay the fetch sequence through the bus so every
            // timing/statistic side effect (FRAM stalls, hardware
            // cache state, contention, trace events) is identical to
            // the decoded path; only the decode work is skipped.
            bus_.read16(iaddr, AccessKind::Fetch);
            if (e->n_words > 1)
                bus_.read16(static_cast<std::uint16_t>(iaddr + 2),
                            AccessKind::Fetch);
            if (e->n_words > 2)
                bus_.read16(static_cast<std::uint16_t>(iaddr + 4),
                            AccessKind::Fetch);
            regs_[0] =
                static_cast<std::uint16_t>(iaddr + 2 * e->n_words);
            execute(e->instr);
            stats.base_cycles += e->base_cycles;
            ++stats.instructions;
            ++stats.predecode_hits;
            return;
        }
    }
    std::uint16_t w0 = bus_.read16(iaddr, AccessKind::Fetch);
    regs_[0] = static_cast<std::uint16_t>(regs_[0] + 2);
    isa::Shape shape = isa::decodeShape(w0);
    std::uint16_t ext_src = 0;
    std::uint16_t ext_dst = 0;
    if (shape.src_ext) {
        ext_src = bus_.read16(regs_[0], AccessKind::Fetch);
        regs_[0] = static_cast<std::uint16_t>(regs_[0] + 2);
    }
    if (shape.dst_ext) {
        ext_dst = bus_.read16(regs_[0], AccessKind::Fetch);
        regs_[0] = static_cast<std::uint16_t>(regs_[0] + 2);
    }
    isa::Instr instr = isa::decodeWords(w0, ext_src, ext_dst, iaddr);
    std::uint32_t cycles = isa::baseCycles(instr);
    if (predecode_) {
        // Never cache MMIO-resident words: device reads are
        // time-dependent, so such fetches must decode fresh each time.
        std::uint8_t n_words =
            static_cast<std::uint8_t>(1 + shape.totalExt());
        std::uint16_t last = static_cast<std::uint16_t>(
            iaddr + 2 * n_words - 1);
        if (regionOf(iaddr) != RegionKind::Mmio &&
            regionOf(last) != RegionKind::Mmio) {
            predecode_->insert(iaddr, instr, n_words,
                               static_cast<std::uint8_t>(cycles));
        }
        ++stats.predecode_misses;
    }
    execute(instr);
    stats.base_cycles += cycles;
    ++stats.instructions;
}

} // namespace swapram::sim
