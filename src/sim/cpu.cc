#include "sim/cpu.hh"

#include "isa/cycles.hh"
#include "isa/decode.hh"
#include "sim/exec.hh"
#include "support/logging.hh"
#include "support/platform.hh"
#include "support/strings.hh"

namespace swapram::sim {

void
Cpu::execute(const isa::Instr &instr)
{
    ExecCore<Bus> core(regs_, bus_);
    core.execute(instr);
}

void
Cpu::interrupt(std::uint16_t vector_addr, Stats &stats)
{
    bus_.beginInstruction();
    ExecCore<Bus> core(regs_, bus_);
    core.push16(regs_[0]);
    core.push16(regs_[2]);
    regs_[2] = 0; // SR cleared on entry (GIE off)
    regs_[0] = bus_.read16(vector_addr, AccessKind::Read);
    stats.base_cycles += platform::kInterruptCycles;
    ++stats.interrupts;
}

void
Cpu::step(Stats &stats)
{
    bus_.beginInstruction();
    std::uint16_t iaddr = regs_[0];
    if (iaddr & 1)
        support::fatal("PC at odd address ", support::hex16(iaddr));
    if (predecode_) {
        if (const PredecodeCache::Entry *e = predecode_->find(iaddr)) {
            // Replay the fetch sequence through the bus so every
            // timing/statistic side effect (FRAM stalls, hardware
            // cache state, contention, trace events) is identical to
            // the decoded path; only the decode work is skipped.
            bus_.read16(iaddr, AccessKind::Fetch);
            if (e->n_words > 1)
                bus_.read16(static_cast<std::uint16_t>(iaddr + 2),
                            AccessKind::Fetch);
            if (e->n_words > 2)
                bus_.read16(static_cast<std::uint16_t>(iaddr + 4),
                            AccessKind::Fetch);
            regs_[0] =
                static_cast<std::uint16_t>(iaddr + 2 * e->n_words);
            execute(e->instr);
            stats.base_cycles += e->base_cycles;
            ++stats.instructions;
            ++stats.predecode_hits;
            return;
        }
    }
    std::uint16_t w0 = bus_.read16(iaddr, AccessKind::Fetch);
    regs_[0] = static_cast<std::uint16_t>(regs_[0] + 2);
    isa::Shape shape = isa::decodeShape(w0);
    std::uint16_t ext_src = 0;
    std::uint16_t ext_dst = 0;
    if (shape.src_ext) {
        ext_src = bus_.read16(regs_[0], AccessKind::Fetch);
        regs_[0] = static_cast<std::uint16_t>(regs_[0] + 2);
    }
    if (shape.dst_ext) {
        ext_dst = bus_.read16(regs_[0], AccessKind::Fetch);
        regs_[0] = static_cast<std::uint16_t>(regs_[0] + 2);
    }
    isa::Instr instr = isa::decodeWords(w0, ext_src, ext_dst, iaddr);
    std::uint32_t cycles = isa::baseCycles(instr);
    if (predecode_) {
        // Never cache MMIO-resident words: device reads are
        // time-dependent, so such fetches must decode fresh each time.
        std::uint8_t n_words =
            static_cast<std::uint8_t>(1 + shape.totalExt());
        std::uint16_t last = static_cast<std::uint16_t>(
            iaddr + 2 * n_words - 1);
        if (regionOf(iaddr) != RegionKind::Mmio &&
            regionOf(last) != RegionKind::Mmio) {
            predecode_->insert(iaddr, instr, n_words,
                               static_cast<std::uint8_t>(cycles));
        }
        ++stats.predecode_misses;
    }
    execute(instr);
    stats.base_cycles += cycles;
    ++stats.instructions;
}

} // namespace swapram::sim
