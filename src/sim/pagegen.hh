/**
 * @file
 * Write-generation table backing superblock invalidation.
 *
 * The address space is divided into small pages; every store bumps the
 * generation of the page(s) it touches, and every built superblock
 * snapshots the generations of the pages its code spans. A block whose
 * snapshot no longer matches has (conservatively) been overwritten —
 * SwapRAM copy-ins, self-modifying stores, or plain data writes that
 * share a page with code — and is rebuilt before dispatch.
 *
 * This piggybacks on the same write paths that drive the predecode
 * cache's 3-slot invalidation: the Bus calls noteWrite() for oracle
 * accesses, the superblock fast path calls it for direct stores, and
 * writers that bypass both (Machine::load, powerCycle's crt0 re-copy)
 * call bumpAll(), which advances a global generation checked first.
 */

#ifndef SWAPRAM_SIM_PAGEGEN_HH
#define SWAPRAM_SIM_PAGEGEN_HH

#include <array>
#include <cstdint>

namespace swapram::sim {

/** Per-page write generations over the 64 KiB address space. */
class PageGenTable
{
  public:
    /** Page granularity: 64-byte pages, 1024 of them. Small enough
     *  that data writes rarely alias code pages, large enough that a
     *  block (≤ kMaxBlockBytes) spans at most three. */
    static constexpr unsigned kPageShift = 6;
    static constexpr std::uint32_t kPages = 0x10000u >> kPageShift;

    static constexpr std::uint16_t
    pageOf(std::uint16_t addr)
    {
        return static_cast<std::uint16_t>(addr >> kPageShift);
    }

    /** A store of @p bytes bytes landed at @p addr. */
    void
    noteWrite(std::uint16_t addr, unsigned bytes)
    {
        std::uint16_t first = pageOf(addr);
        std::uint16_t last =
            pageOf(static_cast<std::uint16_t>(addr + bytes - 1));
        ++gen_[first];
        if (last != first)
            ++gen_[last];
    }

    /** Memory changed wholesale behind the bus (load, power cycle). */
    void bumpAll() { ++global_; }

    std::uint64_t globalGen() const { return global_; }
    std::uint64_t pageGen(std::uint16_t page) const { return gen_[page]; }

  private:
    std::array<std::uint64_t, kPages> gen_{};
    std::uint64_t global_ = 0;
};

} // namespace swapram::sim

#endif // SWAPRAM_SIM_PAGEGEN_HH
