/**
 * @file
 * Machine configuration: clock frequency, FRAM wait states, hardware
 * cache enable, and run limits.
 */

#ifndef SWAPRAM_SIM_CONFIG_HH
#define SWAPRAM_SIM_CONFIG_HH

#include <cstdint>
#include <optional>

#include "support/platform.hh"

namespace swapram::sim {

/** Build-configured default for MachineConfig::superblock_enabled;
 *  the -DSWAPRAM_NO_SUPERBLOCK CI leg runs everything on the
 *  single-step oracle. harness::RunSpec follows the same default. */
inline constexpr bool kSuperblockDefaultEnabled =
#ifdef SWAPRAM_NO_SUPERBLOCK
    false;
#else
    true;
#endif

/** Build-configured default for MachineConfig::threaded_enabled; the
 *  -DSWAPRAM_NO_THREADED CI leg pins the block-stepped superblock
 *  tier so the two dispatchers stay byte-identical. */
inline constexpr bool kThreadedDefaultEnabled =
#ifdef SWAPRAM_NO_THREADED
    false;
#else
    true;
#endif

/** Configuration of one Machine instance. */
struct MachineConfig {
    /** CPU clock (MCLK). The paper evaluates 8 MHz and 24 MHz. */
    std::uint32_t clock_hz = 24'000'000;

    /**
     * Stall cycles per FRAM access that misses the hardware cache.
     * Defaults from the clock: 0 at or below FRAM's 8 MHz limit,
     * 3 above it (the paper's §5.4 figure for 24 MHz).
     */
    std::optional<std::uint32_t> fram_wait_states;

    /**
     * Extra stall applied to the second and later FRAM cache misses
     * issued by a single instruction, modelling the cache-contention
     * bottleneck the paper observes even at 8 MHz (Figure 1: "a single
     * instruction execution can dispatch multiple simultaneous accesses
     * to distant addresses in FRAM, bottlenecking memory accesses at
     * the cache").
     */
    std::uint32_t contention_stall = 2;

    /** Model the 2-way/4-line hardware read cache (always present on
     *  the real device; disable only for experiments). */
    bool hw_cache_enabled = true;

    /** Abort the run after this many total cycles. */
    std::uint64_t max_cycles = 4'000'000'000ull;

    /**
     * Host-side predecode fast path: cache decoded instructions by PC
     * and replay only the (fully accounted) bus fetches on a hit.
     * Simulated behaviour and timing are identical either way — tests
     * run both settings differentially; disable to use the always-
     * decode path as the oracle.
     */
    bool predecode_enabled = true;

    /**
     * Host-side superblock execution engine: group decoded instructions
     * into straight-line blocks and dispatch a whole block per run-loop
     * iteration, with batched accounting and direct-memory data access.
     * Simulated behaviour and timing are identical either way (the
     * engine bails to the single-step path at every boundary it cannot
     * prove safe); disable for the pure oracle. The build-time default
     * is flipped by -DSWAPRAM_NO_SUPERBLOCK (CI oracle leg).
     */
    bool superblock_enabled = kSuperblockDefaultEnabled;

    /**
     * Computed-goto threaded-code tier on top of the superblock
     * engine: hot blocks are lowered once to specialized kernels with
     * flattened operands and executed as an indirect-goto chain. Needs
     * superblock_enabled (it shares the block table and every bail-out
     * guard) and the GNU computed-goto extension; silently falls back
     * to block-stepped dispatch otherwise. Simulated behaviour and
     * timing are identical either way. The build-time default is
     * flipped by -DSWAPRAM_NO_THREADED (CI differential leg).
     */
    bool threaded_enabled = kThreadedDefaultEnabled;

    /**
     * Periodic timer interrupt, in cycles (0 = disabled). When due and
     * GIE is set, the CPU vectors through platform::kTimerVector
     * (push PC, push SR, clear SR, 6 cycles) — the standard MSP430
     * sequence. Programs enable it with EINT and must install the ISR
     * address at the vector.
     */
    std::uint64_t timer_period_cycles = 0;

    /**
     * Livelock watchdog for intermittent runs: stop the run when this
     * many consecutive boots each end in an already-visited watermark
     * — a failure PC plus FRAM contents (minus registered skip cells)
     * seen at some earlier boot. Forward progress must eventually
     * reach a *new* persistent state; a run orbiting a finite set of
     * states, whether it repeats every boot or cycles with period k,
     * can never finish. 0 (the default) disables the check; bounded
     * plans (max_failures) should leave it off, since their final
     * boot always runs to completion.
     */
    std::uint32_t livelock_boots = 0;

    /**
     * Modelled SRAM size in bytes, starting at platform::kSramBase
     * (capacity-pressure experiments, ISSUE 7: {1,2,4,8} KiB). The
     * region [kSramBase, kSramBase + sram_size) classifies as SRAM;
     * everything between its end and kFramBase is unmapped. The default
     * is the evaluation device's 4 KiB, which reproduces the historical
     * memory map bit-for-bit.
     */
    std::uint32_t sram_size = platform::kSramSize;

    /** One past the last SRAM byte under this configuration. */
    std::uint32_t
    sramEnd() const
    {
        return platform::kSramBase + sram_size;
    }

    /** Effective wait states given the clock. */
    std::uint32_t
    effectiveWaitStates() const
    {
        if (fram_wait_states)
            return *fram_wait_states;
        return clock_hz <= platform::kFramMaxHz
                   ? 0
                   : platform::kFramWaitStates24MHz;
    }
};

} // namespace swapram::sim

#endif // SWAPRAM_SIM_CONFIG_HH
