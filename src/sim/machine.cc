#include "sim/machine.hh"

#include "support/logging.hh"

namespace swapram::sim {

Machine::Machine(const MachineConfig &config)
    : config_(config), bus_(memory_, mmio_, stats_, config_), cpu_(bus_)
{
    bus_.setCycleProbe(&stats_.base_cycles);
}

void
Machine::load(const masm::Image &image, std::uint16_t stack_top)
{
    memory_.loadImage(image);
    bus_.setCodeRange(image.text.base, image.text.end());
    cpu_.reset(image.entry, stack_top);
}

void
Machine::addOwnerRange(std::uint16_t base, std::uint32_t end,
                       CodeOwner owner)
{
    owner_ranges_.push_back({base, end, owner});
}

CodeOwner
Machine::classifyPc(std::uint16_t pc) const
{
    // Later registrations win: scan in reverse.
    for (auto it = owner_ranges_.rbegin(); it != owner_ranges_.rend();
         ++it) {
        if (pc >= it->base && static_cast<std::uint32_t>(pc) < it->end)
            return it->owner;
    }
    return regionOf(pc) == RegionKind::Sram ? CodeOwner::AppSram
                                            : CodeOwner::AppFram;
}

void
Machine::step()
{
    if (config_.timer_period_cycles) {
        std::uint64_t now = stats_.totalCycles();
        if (now >= timer_next_fire_)
            timer_pending_ = true;
        if (timer_pending_ && cpu_.interruptsEnabled()) {
            timer_pending_ = false;
            while (timer_next_fire_ <= now)
                timer_next_fire_ += config_.timer_period_cycles;
            cpu_.interrupt(platform::kTimerVector, stats_);
            return; // interrupt entry consumes this step
        }
    }
    ++stats_.instr_by_owner[static_cast<int>(classifyPc(cpu_.pc()))];
    cpu_.step(stats_);
}

RunResult
Machine::run()
{
    while (!mmio_.done()) {
        if (stats_.totalCycles() >= config_.max_cycles) {
            return {false, 0};
        }
        step();
    }
    return {true, mmio_.exitCode()};
}

} // namespace swapram::sim
