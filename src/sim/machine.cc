#include "sim/machine.hh"

#include <algorithm>

#include "support/logging.hh"
#include "trace/profile.hh"

namespace swapram::sim {

namespace {

/** Stats fields the profiler attributes per instruction. */
struct StatSnapshot {
    std::uint64_t base_cycles, stall_cycles;
    std::uint64_t fram_fetch, fram_read, fram_write;
    std::uint64_t sram_fetch, sram_read, sram_write;

    explicit StatSnapshot(const Stats &s)
        : base_cycles(s.base_cycles), stall_cycles(s.stall_cycles),
          fram_fetch(s.fram.fetch), fram_read(s.fram.read),
          fram_write(s.fram.write), sram_fetch(s.sram.fetch),
          sram_read(s.sram.read), sram_write(s.sram.write)
    {
    }

    trace::StepCosts
    deltaTo(const Stats &s) const
    {
        trace::StepCosts d;
        d.base_cycles = s.base_cycles - base_cycles;
        d.stall_cycles = s.stall_cycles - stall_cycles;
        d.fram_fetch = s.fram.fetch - fram_fetch;
        d.fram_read = s.fram.read - fram_read;
        d.fram_write = s.fram.write - fram_write;
        d.sram_fetch = s.sram.fetch - sram_fetch;
        d.sram_read = s.sram.read - sram_read;
        d.sram_write = s.sram.write - sram_write;
        return d;
    }
};

} // namespace

Machine::Machine(const MachineConfig &config)
    : config_(config), bus_(memory_, mmio_, stats_, config_), cpu_(bus_)
{
    bus_.setCycleProbe(&stats_.base_cycles);
    if (config_.predecode_enabled) {
        predecode_ = std::make_unique<PredecodeCache>();
        cpu_.setPredecode(predecode_.get());
        bus_.setPredecode(predecode_.get());
    }
    if (config_.superblock_enabled) {
        superblock_ = std::make_unique<SuperblockEngine>(
            cpu_, memory_, bus_, stats_, config_);
        superblock_->setPredecode(predecode_.get());
        superblock_->setClassifier([this](std::uint16_t pc) {
            return static_cast<std::uint8_t>(classifyPc(pc));
        });
        bus_.setPageGens(&superblock_->pageGens());
        // Lowered ops carry per-probe stall costs in 16-bit fields;
        // pathological wait-state configs fall back to block stepping.
        bool stalls_fit = config_.effectiveWaitStates() <= 0xFFFF &&
                          config_.contention_stall <= 0xFFFF;
        if (config_.threaded_enabled && stalls_fit &&
            ThreadedEngine::available()) {
            threaded_ = std::make_unique<ThreadedEngine>(
                cpu_, memory_, bus_, stats_, config_, *superblock_);
            threaded_->setPredecode(predecode_.get());
        }
    }
}

void
Machine::load(const masm::Image &image, std::uint16_t stack_top)
{
    memory_.loadImage(image);
    bus_.setCodeRange(image.text.base, image.text.end());
    cpu_.reset(image.entry, stack_top);
    image_ = image;
    stack_top_ = stack_top;
    // The loader writes memory directly (not through the bus), so any
    // previously cached decodes are stale.
    if (predecode_)
        predecode_->invalidateAll();
    if (superblock_)
        superblock_->invalidateAll();
}

void
Machine::powerCycle()
{
    std::uint16_t pc_at_failure = cpu_.pc();
    ++stats_.reboots;

    // SRAM decays; FRAM keeps every byte.
    for (std::uint32_t a = platform::kSramBase; a < config_.sramEnd();
         ++a)
        memory_.write8(static_cast<std::uint16_t>(a), 0);
    bus_.hwCache().reset();

    // The crt0 model: re-copy image chunks that live in SRAM (code or
    // data placed there) and the .data initialisers wherever they are;
    // re-zero .bss. .text and .const chunks in FRAM are NOT restored —
    // runtime metadata kept there persists exactly as the failure left
    // it, which is what boot recovery must repair.
    for (const masm::Chunk &chunk : image_.chunks) {
        bool in_sram = chunk.base >= platform::kSramBase &&
                       chunk.base < config_.sramEnd();
        bool is_data = image_.data.size &&
                       chunk.base >= image_.data.base &&
                       chunk.base < image_.data.end();
        if (!in_sram && !is_data)
            continue;
        for (std::size_t i = 0; i < chunk.bytes.size(); ++i) {
            memory_.write8(static_cast<std::uint16_t>(chunk.base + i),
                           chunk.bytes[i]);
        }
    }
    for (std::uint32_t a = image_.bss.base; a < image_.bss.end(); ++a)
        memory_.write8(static_cast<std::uint16_t>(a), 0);

    // Volatile device and CPU state. The SRAM decay and crt0 re-copy
    // above bypassed the bus, so every cached decode is suspect.
    if (predecode_)
        predecode_->invalidateAll();
    if (superblock_)
        superblock_->invalidateAll();
    mmio_.powerCycle();
    cpu_.reset(image_.entry, stack_top_);
    timer_pending_ = false;
    timer_next_fire_ = stats_.totalCycles();
    in_recovery_ = false;
    last_owner_ = 0xFF;

    if (trace_ && trace_->wants(trace::kCatPower)) {
        trace_->emit({stats_.totalCycles(), trace::EventKind::PowerFail,
                      0, pc_at_failure,
                      static_cast<std::uint16_t>(stats_.reboots), 0});
    }
}

void
Machine::addOwnerRange(std::uint16_t base, std::uint32_t end,
                       CodeOwner owner)
{
    owner_ranges_.push_back({base, end, owner});
    // Blocks pre-attribute instr_by_owner at build time.
    if (superblock_)
        superblock_->invalidateAll();
}

void
Machine::setTraceEngine(trace::TraceEngine *engine)
{
    trace_ = engine;
    bus_.setTraceEngine(engine);
}

CodeOwner
Machine::classifyPc(std::uint16_t pc) const
{
    // Later registrations win: scan in reverse.
    for (auto it = owner_ranges_.rbegin(); it != owner_ranges_.rend();
         ++it) {
        if (pc >= it->base && static_cast<std::uint32_t>(pc) < it->end)
            return it->owner;
    }
    return regionOf(pc, config_.sramEnd()) == RegionKind::Sram
               ? CodeOwner::AppSram
               : CodeOwner::AppFram;
}

void
Machine::stepObserved(std::uint16_t pc, CodeOwner owner)
{
    auto owner8 = static_cast<std::uint8_t>(owner);
    if (trace_ && owner8 != last_owner_) {
        if (trace_->wants(trace::kCatSwap)) {
            trace_->emit({stats_.totalCycles(),
                          trace::EventKind::OwnerChange, 0, pc, owner8,
                          last_owner_});
        }
        last_owner_ = owner8;
    }
    StatSnapshot pre(stats_);
    cpu_.step(stats_);
    trace::StepCosts costs = pre.deltaTo(stats_);
    if (profiler_)
        profiler_->record(pc, owner8, costs);
    if (trace_ && trace_->wants(trace::kCatInstr)) {
        trace_->emit({stats_.totalCycles(),
                      trace::EventKind::InstrRetire, 0, pc,
                      static_cast<std::uint16_t>(costs.base_cycles),
                      static_cast<std::uint32_t>(costs.stall_cycles)});
    }
}

void
Machine::interruptObserved(std::uint16_t pc)
{
    // Entry costs (pushes, vector fetch) are charged to the
    // interrupted function so profile totals stay exact.
    StatSnapshot pre(stats_);
    cpu_.interrupt(platform::kTimerVector, stats_);
    if (profiler_) {
        profiler_->record(
            pc, static_cast<std::uint8_t>(classifyPc(pc)),
            pre.deltaTo(stats_));
    }
    if (trace_ && trace_->wants(trace::kCatInterrupt)) {
        trace_->emit({stats_.totalCycles(),
                      trace::EventKind::InterruptEnter, 0,
                      platform::kTimerVector, pc, 0});
    }
}

void
Machine::step()
{
    if (config_.timer_period_cycles) {
        std::uint64_t now = stats_.totalCycles();
        if (now >= timer_next_fire_)
            timer_pending_ = true;
        if (timer_pending_ && cpu_.interruptsEnabled()) {
            timer_pending_ = false;
            while (timer_next_fire_ <= now)
                timer_next_fire_ += config_.timer_period_cycles;
            if (trace_ || profiler_)
                interruptObserved(cpu_.pc());
            else
                cpu_.interrupt(platform::kTimerVector, stats_);
            return; // interrupt entry consumes this step
        }
    }
    CodeOwner owner = classifyPc(cpu_.pc());
    ++stats_.instr_by_owner[static_cast<int>(owner)];
    if (ckpt_commit_entry_ || ckpt_restore_entry_) {
        // Entry-point probe: one event per call of the generated
        // checkpoint routines (their first instruction executes exactly
        // once per invocation).
        std::uint16_t pc = cpu_.pc();
        if (trace_ && trace_->wants(trace::kCatPower)) {
            if (pc == ckpt_commit_entry_) {
                trace_->emit({stats_.totalCycles(),
                              trace::EventKind::CkptCommit, 0, pc, 0,
                              0});
            } else if (pc == ckpt_restore_entry_) {
                trace_->emit({stats_.totalCycles(),
                              trace::EventKind::CkptRestore, 0, pc, 0,
                              0});
            }
        }
    }
    if (recovery_end_) {
        std::uint16_t pc = cpu_.pc();
        bool in = pc >= recovery_base_ &&
                  static_cast<std::uint32_t>(pc) < recovery_end_;
        if (in != in_recovery_) {
            in_recovery_ = in;
            std::uint64_t now = stats_.totalCycles();
            if (in)
                recovery_enter_cycle_ = now;
            if (trace_ && trace_->wants(trace::kCatPower)) {
                trace_->emit({now,
                              in ? trace::EventKind::RecoveryEnter
                                 : trace::EventKind::RecoveryExit,
                              0, pc, 0,
                              in ? 0
                                 : static_cast<std::uint32_t>(
                                       now - recovery_enter_cycle_)});
            }
        }
        if (in) {
            std::uint64_t before = stats_.totalCycles();
            if (trace_ || profiler_)
                stepObserved(pc, owner);
            else
                cpu_.step(stats_);
            stats_.recovery_cycles += stats_.totalCycles() - before;
            return;
        }
    }
    if (trace_ || profiler_) {
        stepObserved(cpu_.pc(), owner);
        return;
    }
    cpu_.step(stats_);
}

bool
Machine::trySuperblock()
{
    SuperblockEngine::ChainLimits limits;
    limits.now = stats_.totalCycles();
    limits.limit_cycles = config_.max_cycles;
    if (fault_) {
        limits.limit_cycles =
            std::min(limits.limit_cycles, fault_->nextFailureCycle());
    }
    limits.timer_period = config_.timer_period_cycles;
    limits.timer_fire = timer_next_fire_;
    limits.timer_pending = timer_pending_;

    bool in = false;
    if (recovery_end_) {
        std::uint16_t pc = cpu_.pc();
        in = pc >= recovery_base_ &&
             static_cast<std::uint32_t>(pc) < recovery_end_;
        if (in != in_recovery_) {
            // Trace recovery events only exist with an engine attached,
            // and an attached engine disables dispatch entirely -- only
            // the accounting state needs maintaining here.
            in_recovery_ = in;
            if (in)
                recovery_enter_cycle_ = limits.now;
        }
    }

    SuperblockEngine::ChainResult res =
        threaded_ ? threaded_->runChain(limits)
                  : superblock_->runChain(limits);
    if (!res.instructions)
        return false;
    // The chain never crosses the recovery boundary, so its whole
    // cycle delta attributes to the entry PC's side.
    if (in)
        stats_.recovery_cycles += res.cycles;
    return true;
}

void
Machine::addWatermarkSkip(std::uint16_t base, std::uint32_t end)
{
    if (end <= base)
        return;
    wm_skip_.push_back({base, end});
    std::sort(wm_skip_.begin(), wm_skip_.end());
}

std::uint64_t
Machine::bootWatermark() const
{
    // FNV-1a over the persistent state a reboot starts from: SRAM is
    // zeroed and .data/.bss re-initialised at every boot, so boot-to-
    // boot progress lives entirely in FRAM; the failure PC pins where
    // the budget ran out. The machine is deterministic, so a repeated
    // watermark under a repeating per-boot budget is an exact replay.
    //
    // Skip ranges hide persistent cells that advance without any real
    // forward progress (lifetime statistics counters, checkpoint
    // sequence numbers): hashing those would make every boot look
    // distinct and blind the livelock watchdog.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint8_t byte) {
        h ^= byte;
        h *= 1099511628211ull;
    };
    std::size_t skip = 0;
    for (std::uint32_t a = platform::kFramBase; a < platform::kFramEnd;
         ++a) {
        while (skip < wm_skip_.size() && wm_skip_[skip].second <= a)
            ++skip;
        if (skip < wm_skip_.size() && a >= wm_skip_[skip].first)
            continue;
        mix(memory_.read8(static_cast<std::uint16_t>(a)));
    }
    std::uint16_t pc = cpu_.pc();
    mix(static_cast<std::uint8_t>(pc & 0xFF));
    mix(static_cast<std::uint8_t>(pc >> 8));
    return h;
}

RunResult
Machine::run()
{
    while (!mmio_.done()) {
        if (stats_.totalCycles() >= config_.max_cycles) {
            return {false, 0, RunResult::Stop::MaxCycles};
        }
        if (fault_ && fault_->shouldFail(stats_.totalCycles())) {
            if (fault_->exhausted())
                return {false, 0, RunResult::Stop::Exhausted};
            if (config_.livelock_boots) {
                // Progress means reaching a state never seen before.
                // A run stuck in a period-k orbit of old states (a
                // torn commit restored every boot, a recovery walk
                // alternating pool slots) revisits the set forever.
                if (seen_watermarks_.insert(bootWatermark()).second) {
                    livelock_streak_ = 0;
                } else if (++livelock_streak_ >= config_.livelock_boots) {
                    return {false, 0, RunResult::Stop::Livelock};
                }
            }
            powerCycle();
            continue;
        }
        // Block-stepped fast path: per-instruction observability
        // (trace, profiler, metrics) needs the oracle.
        if (superblock_ && !trace_ && !profiler_ && !metrics_ &&
            trySuperblock())
            continue;
        step();
    }
    return {true, mmio_.exitCode(), RunResult::Stop::Done};
}

} // namespace swapram::sim
