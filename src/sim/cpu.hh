/**
 * @file
 * MSP430 CPU model: scalar, in-order, 16-bit, fetch/decode/execute with
 * per-instruction base cycle charging. Every memory touch goes through
 * the Bus so FRAM stalls and statistics fall out of execution.
 */

#ifndef SWAPRAM_SIM_CPU_HH
#define SWAPRAM_SIM_CPU_HH

#include <array>
#include <cstdint>

#include "isa/instruction.hh"
#include "sim/bus.hh"
#include "sim/predecode.hh"
#include "sim/stats.hh"

namespace swapram::sim {

/** The processor. */
class Cpu
{
  public:
    explicit Cpu(Bus &bus) : bus_(bus) { regs_.fill(0); }

    /** Attach a predecode cache (nullptr = always decode). The owner
     *  (Machine) is responsible for wiring write invalidation. */
    void setPredecode(PredecodeCache *cache) { predecode_ = cache; }

    /** Set PC and SP for a fresh run. */
    void
    reset(std::uint16_t entry, std::uint16_t stack_top)
    {
        regs_.fill(0);
        regs_[0] = entry;
        regs_[1] = stack_top;
    }

    /** Execute one instruction, updating @p stats. */
    void step(Stats &stats);

    /**
     * Enter an interrupt through @p vector_addr (the word holding the
     * handler address): push PC, push SR, clear SR (disabling GIE),
     * jump to the handler. Charges the standard entry cycles.
     */
    void interrupt(std::uint16_t vector_addr, Stats &stats);

    /** True when the global interrupt enable bit is set. */
    bool interruptsEnabled() const
    {
        return (regs_[2] & isa::sr::kGie) != 0;
    }

    std::uint16_t pc() const { return regs_[0]; }
    std::uint16_t reg(isa::Reg r) const { return regs_[isa::regIndex(r)]; }
    void
    setReg(isa::Reg r, std::uint16_t v)
    {
        regs_[isa::regIndex(r)] = v;
    }

    /** The raw register file. The superblock engine executes directly
     *  on it (sharing ExecCore with step()); everyone else should use
     *  reg()/setReg(). */
    std::array<std::uint16_t, 16> &regs() { return regs_; }

  private:
    void execute(const isa::Instr &instr);

    std::array<std::uint16_t, 16> regs_{};
    Bus &bus_;
    PredecodeCache *predecode_ = nullptr;
};

} // namespace swapram::sim

#endif // SWAPRAM_SIM_CPU_HH
