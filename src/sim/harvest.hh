/**
 * @file
 * Energy-harvesting model for trace-driven intermittent execution: a
 * replayable harvesting profile (CSV of time -> incoming power) plus a
 * capacitor that charges from the trace and discharges through the
 * EnergyModel's per-cycle/per-access costs. Fault timing becomes a
 * consequence of energy rather than a synthetic schedule, and is
 * deterministic per trace.
 *
 * The crux of the design is *evaluation-point independence*: the
 * stored-energy function must be a pure function of (Stats, wall time)
 * so that the superblock engine — which only evaluates the injector at
 * block boundaries — sees exactly the same brown-out instruction as
 * the single-step oracle. Consumption is a step function that changes
 * only at instruction boundaries and harvest inflow is monotonic, so
 * the stored-energy minimum over any instruction-free interval is at
 * its end; while powered we therefore never clamp at capacity (a
 * clamp would make the value depend on *when* it was computed).
 * Clamping happens only in the off-time recharge walk, which is a
 * closed-form segment scan, not a simulation.
 */

#ifndef SWAPRAM_SIM_HARVEST_HH
#define SWAPRAM_SIM_HARVEST_HH

#include <cstdint>
#include <string>
#include <vector>

namespace swapram::sim {

/**
 * A piecewise-constant harvesting profile: at time t in seconds the
 * source delivers `watts(t)`, where the trace's last point extends
 * forever. Loaded from CSV lines of "time_s,power_w" ('#' comments and
 * blank lines ignored; times strictly increasing, first at 0).
 */
class HarvestTrace
{
  public:
    struct Point {
        double t_s;   ///< segment start, seconds from run start
        double watts; ///< power delivered until the next point
    };

    /** Parse CSV text; fatal on malformed input. @p what names the
     *  source in diagnostics (a file path). */
    static HarvestTrace parse(const std::string &csv,
                              const std::string &what = "harvest trace");

    /** Load and parse a CSV file; fatal if unreadable. */
    static HarvestTrace load(const std::string &path);

    /** Build directly from points (tests). */
    static HarvestTrace fromPoints(std::vector<Point> points);

    bool empty() const { return points_.empty(); }
    const std::vector<Point> &points() const { return points_; }

    /** Instantaneous harvest power at @p t_s, in watts. */
    double powerWatts(double t_s) const;

    /** Energy delivered over [0, t_s], in picojoules (the closed-form
     *  prefix integral of the piecewise-constant profile). */
    double energyPj(double t_s) const;

  private:
    std::vector<Point> points_;
    /** prefix_pj_[i] = energy delivered over [0, points_[i].t_s). */
    std::vector<double> prefix_pj_;

    void buildPrefix();
};

/**
 * The storage element between the harvester and the MCU. All energy
 * values are picojoules (matching EnergyModel); leakage is a constant
 * parasitic draw in watts.
 */
struct CapacitorModel {
    double capacity_pj = 100e6;  ///< 100 uJ usable storage
    double power_on_pj = 60e6;   ///< boot threshold while charging
    double brown_out_pj = 20e6;  ///< power fails below this while on
    double leak_watts = 10e-6;   ///< parasitic drain, on and off
    /** Stored energy at t=0; negative = start full (capacity_pj). */
    double initial_pj = -1.0;

    double startPj() const
    {
        return initial_pj < 0 ? capacity_pj : initial_pj;
    }
};

/**
 * Off-time recharge: starting from @p level_pj at wall time
 * @p wall_s, walk the trace until the capacitor (charging at
 * harvest - leak, clamped to [0, capacity]) reaches
 * @p cap.power_on_pj.
 */
struct RechargeResult {
    bool reachable = false; ///< false = harvest never wins; exhausted
    double seconds = 0;     ///< off time until power-on threshold
};
RechargeResult rechargeTime(const HarvestTrace &trace,
                            const CapacitorModel &cap, double level_pj,
                            double wall_s);

} // namespace swapram::sim

#endif // SWAPRAM_SIM_HARVEST_HH
