/**
 * @file
 * Power-failure fault injection for intermittent-execution testing.
 *
 * A FaultPlan describes *when* power is lost (a fixed cycle, a fixed
 * period per boot, seeded-random gaps, or — the realistic case — a
 * harvest-trace-driven capacitor model whose brown-outs are a
 * consequence of energy); a FaultInjector walks the plan against the
 * machine's cycle counter and tells Machine::run() when to
 * power-cycle. What a power loss *does* — zero SRAM, reset the CPU and
 * volatile devices, preserve FRAM byte-for-byte, re-run the crt0-style
 * data initialisation — lives in Machine::powerCycle().
 */

#ifndef SWAPRAM_SIM_FAULT_HH
#define SWAPRAM_SIM_FAULT_HH

#include <cstdint>
#include <memory>

#include "sim/energy.hh"
#include "sim/harvest.hh"
#include "support/rng.hh"

namespace swapram::sim {

/** When power is lost during a run. */
struct FaultPlan {
    enum class Kind : std::uint8_t {
        None,     ///< never fail (the default)
        Once,     ///< fail exactly once at `first_cycle`
        Periodic, ///< fail every `period` cycles of uptime per boot
        Random,   ///< seeded-random uptime gaps in [min_gap, max_gap]
        Trace,    ///< capacitor charged from a harvest trace browns out
    };

    Kind kind = Kind::None;

    /** Once: the failure cycle. Periodic: first boot's uptime budget
     *  (0 = use `period`). */
    std::uint64_t first_cycle = 0;

    /** Periodic: cycles of uptime each boot gets before power dies. */
    std::uint64_t period = 0;

    /** Random: inclusive bounds on each boot's uptime. A drawn gap is
     *  clamped to >= 1 cycle — a zero-uptime boot would reboot at the
     *  same cycle forever (the counter never advances past the
     *  failure, so not even max_cycles can end the run). */
    std::uint64_t min_gap = 0;
    std::uint64_t max_gap = 0;

    /** Random: RNG seed for the gap sequence. */
    std::uint32_t seed = 1;

    /** Stop injecting after this many failures (0 = unbounded). A
     *  bounded plan guarantees the final boot runs to completion. */
    std::uint64_t max_failures = 0;

    /** Trace: the harvesting profile (shared so plans stay cheap to
     *  copy across engine workers) and the storage element. */
    std::shared_ptr<const HarvestTrace> trace;
    CapacitorModel capacitor;

    bool enabled() const { return kind != Kind::None; }

    static FaultPlan
    once(std::uint64_t cycle)
    {
        FaultPlan p;
        p.kind = Kind::Once;
        p.first_cycle = cycle;
        p.max_failures = 1;
        return p;
    }

    static FaultPlan
    periodic(std::uint64_t period, std::uint64_t max_failures = 0)
    {
        FaultPlan p;
        p.kind = Kind::Periodic;
        p.period = period;
        p.max_failures = max_failures;
        return p;
    }

    static FaultPlan
    random(std::uint64_t min_gap, std::uint64_t max_gap,
           std::uint32_t seed, std::uint64_t max_failures = 0)
    {
        FaultPlan p;
        p.kind = Kind::Random;
        p.min_gap = min_gap;
        p.max_gap = max_gap;
        p.seed = seed;
        p.max_failures = max_failures;
        return p;
    }

    static FaultPlan
    harvest(std::shared_ptr<const HarvestTrace> trace,
            CapacitorModel capacitor = {})
    {
        FaultPlan p;
        p.kind = Kind::Trace;
        p.trace = std::move(trace);
        p.capacitor = capacitor;
        return p;
    }
};

/** Walks a FaultPlan against total-cycle time. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    /**
     * Bind a Trace plan to the machine it gates: stored energy is a
     * pure function of the (monotonic) Stats counters and the harvest
     * trace, so the injector needs the stats it discharges against.
     * @p stats must outlive the injector and belong to the machine
     * whose run loop calls shouldFail().
     */
    void bindEnergy(const Stats *stats, const EnergyModel &model,
                    std::uint32_t clock_hz);

    /**
     * True exactly when a scheduled power loss is due at @p now_cycles
     * (total cycles since the original power-on). A true return
     * consumes the event and schedules the next one; for Trace plans
     * it also advances wall time across the off-period recharge.
     */
    bool shouldFail(std::uint64_t now_cycles);

    /** Failures injected so far. */
    std::uint64_t failures() const { return failures_; }

    /**
     * Next scheduled failure cycle (UINT64_MAX = none pending). For
     * Trace plans this is a conservative lower bound on the true
     * brown-out cycle — recomputed by every shouldFail() from the
     * worst-case energy per cycle, ignoring harvest inflow — so block
     * dispatch clamped to it can never skip past a failure.
     */
    std::uint64_t nextFailureCycle() const { return next_; }

    /** Trace: harvest can never recharge the capacitor to the
     *  power-on threshold again; the run must stop. */
    bool exhausted() const { return exhausted_; }

    /** Trace: energy delivered by the harvester over the run so far,
     *  in picojoules (0 for other kinds). */
    double harvestedPj(std::uint64_t now_cycles) const;

    /** Trace: stored energy at @p now_cycles, in picojoules. */
    double storedPj(std::uint64_t now_cycles) const;

    /** Capacitor level scaled to 0..0xFFFF of capacity for the MMIO
     *  energy register; 0xFFFF ("mains powered") for non-Trace
     *  plans. */
    std::uint16_t levelWord(std::uint64_t now_cycles) const;

    /** Trace: accumulated powered-off (recharge) wall time. */
    double offSeconds() const { return off_seconds_; }

    /** Trace: wall-clock seconds at @p now_cycles (on-time from the
     *  cycle counter plus accumulated off-time). */
    double wallSeconds(std::uint64_t now_cycles) const;

  private:
    std::uint64_t gap();
    bool traceShouldFail(std::uint64_t now_cycles);
    double consumedPj() const;

    FaultPlan plan_;
    support::Rng rng_;
    std::uint64_t next_ = UINT64_MAX;
    std::uint64_t failures_ = 0;

    // Trace-plan state (see bindEnergy).
    const Stats *stats_ = nullptr;
    EnergyModel energy_;
    std::uint32_t clock_hz_ = 0;
    double worst_pj_per_cycle_ = 0;
    double off_seconds_ = 0;
    double boot_wall_s_ = 0;
    double boot_stored_pj_ = 0;
    double boot_consumed_pj_ = 0;
    bool exhausted_ = false;
};

} // namespace swapram::sim

#endif // SWAPRAM_SIM_FAULT_HH
