/**
 * @file
 * Power-failure fault injection for intermittent-execution testing.
 *
 * A FaultPlan describes *when* power is lost (a fixed cycle, a fixed
 * period per boot, or seeded-random gaps); a FaultInjector walks the
 * plan against the machine's cycle counter and tells Machine::run()
 * when to power-cycle. What a power loss *does* — zero SRAM, reset the
 * CPU and volatile devices, preserve FRAM byte-for-byte, re-run the
 * crt0-style data initialisation — lives in Machine::powerCycle().
 */

#ifndef SWAPRAM_SIM_FAULT_HH
#define SWAPRAM_SIM_FAULT_HH

#include <cstdint>

#include "support/rng.hh"

namespace swapram::sim {

/** When power is lost during a run. */
struct FaultPlan {
    enum class Kind : std::uint8_t {
        None,     ///< never fail (the default)
        Once,     ///< fail exactly once at `first_cycle`
        Periodic, ///< fail every `period` cycles of uptime per boot
        Random,   ///< seeded-random uptime gaps in [min_gap, max_gap]
    };

    Kind kind = Kind::None;

    /** Once: the failure cycle. Periodic: first boot's uptime budget
     *  (0 = use `period`). */
    std::uint64_t first_cycle = 0;

    /** Periodic: cycles of uptime each boot gets before power dies. */
    std::uint64_t period = 0;

    /** Random: inclusive bounds on each boot's uptime. */
    std::uint64_t min_gap = 0;
    std::uint64_t max_gap = 0;

    /** Random: RNG seed for the gap sequence. */
    std::uint32_t seed = 1;

    /** Stop injecting after this many failures (0 = unbounded). A
     *  bounded plan guarantees the final boot runs to completion. */
    std::uint64_t max_failures = 0;

    bool enabled() const { return kind != Kind::None; }

    static FaultPlan
    once(std::uint64_t cycle)
    {
        FaultPlan p;
        p.kind = Kind::Once;
        p.first_cycle = cycle;
        p.max_failures = 1;
        return p;
    }

    static FaultPlan
    periodic(std::uint64_t period, std::uint64_t max_failures = 0)
    {
        FaultPlan p;
        p.kind = Kind::Periodic;
        p.period = period;
        p.max_failures = max_failures;
        return p;
    }

    static FaultPlan
    random(std::uint64_t min_gap, std::uint64_t max_gap,
           std::uint32_t seed, std::uint64_t max_failures = 0)
    {
        FaultPlan p;
        p.kind = Kind::Random;
        p.min_gap = min_gap;
        p.max_gap = max_gap;
        p.seed = seed;
        p.max_failures = max_failures;
        return p;
    }
};

/** Walks a FaultPlan against total-cycle time. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    /**
     * True exactly when a scheduled power loss is due at @p now_cycles
     * (total cycles since the original power-on). A true return
     * consumes the event and schedules the next one.
     */
    bool shouldFail(std::uint64_t now_cycles);

    /** Failures injected so far. */
    std::uint64_t failures() const { return failures_; }

    /** Next scheduled failure cycle (UINT64_MAX = none pending). */
    std::uint64_t nextFailureCycle() const { return next_; }

  private:
    std::uint64_t gap();

    FaultPlan plan_;
    support::Rng rng_;
    std::uint64_t next_ = UINT64_MAX;
    std::uint64_t failures_ = 0;
};

} // namespace swapram::sim

#endif // SWAPRAM_SIM_FAULT_HH
