/**
 * @file
 * Threaded-code execution tier: hot superblocks are lowered, once, to
 * computed-goto threaded code over pre-resolved operand closures, then
 * executed as an indirect-goto chain — no per-instruction decode, no
 * block-stepped interpreter loop, one live accumulator for the whole
 * chain.
 *
 * Lowering happens lazily at first dispatch of a (already built and
 * validated) superblock. Each instruction is resolved to a specialized
 * kernel plus flattened operands:
 *   - immediate and register sources become a direct uint8_t* into the
 *     op's own immediate cell or the register file;
 *   - Symbolic/Absolute operands become a direct uint8_t* into the flat
 *     memory array, with their region counters, code/data
 *     classification, and FRAM wait-state/contention stalls folded into
 *     static per-block totals at lowering time (only the hardware-cache
 *     hit/miss outcome stays dynamic);
 *   - FRAM fetch streams collapse to at most two hardware-cache line
 *     probes per instruction (three sequential fetch words span at most
 *     two 8-byte lines; the followers are guaranteed hits with zero
 *     stall and fold into the static totals);
 *   - register-dependent operands keep an inline mapped-space pre-check
 *     and fully dynamic accounting, exactly mirroring the superblock
 *     tier's FastMem model.
 * Whatever does not fit a specialized kernel runs a generic kernel:
 * the shared ExecCore template over a FastMem-equivalent shim, so the
 * semantics stay single-sourced.
 *
 * Static per-block totals are applied in one shot at block entry; each
 * op also carries its own static delta so the rare bail-outs can walk
 * the unexecuted suffix and subtract it back. Every superblock bail-out
 * is preserved as a guard back to the oracle:
 *   - dyn-operand MMIO/unmapped pre-check (nothing committed);
 *   - own-block SMC via the shared page-generation table (committed,
 *     then stop);
 *   - fault/timer/max-cycle worst-case-bound refusal before dispatch;
 *   - trace/profiler/metrics force the oracle entirely (Machine never
 *     calls this engine with observers attached).
 *
 * The tier requires the GNU computed-goto extension; without it the
 * Machine silently falls back to the superblock tier (available()).
 * Simulated results are bit-identical across all three tiers — the
 * differential fuzz twins and the golden matrix pin this.
 */

#ifndef SWAPRAM_SIM_THREADED_HH
#define SWAPRAM_SIM_THREADED_HH

#include <cstdint>

#include "sim/bus.hh"
#include "sim/config.hh"
#include "sim/cpu.hh"
#include "sim/memory.hh"
#include "sim/predecode.hh"
#include "sim/stats.hh"
#include "sim/superblock.hh"

#if defined(__GNUC__) || defined(__clang__)
#define SWAPRAM_THREADED_AVAILABLE 1
#else
#define SWAPRAM_THREADED_AVAILABLE 0
#endif

namespace swapram::sim {

/** Computed-goto dispatch over lowered superblocks. */
class ThreadedEngine
{
  public:
    /** True when the build supports computed goto (GCC/Clang). The
     *  Machine only constructs the engine when this holds. */
    static constexpr bool
    available()
    {
        return SWAPRAM_THREADED_AVAILABLE != 0;
    }

    /** The engine shares the superblock engine's block table,
     *  page-generation invalidation, and recovery boundary; lowered
     *  code hangs off each Block, so every invalidation path (stale
     *  generations, image load, power cycle) drops it for free. */
    ThreadedEngine(Cpu &cpu, Memory &memory, Bus &bus, Stats &stats,
                   const MachineConfig &config, SuperblockEngine &sb);

    /** Predecode cache for the store-invalidation duties of the fast
     *  write path; nullptr detaches. Not owned. */
    void setPredecode(PredecodeCache *cache) { predecode_ = cache; }

    /** Chains must not cross this attribution boundary (mirrors
     *  SuperblockEngine::setRecoveryRange, which already invalidates
     *  every built block — and with them all lowered code). */
    void
    setRecoveryRange(std::uint16_t base, std::uint32_t end)
    {
        recovery_base_ = base;
        recovery_end_ = end;
    }

    /**
     * Dispatch consecutive lowered blocks from the current PC until a
     * bail-out, a missing block, or a cycle boundary — the exact
     * contract of SuperblockEngine::runChain, at threaded-code speed.
     * instructions == 0 means the caller must single-step the oracle.
     */
    SuperblockEngine::ChainResult
    runChain(const SuperblockEngine::ChainLimits &limits);

    /**
     * Block transition inside the dispatch loop: accounts the block
     * that just completed, then looks up, guards, lazily lowers, and
     * enters the next block at the current PC. Returns the next
     * block's op array, or nullptr when the chain must end. Takes and
     * returns opaque pointers because the dispatch context and op
     * types are internal to the implementation — this is public only
     * so the file-local dispatch loop can call it from the block-end
     * sentinel without re-entering the (register-heavy) dispatch
     * function once per block.
     */
    void *advanceChain(void *ctx);

  private:
    /** Lower a validated block to threaded code (attached to it). */
    void lower(SuperblockEngine::Block &block);

    Cpu &cpu_;
    Memory &memory_;
    Bus &bus_;
    Stats &stats_;
    const MachineConfig &config_;
    SuperblockEngine &sb_;

    PredecodeCache *predecode_ = nullptr;
    std::uint16_t recovery_base_ = 0;
    std::uint32_t recovery_end_ = 0; ///< 0 = no recovery range

    /** Kernel label table, fetched once from the dispatch function. */
    const void *const *labels_ = nullptr;
};

} // namespace swapram::sim

#endif // SWAPRAM_SIM_THREADED_HH
