#include "sim/stats.hh"

#include "support/logging.hh"

namespace swapram::sim {

std::string
ownerName(CodeOwner owner)
{
    switch (owner) {
      case CodeOwner::AppFram: return "app-fram";
      case CodeOwner::AppSram: return "app-sram";
      case CodeOwner::Handler: return "handler";
      case CodeOwner::Memcpy: return "memcpy";
    }
    support::panic("ownerName: bad owner");
}

} // namespace swapram::sim
