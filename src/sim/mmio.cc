#include "sim/mmio.hh"

#include "sim/fault.hh"
#include "support/platform.hh"

namespace swapram::sim {

namespace plat = swapram::platform;

void
Mmio::write(std::uint16_t addr, std::uint16_t value,
            std::uint64_t cycles_now)
{
    switch (addr & ~1) {
      case plat::kMmioConsole:
        console_ += static_cast<char>(value & 0xFF);
        break;
      case plat::kMmioDone:
        done_ = true;
        exit_code_ = static_cast<std::uint8_t>(value & 0xFF);
        break;
      case plat::kMmioPin:
        ++pin_toggles_;
        break;
      case plat::kMmioCycleLo:
      case plat::kMmioCycleHi:
        latched_cycles_ = cycles_now;
        break;
      default:
        break; // writes to unassigned MMIO are ignored
    }
}

void
Mmio::powerCycle()
{
    done_ = false;
    exit_code_ = 0;
    console_.clear();
    pin_toggles_ = 0;
    latched_cycles_ = 0;
}

std::uint16_t
Mmio::read(std::uint16_t addr, std::uint64_t cycles_now)
{
    switch (addr & ~1) {
      case plat::kMmioCycleLo:
        latched_cycles_ = cycles_now;
        return static_cast<std::uint16_t>(latched_cycles_ & 0xFFFF);
      case plat::kMmioCycleHi:
        return static_cast<std::uint16_t>((latched_cycles_ >> 16) & 0xFFFF);
      case plat::kMmioEnergy:
        // Capacitor level for on-low-energy checkpoint policies; with
        // no harvest-driven injector attached the device reads as
        // mains-powered (full).
        return energy_ ? energy_->levelWord(cycles_now) : 0xFFFF;
      default:
        return 0;
    }
}

} // namespace swapram::sim
