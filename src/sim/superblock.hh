/**
 * @file
 * Superblock execution engine: straight-line groups of predecoded
 * instructions dispatched one block per run-loop iteration.
 *
 * A block is built by scanning forward from a word-aligned PC,
 * decoding speculatively until a terminator:
 *   - control flow (any jump, CALL, RETI, or a register destination of
 *     PC), which may leave the block;
 *   - a statically MMIO-or-unmapped operand (Symbolic/Absolute into
 *     device space) — such instructions always run on the oracle;
 *   - a fetch that would leave the block's memory region (or a word
 *     that is not a decodable leading word, or a PC wrap);
 *   - crossing the boot-recovery attribution boundary;
 *   - the size caps (kMaxBlockInstrs / kMaxBlockBytes).
 *
 * Execution replays, per instruction, exactly the accounting the
 * bus+cpu oracle would produce: fetch counts and FRAM hardware-cache /
 * wait-state / contention stalls are precomputed per fetch word at
 * build time (line-contention flags are static because fetch addresses
 * are); data accesses run through a direct uint8_t* fast path that
 * inlines the bus's region counting, code/data classification, and
 * FRAM timing model. All counter updates accumulate in registers and
 * flush to Stats once per block.
 *
 * Bail-out keeps the engine byte-identical to the oracle:
 *   - before each instruction, register-dependent operand addresses
 *     are pre-checked; if any would touch MMIO/unmapped space the
 *     block stops *before* that instruction (nothing committed) and
 *     the oracle single-steps it;
 *   - a store into the executing block's own code range stops the
 *     block after the current instruction;
 *   - the Machine refuses to dispatch a block whose worst-case cycle
 *     bound could cross a fault-injection, timer-interrupt, or
 *     max-cycles boundary — it single-steps until past it — so faults
 *     and interrupts land on exactly the same cycle in both modes;
 *   - attached trace engines or profilers disable dispatch entirely
 *     (per-instruction observability wants the oracle).
 *
 * Invalidation piggybacks on the write paths that already feed the
 * predecode cache's 3-slot invalidation: every store bumps per-page
 * write generations (PageGenTable) which blocks validate at lookup.
 */

#ifndef SWAPRAM_SIM_SUPERBLOCK_HH
#define SWAPRAM_SIM_SUPERBLOCK_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "isa/instruction.hh"
#include "sim/bus.hh"
#include "sim/config.hh"
#include "sim/cpu.hh"
#include "sim/memory.hh"
#include "sim/pagegen.hh"
#include "sim/predecode.hh"
#include "sim/stats.hh"

namespace swapram::sim {

/** Lowered (computed-goto) form of one block; owned by the block so
 *  every invalidation path drops it together with the decode. Defined
 *  by the threaded tier (sim/threaded.cc). */
class ThreadedCode;

/** Block-stepped dispatch over straight-line code. */
class SuperblockEngine
{
  public:
    static constexpr std::uint32_t kMaxBlockInstrs = 32;
    static constexpr std::uint32_t kMaxBlockBytes = 120;
    /** kMaxBlockBytes bytes span at most this many gen pages. */
    static constexpr std::uint32_t kMaxBlockPages =
        kMaxBlockBytes / (1u << PageGenTable::kPageShift) + 2;

    /** Per-instruction flags. */
    enum : std::uint8_t {
        /** Some operand address depends on a register: pre-check the
         *  effective addresses before executing. */
        kFlagDynMem = 0x01,
        /** May write SR (GIE): gates dispatch while a timer interrupt
         *  is or may become pending. */
        kFlagWritesSr = 0x02,
    };

    /** One pre-analysed instruction. */
    struct BlockInstr {
        isa::Instr instr{};
        std::uint16_t pc = 0;
        std::uint16_t next_pc = 0;
        std::uint8_t n_words = 1;
        std::uint8_t base_cycles = 0;
        std::uint8_t owner = 0; ///< CodeOwner of pc (static per range)
        std::uint8_t flags = 0;
        std::uint8_t code_words = 0; ///< fetch words inside .text
        /** FRAM fetch line-contention flags (static: the 2nd+ FRAM
         *  access of an instruction contends iff it changes 8-byte
         *  line; fetches come first and their addresses are fixed). */
        std::array<std::uint8_t, 3> fetch_contends{};
        /** 8-byte line of the last fetch word (seeds the data-access
         *  contention chain when fetching from FRAM). */
        std::uint32_t last_fetch_line = 0;
    };

    /** A built block (instrs empty = tombstone: PC known unblockable,
     *  revalidated by generations like any block). */
    struct Block {
        std::uint16_t start_pc = 0;
        std::uint32_t end_addr = 0; ///< one past the last code byte
        RegionKind fetch_region = RegionKind::Fram;
        bool writes_sr = false;
        /** Upper bound on total cycles one execution can cost. */
        std::uint32_t worst_case_cycles = 0;
        std::vector<BlockInstr> instrs;

        // Invalidation snapshot.
        std::uint64_t global_gen = 0;
        std::uint16_t first_page = 0;
        std::uint16_t last_page = 0;
        std::array<std::uint64_t, kMaxBlockPages> page_gens{};

        /** Lazily lowered threaded code (null until the threaded tier
         *  first dispatches this block; dropped with the block). */
        std::shared_ptr<ThreadedCode> threaded;
    };

    SuperblockEngine(Cpu &cpu, Memory &memory, Bus &bus, Stats &stats,
                     const MachineConfig &config);

    /** Attach the predecode cache so fast-path stores mirror the bus's
     *  3-slot invalidation; nullptr detaches. Not owned. */
    void setPredecode(PredecodeCache *cache) { predecode_ = cache; }

    /** Owner classification used to pre-attribute instr_by_owner
     *  (Machine::classifyPc). Build-time only. */
    void setClassifier(std::function<std::uint8_t(std::uint16_t)> fn)
    {
        classify_ = std::move(fn);
    }

    /** Blocks must not span this attribution boundary. */
    void
    setRecoveryRange(std::uint16_t base, std::uint32_t end)
    {
        recovery_base_ = base;
        recovery_end_ = end;
        invalidateAll();
    }

    /** The write-generation table (the Bus holds a pointer too). */
    PageGenTable &pageGens() { return gens_; }

    /** Memory changed behind the bus (image load, power cycle) or the
     *  static analysis inputs changed (owner ranges): every cached
     *  block is suspect. */
    void invalidateAll() { gens_.bumpAll(); }

    /**
     * The valid block starting at @p pc, building one if needed.
     * Returns nullptr when no block can start here (odd PC, MMIO or
     * unmapped fetch region, undecodable word, or a leading
     * instruction that must single-step). Non-const so the threaded
     * tier can attach lowered code to the block.
     */
    Block *lookup(std::uint16_t pc);

    /** True when @p addr lies in plain memory (SRAM or FRAM) — the
     *  only space the fast paths may touch directly. */
    static bool addrMapped(std::uint16_t addr, std::uint32_t sram_size);

    /**
     * Pre-execution check of every register-dependent effective
     * address @p in will touch, reproducing resolve()'s address
     * arithmetic (including @Rn+ post-increments feeding a later
     * operand through the same register, and PUSH/CALL's SP-2 stack
     * slot). False means some access would leave SRAM/FRAM — the
     * caller bails to the oracle with nothing committed. Shared with
     * the threaded tier so both fast paths guard identically.
     */
    static bool
    dynOperandsMapped(const isa::Instr &in,
                      const std::array<std::uint16_t, 16> &regs,
                      std::uint32_t sram_size);

    /** Cycle boundaries a chain must respect (Machine's per-step
     *  run-loop checks, precomputed once per chain). */
    struct ChainLimits {
        /** Stats::totalCycles() at chain entry. */
        std::uint64_t now = 0;
        /** Blocks must end strictly below this total-cycle count —
         *  min(max_cycles, next scheduled fault). */
        std::uint64_t limit_cycles = UINT64_MAX;
        /** Timer period (0 = no timer) and its pending state. */
        std::uint64_t timer_period = 0;
        std::uint64_t timer_fire = 0;
        bool timer_pending = false;
    };

    struct ChainResult {
        std::uint64_t instructions = 0; ///< retired by the chain
        std::uint64_t cycles = 0;       ///< base+stall added
    };

    /**
     * Dispatch consecutive blocks starting at the current PC until a
     * bail-out, a missing block, or a cycle boundary, updating
     * registers, memory, and Stats exactly as that many oracle steps
     * would. The accumulator, the direct-memory context, and the
     * executor are shared across the whole chain, so per-block cost is
     * one table lookup plus the boundary guards. instructions == 0
     * means the caller must single-step the oracle. Chains never cross
     * the recovery-range boundary (every block's cycles attribute the
     * same way); with a recovery range set, all retired cycles belong
     * to the entry PC's side.
     */
    ChainResult runChain(const ChainLimits &limits);

  private:
    std::unique_ptr<Block> build(std::uint16_t pc);
    bool valid(const Block &b) const;

    Cpu &cpu_;
    Memory &memory_;
    Bus &bus_;
    Stats &stats_;
    const MachineConfig &config_;

    PageGenTable gens_;
    PredecodeCache *predecode_ = nullptr;
    std::function<std::uint8_t(std::uint16_t)> classify_;

    std::uint16_t recovery_base_ = 0;
    std::uint32_t recovery_end_ = 0; ///< 0 = no recovery range

    /** Direct-mapped block table, one slot per word-aligned PC. */
    std::vector<std::unique_ptr<Block>> blocks_;
};

} // namespace swapram::sim

#endif // SWAPRAM_SIM_SUPERBLOCK_HH
