/**
 * @file
 * Memory bus: routes every CPU access to the flat memory / MMIO devices,
 * charges FRAM wait-state and contention stalls, and maintains all
 * access statistics (region counts, code/data-space classification,
 * hardware-cache hits/misses).
 *
 * When a trace::TraceEngine is attached, the bus emits structured
 * events for every access, FRAM stall, and hardware-cache hit/miss.
 * When a metrics::RunMetrics is attached, every accounted access also
 * lands in the per-page address-space heatmap and every FRAM stall in
 * the stall-latency histogram. With neither attached (the default)
 * each site is a single null-pointer branch — no allocation, no
 * virtual call.
 */

#ifndef SWAPRAM_SIM_BUS_HH
#define SWAPRAM_SIM_BUS_HH

#include <cstdint>

#include "metrics/run_metrics.hh"
#include "sim/config.hh"
#include "sim/hw_cache.hh"
#include "sim/memory.hh"
#include "sim/mmio.hh"
#include "sim/pagegen.hh"
#include "sim/predecode.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"

namespace swapram::sim {

/** Kind of one bus access. */
enum class AccessKind : std::uint8_t { Fetch, Read, Write };

/** The CPU's window onto memory. */
class Bus
{
  public:
    Bus(Memory &memory, Mmio &mmio, Stats &stats,
        const MachineConfig &config);

    /** Reset per-instruction state (contention tracking). */
    void beginInstruction();

    std::uint16_t read16(std::uint16_t addr, AccessKind kind);
    std::uint8_t read8(std::uint16_t addr, AccessKind kind);
    void write16(std::uint16_t addr, std::uint16_t value);
    void write8(std::uint16_t addr, std::uint8_t value);

    /** Code-space range used for Table 1's code/data classification. */
    void
    setCodeRange(std::uint16_t base, std::uint32_t end)
    {
        code_base_ = base;
        code_end_ = end;
    }

    /** Total cycles as seen by the bus's stall accounting plus the
     *  externally supplied base-cycle count (set by the CPU). */
    void setCycleProbe(const std::uint64_t *base_cycles)
    {
        base_cycles_probe_ = base_cycles;
    }

    /** Attach (or detach, with nullptr) the trace engine. */
    void setTraceEngine(trace::TraceEngine *engine)
    {
        trace_ = engine;
    }

    /** Attach run metrics (heatmap + stall histogram recording);
     *  nullptr detaches. Not owned. */
    void setMetrics(metrics::RunMetrics *metrics) { metrics_ = metrics; }

    /** Attach a predecode cache to invalidate on writes; nullptr
     *  detaches. Not owned. */
    void setPredecode(PredecodeCache *cache) { predecode_ = cache; }

    /** Attach the superblock engine's write-generation table so oracle
     *  stores invalidate blocks exactly like fast-path stores; nullptr
     *  detaches. Not owned. */
    void setPageGens(PageGenTable *gens) { page_gens_ = gens; }

    HwCache &hwCache() { return hw_cache_; }

    /** Code-space classification range (mirrored by the superblock
     *  fast path's accounting). */
    std::uint16_t codeBase() const { return code_base_; }
    std::uint32_t codeEnd() const { return code_end_; }

  private:
    void account(std::uint16_t addr, RegionKind region, AccessKind kind);

    /** Total cycles right now (stall + externally probed base). */
    std::uint64_t
    now() const
    {
        return stats_.stall_cycles +
               (base_cycles_probe_ ? *base_cycles_probe_ : 0);
    }

    /** Emit one access event if anyone is listening. */
    void
    traceAccess(std::uint16_t addr, std::uint16_t value,
                AccessKind kind, bool byte)
    {
        if (trace_ && trace_->wants(trace::kCatAccess)) {
            trace::EventKind ek =
                kind == AccessKind::Fetch  ? trace::EventKind::Fetch
                : kind == AccessKind::Read ? trace::EventKind::Read
                                           : trace::EventKind::Write;
            trace_->emit({now(), ek, static_cast<std::uint8_t>(byte),
                          addr, value, 0});
        }
    }

    Memory &memory_;
    Mmio &mmio_;
    Stats &stats_;
    const MachineConfig &config_;
    HwCache hw_cache_;

    std::uint16_t code_base_ = 0;
    std::uint32_t code_end_ = 0;
    std::uint32_t fram_accesses_this_instr_ = 0;
    std::uint32_t last_fram_line_ = 0;
    const std::uint64_t *base_cycles_probe_ = nullptr;
    trace::TraceEngine *trace_ = nullptr;
    metrics::RunMetrics *metrics_ = nullptr;
    PredecodeCache *predecode_ = nullptr;
    PageGenTable *page_gens_ = nullptr;
};

} // namespace swapram::sim

#endif // SWAPRAM_SIM_BUS_HH
