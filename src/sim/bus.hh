/**
 * @file
 * Memory bus: routes every CPU access to the flat memory / MMIO devices,
 * charges FRAM wait-state and contention stalls, and maintains all
 * access statistics (region counts, code/data-space classification,
 * hardware-cache hits/misses).
 */

#ifndef SWAPRAM_SIM_BUS_HH
#define SWAPRAM_SIM_BUS_HH

#include <cstdint>
#include <functional>

#include "sim/config.hh"
#include "sim/hw_cache.hh"
#include "sim/memory.hh"
#include "sim/mmio.hh"
#include "sim/stats.hh"

namespace swapram::sim {

/** Kind of one bus access. */
enum class AccessKind : std::uint8_t { Fetch, Read, Write };

/** One observed access (trace hook payload). */
struct AccessEvent {
    std::uint16_t addr;
    std::uint16_t value;
    AccessKind kind;
    bool byte;
};

/** The CPU's window onto memory. */
class Bus
{
  public:
    Bus(Memory &memory, Mmio &mmio, Stats &stats,
        const MachineConfig &config);

    /** Reset per-instruction state (contention tracking). */
    void beginInstruction();

    std::uint16_t read16(std::uint16_t addr, AccessKind kind);
    std::uint8_t read8(std::uint16_t addr, AccessKind kind);
    void write16(std::uint16_t addr, std::uint16_t value);
    void write8(std::uint16_t addr, std::uint8_t value);

    /** Code-space range used for Table 1's code/data classification. */
    void
    setCodeRange(std::uint16_t base, std::uint32_t end)
    {
        code_base_ = base;
        code_end_ = end;
    }

    /** Total cycles as seen by the bus's stall accounting plus the
     *  externally supplied base-cycle count (set by the CPU). */
    void setCycleProbe(const std::uint64_t *base_cycles)
    {
        base_cycles_probe_ = base_cycles;
    }

    /** Optional per-access trace hook (testing/debugging). */
    void setTraceHook(std::function<void(const AccessEvent &)> hook)
    {
        trace_ = std::move(hook);
    }

    HwCache &hwCache() { return hw_cache_; }

  private:
    void account(std::uint16_t addr, AccessKind kind, bool byte);

    Memory &memory_;
    Mmio &mmio_;
    Stats &stats_;
    const MachineConfig &config_;
    HwCache hw_cache_;

    std::uint16_t code_base_ = 0;
    std::uint32_t code_end_ = 0;
    std::uint32_t fram_accesses_this_instr_ = 0;
    std::uint32_t last_fram_line_ = 0;
    const std::uint64_t *base_cycles_probe_ = nullptr;
    std::function<void(const AccessEvent &)> trace_;
};

} // namespace swapram::sim

#endif // SWAPRAM_SIM_BUS_HH
