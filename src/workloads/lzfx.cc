/**
 * @file
 * LZFX benchmark (MiBench2 "lzfx"): hash-table LZ77-style compression
 * of a partially repetitive buffer. The C++ golden model and the
 * assembly implement the identical format: literals as (0x00, byte),
 * matches as (0x80|len-3, dist_lo, dist_hi), 3..10-byte matches found
 * through a 256-entry hash of the next three bytes.
 */

#include <sstream>

#include "support/rng.hh"
#include "workloads/workload.hh"

namespace swapram::workloads {

namespace {

constexpr int kInLen = 384;
constexpr int kMaxLen = 10;

std::uint8_t
hash3(const std::uint8_t *p)
{
    return static_cast<std::uint8_t>(p[0] + 3 * p[1] + 5 * p[2]);
}

/** Golden compressor; returns output length. */
int
compress(const std::vector<std::uint8_t> &in, std::vector<std::uint8_t> &out)
{
    std::uint16_t htab[256];
    for (auto &h : htab)
        h = 0xFFFF;
    const int n = static_cast<int>(in.size());
    int ip = 0;
    while (ip + 2 < n) {
        std::uint8_t h = hash3(&in[ip]);
        std::uint16_t ref = htab[h];
        htab[h] = static_cast<std::uint16_t>(ip);
        if (ref != 0xFFFF && in[ref] == in[ip] && in[ref + 1] == in[ip + 1] &&
            in[ref + 2] == in[ip + 2]) {
            int len = 3;
            while (len < kMaxLen && ip + len < n &&
                   in[ref + len] == in[ip + len]) {
                ++len;
            }
            int dist = ip - ref;
            out.push_back(static_cast<std::uint8_t>(0x80 | (len - 3)));
            out.push_back(static_cast<std::uint8_t>(dist & 0xFF));
            out.push_back(static_cast<std::uint8_t>(dist >> 8));
            ip += len;
        } else {
            out.push_back(0);
            out.push_back(in[ip]);
            ++ip;
        }
    }
    while (ip < n) {
        out.push_back(0);
        out.push_back(in[ip]);
        ++ip;
    }
    return static_cast<int>(out.size());
}

} // namespace

Workload
makeLzfx()
{
    // Partially repetitive input: duplicated chunks from a small
    // alphabet interleaved with noise.
    support::Rng rng(0x12F8, support::Rng::kLegacyBelow);
    std::vector<std::uint8_t> in;
    while (static_cast<int>(in.size()) < kInLen) {
        std::vector<std::uint8_t> chunk(24);
        for (auto &b : chunk)
            b = static_cast<std::uint8_t>('a' + rng.below(6));
        in.insert(in.end(), chunk.begin(), chunk.end());
        in.insert(in.end(), chunk.begin(), chunk.end()); // duplicate
        for (int i = 0; i < 12; ++i)
            in.push_back(rng.byte());
    }
    in.resize(kInLen);

    std::vector<std::uint8_t> out;
    int op = compress(in, out);
    std::uint16_t s = 0;
    for (int i = 0; i < op; ++i) {
        s = static_cast<std::uint16_t>(s + out[i]);
        s = static_cast<std::uint16_t>((s << 1) | (s >> 15));
    }
    s = static_cast<std::uint16_t>(s ^ op);

    std::ostringstream os;
    os << R"(
; ---- LZFX benchmark ----
        .text

; lz_mlen: R12 = match length (3..10) for ref R12 / ip R13 whose first
; three bytes already matched. Clobbers R11, R13-R15.
        .func lz_mlen
        MOV R12, R11            ; ref
        MOV #3, R14
lml_loop:
        CMP #)" << kMaxLen << R"(, R14
        JHS lml_done
        MOV R13, R15
        ADD R14, R15
        CMP #)" << kInLen << R"(, R15
        JHS lml_done
        MOV R11, R15
        ADD R14, R15
        MOV.B lz_in(R15), R12
        MOV R13, R15
        ADD R14, R15
        MOV.B lz_in(R15), R15
        CMP R15, R12
        JNE lml_done
        INC R14
        JMP lml_loop
lml_done:
        MOV R14, R12
        RET
        .endfunc

; lz_compress: compress lz_in into lz_out; R12 = output length.
        .func lz_compress
        PUSH R10
        PUSH R9
        PUSH R8
        ; htab[h] = 0xFFFF
        CLR R14
lzi_init:
        MOV #0xFFFF, lz_htab(R14)
        INCD R14
        CMP #512, R14
        JNE lzi_init
        CLR R9                  ; ip
        CLR R10                 ; op
lzc_loop:
        CMP #)" << (kInLen - 2) << R"(, R9
        JHS lzc_tail
        ; inline hash of in[ip..ip+2] (the original's HASH macro)
        MOV #lz_in, R14
        ADD R9, R14
        MOV.B @R14+, R12
        MOV.B @R14+, R13
        MOV.B @R14, R15
        ADD R13, R12
        ADD R13, R12
        ADD R13, R12
        ADD R15, R12
        ADD R15, R12
        ADD R15, R12
        ADD R15, R12
        ADD R15, R12
        AND #0xFF, R12
        RLA R12
        MOV R12, R8             ; h*2
        MOV lz_htab(R8), R13    ; ref
        MOV R9, lz_htab(R8)
        CMP #0xFFFF, R13
        JEQ lzc_lit
        ; verify the three hash bytes
        MOV R13, R14
        MOV R9, R15
        MOV.B lz_in(R14), R8
        MOV.B lz_in(R15), R11
        CMP R11, R8
        JNE lzc_lit
        INC R14
        INC R15
        MOV.B lz_in(R14), R8
        MOV.B lz_in(R15), R11
        CMP R11, R8
        JNE lzc_lit
        INC R14
        INC R15
        MOV.B lz_in(R14), R8
        MOV.B lz_in(R15), R11
        CMP R11, R8
        JNE lzc_lit
        ; match: compute length
        MOV R13, R12
        PUSH R13
        MOV R9, R13
        CALL #lz_mlen           ; R12 = len
        POP R13
        MOV R9, R14
        SUB R13, R14            ; dist
        MOV R12, R15
        SUB #3, R15
        BIS #0x80, R15
        MOV.B R15, lz_out(R10)
        INC R10
        MOV.B R14, lz_out(R10)
        INC R10
        MOV R14, R15
        SWPB R15
        MOV.B R15, lz_out(R10)
        INC R10
        ADD R12, R9
        JMP lzc_loop
lzc_lit:
        MOV.B #0, lz_out(R10)
        INC R10
        MOV.B lz_in(R9), R15
        MOV.B R15, lz_out(R10)
        INC R10
        INC R9
        JMP lzc_loop
lzc_tail:
        CMP #)" << kInLen << R"(, R9
        JHS lzc_done
        MOV.B #0, lz_out(R10)
        INC R10
        MOV.B lz_in(R9), R15
        MOV.B R15, lz_out(R10)
        INC R10
        INC R9
        JMP lzc_tail
lzc_done:
        MOV R10, R12
        POP R8
        POP R9
        POP R10
        RET
        .endfunc

; lz_sum: R12 = rolling checksum of lz_out[0..R12) xor length.
        .func lz_sum
        PUSH R10
        MOV R12, R10
        CLR R13
        CLR R14
lzs_loop:
        CMP R10, R14
        JHS lzs_done
        MOV.B lz_out(R14), R15
        ADD R15, R13
        RLA R13
        ADC R13
        INC R14
        JMP lzs_loop
lzs_done:
        MOV R13, R12
        XOR R10, R12
        POP R10
        RET
        .endfunc

        .func main
        CALL #lz_compress
        CALL #lz_sum
        MOV R12, &bench_result
        RET
        .endfunc

        .const
lz_in:
)";
    for (int i = 0; i < kInLen; ++i) {
        if (i % 16 == 0)
            os << "        .byte ";
        os << static_cast<int>(in[i])
           << ((i % 16 == 15 || i == kInLen - 1) ? "\n" : ", ");
    }
    os << R"(
        .bss
        .align 2
lz_htab: .space 512
lz_out:  .space )" << (2 * kInLen) << R"(
        .data
        .align 2
bench_result: .word 0
)";

    Workload w;
    w.name = "lzfx";
    w.display = "LZFX";
    w.description = "hash-chained LZ77 compression of 384 bytes";
    w.source = os.str();
    w.expected = s;
    return w;
}

} // namespace swapram::workloads
