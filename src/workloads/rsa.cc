/**
 * @file
 * RSA benchmark (MiBench2 "rsa", scaled to the 16-bit core): modular
 * exponentiation by square-and-multiply over a 15-bit modulus, built on
 * the shared 16x16->32 multiply helper plus a shift-subtract reduction
 * — the same call-heavy structure the original's bignum kernel has.
 */

#include <sstream>

#include "workloads/workload.hh"

namespace swapram::workloads {

namespace {

// p = 151, q = 211 -> n = 31861 (fits in 15 bits), phi = 31500.
// e = 17, messages below n.
constexpr std::uint16_t kModulus = 31861;
constexpr std::uint16_t kExponent = 17;
constexpr int kMessages = 24;

std::uint16_t
modmul(std::uint16_t a, std::uint16_t b, std::uint16_t n)
{
    std::uint32_t p = static_cast<std::uint32_t>(a) * b;
    return static_cast<std::uint16_t>(p % n);
}

std::uint16_t
modexp(std::uint16_t m, std::uint16_t e, std::uint16_t n)
{
    std::uint16_t result = 1;
    std::uint16_t base = static_cast<std::uint16_t>(m % n);
    while (e) {
        if (e & 1)
            result = modmul(result, base, n);
        base = modmul(base, base, n);
        e >>= 1;
    }
    return result;
}

} // namespace

Workload
makeRsa()
{
    // Golden model: encrypt a deterministic message sequence.
    std::uint16_t sum = 0;
    std::uint16_t m = 0x2F1;
    for (int i = 0; i < kMessages; ++i) {
        m = static_cast<std::uint16_t>((m * 13 + 7) % kModulus);
        std::uint16_t c = modexp(m, kExponent, kModulus);
        sum = static_cast<std::uint16_t>(sum ^ c);
        sum = static_cast<std::uint16_t>((sum << 3) | (sum >> 13));
    }

    std::ostringstream os;
    os << R"(
; ---- RSA (modexp) benchmark ----
        .text

; rsa_modmul: R12 = (R12 * R13) mod )" << kModulus << R"(.
; The 32-bit product is accumulated in memory words, the way compiled
; multi-precision code holds its limbs (in FRAM under the unified
; memory model), then reduced by a 16-step shift-subtract.
; Clobbers R11, R13-R15.
        .func rsa_modmul
        ; inline 16x16 -> 32 multiply into &rsa_plo / &rsa_phi
        MOV R12, &rsa_aa
        CLR &rsa_ab
        MOV R13, R11
        CLR &rsa_plo
        CLR &rsa_phi
rmm_mul_loop:
        TST R11
        JZ rmm_mul_done
        BIT #1, R11
        JZ rmm_mul_skip
        MOV &rsa_aa, R14
        MOV &rsa_ab, R15
        ADD R14, &rsa_plo
        ADDC R15, &rsa_phi
rmm_mul_skip:
        RLA &rsa_aa
        RLC &rsa_ab
        CLRC
        RRC R11
        JMP rmm_mul_loop
rmm_mul_done:
        MOV &rsa_plo, R12
        ; reduce: rem = hi, run 16 steps shifting in lo bits
        MOV &rsa_phi, R14       ; rem (hi word)
        ; first reduce the high word itself
        CMP #)" << kModulus << R"(, R14
        JLO rmm_hi_ok
rmm_hi_red:
        SUB #)" << kModulus << R"(, R14
        CMP #)" << kModulus << R"(, R14
        JHS rmm_hi_red
rmm_hi_ok:
        MOV #16, R15
rmm_loop:
        RLA R12                 ; C <- next lo bit
        RLC R14                 ; rem = rem<<1 | bit
        JC rmm_wrap             ; rem overflowed 16 bits: subtract
        CMP #)" << kModulus << R"(, R14
        JLO rmm_next
rmm_wrap:
        SUB #)" << kModulus << R"(, R14
rmm_next:
        DEC R15
        JNZ rmm_loop
        MOV R14, R12
        RET
        .endfunc

; rsa_modexp: R12 = (R12 ^ R13) mod n, square and multiply.
        .func rsa_modexp
        PUSH R10
        PUSH R9
        PUSH R8
        MOV R13, R8             ; exponent
        MOV R12, R9             ; base (already < n)
        MOV #1, R10             ; result
rme_loop:
        TST R8
        JZ rme_done
        BIT #1, R8
        JZ rme_sq
        MOV R10, R12
        MOV R9, R13
        CALL #rsa_modmul
        MOV R12, R10
rme_sq:
        MOV R9, R12
        MOV R9, R13
        CALL #rsa_modmul
        MOV R12, R9
        CLRC
        RRC R8
        JMP rme_loop
rme_done:
        MOV R10, R12
        POP R8
        POP R9
        POP R10
        RET
        .endfunc

; rsa_next_msg: m = (m*13 + 7) mod n, stored in &rsa_m, returned in R12.
        .func rsa_next_msg
        MOV &rsa_m, R12
        MOV #13, R13
        CALL #__umul32
        ; product hi:lo in R13:R12; add 7
        ADD #7, R12
        ADC R13
        ; mod n via rsa-style reduction: hi is tiny (m*13 < 2^20)
        MOV R13, R14
rnm_hi:
        TST R14
        JZ rnm_lo
        ; fold one high bit at a time: (hi:lo) -= n<<k ... simple loop:
        SUB #)" << kModulus << R"(, R12
        SBC R13
        MOV R13, R14
        JMP rnm_hi
rnm_lo:
        CMP #)" << kModulus << R"(, R12
        JLO rnm_done
        SUB #)" << kModulus << R"(, R12
        JMP rnm_lo
rnm_done:
        MOV R12, &rsa_m
        RET
        .endfunc

        .func main
        PUSH R10
        PUSH R9
        MOV #0x2F1, R15
        MOV R15, &rsa_m
        CLR R9                  ; checksum
        MOV #)" << kMessages << R"(, R10
rsam_loop:
        CALL #rsa_next_msg
        MOV #)" << kExponent << R"(, R13
        CALL #rsa_modexp
        XOR R12, R9
        ; rotate left 3
        MOV #3, R14
rsam_rot:
        RLA R9
        ADC R9
        DEC R14
        JNZ rsam_rot
        DEC R10
        JNZ rsam_loop
        MOV R9, R12
        MOV R12, &bench_result
        POP R9
        POP R10
        RET
        .endfunc

        .data
        .align 2
rsa_m:   .word 0
rsa_aa:  .word 0
rsa_ab:  .word 0
rsa_plo: .word 0
rsa_phi: .word 0
bench_result: .word 0
)";

    Workload w;
    w.name = "rsa";
    w.display = "RSA";
    w.description = "square-and-multiply modular exponentiation";
    w.source = os.str();
    w.expected = sum;
    return w;
}

} // namespace swapram::workloads
