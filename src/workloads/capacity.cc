/**
 * @file
 * Capacity-pressure workloads (ISSUE 7): scaled-up variants of the
 * arith, crc, and rc4 benchmarks whose working sets exceed the default
 * 4 KiB SRAM, plus a pathological ping-pong thrasher. They drive the
 * SwapRAM eviction path (the classic nine all fit comfortably, so the
 * pre-eviction runtime never hit the blocked-scan case) and the
 * data-side pool:
 *
 *  - arith_big: six generated straight-line op-chain functions of
 *    ~240 ops each (~5 KiB of code) called round-robin. At 4 KiB the
 *    placement scan wraps onto resident functions every few calls.
 *  - crc_big: eight unrolled-by-32 table-driven CRC variants
 *    (~720 bytes each, ~5.8 KiB total) chained over one message.
 *  - rc4_big: a 6 KiB .data message processed in 256-byte tiles
 *    through the __data_swap_in/__data_swap_out API (pool: 512 B).
 *    Identity shims are embedded so baseline/block run unchanged.
 *  - pingpong: two ~2.2 KiB functions called alternately — with
 *    eviction each call evicts the other; without it, the runtime
 *    goes quiet after the first wrap and every call runs from FRAM.
 *
 * All generated constants are >= 256 so no immediate collapses into
 * the MSP430 constant generator (op sizes stay deterministic).
 */

#include <sstream>

#include "support/rng.hh"
#include "workloads/workload.hh"

namespace swapram::workloads {

namespace {

/** One straight-line op on R12; golden semantics are uint16. */
struct ChainOp {
    enum Kind { Add, Xor, Swpb } kind;
    std::uint16_t c = 0; // immediate (Add/Xor), >= 256
};

std::vector<ChainOp>
makeChain(support::Rng &rng, int n_ops)
{
    std::vector<ChainOp> ops(n_ops);
    for (ChainOp &op : ops) {
        unsigned k = rng.below(8);
        op.kind = k < 3 ? ChainOp::Add : k < 6 ? ChainOp::Xor
                                               : ChainOp::Swpb;
        op.c = static_cast<std::uint16_t>(256 + (rng.word() & 0x3FFF));
    }
    return ops;
}

std::uint16_t
applyChain(const std::vector<ChainOp> &ops, std::uint16_t x)
{
    for (const ChainOp &op : ops) {
        switch (op.kind) {
          case ChainOp::Add:
            x = static_cast<std::uint16_t>(x + op.c);
            break;
          case ChainOp::Xor:
            x = static_cast<std::uint16_t>(x ^ op.c);
            break;
          case ChainOp::Swpb:
            x = static_cast<std::uint16_t>((x << 8) | (x >> 8));
            break;
        }
    }
    return x;
}

void
emitChainFunc(std::ostream &os, const std::string &name,
              const std::vector<ChainOp> &ops)
{
    os << "        .func " << name << "\n";
    for (const ChainOp &op : ops) {
        switch (op.kind) {
          case ChainOp::Add:
            os << "        ADD #" << op.c << ", R12\n";
            break;
          case ChainOp::Xor:
            os << "        XOR #" << op.c << ", R12\n";
            break;
          case ChainOp::Swpb:
            os << "        SWPB R12\n";
            break;
        }
    }
    os << "        RET\n        .endfunc\n\n";
}

/** Round-robin driver shared by arith_big and pingpong: per rep, seed
 *  R12 from R9, call every chain function, fold the rep counter in. */
void
emitChainMain(std::ostream &os, const std::string &prefix, int reps,
              std::uint16_t seed,
              const std::vector<std::string> &funcs)
{
    os << "        .func main\n"
          "        PUSH R10\n"
          "        PUSH R9\n"
          "        MOV #" << reps << ", R10\n"
          "        MOV #" << seed << ", R9\n"
       << prefix << "_rep:\n"
          "        TST R10\n"
          "        JZ " << prefix << "_done\n"
          "        MOV R9, R12\n";
    for (const std::string &f : funcs)
        os << "        CALL #" << f << "\n";
    os << "        XOR R10, R12\n"
          "        MOV R12, R9\n"
          "        DEC R10\n"
          "        JMP " << prefix << "_rep\n"
       << prefix << "_done:\n"
          "        MOV R9, R12\n"
          "        MOV R12, &bench_result\n"
          "        POP R9\n"
          "        POP R10\n"
          "        RET\n"
          "        .endfunc\n\n"
          "        .data\n"
          "        .align 2\n"
          "bench_result: .word 0\n";
}

std::uint16_t
chainGolden(const std::vector<std::vector<ChainOp>> &chains, int reps,
            std::uint16_t seed)
{
    std::uint16_t x = seed;
    for (int r = reps; r >= 1; --r) {
        for (const auto &chain : chains)
            x = applyChain(chain, x);
        x = static_cast<std::uint16_t>(x ^ r);
    }
    return x;
}

} // namespace

Workload
makeArithBig()
{
    constexpr int kFuncs = 6;
    constexpr int kOps = 240;
    constexpr int kReps = 20;
    constexpr std::uint16_t kSeed = 0x5A17;

    support::Rng rng(0xAB16'0001);
    std::vector<std::vector<ChainOp>> chains;
    std::vector<std::string> names;
    std::ostringstream os;
    os << "; ---- arith_big: generated op-chain capacity benchmark "
          "----\n        .text\n\n";
    for (int f = 0; f < kFuncs; ++f) {
        chains.push_back(makeChain(rng, kOps));
        names.push_back("ab_f" + std::to_string(f));
        emitChainFunc(os, names.back(), chains.back());
    }
    emitChainMain(os, "abm", kReps, kSeed, names);

    Workload w;
    w.name = "arith_big";
    w.display = "ArithBig";
    w.description = "six ~840-byte op-chain functions (~5 KiB code) "
                    "called round-robin";
    w.source = os.str();
    w.expected = chainGolden(chains, kReps, kSeed);
    return w;
}

Workload
makePingpong()
{
    constexpr int kOps = 620;
    constexpr int kReps = 24;
    constexpr std::uint16_t kSeed = 0x9106;

    support::Rng rng(0x9196'0002);
    std::vector<std::vector<ChainOp>> chains;
    std::vector<std::string> names;
    std::ostringstream os;
    os << "; ---- pingpong: two-function alternating thrasher ----\n"
          "        .text\n\n";
    for (int f = 0; f < 2; ++f) {
        chains.push_back(makeChain(rng, kOps));
        names.push_back("pp_f" + std::to_string(f));
        emitChainFunc(os, names.back(), chains.back());
    }
    emitChainMain(os, "ppm", kReps, kSeed, names);

    Workload w;
    w.name = "pingpong";
    w.display = "PingPong";
    w.description = "two ~2.2 KiB functions called alternately "
                    "(pathological eviction ping-pong at 4 KiB)";
    w.source = os.str();
    w.expected = chainGolden(chains, kReps, kSeed);
    return w;
}

Workload
makeCrcBig()
{
    constexpr int kMsgLen = 192;
    constexpr int kUnroll = 32;
    constexpr int kVariants = 8;
    constexpr int kReps = 3;

    support::Rng rng(0xCBC6'0003);
    std::vector<std::uint8_t> msg(kMsgLen);
    for (auto &b : msg)
        b = rng.byte();
    std::vector<std::uint16_t> vconst(kVariants);
    for (auto &c : vconst)
        c = static_cast<std::uint16_t>(256 + (rng.word() & 0x3FFF));

    // Golden model: the variants compute the same CRC; each folds its
    // own constant into the chained value afterwards.
    std::uint16_t crc = 0xFFFF;
    for (int rep = 0; rep < kReps; ++rep) {
        for (int v = 0; v < kVariants; ++v) {
            for (std::uint8_t b : msg)
                crc = crcGoldenUpdate(crc, b);
            crc = static_cast<std::uint16_t>(crc ^ vconst[v]);
        }
    }

    std::ostringstream os;
    os << "; ---- crc_big: eight unrolled CRC-16/CCITT variants ----\n"
          "        .text\n\n";
    for (int v = 0; v < kVariants; ++v) {
        // cb_fN: R12 = crc(ptr R12, init R14) over kMsgLen bytes,
        // per-byte update unrolled by kUnroll (~720 bytes each).
        os << "; R12 = ptr, R14 = crc init; returns crc in R12\n"
              "        .func cb_f" << v << "\n"
              "        PUSH R10\n"
              "        MOV R12, R15\n"
              "        MOV R14, R12\n"
              "        MOV #" << kMsgLen / kUnroll << ", R10\n"
              "cb" << v << "_loop:\n";
        for (int u = 0; u < kUnroll; ++u) {
            os << "        MOV.B @R15+, R13\n"
                  "        MOV R12, R14\n"
                  "        SWPB R14\n"
                  "        MOV.B R14, R14\n"
                  "        XOR R13, R14\n"
                  "        RLA R14\n"
                  "        SWPB R12\n"
                  "        AND #0xFF00, R12\n"
                  "        XOR cb_tbl(R14), R12\n";
        }
        os << "        DEC R10\n"
              "        JNZ cb" << v << "_loop\n"
              "        POP R10\n"
              "        RET\n"
              "        .endfunc\n\n";
    }
    os << "        .func main\n"
          "        PUSH R10\n"
          "        PUSH R9\n"
          "        MOV #" << kReps << ", R10\n"
          "        MOV #0xFFFF, R9\n"
          "cbm_rep:\n"
          "        TST R10\n"
          "        JZ cbm_done\n";
    for (int v = 0; v < kVariants; ++v) {
        os << "        MOV #cb_msg, R12\n"
              "        MOV R9, R14\n"
              "        CALL #cb_f" << v << "\n"
              "        XOR #" << vconst[v] << ", R12\n"
              "        MOV R12, R9\n";
    }
    os << "        DEC R10\n"
          "        JMP cbm_rep\n"
          "cbm_done:\n"
          "        MOV R9, R12\n"
          "        MOV R12, &bench_result\n"
          "        POP R9\n"
          "        POP R10\n"
          "        RET\n"
          "        .endfunc\n\n"
          "        .const\n"
          "        .align 2\n"
          "cb_tbl:\n";
    for (int i = 0; i < 256; ++i) {
        if (i % 8 == 0)
            os << "        .word ";
        // tableEntry(i) == crcUpdate(0, i): idx = i, crc<<8 = 0.
        os << crcGoldenUpdate(0, static_cast<std::uint8_t>(i))
           << ((i % 8 == 7) ? "\n" : ", ");
    }
    os << "cb_msg:\n";
    for (int i = 0; i < kMsgLen; ++i) {
        if (i % 12 == 0)
            os << "        .byte ";
        os << static_cast<int>(msg[i])
           << ((i % 12 == 11 || i == kMsgLen - 1) ? "\n" : ", ");
    }
    os << "\n        .data\n"
          "        .align 2\n"
          "bench_result: .word 0\n";

    Workload w;
    w.name = "crc_big";
    w.display = "CrcBig";
    w.description = "eight ~720-byte unrolled CRC variants "
                    "(~5.8 KiB code) chained over a 192-byte message";
    w.source = os.str();
    w.expected = crc;
    return w;
}

Workload
makeRc4Big()
{
    constexpr int kMsgLen = 6144;
    constexpr int kTile = 256;
    constexpr int kKeyLen = 16;
    constexpr std::uint16_t kPool = 512;

    support::Rng rng(0x9C4B'0004);
    std::vector<std::uint8_t> key(kKeyLen);
    for (auto &b : key)
        b = rng.byte();
    std::vector<std::uint8_t> msg(kMsgLen);
    for (auto &b : msg)
        b = rng.byte();

    // Golden model: same cipher as rc4, but the stream indices reset
    // per 256-byte tile (one rcb_crypt call per tile).
    std::uint8_t S[256];
    for (int i = 0; i < 256; ++i)
        S[i] = static_cast<std::uint8_t>(i);
    std::uint8_t j = 0;
    for (int i = 0; i < 256; ++i) {
        j = static_cast<std::uint8_t>(j + S[i] + key[i % kKeyLen]);
        std::swap(S[i], S[j]);
    }
    std::uint16_t checksum = 0;
    std::vector<std::uint8_t> buf = msg;
    for (int pass = 0; pass < 2; ++pass) {
        for (int tile = 0; tile < kMsgLen / kTile; ++tile) {
            std::uint8_t i = 0, jj = 0;
            for (int k = 0; k < kTile; ++k) {
                i = static_cast<std::uint8_t>(i + 1);
                jj = static_cast<std::uint8_t>(jj + S[i]);
                std::swap(S[i], S[jj]);
                std::uint8_t ks =
                    S[static_cast<std::uint8_t>(S[i] + S[jj])];
                std::uint8_t c = static_cast<std::uint8_t>(
                    buf[tile * kTile + k] ^ ks);
                buf[tile * kTile + k] = c;
                checksum = static_cast<std::uint16_t>(checksum + c);
                checksum = static_cast<std::uint16_t>(
                    (checksum << 1) | (checksum >> 15));
            }
        }
    }

    std::ostringstream os;
    os << R"(
; ---- rc4_big: RC4 over a 6 KiB message, tiled through the data
; pool. Each 256-byte tile is swapped into SRAM, encrypted in place,
; and written back; the identity shims below make the same source run
; unchanged under baseline and the block cache (the SwapRAM pass
; retargets the calls to __swp_din/__swp_dout when a pool exists).
        .text

; __data_swap_in: R12 = home, R13 = even length; returns the address
; to operate on in R12 (identity: the home itself).
        .func __data_swap_in
        RET
        .endfunc

; __data_swap_out: R12 = home; write back and release (identity: the
; data never moved, so nothing to do).
        .func __data_swap_out
        RET
        .endfunc

; rcb_init: build the S permutation from the key. No args.
        .func rcb_init
        PUSH R10
        CLR R13
rbi_fill:
        MOV.B R13, rcb_s(R13)
        INC R13
        CMP #256, R13
        JNE rbi_fill
        CLR R13                 ; i
        CLR R14                 ; j
        CLR R15                 ; key index
rbi_ks:
        MOV.B rcb_s(R13), R12
        ADD R12, R14
        MOV.B rcb_key(R15), R10
        ADD R10, R14
        AND #0xFF, R14
        MOV.B rcb_s(R13), R12
        MOV.B rcb_s(R14), R10
        MOV.B R10, rcb_s(R13)
        MOV.B R12, rcb_s(R14)
        INC R15
        CMP #)" << kKeyLen << R"(, R15
        JNE rbi_nokey
        CLR R15
rbi_nokey:
        INC R13
        CMP #256, R13
        JNE rbi_ks
        POP R10
        RET
        .endfunc

; rcb_crypt: encrypt R14 bytes at R12 in place (stream indices reset
; per call), updating the rolling checksum in &rcb_sum.
        .func rcb_crypt
        PUSH R10
        PUSH R9
        PUSH R8
        MOV R12, R9             ; buffer pointer
        MOV R14, R10            ; remaining
        CLR R13                 ; i
        CLR R14                 ; j
rbc_loop:
        TST R10
        JZ rbc_done
        INC R13
        AND #0xFF, R13
        MOV.B rcb_s(R13), R12
        ADD R12, R14
        AND #0xFF, R14
        MOV.B rcb_s(R14), R15
        MOV.B R15, rcb_s(R13)
        MOV.B R12, rcb_s(R14)
        MOV.B rcb_s(R13), R15
        MOV.B rcb_s(R14), R8
        ADD R8, R15
        AND #0xFF, R15
        MOV.B rcb_s(R15), R15
        MOV.B @R9, R8
        XOR R15, R8
        MOV.B R8, 0(R9)
        INC R9
        MOV &rcb_sum, R15
        ADD R8, R15
        RLA R15
        ADC R15
        MOV R15, &rcb_sum
        DEC R10
        JMP rbc_loop
rbc_done:
        POP R8
        POP R9
        POP R10
        RET
        .endfunc

        .func main
        PUSH R10
        PUSH R9
        PUSH R8
        CLR R12
        MOV R12, &rcb_sum
        CALL #rcb_init
        MOV #2, R10             ; passes
rbm_pass:
        TST R10
        JZ rbm_done
        MOV #rcb_msg, R9        ; tile home pointer
        MOV #)" << kMsgLen / kTile << R"(, R8
rbm_tile:
        TST R8
        JZ rbm_pdone
        MOV R9, R12
        MOV #)" << kTile << R"(, R13
        CALL #__data_swap_in
        MOV #)" << kTile << R"(, R14
        CALL #rcb_crypt
        MOV R9, R12
        CALL #__data_swap_out
        ADD #)" << kTile << R"(, R9
        DEC R8
        JMP rbm_tile
rbm_pdone:
        DEC R10
        JMP rbm_pass
rbm_done:
        MOV &rcb_sum, R12
        MOV R12, &bench_result
        POP R8
        POP R9
        POP R10
        RET
        .endfunc

        .const
rcb_key:
)";
    for (int i = 0; i < kKeyLen; ++i) {
        if (i % 16 == 0)
            os << "        .byte ";
        os << static_cast<int>(key[i])
           << ((i % 16 == 15 || i == kKeyLen - 1) ? "\n" : ", ");
    }
    os << "\n        .data\nrcb_msg:\n";
    for (int i = 0; i < kMsgLen; ++i) {
        if (i % 16 == 0)
            os << "        .byte ";
        os << static_cast<int>(msg[i])
           << ((i % 16 == 15 || i == kMsgLen - 1) ? "\n" : ", ");
    }
    os << R"(
rcb_s:  .space 256
        .align 2
rcb_sum: .word 0
bench_result: .word 0
)";

    Workload w;
    w.name = "rc4_big";
    w.display = "Rc4Big";
    w.description = "RC4 over a 6 KiB message in 256-byte tiles "
                    "through the data-side pool";
    w.source = os.str();
    w.expected = checksum;
    w.data_pool_bytes = kPool;
    return w;
}

} // namespace swapram::workloads
