/**
 * @file
 * The Figure-1 arithmetic kernel: a straight-line ALU loop over a
 * word array with stores to a second array, used to compare the four
 * code/data placements (FRAM/SRAM x FRAM/SRAM). No function calls —
 * Figure 1 measures raw placement, not caching.
 */

#include <sstream>

#include "support/rng.hh"
#include "workloads/workload.hh"

namespace swapram::workloads {

namespace {
constexpr int kWords = 64;
constexpr int kReps = 100;
} // namespace

Workload
makeArith()
{
    support::Rng rng(0xA517);
    std::vector<std::uint16_t> arr(kWords);
    for (auto &w : arr)
        w = rng.word();

    std::vector<std::uint16_t> coeff(8);
    for (auto &c : coeff)
        c = rng.word();

    // Golden model (mirrors the assembly exactly).
    std::uint16_t sum = 0;
    for (int rep = 0; rep < kReps; ++rep) {
        for (std::uint16_t i = 0; i < kWords; ++i) {
            std::uint16_t x =
                static_cast<std::uint16_t>(arr[i] * 3 + 7);
            x ^= static_cast<std::uint16_t>(x >> 4);
            x = static_cast<std::uint16_t>(x + (x << 3));
            std::uint16_t y =
                static_cast<std::uint16_t>(x + coeff[i & 7]);
            y ^= static_cast<std::uint16_t>((y << 1) | (y >> 15));
            // arr2[i] = y (same every rep; memory state only)
            sum = static_cast<std::uint16_t>(sum + (y ^ i));
            sum = static_cast<std::uint16_t>((sum << 1) | (sum >> 15));
        }
    }

    std::ostringstream os;
    os << R"(
; ---- Figure-1 arithmetic kernel ----
        .text
        .func main
        PUSH R10
        PUSH R9
        PUSH R8
        CLR R15              ; checksum accumulator
        MOV #)" << kReps << R"(, R10
ar_rep:
        MOV #ar_src, R9
        MOV #)" << kWords << R"(, R8
        CLR R14              ; index
ar_loop:
        MOV @R9, R12
        MOV R12, R13
        RLA R13
        ADD R13, R12         ; x *= 3
        ADD #7, R12          ; x += 7
        MOV R12, R13         ; x ^= x >> 4
        CLRC
        RRC R13
        CLRC
        RRC R13
        CLRC
        RRC R13
        CLRC
        RRC R13
        XOR R13, R12
        MOV R12, R13         ; x += x << 3
        RLA R13
        RLA R13
        RLA R13
        ADD R13, R12
        MOV R14, R13         ; y = x + coeff[i & 7]
        AND #7, R13
        RLA R13
        ADD ar_coef(R13), R12
        MOV R12, R13         ; y ^= rotl1(y)
        RLA R13
        ADC R13
        XOR R13, R12
        MOV R12, ar_dst-ar_src(R9)
        XOR R14, R12
        ADD R12, R15
        RLA R15
        ADC R15
        INCD R9
        INC R14
        DEC R8
        JNZ ar_loop
        DEC R10
        JNZ ar_rep
        MOV R15, R12
        MOV R12, &bench_result
        POP R8
        POP R9
        POP R10
        RET
        .endfunc

        .data
        .align 2
ar_coef:
)";
    for (int i = 0; i < 8; ++i) {
        if (i == 0)
            os << "        .word ";
        os << coeff[i] << (i == 7 ? "\n" : ", ");
    }
    os << R"(ar_src:
)";
    for (int i = 0; i < kWords; ++i) {
        if (i % 8 == 0)
            os << "        .word ";
        os << arr[i] << ((i % 8 == 7 || i == kWords - 1) ? "\n" : ", ");
    }
    os << "ar_dst: .space " << 2 * kWords << R"(
        .align 2
bench_result: .word 0
)";

    Workload w;
    w.name = "arith";
    w.display = "ARITH";
    w.description = "Figure-1 placement kernel: ALU loop over arrays";
    w.source = os.str();
    w.expected = sum;
    return w;
}

} // namespace swapram::workloads
