/**
 * @file
 * Bitcount benchmark (MiBench2 "bitcnts"): counts set bits in a
 * pseudo-random stream using four different algorithms selected per
 * iteration. The original selects the counting function through a jump
 * table; per the paper (§4) the dispatch is a switch-style compare
 * chain because SwapRAM needs static call targets. Each call counts a
 * small batch of values, like the original's per-function iteration
 * loops.
 */

#include <sstream>

#include "workloads/workload.hh"

namespace swapram::workloads {

namespace {

constexpr int kOuter = 96; ///< batches of 4 values each
constexpr std::uint16_t kSeed = 0x1234;
constexpr std::uint16_t kStep = 0x9E37;

int
popcount16(std::uint16_t v)
{
    int n = 0;
    while (v) {
        v &= static_cast<std::uint16_t>(v - 1);
        ++n;
    }
    return n;
}

std::uint16_t
nextValue(std::uint16_t x)
{
    x = static_cast<std::uint16_t>((x << 3) | (x >> 13)); // rotl 3
    return static_cast<std::uint16_t>(x + kStep);
}

} // namespace

Workload
makeBitcount()
{
    // Golden model: every algorithm returns the same count, so the
    // dispatch selector does not affect the checksum.
    std::uint16_t x = kSeed;
    std::uint16_t total = 0;
    for (int it = 0; it < kOuter; ++it) {
        for (int k = 0; k < 4; ++k) {
            x = nextValue(x);
            total = static_cast<std::uint16_t>(total + popcount16(x));
        }
    }

    std::ostringstream os;
    os << R"(
; ---- bitcount benchmark ----
; Each bc_* function counts the bits of the four words in &bc_buf and
; returns the sum in R12.
        .text

        .func bc_shift
        PUSH R10
        CLR R12
        CLR R10
bcs_outer:
        MOV bc_buf(R10), R13
        MOV #16, R14
bcs_loop:
        CLRC
        RRC R13
        ADC R12
        DEC R14
        JNZ bcs_loop
        INCD R10
        CMP #8, R10
        JNE bcs_outer
        POP R10
        RET
        .endfunc

        .func bc_kernighan
        PUSH R10
        CLR R12
        CLR R10
bck_outer:
        MOV bc_buf(R10), R13
bck_loop:
        TST R13
        JZ bck_next
        MOV R13, R14
        DEC R14
        AND R14, R13
        INC R12
        JMP bck_loop
bck_next:
        INCD R10
        CMP #8, R10
        JNE bck_outer
        POP R10
        RET
        .endfunc

        .func bc_nibble
        PUSH R10
        CLR R12
        CLR R10
bcn_outer:
        MOV bc_buf(R10), R13
        MOV #4, R15
bcn_loop:
        MOV R13, R14
        AND #15, R14
        MOV.B bc_ntbl(R14), R14
        ADD R14, R12
        CLRC
        RRC R13
        CLRC
        RRC R13
        CLRC
        RRC R13
        CLRC
        RRC R13
        DEC R15
        JNZ bcn_loop
        INCD R10
        CMP #8, R10
        JNE bcn_outer
        POP R10
        RET
        .endfunc

        .func bc_byte
        PUSH R10
        CLR R12
        CLR R10
bcb_outer:
        MOV bc_buf(R10), R13
        MOV.B R13, R14
        MOV.B bc_btbl(R14), R14
        ADD R14, R12
        SWPB R13
        MOV.B R13, R14
        MOV.B bc_btbl(R14), R14
        ADD R14, R12
        INCD R10
        CMP #8, R10
        JNE bcb_outer
        POP R10
        RET
        .endfunc

        .func main
        PUSH R10
        PUSH R9
        PUSH R8
        MOV #)" << kSeed << R"(, R8
        CLR R9                  ; total
        MOV #)" << kOuter << R"(, R10
bcm_loop:
        ; fill bc_buf: x = rotl3(x) + step, four times
        CLR R14
bcm_gen:
        RLA R8
        ADC R8
        RLA R8
        ADC R8
        RLA R8
        ADC R8
        ADD #)" << kStep << R"(, R8
        MOV R8, bc_buf(R14)
        INCD R14
        CMP #8, R14
        JNE bcm_gen
        ; dispatch on the iteration counter & 3
        MOV R10, R13
        AND #3, R13
        CMP #0, R13
        JEQ bcm_s0
        CMP #1, R13
        JEQ bcm_s1
        CMP #2, R13
        JEQ bcm_s2
        CALL #bc_byte
        JMP bcm_acc
bcm_s0: CALL #bc_shift
        JMP bcm_acc
bcm_s1: CALL #bc_kernighan
        JMP bcm_acc
bcm_s2: CALL #bc_nibble
bcm_acc:
        ADD R12, R9
        DEC R10
        JNZ bcm_loop
        MOV R9, R12
        MOV R12, &bench_result
        POP R8
        POP R9
        POP R10
        RET
        .endfunc

        .const
bc_ntbl:
        .byte 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4
bc_btbl:
)";
    for (int i = 0; i < 256; ++i) {
        if (i % 16 == 0)
            os << "        .byte ";
        os << popcount16(static_cast<std::uint16_t>(i))
           << ((i % 16 == 15) ? "\n" : ", ");
    }
    os << R"(
        .data
        .align 2
bc_buf: .space 8
bench_result: .word 0
)";

    Workload w;
    w.name = "bitcount";
    w.display = "BIT";
    w.description = "bit counting with four algorithms over a "
                    "pseudo-random stream";
    w.source = os.str();
    w.expected = total;
    return w;
}

} // namespace swapram::workloads
