/**
 * @file
 * Dijkstra benchmark (MiBench2 "dijkstra"): single-source shortest
 * paths over a dense adjacency matrix, with min-vertex selection as a
 * separate function called per iteration (the original's dequeue()).
 */

#include <sstream>
#include <vector>

#include "support/rng.hh"
#include "workloads/workload.hh"

namespace swapram::workloads {

namespace {

constexpr int kNodes = 32;
constexpr std::uint16_t kInf = 0x7FFF;
constexpr int kSources = 4;

} // namespace

Workload
makeDijkstra()
{
    support::Rng rng(0xD1285, support::Rng::kLegacyBelow);
    // Byte weights; 0 means no edge.
    std::vector<std::uint8_t> adj(kNodes * kNodes, 0);
    for (int i = 0; i < kNodes; ++i) {
        for (int j = 0; j < kNodes; ++j) {
            if (i == j)
                continue;
            if (rng.below(100) < 35)
                adj[i * kNodes + j] =
                    static_cast<std::uint8_t>(1 + rng.below(50));
        }
    }

    // Golden model.
    auto run = [&](int src, std::vector<std::uint16_t> &dist) {
        std::vector<bool> visited(kNodes, false);
        dist.assign(kNodes, kInf);
        dist[src] = 0;
        for (int it = 0; it < kNodes; ++it) {
            int best = -1;
            std::uint16_t best_d = kInf;
            for (int v = 0; v < kNodes; ++v) {
                if (!visited[v] && dist[v] < best_d) {
                    best_d = dist[v];
                    best = v;
                }
            }
            if (best < 0)
                break;
            visited[best] = true;
            for (int v = 0; v < kNodes; ++v) {
                std::uint8_t w = adj[best * kNodes + v];
                if (w && !visited[v]) {
                    std::uint16_t nd =
                        static_cast<std::uint16_t>(dist[best] + w);
                    if (nd < dist[v])
                        dist[v] = nd;
                }
            }
        }
    };
    std::uint16_t sum = 0;
    for (int s = 0; s < kSources; ++s) {
        std::vector<std::uint16_t> dist;
        run(s * 7, dist);
        for (int v = 0; v < kNodes; ++v)
            sum = static_cast<std::uint16_t>(sum + dist[v] + v);
    }

    std::ostringstream s;
    s << R"(
; ---- dijkstra benchmark ----
        .text

; dij_min: R12 = index*2 of the unvisited vertex with least distance,
; or 0xFFFF when none remains. Clobbers R13-R15.
        .func dij_min
        MOV #0xFFFF, R12
        MOV #0x7FFF, R13
        CLR R14                 ; v*2
djm_loop:
        CMP #)" << (2 * kNodes) << R"(, R14
        JHS djm_done
        TST.B dij_vis(R14)
        JNZ djm_next
        MOV dij_dist(R14), R15
        CMP R13, R15            ; dist[v] - best
        JHS djm_next
        MOV R15, R13
        MOV R14, R12
djm_next:
        INCD R14
        JMP djm_loop
djm_done:
        RET
        .endfunc

; dij_relax: relax every edge out of vertex R12 (index*2).
; Clobbers R11, R13-R15.
        .func dij_relax
        PUSH R10
        PUSH R9
        PUSH R8
        MOV R12, R9             ; u*2
        MOV dij_dist(R9), R8    ; dist[u]
        ; row pointer = adj + (u * kNodes); u = R9/2
        MOV R9, R12
        CLRC
        RRC R12                 ; u
        MOV #)" << kNodes << R"(, R13
        CALL #__mulhi           ; R12 = u * kNodes
        ADD #dij_adj, R12
        MOV R12, R10            ; row pointer
        CLR R14                 ; v*2
djr_loop:
        CMP #)" << (2 * kNodes) << R"(, R14
        JHS djr_done
        MOV.B @R10+, R15        ; w = adj[u][v]
        TST R15
        JZ djr_next
        TST.B dij_vis(R14)
        JNZ djr_next
        ADD R8, R15             ; nd = dist[u] + w
        CMP dij_dist(R14), R15  ; nd - dist[v]
        JHS djr_next
        MOV R15, dij_dist(R14)
djr_next:
        INCD R14
        JMP djr_loop
djr_done:
        POP R8
        POP R9
        POP R10
        RET
        .endfunc

; dij_run: shortest paths from source vertex R12 (plain index).
        .func dij_run
        PUSH R10
        ; init dist = INF, vis = 0
        CLR R14
dji_init:
        MOV #0x7FFF, dij_dist(R14)
        MOV.B #0, dij_vis(R14)
        INCD R14
        CMP #)" << (2 * kNodes) << R"(, R14
        JNE dji_init
        RLA R12                 ; src*2
        MOV #0, dij_dist(R12)
        MOV #)" << kNodes << R"(, R10
djr_iter:
        TST R10
        JZ djr_exit
        CALL #dij_min
        CMP #0xFFFF, R12
        JEQ djr_exit
        MOV.B #1, dij_vis(R12)
        CALL #dij_relax
        DEC R10
        JMP djr_iter
djr_exit:
        POP R10
        RET
        .endfunc

        .func main
        PUSH R10
        PUSH R9
        PUSH R8
        CLR R9                  ; checksum
        CLR R8                  ; source counter
djm_main:
        CMP #)" << kSources << R"(, R8
        JHS djm_fin
        MOV R8, R12
        RLA R12
        RLA R12
        RLA R12
        SUB R8, R12             ; src = s*7
        CALL #dij_run
        ; sum += dist[v] + v for all v
        CLR R14
djm_sum:
        CMP #)" << (2 * kNodes) << R"(, R14
        JHS djm_snext
        ADD dij_dist(R14), R9
        MOV R14, R15
        CLRC
        RRC R15
        ADD R15, R9
        INCD R14
        JMP djm_sum
djm_snext:
        INC R8
        JMP djm_main
djm_fin:
        MOV R9, R12
        MOV R12, &bench_result
        POP R8
        POP R9
        POP R10
        RET
        .endfunc

        .const
dij_adj:
)";
    for (int i = 0; i < kNodes * kNodes; ++i) {
        if (i % 20 == 0)
            s << "        .byte ";
        s << static_cast<int>(adj[i])
          << ((i % 20 == 19 || i == kNodes * kNodes - 1) ? "\n" : ", ");
    }
    s << R"(
        .data
        .align 2
dij_dist: .space )" << (2 * kNodes) << R"(
dij_vis:  .space )" << (2 * kNodes) << R"(   ; byte flags, 2-byte stride
        .align 2
bench_result: .word 0
)";

    Workload w;
    w.name = "dijkstra";
    w.display = "DIJ";
    w.description = "dense-graph shortest paths from 4 sources";
    w.source = s.str();
    w.expected = sum;
    return w;
}

} // namespace swapram::workloads
