/**
 * @file
 * Benchmark workloads: MSP430 assembly ports of the nine MiBench2
 * programs the paper evaluates (Table 1), plus the Figure-1 arithmetic
 * kernel and a shared helper library (software multiply/divide,
 * memcpy/memset), all validated against native C++ golden models.
 *
 * Conventions (see DESIGN.md):
 *  - Each workload defines `.func main` which returns a 16-bit checksum
 *    in R12 and stores it to the .data word `bench_result`.
 *  - Data references use absolute (&symbol) or register-pointer
 *    addressing so functions are runtime-relocatable.
 *  - R4-R10 are callee-saved, R11-R15 caller-saved, args in R12-R15,
 *    return value in R12 (msp430-gcc convention).
 */

#ifndef SWAPRAM_WORKLOADS_WORKLOAD_HH
#define SWAPRAM_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

namespace swapram::workloads {

/** One benchmark: assembly source plus its golden checksum. */
struct Workload {
    std::string name;        ///< short id: "crc", "aes", ...
    std::string display;     ///< paper's label: "CRC", "AES", ...
    std::string description; ///< one-line summary
    std::string source;      ///< assembly (no startup; defines main)
    std::uint16_t expected = 0;      ///< golden model's checksum
    std::uint32_t stack_bytes = 256; ///< stack reservation

    /** Periodic timer interrupt the workload expects, in cycles
     *  (0 = none). The runner copies this into MachineConfig. */
    std::uint64_t timer_period_cycles = 0;

    /** Data-side SwapRAM pool the workload wants, in bytes (0 = none).
     *  The runner copies this into cache::Options::data_pool_bytes for
     *  SwapRAM runs unless the spec already configured a pool.
     *  Workloads that set it call `__data_swap_in`/`__data_swap_out`
     *  around large-buffer phases and must embed the identity shims so
     *  they still run under the other systems. */
    std::uint16_t data_pool_bytes = 0;
};

/** All nine paper benchmarks, in Table-1 order. */
const std::vector<Workload> &all();

/**
 * ISSUE-7 capacity-pressure set: scaled-up variants of existing
 * benchmarks whose code or data working set exceeds the default 4 KiB
 * SRAM, plus a pathological ping-pong thrasher. Kept out of all() so
 * the classic nine-workload matrices (and their golden expectations)
 * are untouched; the capacity sweep enumerates these explicitly.
 */
const std::vector<Workload> &capacity();

/** Lookup by short name across all() and capacity(); nullptr if
 *  unknown. */
const Workload *find(const std::string &name);

/** Shared helper library (software mul/div, memcpy, memset). */
std::string libSource();

// Individual factories (each embeds deterministic input data and
// computes the golden checksum natively).
Workload makeStringsearch();
Workload makeDijkstra();
Workload makeCrc();
Workload makeRc4();
Workload makeFft();
Workload makeAes();
Workload makeLzfx();
Workload makeBitcount();
Workload makeRsa();

/** The Figure-1 arithmetic kernel (not part of the nine). */
Workload makeArith();

// Capacity-pressure factories (ISSUE 7): working sets sized past the
// default 4 KiB SRAM so the SwapRAM eviction path is exercised.
Workload makeArithBig(); ///< ~5.3 KiB code: six generated op chains
Workload makeCrcBig();   ///< ~5.8 KiB code: eight unrolled CRC variants
Workload makeRc4Big();   ///< 6 KiB .data message tiled through the pool
Workload makePingpong(); ///< two huge functions called alternately

/** CRC workload's golden step (CRC-16/CCITT, table-driven), exposed so
 *  tests can pin it against the published check value. */
std::uint16_t crcGoldenUpdate(std::uint16_t crc, std::uint8_t byte);

} // namespace swapram::workloads

#endif // SWAPRAM_WORKLOADS_WORKLOAD_HH
