/**
 * @file
 * RC4 benchmark (MiBench2 "rc4"): key scheduling plus keystream
 * encryption of a message buffer, checksummed over the ciphertext.
 */

#include <sstream>

#include "support/rng.hh"
#include "workloads/workload.hh"

namespace swapram::workloads {

namespace {

constexpr int kMsgLen = 512;
constexpr int kKeyLen = 16;

} // namespace

Workload
makeRc4()
{
    support::Rng rng(0x9C41);
    std::vector<std::uint8_t> key(kKeyLen);
    for (auto &b : key)
        b = rng.byte();
    std::vector<std::uint8_t> msg(kMsgLen);
    for (auto &b : msg)
        b = rng.byte();

    // Golden model.
    std::uint8_t S[256];
    for (int i = 0; i < 256; ++i)
        S[i] = static_cast<std::uint8_t>(i);
    std::uint8_t j = 0;
    for (int i = 0; i < 256; ++i) {
        j = static_cast<std::uint8_t>(j + S[i] + key[i % kKeyLen]);
        std::swap(S[i], S[j]);
    }
    // Two in-place passes (the second encrypts the ciphertext), like
    // the asm's two rc4_crypt calls. The PRG stream index resets per
    // call in both.
    std::uint16_t checksum = 0;
    std::vector<std::uint8_t> buf = msg;
    for (int pass = 0; pass < 2; ++pass) {
        std::uint8_t i = 0, jj = 0;
        for (int k = 0; k < kMsgLen; ++k) {
            i = static_cast<std::uint8_t>(i + 1);
            jj = static_cast<std::uint8_t>(jj + S[i]);
            std::swap(S[i], S[jj]);
            std::uint8_t ks =
                S[static_cast<std::uint8_t>(S[i] + S[jj])];
            std::uint8_t c = static_cast<std::uint8_t>(buf[k] ^ ks);
            buf[k] = c;
            checksum = static_cast<std::uint16_t>(checksum + c);
            checksum =
                static_cast<std::uint16_t>((checksum << 1) |
                                           (checksum >> 15));
        }
    }

    std::ostringstream os;
    os << R"(
; ---- RC4 benchmark ----
        .text

; rc4_init: build the S permutation from the key. No args.
        .func rc4_init
        PUSH R10
        ; S[i] = i
        CLR R13
rci_fill:
        MOV.B R13, rc4_s(R13)
        INC R13
        CMP #256, R13
        JNE rci_fill
        ; key schedule
        CLR R13                 ; i
        CLR R14                 ; j
        CLR R15                 ; key index
rci_ks:
        MOV.B rc4_s(R13), R12
        ADD R12, R14
        MOV.B rc4_key(R15), R10
        ADD R10, R14
        AND #0xFF, R14
        ; swap S[i], S[j]
        MOV.B rc4_s(R13), R12
        MOV.B rc4_s(R14), R10
        MOV.B R10, rc4_s(R13)
        MOV.B R12, rc4_s(R14)
        INC R15
        CMP #)" << kKeyLen << R"(, R15
        JNE rci_nokey
        CLR R15
rci_nokey:
        INC R13
        CMP #256, R13
        JNE rci_ks
        POP R10
        RET
        .endfunc

; rc4_crypt: encrypt R14 bytes at R12 in place, updating the rolling
; checksum in &rc4_sum.
        .func rc4_crypt
        PUSH R10
        PUSH R9
        PUSH R8
        MOV R12, R9             ; buffer pointer
        MOV R14, R10            ; remaining
        CLR R13                 ; i
        CLR R14                 ; j
rcc_loop:
        TST R10
        JZ rcc_done
        INC R13
        AND #0xFF, R13
        MOV.B rc4_s(R13), R12
        ADD R12, R14
        AND #0xFF, R14
        ; swap
        MOV.B rc4_s(R14), R15
        MOV.B R15, rc4_s(R13)
        MOV.B R12, rc4_s(R14)
        ; keystream byte S[(S[i]+S[j]) & 0xFF]
        MOV.B rc4_s(R13), R15
        MOV.B rc4_s(R14), R8
        ADD R8, R15
        AND #0xFF, R15
        MOV.B rc4_s(R15), R15
        ; c = *p ^ ks; *p = c
        MOV.B @R9, R8
        XOR R15, R8
        MOV.B R8, 0(R9)
        INC R9
        ; checksum += c; rotate left 1
        MOV &rc4_sum, R15
        ADD R8, R15
        RLA R15
        ADC R15
        MOV R15, &rc4_sum
        DEC R10
        JMP rcc_loop
rcc_done:
        POP R8
        POP R9
        POP R10
        RET
        .endfunc

        .func main
        CLR R12
        MOV R12, &rc4_sum
        CALL #rc4_init
        MOV #rc4_msg, R12
        MOV #)" << kMsgLen << R"(, R14
        CALL #rc4_crypt
        MOV #rc4_msg, R12
        MOV #)" << kMsgLen << R"(, R14
        CALL #rc4_crypt
        MOV &rc4_sum, R12
        MOV R12, &bench_result
        RET
        .endfunc

        .const
rc4_key:
)";
    for (int i = 0; i < kKeyLen; ++i) {
        if (i % 16 == 0)
            os << "        .byte ";
        os << static_cast<int>(key[i])
           << ((i % 16 == 15 || i == kKeyLen - 1) ? "\n" : ", ");
    }
    os << "\n        .data\nrc4_msg:\n";
    for (int i = 0; i < kMsgLen; ++i) {
        if (i % 16 == 0)
            os << "        .byte ";
        os << static_cast<int>(msg[i])
           << ((i % 16 == 15 || i == kMsgLen - 1) ? "\n" : ", ");
    }
    os << R"(
rc4_s:  .space 256
        .align 2
rc4_sum: .word 0
bench_result: .word 0
)";

    Workload w;
    w.name = "rc4";
    w.display = "RC4";
    w.description = "RC4 key schedule + two keystream passes over "
                    "512 bytes";
    w.source = os.str();
    w.expected = checksum;
    return w;
}

} // namespace swapram::workloads
