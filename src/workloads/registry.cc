/**
 * @file
 * Workload registry: constructs each benchmark once (building inputs
 * and golden checksums) and caches the set.
 */

#include "workloads/workload.hh"

namespace swapram::workloads {

const std::vector<Workload> &
all()
{
    static const std::vector<Workload> workloads = [] {
        std::vector<Workload> v;
        v.push_back(makeStringsearch());
        v.push_back(makeDijkstra());
        v.push_back(makeCrc());
        v.push_back(makeRc4());
        v.push_back(makeFft());
        v.push_back(makeAes());
        v.push_back(makeLzfx());
        v.push_back(makeBitcount());
        v.push_back(makeRsa());
        return v;
    }();
    return workloads;
}

const std::vector<Workload> &
capacity()
{
    static const std::vector<Workload> workloads = [] {
        std::vector<Workload> v;
        v.push_back(makeArithBig());
        v.push_back(makeCrcBig());
        v.push_back(makeRc4Big());
        v.push_back(makePingpong());
        return v;
    }();
    return workloads;
}

const Workload *
find(const std::string &name)
{
    for (const Workload &w : all()) {
        if (w.name == name)
            return &w;
    }
    for (const Workload &w : capacity()) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

} // namespace swapram::workloads
