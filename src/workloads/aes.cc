/**
 * @file
 * AES benchmark (MiBench2 "aes"): AES-128 ECB encryption of eight
 * blocks. Key expansion, SubBytes+ShiftRows, MixColumns, and
 * AddRoundKey are separate functions called per round — the paper's
 * worst-case benchmark, whose call pattern causes SwapRAM thrashing
 * (§5.4). The xtime helper is itself a function, multiplying the call
 * rate further.
 *
 * The golden model is a straight FIPS-197 implementation (checked
 * against the standard test vector in tests/workloads_test.cc).
 */

#include <array>
#include <sstream>

#include "support/rng.hh"
#include "workloads/workload.hh"

namespace swapram::workloads {

namespace {

constexpr int kBlocks = 8;

const std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67,
    0x2b, 0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59,
    0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7,
    0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1,
    0x71, 0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05,
    0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83,
    0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29,
    0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa,
    0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c,
    0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc,
    0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19,
    0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee,
    0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4,
    0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6,
    0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70,
    0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9,
    0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e,
    0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf, 0x8c, 0xa1,
    0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0,
    0x54, 0xbb, 0x16,
};

std::uint8_t
xtime(std::uint8_t a)
{
    return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1B : 0));
}

void
expandKey(const std::uint8_t key[16], std::uint8_t rk[176])
{
    for (int i = 0; i < 16; ++i)
        rk[i] = key[i];
    std::uint8_t rcon = 1;
    for (int i = 16; i < 176; i += 4) {
        std::uint8_t t[4] = {rk[i - 4], rk[i - 3], rk[i - 2], rk[i - 1]};
        if (i % 16 == 0) {
            std::uint8_t t0 = t[0];
            t[0] = static_cast<std::uint8_t>(kSbox[t[1]] ^ rcon);
            t[1] = kSbox[t[2]];
            t[2] = kSbox[t[3]];
            t[3] = kSbox[t0];
            rcon = xtime(rcon);
        }
        for (int j = 0; j < 4; ++j)
            rk[i + j] = static_cast<std::uint8_t>(rk[i - 16 + j] ^ t[j]);
    }
}

void
encryptBlock(std::uint8_t st[16], const std::uint8_t rk[176])
{
    auto add_rk = [&](int round) {
        for (int i = 0; i < 16; ++i)
            st[i] ^= rk[16 * round + i];
    };
    auto sub_shift = [&] {
        std::uint8_t tmp[16];
        for (int c = 0; c < 4; ++c) {
            for (int r = 0; r < 4; ++r)
                tmp[r + 4 * c] = kSbox[st[r + 4 * ((c + r) % 4)]];
        }
        for (int i = 0; i < 16; ++i)
            st[i] = tmp[i];
    };
    auto mix = [&] {
        for (int c = 0; c < 4; ++c) {
            std::uint8_t a0 = st[4 * c], a1 = st[4 * c + 1];
            std::uint8_t a2 = st[4 * c + 2], a3 = st[4 * c + 3];
            std::uint8_t t =
                static_cast<std::uint8_t>(a0 ^ a1 ^ a2 ^ a3);
            st[4 * c] ^= static_cast<std::uint8_t>(
                t ^ xtime(static_cast<std::uint8_t>(a0 ^ a1)));
            st[4 * c + 1] ^= static_cast<std::uint8_t>(
                t ^ xtime(static_cast<std::uint8_t>(a1 ^ a2)));
            st[4 * c + 2] ^= static_cast<std::uint8_t>(
                t ^ xtime(static_cast<std::uint8_t>(a2 ^ a3)));
            st[4 * c + 3] ^= static_cast<std::uint8_t>(
                t ^ xtime(static_cast<std::uint8_t>(a3 ^ a0)));
        }
    };
    add_rk(0);
    for (int round = 1; round <= 9; ++round) {
        sub_shift();
        mix();
        add_rk(round);
    }
    sub_shift();
    add_rk(10);
}

} // namespace

/** Golden AES-128 single-block encryption (exposed for the FIPS-vector
 *  unit test). */
void
aesGoldenEncrypt(const std::uint8_t key[16], const std::uint8_t in[16],
                 std::uint8_t out[16])
{
    std::uint8_t rk[176];
    expandKey(key, rk);
    for (int i = 0; i < 16; ++i)
        out[i] = in[i];
    encryptBlock(out, rk);
}

Workload
makeAes()
{
    support::Rng rng(0xAE5);
    std::uint8_t key[16];
    for (auto &b : key)
        b = rng.byte();
    std::vector<std::uint8_t> msg(16 * kBlocks);
    for (auto &b : msg)
        b = rng.byte();

    // Golden model: encrypt each block, roll the ciphertext into a
    // checksum.
    std::uint8_t rk[176];
    expandKey(key, rk);
    std::uint16_t sum = 0;
    for (int b = 0; b < kBlocks; ++b) {
        std::uint8_t st[16];
        for (int i = 0; i < 16; ++i)
            st[i] = msg[16 * b + i];
        encryptBlock(st, rk);
        for (int i = 0; i < 16; ++i) {
            sum = static_cast<std::uint16_t>(sum + st[i]);
            sum = static_cast<std::uint16_t>((sum << 1) | (sum >> 15));
        }
    }

    std::ostringstream os;
    os << R"(
; ---- AES-128 benchmark ----
        .text

; aes_xt: R12 = xtime(R12) in GF(2^8). Byte in, byte out.
        .func aes_xt
        RLA R12
        BIT #0x100, R12
        JZ axt_done
        XOR #0x11B, R12
axt_done:
        RET
        .endfunc

; aes_expand: expand &aes_key into &aes_rk (176 bytes).
        .func aes_expand
        PUSH R10
        PUSH R9
        ; copy the key
        CLR R14
axe_copy:
        MOV.B aes_key(R14), R15
        MOV.B R15, aes_rk(R14)
        INC R14
        CMP #16, R14
        JNE axe_copy
        MOV #1, R9              ; rcon
        MOV #16, R10            ; i
axe_loop:
        CMP #176, R10
        JHS axe_done
        ; t = rk[i-4 .. i-1]
        MOV R10, R15
        SUB #4, R15
        MOV.B aes_rk(R15), R14
        MOV.B R14, &aes_t0
        INC R15
        MOV.B aes_rk(R15), R14
        MOV.B R14, &aes_t1
        INC R15
        MOV.B aes_rk(R15), R14
        MOV.B R14, &aes_t2
        INC R15
        MOV.B aes_rk(R15), R14
        MOV.B R14, &aes_t3
        ; every 16 bytes: rotate, substitute, add rcon
        MOV R10, R14
        AND #15, R14
        JNZ axe_notr
        MOV.B &aes_t0, R13      ; saved t0
        MOV.B &aes_t1, R14
        MOV.B aes_sbox(R14), R15
        XOR R9, R15
        MOV.B R15, &aes_t0
        MOV.B &aes_t2, R14
        MOV.B aes_sbox(R14), R15
        MOV.B R15, &aes_t1
        MOV.B &aes_t3, R14
        MOV.B aes_sbox(R14), R15
        MOV.B R15, &aes_t2
        MOV R13, R14
        MOV.B aes_sbox(R14), R15
        MOV.B R15, &aes_t3
        MOV R9, R12
        CALL #aes_xt
        MOV R12, R9
axe_notr:
        ; rk[i+j] = rk[i-16+j] ^ t[j]
)";
    for (int j = 0; j < 4; ++j) {
        os << "        MOV R10, R15\n"
              "        SUB #" << (16 - j) << ", R15\n"
              "        MOV.B aes_rk(R15), R14\n"
              "        XOR.B &aes_t" << j << ", R14\n"
              "        MOV R10, R15\n";
        if (j > 0)
            os << "        ADD #" << j << ", R15\n";
        os << "        MOV.B R14, aes_rk(R15)\n";
    }
    os << R"(        ADD #4, R10
        JMP axe_loop
axe_done:
        POP R9
        POP R10
        RET
        .endfunc

; aes_addrk: state ^= round key; R12 = round * 16 (byte offset).
        .func aes_addrk
        CLR R13
aak_loop:
        MOV R12, R15
        ADD R13, R15
        MOV.B aes_rk(R15), R14
        XOR.B R14, aes_st(R13)
        INC R13
        CMP #16, R13
        JNE aak_loop
        RET
        .endfunc

; aes_subshift: SubBytes + ShiftRows into the state (via a temp).
        .func aes_subshift
)";
    for (int c = 0; c < 4; ++c) {
        for (int r = 0; r < 4; ++r) {
            int dst = r + 4 * c;
            int src = r + 4 * ((c + r) % 4);
            os << "        MOV.B &aes_st+" << src << ", R14\n"
               << "        MOV.B aes_sbox(R14), R15\n"
               << "        MOV.B R15, &aes_tb+" << dst << "\n";
        }
    }
    for (int k = 0; k < 16; k += 2)
        os << "        MOV &aes_tb+" << k << ", &aes_st+" << k << "\n";
    os << R"(        RET
        .endfunc

; aes_mixcol: MixColumns over the state, one column per iteration.
        .func aes_mixcol
        PUSH R10
        CLR R10                 ; column byte offset (0, 4, 8, 12)
amc_loop:
        ; load the column
        MOV R10, R15
        MOV.B aes_st(R15), R14
        MOV.B R14, &aes_a0
        INC R15
        MOV.B aes_st(R15), R14
        MOV.B R14, &aes_a1
        INC R15
        MOV.B aes_st(R15), R14
        MOV.B R14, &aes_a2
        INC R15
        MOV.B aes_st(R15), R14
        MOV.B R14, &aes_a3
        ; t = a0^a1^a2^a3
        MOV.B &aes_a0, R14
        XOR.B &aes_a1, R14
        XOR.B &aes_a2, R14
        XOR.B &aes_a3, R14
        MOV.B R14, &aes_tt
)";
    for (int i = 0; i < 4; ++i) {
        os << "        MOV.B &aes_a" << i << ", R12\n"
           << "        XOR.B &aes_a" << ((i + 1) % 4) << ", R12\n"
           << "        CALL #aes_xt\n"
           << "        XOR.B &aes_tt, R12\n"
           << "        MOV R10, R15\n";
        if (i > 0)
            os << "        ADD #" << i << ", R15\n";
        os << "        XOR.B R12, aes_st(R15)\n";
    }
    os << R"(        ADD #4, R10
        CMP #16, R10
        JNE amc_loop
        POP R10
        RET
        .endfunc

; aes_encrypt: encrypt &aes_st in place with the expanded key.
        .func aes_encrypt
        PUSH R10
        CLR R12
        CALL #aes_addrk
        MOV #16, R10            ; round * 16
aen_loop:
        CALL #aes_subshift
        CALL #aes_mixcol
        MOV R10, R12
        CALL #aes_addrk
        ADD #16, R10
        CMP #160, R10
        JNE aen_loop
        CALL #aes_subshift
        MOV #160, R12
        CALL #aes_addrk
        POP R10
        RET
        .endfunc

        .func main
        PUSH R10
        PUSH R9
        CALL #aes_expand
        CLR R9                  ; checksum
        CLR R10                 ; block byte offset
aem_loop:
        CMP #)" << (16 * kBlocks) << R"(, R10
        JHS aem_done
        ; copy plaintext block into the state
        CLR R14
aem_copy:
        MOV R10, R15
        ADD R14, R15
        MOV.B aes_msg(R15), R13
        MOV.B R13, aes_st(R14)
        INC R14
        CMP #16, R14
        JNE aem_copy
        CALL #aes_encrypt
        ; fold ciphertext into the checksum
        CLR R14
aem_sum:
        MOV.B aes_st(R14), R15
        ADD R15, R9
        RLA R9
        ADC R9
        INC R14
        CMP #16, R14
        JNE aem_sum
        ADD #16, R10
        JMP aem_loop
aem_done:
        MOV R9, R12
        MOV R12, &bench_result
        POP R9
        POP R10
        RET
        .endfunc

        .const
aes_sbox:
)";
    for (int i = 0; i < 256; ++i) {
        if (i % 12 == 0)
            os << "        .byte ";
        os << static_cast<int>(kSbox[i])
           << ((i % 12 == 11 || i == 255) ? "\n" : ", ");
    }
    os << "aes_key:\n        .byte ";
    for (int i = 0; i < 16; ++i)
        os << static_cast<int>(key[i]) << (i == 15 ? "\n" : ", ");
    os << "aes_msg:\n";
    for (int i = 0; i < 16 * kBlocks; ++i) {
        if (i % 16 == 0)
            os << "        .byte ";
        os << static_cast<int>(msg[i])
           << ((i % 16 == 15 || i == 16 * kBlocks - 1) ? "\n" : ", ");
    }
    os << R"(
        .data
aes_rk: .space 176
        .align 2
aes_st: .space 16
aes_tb: .space 16
aes_t0: .space 1
aes_t1: .space 1
aes_t2: .space 1
aes_t3: .space 1
aes_a0: .space 1
aes_a1: .space 1
aes_a2: .space 1
aes_a3: .space 1
aes_tt: .space 1
        .align 2
bench_result: .word 0
)";

    Workload w;
    w.name = "aes";
    w.display = "AES";
    w.description = "AES-128 ECB over eight blocks, per-round function "
                    "calls";
    w.source = os.str();
    w.expected = sum;
    return w;
}

} // namespace swapram::workloads
