/**
 * @file
 * CRC benchmark (MiBench2 "crc"): table-driven CRC-16/CCITT, like the
 * original's crc_32 with its 256-entry lookup table, chained over the
 * message for several repetitions. Calls happen per block (the
 * original's per-byte update is a macro), matching the paper's +0.2%
 * cycle overhead for CRC.
 */

#include <sstream>

#include "support/rng.hh"
#include "workloads/workload.hh"

namespace swapram::workloads {

namespace {

constexpr int kMsgLen = 192;
constexpr int kReps = 32;

std::uint16_t
tableEntry(int index)
{
    std::uint16_t crc = static_cast<std::uint16_t>(index << 8);
    for (int bit = 0; bit < 8; ++bit) {
        if (crc & 0x8000)
            crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
        else
            crc = static_cast<std::uint16_t>(crc << 1);
    }
    return crc;
}

std::uint16_t
crcUpdate(std::uint16_t crc, std::uint8_t byte)
{
    std::uint8_t idx = static_cast<std::uint8_t>((crc >> 8) ^ byte);
    return static_cast<std::uint16_t>((crc << 8) ^ tableEntry(idx));
}

} // namespace

std::uint16_t
crcGoldenUpdate(std::uint16_t crc, std::uint8_t byte)
{
    return crcUpdate(crc, byte);
}

Workload
makeCrc()
{
    support::Rng rng(0xC4C1234);
    std::vector<std::uint8_t> msg(kMsgLen);
    for (auto &b : msg)
        b = rng.byte();

    // Golden model.
    std::uint16_t crc = 0xFFFF;
    for (int rep = 0; rep < kReps; ++rep) {
        for (std::uint8_t b : msg)
            crc = crcUpdate(crc, b);
    }

    std::ostringstream os;
    os << R"(
; ---- table-driven CRC-16/CCITT benchmark ----
        .text

; crc_block: R12 = crc(ptr R12, len R13, init R14); the per-byte
; table-lookup update is inline (a macro in the original).
        .func crc_block
        PUSH R10
        MOV R12, R15
        MOV R13, R10
        MOV R14, R12
crcb_byte:
        TST R10
        JZ crcb_done
        MOV.B @R15+, R13        ; byte
        MOV R12, R14
        SWPB R14
        MOV.B R14, R14          ; crc >> 8
        XOR R13, R14            ; table index
        RLA R14                 ; word offset
        SWPB R12
        AND #0xFF00, R12        ; crc << 8
        XOR crc_tbl(R14), R12
        DEC R10
        JMP crcb_byte
crcb_done:
        POP R10
        RET
        .endfunc

        .func main
        PUSH R10
        PUSH R9
        MOV #)" << kReps << R"(, R10
        MOV #0xFFFF, R9
crcm_loop:
        TST R10
        JZ crcm_done
        MOV #crc_msg, R12
        MOV #)" << kMsgLen << R"(, R13
        MOV R9, R14
        CALL #crc_block
        MOV R12, R9
        DEC R10
        JMP crcm_loop
crcm_done:
        MOV R9, R12
        MOV R12, &bench_result
        POP R9
        POP R10
        RET
        .endfunc

        .const
        .align 2
crc_tbl:
)";
    for (int i = 0; i < 256; ++i) {
        if (i % 8 == 0)
            os << "        .word ";
        os << tableEntry(i) << ((i % 8 == 7) ? "\n" : ", ");
    }
    os << "crc_msg:\n";
    for (int i = 0; i < kMsgLen; ++i) {
        if (i % 12 == 0)
            os << "        .byte ";
        os << static_cast<int>(msg[i]);
        os << ((i % 12 == 11 || i == kMsgLen - 1) ? "\n" : ", ");
    }
    os << R"(
        .data
        .align 2
bench_result: .word 0
)";

    Workload w;
    w.name = "crc";
    w.display = "CRC";
    w.description = "table-driven CRC-16/CCITT over a 192-byte message";
    w.source = os.str();
    w.expected = crc;
    return w;
}

} // namespace swapram::workloads
