/**
 * @file
 * Stringsearch benchmark (MiBench2 "stringsearch"): Boyer-Moore-
 * Horspool search of several patterns over a text buffer, with the
 * skip-table initialization and the scan loop as separate functions —
 * the same per-pattern call pattern as the original.
 */

#include <sstream>
#include <string>
#include <vector>

#include "support/rng.hh"
#include "workloads/workload.hh"

namespace swapram::workloads {

namespace {

constexpr int kTextLen = 896;

int
bmhSearch(const std::vector<std::uint8_t> &text,
          const std::string &pattern)
{
    const int n = static_cast<int>(text.size());
    const int m = static_cast<int>(pattern.size());
    std::uint8_t skip[256];
    for (int i = 0; i < 256; ++i)
        skip[i] = static_cast<std::uint8_t>(m);
    for (int i = 0; i < m - 1; ++i)
        skip[static_cast<std::uint8_t>(pattern[i])] =
            static_cast<std::uint8_t>(m - 1 - i);
    int pos = 0;
    while (pos + m <= n) {
        int k = m - 1;
        while (k >= 0 &&
               pattern[k] == text[pos + k]) {
            --k;
        }
        if (k < 0)
            return pos;
        pos += skip[text[pos + m - 1]];
    }
    return -1;
}

} // namespace

Workload
makeStringsearch()
{
    // Text: pseudo-random lowercase letters with a few planted words.
    support::Rng rng(0x57A6, support::Rng::kLegacyBelow);
    std::vector<std::uint8_t> text(kTextLen);
    for (auto &c : text)
        c = static_cast<std::uint8_t>('a' + rng.below(26));
    const std::vector<std::string> patterns = {
        "embedded", "nvram",   "cache",  "swap",
        "zzzzzz",   "ferrite", "sram",   "energy",
    };
    // Plant half of them.
    auto plant = [&](const std::string &p, int at) {
        for (size_t i = 0; i < p.size(); ++i)
            text[at + i] = static_cast<std::uint8_t>(p[i]);
    };
    plant(patterns[0], 701);
    plant(patterns[2], 133);
    plant(patterns[3], 400);
    plant(patterns[6], 866);

    // Golden model: combine the found positions.
    std::uint16_t sum = 0;
    for (const std::string &p : patterns) {
        int pos = bmhSearch(text, p);
        sum = static_cast<std::uint16_t>(
            sum * 7 + static_cast<std::uint16_t>(pos));
    }

    std::ostringstream os;
    os << R"(
; ---- stringsearch (Boyer-Moore-Horspool) benchmark ----
        .text

; str_mkskip: build the 256-byte skip table for the pattern at R12
; (length R13). Clobbers R12-R15.
        .func str_mkskip
        ; fill with m
        CLR R14
sms_fill:
        MOV.B R13, str_skip(R14)
        INC R14
        CMP #256, R14
        JNE sms_fill
        ; skip[p[i]] = m-1-i for i in [0, m-1)
        CLR R14                 ; i
sms_pat:
        MOV R13, R15
        DEC R15
        CMP R15, R14            ; i - (m-1): stop when i >= m-1
        JHS sms_done
        SUB R14, R15            ; m-1-i
        PUSH R15
        MOV R12, R15
        ADD R14, R15
        MOV.B @R15, R15         ; p[i]
        POP R11
        MOV.B R11, str_skip(R15)
        INC R14
        JMP sms_pat
sms_done:
        RET
        .endfunc

; str_search: find pattern (R12, len R13) in the text; R12 = position
; or 0xFFFF. The right-to-left compare loop is inline, as in the
; original strsearch().
        .func str_search
        PUSH R10
        PUSH R9
        PUSH R8
        MOV R12, R9             ; pattern
        MOV R13, R8             ; m
        CLR R10                 ; pos
sse_loop:
        ; while pos + m <= n
        MOV R10, R15
        ADD R8, R15
        CMP #)" << (kTextLen + 1) << R"(, R15
        JHS sse_fail
        ; compare pattern right-to-left at pos
        MOV R8, R14             ; k = m
sse_cmp:
        TST R14
        JZ sse_hit
        DEC R14
        MOV R9, R15
        ADD R14, R15
        MOV.B @R15, R12         ; pattern[k]
        MOV R10, R15
        ADD R14, R15
        MOV.B str_text(R15), R15 ; text[pos+k]
        CMP R15, R12
        JEQ sse_cmp
        ; pos += skip[text[pos+m-1]]
        MOV #str_text, R15
        ADD R10, R15
        ADD R8, R15
        DEC R15
        MOV.B @R15, R15
        MOV.B str_skip(R15), R15
        ADD R15, R10
        JMP sse_loop
sse_hit:
        MOV R10, R12
        JMP sse_out
sse_fail:
        MOV #0xFFFF, R12
sse_out:
        POP R8
        POP R9
        POP R10
        RET
        .endfunc

        .func main
        PUSH R10
        PUSH R9
        CLR R9                  ; checksum
        MOV #str_pats, R10      ; pattern directory pointer
ssm_loop:
        MOV @R10, R12           ; pattern address
        TST R12
        JZ ssm_done
        MOV 2(R10), R13         ; pattern length
        PUSH R13
        PUSH R12
        CALL #str_mkskip
        POP R12
        POP R13
        CALL #str_search
        ; checksum = checksum*7 + pos
        MOV R12, R14
        MOV R9, R15
        RLA R9
        RLA R9
        RLA R9                  ; *8
        SUB R15, R9             ; *7
        ADD R14, R9
        ADD #4, R10
        JMP ssm_loop
ssm_done:
        MOV R9, R12
        MOV R12, &bench_result
        POP R9
        POP R10
        RET
        .endfunc

        .const
)";
    for (size_t p = 0; p < patterns.size(); ++p)
        os << "str_p" << p << ": .asciz \"" << patterns[p] << "\"\n";
    os << "        .align 2\nstr_pats:\n";
    for (size_t p = 0; p < patterns.size(); ++p) {
        os << "        .word str_p" << p << ", "
           << patterns[p].size() << "\n";
    }
    os << "        .word 0, 0\nstr_text:\n";
    for (int i = 0; i < kTextLen; ++i) {
        if (i % 16 == 0)
            os << "        .byte ";
        os << static_cast<int>(text[i])
           << ((i % 16 == 15 || i == kTextLen - 1) ? "\n" : ", ");
    }
    os << R"(
        .data
str_skip: .space 256
        .align 2
bench_result: .word 0
)";

    Workload w;
    w.name = "stringsearch";
    w.display = "STR";
    w.description = "Boyer-Moore-Horspool search of 8 patterns";
    w.source = os.str();
    w.expected = sum;
    return w;
}

} // namespace swapram::workloads
