/**
 * @file
 * FFT benchmark (MiBench2 "fft"): 64-point radix-2 decimation-in-time
 * FFT in Q14 fixed point with per-stage scaling. The multiply goes
 * through a sign-magnitude fixmul built on the shared __umul32 helper,
 * so the butterflies produce the paper's call-heavy library traffic.
 *
 * The golden model mirrors the assembly bit-for-bit: uint16 wrapping
 * adds, arithmetic right shifts, truncation-toward-zero fixmul.
 */

#include <cmath>
#include <sstream>

#include "workloads/workload.hh"

namespace swapram::workloads {

namespace {

constexpr int kN = 64;
constexpr int kLogN = 6;

std::uint16_t
fixmul(std::uint16_t a, std::uint16_t b)
{
    bool sign = ((a ^ b) & 0x8000) != 0;
    std::uint16_t ua = (a & 0x8000) ? static_cast<std::uint16_t>(-a) : a;
    std::uint16_t ub = (b & 0x8000) ? static_cast<std::uint16_t>(-b) : b;
    std::uint32_t p = static_cast<std::uint32_t>(ua) * ub;
    std::uint16_t r = static_cast<std::uint16_t>((p >> 14) & 0xFFFF);
    return sign ? static_cast<std::uint16_t>(-r) : r;
}

std::uint16_t
asr1(std::uint16_t v)
{
    return static_cast<std::uint16_t>(static_cast<std::int16_t>(v) >> 1);
}

int
rev6(int i)
{
    int j = 0;
    for (int b = 0; b < kLogN; ++b) {
        j = (j << 1) | (i & 1);
        i >>= 1;
    }
    return j;
}

} // namespace

Workload
makeFft()
{
    // Twiddles W^k = e^{-2*pi*i*k/N}, Q14, shared by asm and golden.
    std::vector<std::int16_t> wre(kN / 2), wim(kN / 2);
    for (int k = 0; k < kN / 2; ++k) {
        double ang = 2.0 * M_PI * k / kN;
        wre[k] = static_cast<std::int16_t>(
            std::lround(std::cos(ang) * 16384.0));
        wim[k] = static_cast<std::int16_t>(
            std::lround(-std::sin(ang) * 16384.0));
    }

    // Input signal: deterministic mixed tones, |x| < 2^13.
    std::vector<std::uint16_t> re(kN), im(kN, 0);
    for (int i = 0; i < kN; ++i) {
        std::int32_t v = (i * 1337 + 411) % 4096 - 2048;
        re[i] = static_cast<std::uint16_t>(v);
    }

    // Golden model.
    {
        for (int i = 0; i < kN; ++i) {
            int j = rev6(i);
            if (j > i) {
                std::swap(re[i], re[j]);
                std::swap(im[i], im[j]);
            }
        }
        for (int s = 1; s <= kLogN; ++s) {
            int mlen = 1 << s;
            int half = mlen >> 1;
            int shift = kLogN - s; // log2 of twiddle stride
            for (int k = 0; k < kN; k += mlen) {
                for (int j = 0; j < half; ++j) {
                    int tw = j << shift;
                    std::uint16_t wr = static_cast<std::uint16_t>(wre[tw]);
                    std::uint16_t wi = static_cast<std::uint16_t>(wim[tw]);
                    std::uint16_t vr0 = re[k + j + half];
                    std::uint16_t vi0 = im[k + j + half];
                    std::uint16_t vr = static_cast<std::uint16_t>(
                        fixmul(vr0, wr) - fixmul(vi0, wi));
                    std::uint16_t vi = static_cast<std::uint16_t>(
                        fixmul(vr0, wi) + fixmul(vi0, wr));
                    std::uint16_t ur = re[k + j];
                    std::uint16_t ui = im[k + j];
                    re[k + j] = asr1(static_cast<std::uint16_t>(ur + vr));
                    im[k + j] = asr1(static_cast<std::uint16_t>(ui + vi));
                    re[k + j + half] =
                        asr1(static_cast<std::uint16_t>(ur - vr));
                    im[k + j + half] =
                        asr1(static_cast<std::uint16_t>(ui - vi));
                }
            }
        }
    }
    std::uint16_t sum = 0;
    for (int i = 0; i < kN; ++i) {
        sum = static_cast<std::uint16_t>(sum + re[i]);
        sum = static_cast<std::uint16_t>((sum << 1) | (sum >> 15));
        sum = static_cast<std::uint16_t>(sum + im[i]);
        sum = static_cast<std::uint16_t>((sum << 1) | (sum >> 15));
    }

    std::ostringstream os;
    os << R"(
; ---- 64-point fixed-point FFT benchmark ----
        .text

; fft_fixmul: R12 = (R12 * R13) >> 14, signed Q14, truncation toward
; zero. The 16x16->32 shift-add multiply is inlined (a compiler emits
; one helper call per fixed-point multiply, not nested calls).
; Clobbers R11, R13-R15.
        .func fft_fixmul
        PUSH R10
        CLR R10
        TST R12
        JGE ffm_a_ok
        INV R12
        INC R12
        XOR #1, R10
ffm_a_ok:
        TST R13
        JGE ffm_b_ok
        INV R13
        INC R13
        XOR #1, R10
ffm_b_ok:
        ; inline 16x16 -> 32 multiply: R13:R12 = |a| * |b|
        MOV R12, R14            ; multiplicand low
        CLR R15                 ; multiplicand high
        MOV R13, R11            ; multiplier
        CLR R12
        CLR R13
ffm_mul_loop:
        TST R11
        JZ ffm_mul_done
        BIT #1, R11
        JZ ffm_mul_skip
        ADD R14, R12
        ADDC R15, R13
ffm_mul_skip:
        RLA R14
        RLC R15
        CLRC
        RRC R11
        JMP ffm_mul_loop
ffm_mul_done:
        MOV R13, R14
        RLA R14
        RLA R14                 ; hi << 2
        MOV R12, R15
        SWPB R15
        AND #0xFF, R15          ; lo >> 8
        CLRC
        RRC R15
        CLRC
        RRC R15
        CLRC
        RRC R15
        CLRC
        RRC R15
        CLRC
        RRC R15
        CLRC
        RRC R15                 ; lo >> 14
        BIS R14, R15
        TST R10
        JZ ffm_pos
        INV R15
        INC R15
ffm_pos:
        MOV R15, R12
        POP R10
        RET
        .endfunc

; fft_rev: R12 = 6-bit reversal of R12. Clobbers R13, R14.
        .func fft_rev
        MOV R12, R14
        CLR R12
        MOV #6, R13
frv_loop:
        RLA R12
        BIT #1, R14
        JZ frv_skip
        BIS #1, R12
frv_skip:
        CLRC
        RRC R14
        DEC R13
        JNZ frv_loop
        RET
        .endfunc

; fft_run: in-place FFT over fft_re / fft_im.
        .func fft_run
        PUSH R10
        PUSH R9
        ; --- bit-reversal permutation ---
        CLR R10                 ; i
ffp_loop:
        CMP #)" << kN << R"(, R10
        JHS ffp_done
        MOV R10, R12
        CALL #fft_rev           ; R12 = j
        CMP R12, R10            ; i - j
        JHS ffp_next            ; swap only when j > i
        ; swap re[i]<->re[j], im[i]<->im[j]
        MOV R10, R14
        RLA R14
        MOV R12, R15
        RLA R15
        MOV fft_re(R14), R13
        MOV fft_re(R15), R9
        MOV R9, fft_re(R14)
        MOV R13, fft_re(R15)
        MOV fft_im(R14), R13
        MOV fft_im(R15), R9
        MOV R9, fft_im(R14)
        MOV R13, fft_im(R15)
ffp_next:
        INC R10
        JMP ffp_loop
ffp_done:
        ; --- stages ---
        MOV #4, R15             ; mlen*2 (mlen = 2)
        MOV R15, &fft_mlen2
        MOV #5, R15
        MOV R15, &fft_twsh      ; twiddle shift
ffs_stage:
        MOV &fft_mlen2, R15
        CMP #)" << (2 * kN + 1) << R"(, R15
        JHS ffs_done
        MOV #0, R15
        MOV R15, &fft_k2        ; k*2 = 0
ffs_k:
        MOV &fft_k2, R15
        CMP #)" << (2 * kN) << R"(, R15
        JHS ffs_knext
        MOV #0, R15
        MOV R15, &fft_j2        ; j*2 = 0
ffs_j:
        MOV &fft_mlen2, R14
        CLRC
        RRC R14                 ; half*2
        CMP R14, &fft_j2?REPLACED?
        JMP ffs_j
ffs_knext:
        JMP ffs_stage
ffs_done:
        POP R9
        POP R10
        RET
        .endfunc
)";

    // The inner butterfly is long; assemble it as a separate string for
    // clarity (the ?REPLACED? marker above is substituted away).
    std::string text = os.str();
    std::string inner = R"(        MOV &fft_j2, R13
        CMP R14, R13            ; j2 - half2
        JHS ffs_jdone
        ; iu = k2 + j2 ; iv = iu + half2
        MOV &fft_k2, R15
        ADD R13, R15
        MOV R15, &fft_iu
        ADD R14, R15
        MOV R15, &fft_iv
        ; twiddle byte offset = j2 << twsh
        MOV R13, R14
        MOV &fft_twsh, R13
ffs_tw:
        TST R13
        JZ ffs_twd
        RLA R14
        DEC R13
        JMP ffs_tw
ffs_twd:
        MOV fft_wre(R14), R15
        MOV R15, &fft_wr
        MOV fft_wim(R14), R15
        MOV R15, &fft_wi
        ; t1 = fixmul(vr0, wr)
        MOV &fft_iv, R15
        MOV fft_re(R15), R12
        MOV &fft_wr, R13
        CALL #fft_fixmul
        MOV R12, &fft_t1
        ; t2 = fixmul(vi0, wi)
        MOV &fft_iv, R15
        MOV fft_im(R15), R12
        MOV &fft_wi, R13
        CALL #fft_fixmul
        MOV R12, &fft_t2
        ; t3 = fixmul(vr0, wi)
        MOV &fft_iv, R15
        MOV fft_re(R15), R12
        MOV &fft_wi, R13
        CALL #fft_fixmul
        MOV R12, &fft_t3
        ; t4 = fixmul(vi0, wr)
        MOV &fft_iv, R15
        MOV fft_im(R15), R12
        MOV &fft_wr, R13
        CALL #fft_fixmul
        ; vi = t3 + t4 (R12 holds t4)
        ADD &fft_t3, R12
        MOV R12, &fft_t3        ; fft_t3 now holds vi
        ; vr = t1 - t2
        MOV &fft_t1, R13
        SUB &fft_t2, R13        ; R13 = vr
        ; butterflies (scale by 1/2 per stage)
        MOV &fft_iu, R15
        MOV fft_re(R15), R14    ; ur
        MOV R14, R12
        ADD R13, R12
        RRA R12
        MOV R12, fft_re(R15)
        MOV R14, R12
        SUB R13, R12
        RRA R12
        MOV &fft_iv, R15
        MOV R12, fft_re(R15)
        MOV &fft_iu, R15
        MOV fft_im(R15), R14    ; ui
        MOV &fft_t3, R13        ; vi
        MOV R14, R12
        ADD R13, R12
        RRA R12
        MOV R12, fft_im(R15)
        MOV R14, R12
        SUB R13, R12
        RRA R12
        MOV &fft_iv, R15
        MOV R12, fft_im(R15)
        ; j2 += 2
        MOV &fft_j2, R15
        INCD R15
        MOV R15, &fft_j2
)";
    // Splice the butterfly into the loop skeleton.
    {
        std::string marker = "        CMP R14, &fft_j2?REPLACED?\n"
                             "        JMP ffs_j\n"
                             "ffs_knext:\n";
        std::string replacement =
            inner +
            "        JMP ffs_j\n"
            "ffs_jdone:\n"
            "        MOV &fft_k2, R15\n"
            "        ADD &fft_mlen2, R15\n"
            "        MOV R15, &fft_k2\n"
            "        JMP ffs_k\n"
            "ffs_knext:\n"
            "        MOV &fft_mlen2, R15\n"
            "        RLA R15\n"
            "        MOV R15, &fft_mlen2\n"
            "        MOV &fft_twsh, R15\n"
            "        DEC R15\n"
            "        MOV R15, &fft_twsh\n";
        size_t pos = text.find(marker);
        text.replace(pos, marker.size(), replacement);
    }

    std::ostringstream rest;
    rest << R"(
; fft_sum: R12 = rolling checksum of the spectrum.
        .func fft_sum
        CLR R12
        CLR R14
ffc_loop:
        CMP #)" << (2 * kN) << R"(, R14
        JHS ffc_done
        ADD fft_re(R14), R12
        RLA R12
        ADC R12
        ADD fft_im(R14), R12
        RLA R12
        ADC R12
        INCD R14
        JMP ffc_loop
ffc_done:
        RET
        .endfunc

        .func main
        CALL #fft_run
        CALL #fft_sum
        MOV R12, &bench_result
        RET
        .endfunc

        .const
        .align 2
fft_wre:
)";
    auto emit_words = [&rest](const std::vector<std::int16_t> &v) {
        for (size_t i = 0; i < v.size(); ++i) {
            if (i % 8 == 0)
                rest << "        .word ";
            rest << v[i]
                 << ((i % 8 == 7 || i + 1 == v.size()) ? "\n" : ", ");
        }
    };
    emit_words(wre);
    rest << "fft_wim:\n";
    emit_words(wim);
    rest << R"(
        .data
        .align 2
fft_re:
)";
    {
        std::vector<std::int16_t> init(kN);
        for (int i = 0; i < kN; ++i)
            init[i] = static_cast<std::int16_t>((i * 1337 + 411) % 4096 -
                                                2048);
        emit_words(init);
    }
    rest << R"(fft_im: .space )" << 2 * kN << R"(
fft_mlen2: .word 0
fft_twsh:  .word 0
fft_k2:    .word 0
fft_j2:    .word 0
fft_iu:    .word 0
fft_iv:    .word 0
fft_wr:    .word 0
fft_wi:    .word 0
fft_t1:    .word 0
fft_t2:    .word 0
fft_t3:    .word 0
bench_result: .word 0
)";

    Workload w;
    w.name = "fft";
    w.display = "FFT";
    w.description = "64-point Q14 radix-2 FFT with software multiply";
    w.source = text + rest.str();
    w.expected = sum;
    return w;
}

} // namespace swapram::workloads
