/**
 * @file
 * Shared assembly helper library. The modelled MSP430 core has no
 * hardware multiplier, so arithmetic-heavy benchmarks call these
 * helpers — mirroring the msp430-gcc libgcc calls the paper's "library
 * instrumentation" section (§4) feeds through SwapRAM.
 *
 * ABI: arguments R12..R15, results in R12 (and R13 for the high word /
 * remainder); R11-R15 may be clobbered.
 */

#include "workloads/workload.hh"

namespace swapram::workloads {

std::string
libSource()
{
    return R"(
; ---- shared helper library ----
        .text

; __mulhi: R12 = R12 * R13 (low 16 bits). Clobbers R13, R14.
        .func __mulhi
        MOV R12, R14
        CLR R12
__mulhi_loop:
        TST R13
        JZ __mulhi_done
        BIT #1, R13
        JZ __mulhi_skip
        ADD R14, R12
__mulhi_skip:
        RLA R14
        CLRC
        RRC R13
        JMP __mulhi_loop
__mulhi_done:
        RET
        .endfunc

; __umul32: R13:R12 (hi:lo) = R12 * R13, full 16x16 -> 32.
; Clobbers R11, R14, R15.
        .func __umul32
        MOV R12, R14        ; multiplicand low
        CLR R15             ; multiplicand high
        MOV R13, R11        ; multiplier
        CLR R12             ; result low
        CLR R13             ; result high
__umul32_loop:
        TST R11
        JZ __umul32_done
        BIT #1, R11
        JZ __umul32_skip
        ADD R14, R12
        ADDC R15, R13
__umul32_skip:
        RLA R14
        RLC R15
        CLRC
        RRC R11
        JMP __umul32_loop
__umul32_done:
        RET
        .endfunc

; __udiv16: R12 = R12 / R13, R13 = R12 % R13 (unsigned).
; Divisor must be nonzero. Clobbers R14, R15.
        .func __udiv16
        CLR R14             ; remainder
        MOV #16, R15
__udiv16_loop:
        RLA R12             ; C <- dividend msb
        RLC R14             ; remainder = remainder<<1 | C
        CMP R13, R14
        JLO __udiv16_skip
        SUB R13, R14
        BIS #1, R12
__udiv16_skip:
        DEC R15
        JNZ __udiv16_loop
        MOV R14, R13
        RET
        .endfunc

; __memcpy: copy R14 bytes from R13 to R12. Clobbers R12-R14.
        .func __memcpy
__memcpy_loop:
        TST R14
        JZ __memcpy_done
        MOV.B @R13+, 0(R12)
        INC R12
        DEC R14
        JMP __memcpy_loop
__memcpy_done:
        RET
        .endfunc

; __memset: fill R14 bytes at R12 with byte R13. Clobbers R12, R14.
        .func __memset
__memset_loop:
        TST R14
        JZ __memset_done
        MOV.B R13, 0(R12)
        INC R12
        DEC R14
        JMP __memset_loop
__memset_done:
        RET
        .endfunc
)";
}

} // namespace swapram::workloads
