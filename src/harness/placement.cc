#include "harness/placement.hh"

#include "support/logging.hh"
#include "support/platform.hh"

namespace swapram::harness {

namespace plat = swapram::platform;

std::string
placementName(Placement placement)
{
    switch (placement) {
      case Placement::Unified: return "unified";
      case Placement::Standard: return "standard";
      case Placement::SramCode: return "sram-code";
      case Placement::SramAll: return "sram-all";
      case Placement::Split: return "split";
    }
    support::panic("placementName: bad placement");
}

PlacementPlan
makePlacement(Placement placement)
{
    PlacementPlan plan;
    switch (placement) {
      case Placement::Unified:
        // text, const, data, bss chain in FRAM; stack below the vectors.
        plan.layout.text_base = plat::kFramBase;
        plan.stack_top = plat::kVectorsBase;
        plan.stack_in_sram = false;
        break;
      case Placement::Standard:
        plan.layout.text_base = plat::kFramBase;
        plan.layout.data_base = plat::kSramBase;
        plan.stack_top = static_cast<std::uint16_t>(plat::kSramEnd);
        plan.stack_in_sram = true;
        break;
      case Placement::SramCode:
        plan.layout.text_base = plat::kSramBase;
        plan.layout.const_base = plat::kFramBase;
        plan.stack_top = plat::kVectorsBase;
        plan.stack_in_sram = false;
        break;
      case Placement::SramAll:
        plan.layout.text_base = plat::kSramBase;
        plan.stack_top = static_cast<std::uint16_t>(plat::kSramEnd);
        plan.stack_in_sram = true;
        break;
      case Placement::Split:
        // Like Standard; the runner carves the cache from SRAM above
        // the data + stack region.
        plan.layout.text_base = plat::kFramBase;
        plan.layout.data_base = plat::kSramBase;
        plan.stack_top = static_cast<std::uint16_t>(plat::kSramEnd);
        plan.stack_in_sram = true;
        break;
    }
    return plan;
}

} // namespace swapram::harness
