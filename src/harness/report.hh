/**
 * @file
 * Reporting: fixed-width text tables, percent deltas, and geometric
 * means shared by the bench binaries (the way the paper reports
 * Table 2 and Figures 7-10) — plus RunReport, the machine-readable
 * record of one experiment (JSON schema "swapram-run-report/v1")
 * consumed by swapram_tool's --json mode and the CI smoke check.
 */

#ifndef SWAPRAM_HARNESS_REPORT_HH
#define SWAPRAM_HARNESS_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "support/json.hh"

namespace swapram::harness {

/** A simple fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Add one row (cells are printed right-aligned except the first). */
    void addRow(std::vector<std::string> cells);

    /** Render with column widths fitted to the content. */
    std::string text() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** "+12%" / "-65%" style percent delta of value vs reference. */
std::string percentDelta(double value, double reference);

/** Format a count with thousands separators. */
std::string withCommas(std::uint64_t value);

/** Geometric mean of ratios (each > 0). */
double geoMean(const std::vector<double> &ratios);

/** Geometric-mean delta string for value/reference ratio lists. */
std::string geoMeanDelta(const std::vector<double> &ratios);

/**
 * Serialize one run's (or one sweep config's merged) metrics as a
 * "swapram-metrics/v1" object: counters, gauges, histograms (count /
 * sum / min / max / mean / p50 / p95 / p99 plus non-empty log2 buckets
 * as {"le", "count"}), and the address-space heatmap (per-region
 * totals classified with sim::regionOf plus the hottest pages).
 * Invariants consumers may rely on: per-region fetch/read/write totals
 * equal the run's sim::Stats access counts, and the
 * "fram_stall_cycles" histogram sum equals Stats::stall_cycles
 * (tools/check_metrics_json.py pins both).
 */
support::json::Value metricsJson(const metrics::RunMetrics &rm);

/**
 * Everything one run produced, in serializable form: the configuration
 * that was run plus the Metrics it yielded. Build with make(), then
 * json() for machines or text() for humans.
 */
struct RunReport {
    /** Schema identifier emitted as the "schema" key. */
    static constexpr const char *kSchema = "swapram-run-report/v1";

    std::string workload;
    std::string system;    ///< systemName()
    std::string placement; ///< placementName()
    std::uint32_t clock_hz = 0;
    int main_repeats = 1;
    std::uint32_t sram_size = 0; ///< simulated SRAM bytes
    Metrics metrics;

    /** Capture spec identity + results into a report. */
    static RunReport make(const RunSpec &spec, Metrics metrics);

    /** Full machine-readable report. */
    support::json::Value json() const;

    /** Human-readable summary (stats + top profile rows + swap
     *  summary), for the tool's default non-JSON output. */
    std::string text(std::size_t profile_rows = 20) const;
};

} // namespace swapram::harness

#endif // SWAPRAM_HARNESS_REPORT_HH
