/**
 * @file
 * Table/series formatting shared by the bench binaries: fixed-width
 * columns, percent deltas, geometric means — matching the way the
 * paper reports Table 2 and Figures 7-10.
 */

#ifndef SWAPRAM_HARNESS_REPORT_HH
#define SWAPRAM_HARNESS_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace swapram::harness {

/** A simple fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Add one row (cells are printed right-aligned except the first). */
    void addRow(std::vector<std::string> cells);

    /** Render with column widths fitted to the content. */
    std::string text() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** "+12%" / "-65%" style percent delta of value vs reference. */
std::string percentDelta(double value, double reference);

/** Format a count with thousands separators. */
std::string withCommas(std::uint64_t value);

/** Geometric mean of ratios (each > 0). */
double geoMean(const std::vector<double> &ratios);

/** Geometric-mean delta string for value/reference ratio lists. */
std::string geoMeanDelta(const std::vector<double> &ratios);

} // namespace swapram::harness

#endif // SWAPRAM_HARNESS_REPORT_HH
