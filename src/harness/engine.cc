#include "harness/engine.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "isa/opcodes.hh"
#include "support/logging.hh"
#include "workloads/workload.hh"

namespace swapram::harness {

namespace {

/**
 * Touch every lazily-initialized static the run path can reach, so
 * workers never construct one. All of them are C++11 magic statics
 * (construction is race-safe regardless); this is about keeping the
 * cost out of the measured runs and making the shared state easy to
 * audit in one place.
 */
void
warmSharedState()
{
    workloads::all();           // workload registry (sources + goldens)
    workloads::libSource();     // shared helper library source
    isa::parseOp("MOV");        // mnemonic table
    support::logLevel();        // resolves SWAPRAM_LOG once (atomic)
}

/** Execute one spec, capturing any failure into the outcome. */
RunOutcome
runCaptured(const RunSpec &spec)
{
    RunOutcome out;
    try {
        out.metrics = runOne(spec);
    } catch (const std::exception &e) {
        out.error = true;
        out.error_text = e.what();
    }
    return out;
}

/** Serializes progress callbacks and maintains the rolling counters.
 *  Timing feeds only runs_per_sec; results never depend on it. */
class ProgressReporter
{
  public:
    ProgressReporter(const ProgressFn &fn, std::size_t total)
        : fn_(fn), total_(total),
          start_(std::chrono::steady_clock::now())
    {
    }

    void
    report(std::size_t index, const RunOutcome &outcome)
    {
        if (!fn_)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        Progress p;
        p.done = ++done_;
        p.total = total_;
        if (outcome.error)
            ++errors_;
        p.errors = errors_;
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
        p.runs_per_sec =
            secs > 0 ? static_cast<double>(p.done) / secs : 0;
        p.index = index;
        p.outcome = &outcome;
        fn_(p);
    }

  private:
    const ProgressFn &fn_;
    std::size_t total_;
    std::chrono::steady_clock::time_point start_;
    std::mutex mutex_;
    std::size_t done_ = 0;
    std::size_t errors_ = 0;
};

} // namespace

unsigned
Engine::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

Engine::Engine(unsigned jobs) : jobs_(jobs ? jobs : defaultJobs()) {}

std::vector<RunOutcome>
Engine::runAll(const std::vector<RunSpec> &specs,
               const ProgressFn &progress) const
{
    std::vector<RunOutcome> results(specs.size());
    if (specs.empty())
        return results;

    ProgressReporter reporter(progress, specs.size());

    unsigned workers = jobs_;
    if (workers > specs.size())
        workers = static_cast<unsigned>(specs.size());

    // Single-job batches run inline: no threads, trivially ordered,
    // and debuggable — the deterministic reference the parallel path
    // is tested against.
    if (workers <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
            results[i] = runCaptured(specs[i]);
            reporter.report(i, results[i]);
        }
        return results;
    }

    warmSharedState();

    // Work-stealing by atomic ticket: completion order is arbitrary,
    // but each worker writes only results[i] for its own tickets, so
    // the outcome vector is in submission order by construction.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= specs.size())
                return;
            results[i] = runCaptured(specs[i]);
            reporter.report(i, results[i]);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return results;
}

RunSpec
sweepSpec(const workloads::Workload &workload, System system,
          Placement placement, std::uint32_t clock_hz)
{
    RunSpec spec;
    spec.workload = &workload;
    spec.system = system;
    spec.placement = placement;
    spec.clock_hz = clock_hz;
    spec.observe.swap_timeline = system != System::Baseline;
    return spec;
}

RunSpec
capacitySpec(const workloads::Workload &workload, System system,
             std::uint32_t sram_size, std::uint32_t clock_hz)
{
    RunSpec spec =
        sweepSpec(workload, system, Placement::Unified, clock_hz);
    spec.sram_size = sram_size;
    return spec;
}

std::vector<MatrixCell>
capacityMatrix()
{
    std::vector<MatrixCell> cells;
    for (const workloads::Workload &w : workloads::capacity()) {
        // One baseline reference at the platform default, then the
        // SwapRAM hit/thrash curve across the capacity ladder.
        cells.push_back({&w, System::Baseline, platform::kSramSize});
        for (std::uint32_t size : kCapacitySizes)
            cells.push_back({&w, System::SwapRam, size});
    }
    return cells;
}

std::vector<Metrics>
Engine::runAllOrThrow(const std::vector<RunSpec> &specs) const
{
    std::vector<RunOutcome> outcomes = runAll(specs);
    std::vector<Metrics> metrics;
    metrics.reserve(outcomes.size());
    for (RunOutcome &o : outcomes) {
        if (o.error)
            support::fatal("engine run failed: ", o.error_text);
        metrics.push_back(std::move(o.metrics));
    }
    return metrics;
}

} // namespace swapram::harness
