/**
 * @file
 * Experiment runner: assemble a workload under a system (baseline /
 * SwapRAM / block cache) and placement, execute it, and collect every
 * metric the paper's tables and figures report.
 */

#ifndef SWAPRAM_HARNESS_RUNNER_HH
#define SWAPRAM_HARNESS_RUNNER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "blockcache/options.hh"
#include "harness/placement.hh"
#include "sim/config.hh"
#include "sim/energy.hh"
#include "sim/stats.hh"
#include "swapram/options.hh"
#include "workloads/workload.hh"

namespace swapram::harness {

/** Execution system under test. */
enum class System { Baseline, SwapRam, BlockCache };

/** Printable name ("baseline", "swapram", "block"). */
std::string systemName(System system);

/** One experiment configuration. */
struct RunSpec {
    const workloads::Workload *workload = nullptr;
    System system = System::Baseline;
    Placement placement = Placement::Unified;
    std::uint32_t clock_hz = 24'000'000;
    cache::Options swap;  ///< cache_base/end adjusted for Split
    bb::Options block;    ///< block-cache parameters
    bool include_lib = true;
    std::uint64_t max_cycles = 600'000'000ull;

    /**
     * How many times the startup stub calls main() (the paper runs
     * each benchmark 10 times so steady-state behaviour — after
     * SwapRAM populates the cache — dominates the measurement, §4).
     */
    int main_repeats = 1;

    /** Optional instruction trace: called with (pc, disassembly) for
     *  the first trace_limit instructions (tooling/debugging). */
    std::function<void(std::uint16_t, const std::string &)> trace_hook;
    std::uint64_t trace_limit = 0;
};

/** Everything measured from one run (or a DNF marker). */
struct Metrics {
    bool fits = true;          ///< false = paper's "DNF"
    std::string fit_note;      ///< why it did not fit
    bool done = false;         ///< program ran to completion
    std::uint16_t checksum = 0;
    sim::Stats stats;
    double energy_pj = 0;
    double seconds = 0;

    // Static sizes (Figure 7 / Table 1).
    std::uint32_t text_bytes = 0;
    std::uint32_t const_bytes = 0;
    std::uint32_t data_bytes = 0;
    std::uint32_t bss_bytes = 0;
    std::uint32_t app_text_bytes = 0; ///< transformed application code
    std::uint32_t runtime_bytes = 0;  ///< cache runtime code
    std::uint32_t metadata_bytes = 0; ///< cache metadata (FRAM)
    std::uint32_t handler_bytes = 0;  ///< SwapRAM miss handler (§5.2)
    int n_funcs = 0;
    int reloc_count = 0;

    /** RAM usage in the Table-1 sense: data + bss + stack. */
    std::uint32_t ram_bytes = 0;

    /** Final .data+.bss contents for cross-system §5.1 validation. */
    std::vector<std::uint8_t> data_snapshot;

    /** Everything the program wrote to the console UART (§5.1 compares
     *  printed benchmark output across systems). */
    std::string console;

    std::uint32_t
    totalNvmBytes() const
    {
        return app_text_bytes + runtime_bytes + metadata_bytes +
               const_bytes;
    }
};

/** Startup stub: sets SP, calls main @p repeats times, signals
 *  completion. */
std::string startupSource(std::uint16_t stack_top, int repeats = 1);

/** Run one experiment. */
Metrics runOne(const RunSpec &spec);

/** Shorthand: run @p workload under @p system in a placement/clock. */
Metrics run(const workloads::Workload &workload, System system,
            Placement placement = Placement::Unified,
            std::uint32_t clock_hz = 24'000'000);

} // namespace swapram::harness

#endif // SWAPRAM_HARNESS_RUNNER_HH
