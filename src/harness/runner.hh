/**
 * @file
 * Experiment runner: assemble a workload under a system (baseline /
 * SwapRAM / block cache) and placement, execute it, and collect every
 * metric the paper's tables and figures report.
 *
 * The runner also owns the observability pipeline (ISSUE 1): when a
 * RunSpec requests it, a trace::TraceEngine is wired into the machine
 * (with an optional streaming sink), a per-function profiler
 * attributes cycles/stalls/energy to the image's functions, and a
 * SwapTimeline reconstructs the cache runtime's misses, copy-ins, and
 * evictions. Results land in Metrics; report.hh turns them into a
 * machine-readable RunReport.
 */

#ifndef SWAPRAM_HARNESS_RUNNER_HH
#define SWAPRAM_HARNESS_RUNNER_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "blockcache/options.hh"
#include "metrics/run_metrics.hh"
#include "harness/placement.hh"
#include "sim/config.hh"
#include "sim/energy.hh"
#include "sim/fault.hh"
#include "sim/machine.hh"
#include "sim/stats.hh"
#include "swapram/options.hh"
#include "trace/profile.hh"
#include "trace/swap_timeline.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace swapram::harness {

/** Execution system under test. */
enum class System { Baseline, SwapRam, BlockCache };

/** Printable name ("baseline", "swapram", "block"). */
std::string systemName(System system);

/** What to observe during a run (all off by default — and when off,
 *  the simulator's hot path pays a single branch per instruction). */
struct ObserveSpec {
    /** trace::Category bitmask recorded by the engine's ring buffer
     *  and written to the stream sink; 0 = event tracing off. */
    std::uint32_t categories = trace::kCatNone;

    /** Ring-buffer capacity in events (bounds trace memory). */
    std::size_t ring_capacity = trace::TraceEngine::kDefaultCapacity;

    /** Streaming sink format for `out`. */
    enum class Format { None, Text, Csv, Chrome };
    Format format = Format::None;

    /** Stream target for traced events (not owned; may be null). */
    std::ostream *out = nullptr;

    /** Stop streaming after this many events (0 = unlimited). */
    std::uint64_t limit = 0;

    /** Annotate instruction retires with disassembly (Text format). */
    bool disasm = false;

    /** Per-function cycle/stall/access/energy attribution. */
    bool profile = false;

    /** Reconstruct SwapRAM cache events and the residency timeline
     *  (auto-enabled for non-baseline systems when profiling or when
     *  `categories` includes trace::kCatSwap). */
    bool swap_timeline = false;

    /** Collect run metrics: the address-space heatmap, the FRAM
     *  stall-latency histogram, and (for cache systems) the
     *  miss-handler-duration histogram. Results land in
     *  Metrics::run_metrics. Host-side only; forces single-step
     *  execution like tracing. */
    bool metrics = false;

    bool tracing() const { return categories != trace::kCatNone; }
    bool
    any() const
    {
        return tracing() || profile || swap_timeline || metrics;
    }
};

/** Intermittent execution: inject power failures during the run. */
struct IntermittentSpec {
    /** When power dies (Kind::None = uninterrupted run). */
    sim::FaultPlan plan;

    /** Livelock watchdog: abort after this many consecutive boots
     *  with an identical persistent-state watermark (0 = machine
     *  default). */
    std::uint32_t livelock_boots = 0;

    bool enabled() const { return plan.enabled(); }
};

/** One experiment configuration. */
struct RunSpec {
    const workloads::Workload *workload = nullptr;
    System system = System::Baseline;
    Placement placement = Placement::Unified;
    std::uint32_t clock_hz = 24'000'000;
    cache::Options swap;  ///< cache_base/end adjusted for Split
    bb::Options block;    ///< block-cache parameters
    bool include_lib = true;
    std::uint64_t max_cycles = 600'000'000ull;

    /**
     * Simulated SRAM capacity in bytes (ISSUE 7 capacity sweeps; the
     * region is [kSramBase, kSramBase + sram_size)). When this differs
     * from the platform default and the cache options still carry
     * their defaults, the runner re-anchors cache_end to the new SRAM
     * end, so sweeping the capacity is a one-field change.
     */
    std::uint32_t sram_size = platform::kSramSize;

    /** Host-side predecode fast path (see sim::MachineConfig). Off is
     *  the always-decode oracle for differential tests; simulated
     *  results must be identical either way. */
    bool predecode = true;

    /** Host-side superblock execution engine (see sim::MachineConfig).
     *  Off is the single-step oracle for differential tests; simulated
     *  results must be identical either way. The default follows the
     *  build (-DSWAPRAM_NO_SUPERBLOCK flips it off). */
    bool superblock = sim::kSuperblockDefaultEnabled;

    /** Threaded-code dispatch over hot superblocks (see
     *  sim::MachineConfig). Only meaningful with superblock on; off
     *  falls back to block-stepped dispatch. Simulated results must be
     *  identical either way. The default follows the build
     *  (-DSWAPRAM_NO_THREADED flips it off). */
    bool threaded = sim::kThreadedDefaultEnabled;

    /**
     * How many times the startup stub calls main() (the paper runs
     * each benchmark 10 times so steady-state behaviour — after
     * SwapRAM populates the cache — dominates the measurement, §4).
     */
    int main_repeats = 1;

    /** Observability: tracing, profiling, cache timeline. */
    ObserveSpec observe;

    /** Power-failure injection (off by default). */
    IntermittentSpec intermittent;
};

/** Everything measured from one run (or a DNF marker). */
struct Metrics {
    bool fits = true;          ///< false = paper's "DNF"
    std::string fit_note;      ///< why it did not fit
    bool done = false;         ///< program ran to completion
    /** Why the run loop returned (Done / MaxCycles / Livelock /
     *  Exhausted) — distinguishes a livelocked intermittent run from a
     *  merely slow one. */
    sim::RunResult::Stop stop = sim::RunResult::Stop::Done;
    std::uint16_t checksum = 0;
    sim::Stats stats;
    double energy_pj = 0;
    double seconds = 0;

    // Harvest-trace accounting (Trace fault plans only; 0 otherwise).
    double harvested_pj = 0;  ///< energy drawn from the trace
    double wall_seconds = 0;  ///< on-time + recharge (off) time

    // Static sizes (Figure 7 / Table 1).
    std::uint32_t text_bytes = 0;
    std::uint32_t const_bytes = 0;
    std::uint32_t data_bytes = 0;
    std::uint32_t bss_bytes = 0;
    std::uint32_t app_text_bytes = 0; ///< transformed application code
    std::uint32_t runtime_bytes = 0;  ///< cache runtime code
    std::uint32_t metadata_bytes = 0; ///< cache metadata (FRAM)
    std::uint32_t handler_bytes = 0;  ///< SwapRAM miss handler (§5.2)
    int n_funcs = 0;
    int reloc_count = 0;

    /** RAM usage in the Table-1 sense: data + bss + stack. */
    std::uint32_t ram_bytes = 0;

    /** Final .data+.bss contents for cross-system §5.1 validation. */
    std::vector<std::uint8_t> data_snapshot;

    /** Everything the program wrote to the console UART (§5.1 compares
     *  printed benchmark output across systems). */
    std::string console;

    // Observability results (filled per RunSpec::observe).
    std::vector<trace::ProfileRow> profile; ///< most expensive first
    std::vector<trace::FoldedStack> folded; ///< flamegraph stacks
    /** Run metrics (observe.metrics); shared so Metrics stays
     *  copyable. Null when collection was off. */
    std::shared_ptr<metrics::RunMetrics> run_metrics;
    std::vector<trace::SwapEvent> swap_events;
    std::vector<trace::OccupancySample> occupancy;
    trace::SwapSummary swap_summary;
    std::uint64_t trace_emitted = 0; ///< events accepted by the engine
    std::uint64_t trace_dropped = 0; ///< ring-buffer overwrites

    // SwapRAM runtime counter cells, read back from the image after the
    // run (zero when the cell does not exist — eviction off, no pool,
    // or a non-SwapRAM system). Unlike the timeline reconstruction
    // these come from the runtime's own bookkeeping, so the two can be
    // cross-checked.
    std::uint16_t rt_evictions = 0; ///< __swp_nevict: un-redirections
    std::uint16_t rt_retries = 0;   ///< __swp_nretry: blocked-scan retries
    std::uint16_t rt_data_in = 0;   ///< __swp_dnin: pool swap-ins
    std::uint16_t rt_data_out = 0;  ///< __swp_dnout: pool write-backs
    std::uint16_t rt_data_full = 0; ///< __swp_dnfull: served from FRAM

    // Checkpoint runtime counters (__ckpt_ncommit/__ckpt_nrestore;
    // same cells in both cache runtimes, zero when ckpt is off).
    std::uint16_t rt_ckpt_commits = 0;  ///< checkpoints sealed
    std::uint16_t rt_ckpt_restores = 0; ///< boots resumed from one

    std::uint32_t
    totalNvmBytes() const
    {
        return app_text_bytes + runtime_bytes + metadata_bytes +
               const_bytes;
    }
};

/** Startup stub: sets SP, calls the boot-recovery routine
 *  @p recover (if non-empty), calls main @p repeats times, signals
 *  completion. */
std::string startupSource(std::uint16_t stack_top, int repeats = 1,
                          const std::string &recover = "");

/** Run one experiment. */
Metrics runOne(const RunSpec &spec);

/** One intermittent run checked against its uninterrupted twin. */
struct IntermittentCheck {
    Metrics reference; ///< same spec, no faults
    Metrics faulted;   ///< spec.intermittent applied

    /** Both completed with identical final state and console. */
    bool
    match() const
    {
        return matchState() && reference.console == faulted.console;
    }

    /** Both completed with identical final persistent state. Console
     *  output is exempt: a checkpoint-resumed run re-executes the span
     *  since the last commit, so console writes in that span are
     *  legitimately duplicated (UART output is not idempotent). */
    bool
    matchState() const
    {
        return reference.fits && faulted.fits && reference.done &&
               faulted.done &&
               reference.checksum == faulted.checksum &&
               reference.data_snapshot == faulted.data_snapshot;
    }
};

/** Run @p spec twice — once uninterrupted, once with its fault plan —
 *  and pair the results (the ISSUE-2 convergence criterion). */
IntermittentCheck checkIntermittent(const RunSpec &spec);

/** Shorthand: run @p workload under @p system in a placement/clock. */
Metrics run(const workloads::Workload &workload, System system,
            Placement placement = Placement::Unified,
            std::uint32_t clock_hz = 24'000'000);

} // namespace swapram::harness

#endif // SWAPRAM_HARNESS_RUNNER_HH
