/**
 * @file
 * Memory placements used across the paper's experiments:
 *
 *  - Unified  : code + data + stack in FRAM, SRAM free (the NVRAM
 *               unified-memory model, §2.2; main SwapRAM target).
 *  - Standard : code in FRAM, data + stack in SRAM (the conventional
 *               configuration, Figures 1/10 baselines).
 *  - SramCode : code in SRAM, data + stack in FRAM (Figure 1).
 *  - SramAll  : everything in SRAM (Figure 1's upper bound).
 *  - Split    : data + stack in low SRAM, remaining SRAM reserved for
 *               the SwapRAM cache (§5.5, Figure 10).
 */

#ifndef SWAPRAM_HARNESS_PLACEMENT_HH
#define SWAPRAM_HARNESS_PLACEMENT_HH

#include <cstdint>
#include <string>

#include "masm/assembler.hh"

namespace swapram::harness {

/** Where code, data, and the stack live. */
enum class Placement {
    Unified,
    Standard,
    SramCode,
    SramAll,
    Split,
};

/** Printable name ("unified", ...). */
std::string placementName(Placement placement);

/** Concrete section layout for one placement. */
struct PlacementPlan {
    masm::LayoutSpec layout;
    std::uint16_t stack_top = 0;
    bool stack_in_sram = false;
};

/**
 * Build the layout for @p placement.
 *
 * For Split, the data/stack region starts at the SRAM base and the
 * cache occupies the rest; the runner computes the boundary once the
 * data size is known and passes it via stack_top (this function sets a
 * provisional top; see runner.cc).
 */
PlacementPlan makePlacement(Placement placement);

} // namespace swapram::harness

#endif // SWAPRAM_HARNESS_PLACEMENT_HH
