#include "harness/runner.hh"

#include <memory>
#include <sstream>

#include "blockcache/builder.hh"
#include "isa/decode.hh"
#include "isa/disasm.hh"
#include "masm/assembler.hh"
#include "masm/parser.hh"
#include "sim/machine.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/platform.hh"
#include "swapram/builder.hh"
#include "trace/sinks.hh"

namespace swapram::harness {

namespace plat = swapram::platform;

std::string
systemName(System system)
{
    switch (system) {
      case System::Baseline: return "baseline";
      case System::SwapRam: return "swapram";
      case System::BlockCache: return "block";
    }
    support::panic("systemName: bad system");
}

std::string
startupSource(std::uint16_t stack_top, int repeats,
              const std::string &recover)
{
    std::ostringstream os;
    os << "        .text\n"
          "        .func __start\n"
          "        MOV #" << stack_top << ", SP\n";
    // The recovery call is padded to one FRAM prefetch line (8 bytes)
    // so later functions keep their alignment — and their hardware
    // cache stall pattern — whether or not the call is emitted.
    if (!recover.empty()) {
        os << "        CALL #" << recover << "\n"
              "        NOP\n"
              "        NOP\n";
    }
    if (repeats <= 1) {
        os << "        CALL #main\n";
    } else {
        os << "        MOV #" << repeats << ", R10\n"
              "__start_loop:\n"
              "        CALL #main\n"
              "        DEC R10\n"
              "        JNZ __start_loop\n";
    }
    os << "        MOV.B #1, &__DONE\n"
          "__start_spin:\n"
          "        JMP __start_spin\n"
          "        .endfunc\n";
    return os.str();
}

namespace {

/** Region a section base falls in, for fit checks. */
bool
inSram(std::uint16_t base)
{
    return base >= plat::kSramBase && base < plat::kSramEnd;
}

/** Check that a section fits in its region; append a note if not. */
void
checkSection(const char *name, const masm::Range &range,
             std::string &note)
{
    if (range.size == 0)
        return;
    if (inSram(range.base)) {
        if (range.end() > plat::kSramEnd) {
            note += support::cat(name, " overflows SRAM (",
                                 range.end() - plat::kSramBase,
                                 " bytes); ");
        }
    } else {
        if (range.end() > plat::kVectorsBase) {
            note += support::cat(name, " overflows FRAM (ends at ",
                                 support::hex16(static_cast<std::uint16_t>(
                                     range.end() & 0xFFFF)),
                                 "); ");
        }
    }
}

} // namespace

Metrics
runOne(const RunSpec &spec)
{
    if (!spec.workload)
        support::fatal("runOne: no workload");
    Metrics m;

    PlacementPlan plan = makePlacement(spec.placement);

    // Crash consistency: the cache runtimes' startup stub calls their
    // generated recovery routine before main (harmless on the first
    // boot, essential after a power failure).
    std::string recover;
    if (spec.system == System::SwapRam && spec.swap.boot_recovery)
        recover = "__swp_recover";
    else if (spec.system == System::BlockCache &&
             spec.block.boot_recovery)
        recover = "__bb_recover";

    std::string body = spec.workload->source;
    if (spec.include_lib)
        body += workloads::libSource();
    masm::Program program = masm::parse(
        startupSource(plan.stack_top, spec.main_repeats, recover) +
        body);

    // For the Split placement, size the data region first with a
    // baseline assembly, then carve the cache from the SRAM left over.
    cache::Options swap = spec.swap;
    bb::Options block = spec.block;
    std::uint16_t stack_top = plan.stack_top;
    if (spec.placement == Placement::Split) {
        // The probe is a plain baseline assembly, which does not
        // define the recovery symbol; assemble without the call (a
        // text-only difference, so the data/bss sizing is identical).
        masm::Program probe_program =
            recover.empty()
                ? program
                : masm::parse(startupSource(plan.stack_top,
                                            spec.main_repeats) +
                              body);
        masm::AssembleResult probe =
            masm::assemble(probe_program, plan.layout);
        std::uint32_t bss_end = probe.image.bss.end();
        std::uint32_t top = (bss_end + spec.workload->stack_bytes + 1) &
                            ~1u;
        if (top >= plat::kSramEnd) {
            m.fits = false;
            m.fit_note = "data+stack exceed SRAM";
            return m;
        }
        stack_top = static_cast<std::uint16_t>(top);
        swap.cache_base = stack_top;
        swap.cache_end = static_cast<std::uint16_t>(plat::kSramEnd);
        block.cache_base = stack_top;
        block.cache_end = static_cast<std::uint16_t>(plat::kSramEnd);
    }

    // Build under the selected system.
    masm::AssembleResult assembled;
    std::uint16_t handler_base = 0, handler_end = 0;
    std::uint16_t memcpy_base = 0, memcpy_end = 0;
    std::uint16_t recover_base = 0, recover_end = 0;
    switch (spec.system) {
      case System::Baseline: {
        assembled = masm::assemble(program, plan.layout);
        m.app_text_bytes = assembled.image.text.size;
        break;
      }
      case System::SwapRam: {
        cache::BuildInfo info = cache::build(program, plan.layout, swap);
        assembled = std::move(info.assembled);
        m.app_text_bytes = info.app_text_bytes;
        m.runtime_bytes = info.runtime_text_bytes;
        m.metadata_bytes = info.metadata_bytes;
        m.handler_bytes = info.handler_bytes;
        m.n_funcs = info.funcs.count();
        m.reloc_count = info.reloc_count;
        handler_base = info.handler_addr;
        handler_end = info.handler_end;
        memcpy_base = info.memcpy_addr;
        memcpy_end = info.memcpy_end;
        recover_base = info.recover_addr;
        recover_end = info.recover_end;
        break;
      }
      case System::BlockCache: {
        bb::BuildInfo info = bb::build(program, plan.layout, block);
        assembled = std::move(info.assembled);
        m.app_text_bytes = info.app_text_bytes;
        m.runtime_bytes = info.runtime_bytes;
        m.metadata_bytes = info.metadata_bytes;
        m.n_funcs = info.n_blocks;
        handler_base = info.runtime_addr;
        handler_end = info.runtime_end;
        memcpy_base = info.memcpy_addr;
        memcpy_end = info.memcpy_end;
        recover_base = info.recover_addr;
        recover_end = info.recover_end;
        break;
      }
    }

    const masm::Image &image = assembled.image;
    m.text_bytes = image.text.size;
    m.const_bytes = image.cnst.size;
    m.data_bytes = image.data.size;
    m.bss_bytes = image.bss.size;
    m.ram_bytes =
        image.data.size + image.bss.size + spec.workload->stack_bytes;

    // Fit checks (the paper's DNF criterion).
    std::string note;
    checkSection("text", image.text, note);
    checkSection("const", image.cnst, note);
    checkSection("data", image.data, note);
    checkSection("bss", image.bss, note);
    // Stack headroom.
    if (plan.stack_in_sram && spec.placement != Placement::Split) {
        std::uint32_t data_top = std::max(image.data.end(),
                                          image.bss.end());
        std::uint32_t limit = stack_top - spec.workload->stack_bytes;
        if (inSram(image.data.base) && data_top > limit)
            note += "no room for stack in SRAM; ";
    } else if (!plan.stack_in_sram) {
        std::uint32_t data_top = std::max(image.data.end(),
                                          image.bss.end());
        if (!inSram(image.data.base) &&
            data_top > static_cast<std::uint32_t>(
                           stack_top - spec.workload->stack_bytes)) {
            note += "no room for stack in FRAM; ";
        }
    }
    if (!note.empty()) {
        m.fits = false;
        m.fit_note = note;
        return m;
    }

    // Execute.
    sim::MachineConfig config;
    config.clock_hz = spec.clock_hz;
    config.max_cycles = spec.max_cycles;
    config.timer_period_cycles = spec.workload->timer_period_cycles;
    config.predecode_enabled = spec.predecode;
    config.superblock_enabled = spec.superblock;
    sim::Machine machine(config);
    machine.load(image, stack_top);
    if (handler_end > handler_base) {
        machine.addOwnerRange(handler_base, handler_end,
                              sim::CodeOwner::Handler);
    }
    if (memcpy_end > memcpy_base) {
        machine.addOwnerRange(memcpy_base, memcpy_end,
                              sim::CodeOwner::Memcpy);
    }
    if (recover_end > recover_base)
        machine.setRecoveryRange(recover_base, recover_end);
    sim::FaultInjector injector(spec.intermittent.plan);
    if (spec.intermittent.enabled())
        machine.setFaultInjector(&injector);

    // Observability wiring (the runner owns the engine's lifecycle;
    // none of this is constructed for plain runs).
    const ObserveSpec &obs = spec.observe;
    bool want_timeline =
        obs.swap_timeline ||
        (spec.system != System::Baseline &&
         (obs.profile || obs.metrics ||
          (obs.categories & trace::kCatSwap)));
    if (obs.metrics) {
        m.run_metrics = std::make_shared<metrics::RunMetrics>();
        machine.setMetrics(m.run_metrics.get());
    }
    std::unique_ptr<trace::TraceEngine> engine;
    std::unique_ptr<trace::FunctionProfiler> profiler;
    std::unique_ptr<trace::SwapTimeline> timeline;
    std::unique_ptr<trace::StreamSink> stream;
    std::unique_ptr<masm::FunctionIndex> index;
    if (obs.any() || want_timeline) {
        engine = std::make_unique<trace::TraceEngine>(
            obs.categories, obs.ring_capacity);
        index = std::make_unique<masm::FunctionIndex>(
            assembled.functions);
        if (obs.profile) {
            profiler = std::make_unique<trace::FunctionProfiler>();
            for (const masm::FunctionInfo &f : assembled.functions)
                profiler->addFunction(f.name, f.addr, f.size);
            profiler->seal();
            machine.setProfiler(profiler.get());
        }
        if (obs.out && obs.format != ObserveSpec::Format::None) {
            switch (obs.format) {
              case ObserveSpec::Format::Text:
                stream = std::make_unique<trace::TextSink>(*obs.out);
                break;
              case ObserveSpec::Format::Csv:
                stream = std::make_unique<trace::CsvSink>(*obs.out);
                break;
              case ObserveSpec::Format::Chrome:
                stream = std::make_unique<trace::ChromeTraceSink>(
                    *obs.out, spec.clock_hz);
                break;
              case ObserveSpec::Format::None: break;
            }
            stream->setLimit(obs.limit);
            stream->setSymbolizer([idx = index.get()](
                                      std::uint16_t addr) {
                return idx->label(addr);
            });
            if (obs.disasm) {
                stream->setAnnotator([&machine](
                                         const trace::Event &event) {
                    if (event.kind != trace::EventKind::InstrRetire)
                        return std::string();
                    std::uint16_t pc = event.addr;
                    std::uint16_t words[3] = {
                        machine.peek16(pc),
                        machine.peek16(
                            static_cast<std::uint16_t>(pc + 2)),
                        machine.peek16(
                            static_cast<std::uint16_t>(pc + 4)),
                    };
                    return isa::disasm(isa::decodeAt(words, pc).instr);
                });
            }
            engine->addSink(stream.get(),
                            obs.categories ? obs.categories
                                           : trace::kCatAll);
        }
        if (want_timeline) {
            // The timeline must be registered after the stream sink so
            // derived events follow their triggers in the output.
            bool is_block = spec.system == System::BlockCache;
            timeline = std::make_unique<trace::SwapTimeline>(
                is_block ? block.cache_base : swap.cache_base,
                is_block ? block.cache_end : swap.cache_end);
            for (const masm::FunctionInfo &f : assembled.functions)
                timeline->addFunction(f.name, f.addr, f.size);
            timeline->setEngine(engine.get());
            if (profiler)
                timeline->setProfiler(profiler.get());
            engine->addSink(timeline.get(),
                            trace::kCatSwap | trace::kCatAccess |
                                trace::kCatPower);
        }
        machine.setTraceEngine(engine.get());
        support::debug("observe: categories=",
                       trace::categoryNames(engine->mask()),
                       " profile=", obs.profile,
                       " timeline=", want_timeline);
    }

    sim::RunResult result = machine.run();
    if (engine) {
        engine->finish();
        m.trace_emitted = engine->emitted();
        m.trace_dropped = engine->dropped();
    }
    if (profiler) {
        m.profile = profiler->rows(sim::EnergyModel{}, spec.clock_hz);
        m.folded = profiler->foldedStacks();
    }
    if (timeline) {
        m.swap_events = timeline->events();
        m.occupancy = timeline->occupancy();
        m.swap_summary = timeline->summary();
    }
    if (m.run_metrics) {
        // The bus fed the heatmap and stall histogram live; the
        // miss-handler durations come from the reconstructed timeline.
        for (const trace::SwapEvent &e : m.swap_events) {
            if (e.kind == trace::EventKind::MissExit)
                m.run_metrics->miss_handler_cycles.record(
                    e.handler_cycles);
        }
        metrics::Registry &reg = m.run_metrics->registry;
        reg.counter("runs").inc();
        reg.counter("reboots").inc(m.stats.reboots);
        reg.gauge("peak_resident_bytes")
            .set(m.swap_summary.peak_resident_bytes);
    }
    m.done = result.done;
    m.console = machine.mmio().console();
    m.stats = machine.stats();
    m.seconds = sim::EnergyModel::seconds(m.stats, spec.clock_hz);
    m.energy_pj = sim::EnergyModel{}.totalPj(m.stats, spec.clock_hz);
    if (auto it = assembled.symbols.find("bench_result");
        it != assembled.symbols.end()) {
        m.checksum = machine.peek16(it->second);
    }

    // Snapshot .data + .bss for cross-system program-flow validation.
    for (std::uint32_t a = image.data.base; a < image.data.end(); ++a)
        m.data_snapshot.push_back(
            machine.peek8(static_cast<std::uint16_t>(a)));
    for (std::uint32_t a = image.bss.base; a < image.bss.end(); ++a)
        m.data_snapshot.push_back(
            machine.peek8(static_cast<std::uint16_t>(a)));
    return m;
}

IntermittentCheck
checkIntermittent(const RunSpec &spec)
{
    IntermittentCheck check;
    RunSpec quiet = spec;
    quiet.intermittent = IntermittentSpec{};
    check.reference = runOne(quiet);
    check.faulted = runOne(spec);
    return check;
}

Metrics
run(const workloads::Workload &workload, System system,
    Placement placement, std::uint32_t clock_hz)
{
    RunSpec spec;
    spec.workload = &workload;
    spec.system = system;
    spec.placement = placement;
    spec.clock_hz = clock_hz;
    return runOne(spec);
}

} // namespace swapram::harness
