#include "harness/runner.hh"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "blockcache/builder.hh"
#include "isa/decode.hh"
#include "isa/disasm.hh"
#include "masm/assembler.hh"
#include "masm/parser.hh"
#include "sim/machine.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/platform.hh"
#include "swapram/builder.hh"
#include "trace/sinks.hh"

namespace swapram::harness {

namespace plat = swapram::platform;

std::string
systemName(System system)
{
    switch (system) {
      case System::Baseline: return "baseline";
      case System::SwapRam: return "swapram";
      case System::BlockCache: return "block";
    }
    support::panic("systemName: bad system");
}

std::string
startupSource(std::uint16_t stack_top, int repeats,
              const std::string &recover)
{
    std::ostringstream os;
    os << "        .text\n"
          "        .func __start\n"
          "        MOV #" << stack_top << ", SP\n";
    // The recovery call is padded to one FRAM prefetch line (8 bytes)
    // so later functions keep their alignment — and their hardware
    // cache stall pattern — whether or not the call is emitted.
    if (!recover.empty()) {
        os << "        CALL #" << recover << "\n"
              "        NOP\n"
              "        NOP\n";
    }
    if (repeats <= 1) {
        os << "        CALL #main\n";
    } else {
        os << "        MOV #" << repeats << ", R10\n"
              "__start_loop:\n"
              "        CALL #main\n"
              "        DEC R10\n"
              "        JNZ __start_loop\n";
    }
    os << "        MOV.B #1, &__DONE\n"
          "__start_spin:\n"
          "        JMP __start_spin\n"
          "        .endfunc\n";
    return os.str();
}

namespace {

/** Region a section base falls in, for fit checks. */
bool
inSram(std::uint16_t base, std::uint32_t sram_end)
{
    return base >= plat::kSramBase && base < sram_end;
}

/** Check that a section fits in its region; append a note if not. */
void
checkSection(const char *name, const masm::Range &range,
             std::uint32_t sram_end, std::string &note)
{
    if (range.size == 0)
        return;
    if (inSram(range.base, sram_end)) {
        if (range.end() > sram_end) {
            note += support::cat(name, " overflows SRAM (",
                                 range.end() - plat::kSramBase,
                                 " bytes); ");
        }
    } else {
        if (range.end() > plat::kVectorsBase) {
            note += support::cat(name, " overflows FRAM (ends at ",
                                 support::hex16(static_cast<std::uint16_t>(
                                     range.end() & 0xFFFF)),
                                 "); ");
        }
    }
}

/**
 * Post-run SwapRAM state invariants (ISSUE 7 satellite): every redirect
 * cell points either at the miss handler (not cached, and the function
 * body still lives at its FRAM address) or at a live SRAM copy that is
 * in cache bounds, byte-identical to the FRAM body, and non-overlapping
 * with every other resident copy; every relocation cell is consistent
 * with the residency; every active counter has unwound to zero. Runs
 * after every completed SwapRAM run — all tests and both fuzz harnesses
 * exercise it for free. Violations panic, which the engine captures as
 * a run failure.
 */
void
verifySwapInvariants(const sim::Machine &machine,
                     const masm::AssembleResult &assembled,
                     const cache::FuncIds &funcs,
                     const cache::Options &swap)
{
    auto sym = [&](const char *name) {
        auto it = assembled.symbols.find(name);
        if (it == assembled.symbols.end())
            support::panic("swap invariants: missing symbol ", name);
        return it->second;
    };
    const std::uint16_t redirect_t = sym("__swp_redirect");
    const std::uint16_t cached_t = sym("__swp_cached");
    const std::uint16_t active_t = sym("__swp_active");
    const std::uint16_t rbase_t = sym("__swp_rbase");
    const std::uint16_t rcnt_t = sym("__swp_rcnt");
    const std::uint16_t rofs_t = sym("__swp_rofs");
    const std::uint16_t rval_t = sym("__swp_rval");
    const std::uint16_t miss = sym("__swp_miss");
    const std::uint16_t code_end = swap.poolBase();

    std::vector<std::pair<std::uint16_t, std::uint16_t>> resident;
    for (int id = 0; id < funcs.count(); ++id) {
        const std::string &name = funcs.names[id];
        const masm::FunctionInfo &f = assembled.function(name);
        auto cell = [&](std::uint16_t table) {
            return machine.peek16(
                static_cast<std::uint16_t>(table + 2 * id));
        };
        std::uint16_t redirect = cell(redirect_t);
        std::uint16_t cached = cell(cached_t);
        if (cell(active_t) != 0) {
            support::panic("swap invariants: '", name,
                           "' active counter nonzero at completion");
        }
        std::uint16_t home = cached == 0xFFFF ? f.addr : cached;
        if (cached == 0xFFFF) {
            if (redirect != miss) {
                support::panic("swap invariants: '", name,
                               "' not cached but redirect cell holds ",
                               support::hex16(redirect));
            }
        } else {
            if (redirect != cached) {
                support::panic("swap invariants: '", name,
                               "' cached at ", support::hex16(cached),
                               " but redirect cell holds ",
                               support::hex16(redirect));
            }
            if (cached < swap.cache_base ||
                static_cast<std::uint32_t>(cached) + f.size > code_end) {
                support::panic("swap invariants: '", name,
                               "' SRAM copy [", support::hex16(cached),
                               ", +", f.size, ") outside the code cache");
            }
            for (std::uint32_t i = 0; i < f.size; ++i) {
                if (machine.peek8(static_cast<std::uint16_t>(cached + i)) !=
                    machine.peek8(static_cast<std::uint16_t>(f.addr + i))) {
                    support::panic("swap invariants: '", name,
                                   "' SRAM copy differs from FRAM body "
                                   "at offset ", i);
                }
            }
            resident.emplace_back(cached,
                                  static_cast<std::uint16_t>(cached +
                                                             f.size));
        }
        // Relocation cells must match the residency either way.
        std::uint16_t rbase = cell(rbase_t);
        std::uint16_t rcnt = cell(rcnt_t);
        for (std::uint16_t k = 0; k < rcnt; ++k) {
            auto at = static_cast<std::uint16_t>(rbase + 2 * k);
            std::uint16_t ofs = machine.peek16(
                static_cast<std::uint16_t>(rofs_t + at));
            std::uint16_t val = machine.peek16(
                static_cast<std::uint16_t>(rval_t + at));
            if (val != static_cast<std::uint16_t>(home + ofs)) {
                support::panic("swap invariants: '", name,
                               "' reloc cell ", k, " holds ",
                               support::hex16(val), ", expected ",
                               support::hex16(
                                   static_cast<std::uint16_t>(home +
                                                              ofs)));
            }
        }
    }
    std::sort(resident.begin(), resident.end());
    for (std::size_t i = 1; i < resident.size(); ++i) {
        if (resident[i].first < resident[i - 1].second) {
            support::panic("swap invariants: resident copies overlap at ",
                           support::hex16(resident[i].first));
        }
    }
}

} // namespace

Metrics
runOne(const RunSpec &spec)
{
    if (!spec.workload)
        support::fatal("runOne: no workload");
    Metrics m;

    PlacementPlan plan = makePlacement(spec.placement);

    // Crash consistency: the cache runtimes' startup stub calls their
    // generated recovery routine before main (harmless on the first
    // boot, essential after a power failure).
    std::string recover;
    if (spec.system == System::SwapRam && spec.swap.boot_recovery)
        recover = "__swp_recover";
    else if (spec.system == System::BlockCache &&
             spec.block.boot_recovery)
        recover = "__bb_recover";

    // Checkpointing preconditions. The restore rolls back SRAM, the
    // runtime metadata, and FRAM .data/.bss — a stack living elsewhere
    // in FRAM would survive un-rolled-back and desynchronise from the
    // restored register file (the resumed routine returns into this
    // boot's stack frames). And the restore itself runs from the
    // recovery routine, so recovery must be on.
    const bool ckpt_on =
        (spec.system == System::SwapRam && spec.swap.ckpt.enabled()) ||
        (spec.system == System::BlockCache &&
         spec.block.ckpt.enabled());
    if (ckpt_on) {
        if (!plan.stack_in_sram) {
            support::fatal("checkpointing requires the stack in "
                           "captured SRAM, but placement '",
                           placementName(spec.placement),
                           "' keeps it in FRAM (restore cannot roll a "
                           "live FRAM stack back)");
        }
        if (recover.empty()) {
            support::fatal("checkpointing requires boot recovery "
                           "(__ckpt_restore is invoked from the "
                           "recovery routine)");
        }
    }

    // An SRAM stack placed at the platform SRAM end must follow the
    // configured SRAM size (capacity sweeps shrink the mapped region;
    // a stack at the default 0x3000 would fault on the first push).
    if (plan.stack_in_sram &&
        plan.stack_top == static_cast<std::uint16_t>(plat::kSramEnd)) {
        plan.stack_top = static_cast<std::uint16_t>(plat::kSramBase +
                                                    spec.sram_size);
    }

    std::string body = spec.workload->source;
    if (spec.include_lib)
        body += workloads::libSource();
    masm::Program program = masm::parse(
        startupSource(plan.stack_top, spec.main_repeats, recover) +
        body);

    // For the Split placement, size the data region first with a
    // baseline assembly, then carve the cache from the SRAM left over.
    cache::Options swap = spec.swap;
    bb::Options block = spec.block;
    std::uint16_t stack_top = plan.stack_top;

    // Capacity sweeps (ISSUE 7): re-anchor default cache bounds to the
    // selected SRAM size, and let workloads that use the data-swap API
    // supply their preferred pool size when the spec does not override.
    const std::uint32_t sram_end = plat::kSramBase + spec.sram_size;
    if (spec.sram_size != plat::kSramSize) {
        if (swap.cache_end == plat::kSramEnd)
            swap.cache_end = static_cast<std::uint16_t>(sram_end);
        if (block.cache_end == plat::kSramEnd)
            block.cache_end = static_cast<std::uint16_t>(sram_end);
        if (swap.ckpt.sram_end == plat::kSramEnd)
            swap.ckpt.sram_end = static_cast<std::uint16_t>(sram_end);
        if (block.ckpt.sram_end == plat::kSramEnd)
            block.ckpt.sram_end = static_cast<std::uint16_t>(sram_end);
    }
    if (!swap.data_pool_bytes && spec.workload->data_pool_bytes)
        swap.data_pool_bytes = spec.workload->data_pool_bytes;
    if (swap.cache_end > sram_end || block.cache_end > sram_end) {
        support::fatal("cache region ends beyond the configured SRAM "
                       "end ", support::hex16(static_cast<std::uint16_t>(
                                   sram_end)));
    }

    // Standard also places .data/.bss (and the stack) in SRAM, so a
    // caching system must carve its region out of what is left —
    // otherwise cached copies share addresses with data and the stack,
    // and ordinary stores corrupt resident code (the post-run invariant
    // walk catches exactly that).
    const bool carve_standard =
        spec.placement == Placement::Standard &&
        spec.system != System::Baseline;
    if (spec.placement == Placement::Split || carve_standard) {
        // The probe is a plain baseline assembly, which does not
        // define the recovery symbol; assemble without the call (a
        // text-only difference, so the data/bss sizing is identical).
        masm::Program probe_program =
            recover.empty()
                ? program
                : masm::parse(startupSource(plan.stack_top,
                                            spec.main_repeats) +
                              body);
        masm::AssembleResult probe =
            masm::assemble(probe_program, plan.layout);
        std::uint32_t bss_end = probe.image.bss.end();
        if (carve_standard) {
            // Standard keeps the stack at the SRAM top: the cache gets
            // the span between bss and the stack reservation.
            std::uint32_t base = (bss_end + 1) & ~1u;
            std::uint32_t end =
                (sram_end - spec.workload->stack_bytes) & ~1u;
            if (base + 64 > end) {
                m.fits = false;
                m.fit_note = "data+stack leave no SRAM for the cache";
                return m;
            }
            swap.cache_base = static_cast<std::uint16_t>(base);
            swap.cache_end = static_cast<std::uint16_t>(end);
            block.cache_base = static_cast<std::uint16_t>(base);
            block.cache_end = static_cast<std::uint16_t>(end);
        } else {
            std::uint32_t top =
                (bss_end + spec.workload->stack_bytes + 1) & ~1u;
            if (top >= sram_end) {
                m.fits = false;
                m.fit_note = "data+stack exceed SRAM";
                return m;
            }
            stack_top = static_cast<std::uint16_t>(top);
            swap.cache_base = stack_top;
            swap.cache_end = static_cast<std::uint16_t>(sram_end);
            block.cache_base = stack_top;
            block.cache_end = static_cast<std::uint16_t>(sram_end);
        }
    }

    // Build under the selected system.
    masm::AssembleResult assembled;
    std::uint16_t handler_base = 0, handler_end = 0;
    std::uint16_t memcpy_base = 0, memcpy_end = 0;
    std::uint16_t recover_base = 0, recover_end = 0;
    std::uint16_t datapool_base = 0, datapool_end = 0;
    std::uint16_t ckpt_base = 0, ckpt_end = 0;
    cache::FuncIds swap_funcs; // kept for post-run invariant checks
    switch (spec.system) {
      case System::Baseline: {
        assembled = masm::assemble(program, plan.layout);
        m.app_text_bytes = assembled.image.text.size;
        break;
      }
      case System::SwapRam: {
        cache::BuildInfo info = cache::build(program, plan.layout, swap);
        assembled = std::move(info.assembled);
        m.app_text_bytes = info.app_text_bytes;
        m.runtime_bytes = info.runtime_text_bytes;
        m.metadata_bytes = info.metadata_bytes;
        m.handler_bytes = info.handler_bytes;
        m.n_funcs = info.funcs.count();
        m.reloc_count = info.reloc_count;
        handler_base = info.handler_addr;
        handler_end = info.handler_end;
        memcpy_base = info.memcpy_addr;
        memcpy_end = info.memcpy_end;
        recover_base = info.recover_addr;
        recover_end = info.recover_end;
        datapool_base = info.datapool_addr;
        datapool_end = info.datapool_end;
        ckpt_base = info.ckpt_addr;
        ckpt_end = info.ckpt_end;
        swap_funcs = info.funcs;
        break;
      }
      case System::BlockCache: {
        bb::BuildInfo info = bb::build(program, plan.layout, block);
        assembled = std::move(info.assembled);
        m.app_text_bytes = info.app_text_bytes;
        m.runtime_bytes = info.runtime_bytes;
        m.metadata_bytes = info.metadata_bytes;
        m.n_funcs = info.n_blocks;
        handler_base = info.runtime_addr;
        handler_end = info.runtime_end;
        memcpy_base = info.memcpy_addr;
        memcpy_end = info.memcpy_end;
        recover_base = info.recover_addr;
        recover_end = info.recover_end;
        ckpt_base = info.ckpt_addr;
        ckpt_end = info.ckpt_end;
        break;
      }
    }

    const masm::Image &image = assembled.image;
    m.text_bytes = image.text.size;
    m.const_bytes = image.cnst.size;
    m.data_bytes = image.data.size;
    m.bss_bytes = image.bss.size;
    m.ram_bytes =
        image.data.size + image.bss.size + spec.workload->stack_bytes;

    // Fit checks (the paper's DNF criterion).
    std::string note;
    checkSection("text", image.text, sram_end, note);
    checkSection("const", image.cnst, sram_end, note);
    checkSection("data", image.data, sram_end, note);
    checkSection("bss", image.bss, sram_end, note);
    // Stack headroom.
    if (plan.stack_in_sram && spec.placement != Placement::Split) {
        std::uint32_t data_top = std::max(image.data.end(),
                                          image.bss.end());
        std::uint32_t limit = stack_top - spec.workload->stack_bytes;
        if (inSram(image.data.base, sram_end) && data_top > limit)
            note += "no room for stack in SRAM; ";
    } else if (!plan.stack_in_sram) {
        std::uint32_t data_top = std::max(image.data.end(),
                                          image.bss.end());
        if (!inSram(image.data.base, sram_end) &&
            data_top > static_cast<std::uint32_t>(
                           stack_top - spec.workload->stack_bytes)) {
            note += "no room for stack in FRAM; ";
        }
    }
    if (!note.empty()) {
        m.fits = false;
        m.fit_note = note;
        return m;
    }

    // Execute.
    sim::MachineConfig config;
    config.clock_hz = spec.clock_hz;
    config.max_cycles = spec.max_cycles;
    config.timer_period_cycles = spec.workload->timer_period_cycles;
    config.predecode_enabled = spec.predecode;
    config.superblock_enabled = spec.superblock;
    config.threaded_enabled = spec.threaded;
    config.sram_size = spec.sram_size;
    if (spec.intermittent.livelock_boots)
        config.livelock_boots = spec.intermittent.livelock_boots;
    sim::Machine machine(config);
    machine.load(image, stack_top);
    if (handler_end > handler_base) {
        machine.addOwnerRange(handler_base, handler_end,
                              sim::CodeOwner::Handler);
    }
    if (memcpy_end > memcpy_base) {
        machine.addOwnerRange(memcpy_base, memcpy_end,
                              sim::CodeOwner::Memcpy);
    }
    if (datapool_end > datapool_base) {
        // __swp_din/__swp_dout count as runtime overhead, like the
        // miss handler they parallel (their copies still run under the
        // Memcpy owner).
        machine.addOwnerRange(datapool_base, datapool_end,
                              sim::CodeOwner::Handler);
    }
    if (recover_end > recover_base)
        machine.setRecoveryRange(recover_base, recover_end);
    if (ckpt_end > ckpt_base) {
        // The checkpoint routines are runtime overhead like the miss
        // handler; probe their entry points for the trace stream.
        machine.addOwnerRange(ckpt_base, ckpt_end,
                              sim::CodeOwner::Handler);
        auto entry = [&](const char *name) -> std::uint16_t {
            auto it = assembled.symbols.find(name);
            return it == assembled.symbols.end() ? 0 : it->second;
        };
        machine.setCkptProbe(entry("__ckpt_commit"),
                             entry("__ckpt_restore"));
    }
    if (config.livelock_boots) {
        // Persistent cells that change even on a zero-progress boot
        // must not feed the livelock watermark: lifetime statistics
        // counters and the checkpoint scheme's plumbing (sequence
        // words, the periodic countdown, the low-energy latch). The
        // sealed buffer payloads still hash, so committing *new*
        // state resets the streak.
        auto skipCell = [&](const char *name, std::uint16_t bytes) {
            auto it = assembled.symbols.find(name);
            if (it != assembled.symbols.end())
                machine.addWatermarkSkip(it->second,
                                         it->second + bytes);
        };
        for (const char *name :
             {"__swp_nevict", "__swp_nretry", "__swp_dnin",
              "__swp_dnout", "__swp_dnfull", "__ckpt_seq",
              "__ckpt_ctr", "__ckpt_low", "__ckpt_ncommit",
              "__ckpt_nrestore"})
            skipCell(name, 2);
        skipCell("__ckpt_buf0", 2); // buffer seq word; payload hashes
        skipCell("__ckpt_buf1", 2);
    }
    sim::FaultInjector injector(spec.intermittent.plan);
    if (spec.intermittent.enabled()) {
        if (spec.intermittent.plan.kind == sim::FaultPlan::Kind::Trace) {
            injector.bindEnergy(&machine.stats(), sim::EnergyModel{},
                                spec.clock_hz);
        }
        machine.setFaultInjector(&injector);
    }

    // Observability wiring (the runner owns the engine's lifecycle;
    // none of this is constructed for plain runs).
    const ObserveSpec &obs = spec.observe;
    bool want_timeline =
        obs.swap_timeline ||
        (spec.system != System::Baseline &&
         (obs.profile || obs.metrics ||
          (obs.categories & trace::kCatSwap)));
    if (obs.metrics) {
        m.run_metrics = std::make_shared<metrics::RunMetrics>();
        machine.setMetrics(m.run_metrics.get());
    }
    std::unique_ptr<trace::TraceEngine> engine;
    std::unique_ptr<trace::FunctionProfiler> profiler;
    std::unique_ptr<trace::SwapTimeline> timeline;
    std::unique_ptr<trace::StreamSink> stream;
    std::unique_ptr<masm::FunctionIndex> index;
    if (obs.any() || want_timeline) {
        engine = std::make_unique<trace::TraceEngine>(
            obs.categories, obs.ring_capacity);
        index = std::make_unique<masm::FunctionIndex>(
            assembled.functions);
        if (obs.profile) {
            profiler = std::make_unique<trace::FunctionProfiler>();
            for (const masm::FunctionInfo &f : assembled.functions)
                profiler->addFunction(f.name, f.addr, f.size);
            profiler->seal();
            machine.setProfiler(profiler.get());
        }
        if (obs.out && obs.format != ObserveSpec::Format::None) {
            switch (obs.format) {
              case ObserveSpec::Format::Text:
                stream = std::make_unique<trace::TextSink>(*obs.out);
                break;
              case ObserveSpec::Format::Csv:
                stream = std::make_unique<trace::CsvSink>(*obs.out);
                break;
              case ObserveSpec::Format::Chrome:
                stream = std::make_unique<trace::ChromeTraceSink>(
                    *obs.out, spec.clock_hz);
                break;
              case ObserveSpec::Format::None: break;
            }
            stream->setLimit(obs.limit);
            stream->setSymbolizer([idx = index.get()](
                                      std::uint16_t addr) {
                return idx->label(addr);
            });
            if (obs.disasm) {
                stream->setAnnotator([&machine](
                                         const trace::Event &event) {
                    if (event.kind != trace::EventKind::InstrRetire)
                        return std::string();
                    std::uint16_t pc = event.addr;
                    std::uint16_t words[3] = {
                        machine.peek16(pc),
                        machine.peek16(
                            static_cast<std::uint16_t>(pc + 2)),
                        machine.peek16(
                            static_cast<std::uint16_t>(pc + 4)),
                    };
                    return isa::disasm(isa::decodeAt(words, pc).instr);
                });
            }
            engine->addSink(stream.get(),
                            obs.categories ? obs.categories
                                           : trace::kCatAll);
        }
        if (want_timeline) {
            // The timeline must be registered after the stream sink so
            // derived events follow their triggers in the output.
            bool is_block = spec.system == System::BlockCache;
            timeline = std::make_unique<trace::SwapTimeline>(
                is_block ? block.cache_base : swap.cache_base,
                is_block ? block.cache_end : swap.cache_end);
            for (const masm::FunctionInfo &f : assembled.functions)
                timeline->addFunction(f.name, f.addr, f.size);
            if (!is_block && swap.data_pool_bytes) {
                timeline->setDataPool(swap.poolBase(), datapool_base,
                                      datapool_end);
            }
            timeline->setEngine(engine.get());
            if (profiler)
                timeline->setProfiler(profiler.get());
            engine->addSink(timeline.get(),
                            trace::kCatSwap | trace::kCatAccess |
                                trace::kCatPower);
        }
        machine.setTraceEngine(engine.get());
        support::debug("observe: categories=",
                       trace::categoryNames(engine->mask()),
                       " profile=", obs.profile,
                       " timeline=", want_timeline);
    }

    sim::RunResult result = machine.run();
    if (engine) {
        engine->finish();
        m.trace_emitted = engine->emitted();
        m.trace_dropped = engine->dropped();
    }
    if (profiler) {
        m.profile = profiler->rows(sim::EnergyModel{}, spec.clock_hz);
        m.folded = profiler->foldedStacks();
    }
    if (timeline) {
        m.swap_events = timeline->events();
        m.occupancy = timeline->occupancy();
        m.swap_summary = timeline->summary();
    }
    if (m.run_metrics) {
        // The bus fed the heatmap and stall histogram live; the
        // miss-handler durations come from the reconstructed timeline.
        for (const trace::SwapEvent &e : m.swap_events) {
            if (e.kind == trace::EventKind::MissExit)
                m.run_metrics->miss_handler_cycles.record(
                    e.handler_cycles);
        }
        metrics::Registry &reg = m.run_metrics->registry;
        reg.counter("runs").inc();
        reg.counter("reboots").inc(m.stats.reboots);
        reg.gauge("peak_resident_bytes")
            .set(m.swap_summary.peak_resident_bytes);
    }
    m.done = result.done;
    m.stop = result.stop;
    m.console = machine.mmio().console();
    m.stats = machine.stats();
    m.seconds = sim::EnergyModel::seconds(m.stats, spec.clock_hz);
    m.energy_pj = sim::EnergyModel{}.totalPj(m.stats, spec.clock_hz);
    if (spec.intermittent.plan.kind == sim::FaultPlan::Kind::Trace) {
        std::uint64_t cycles = m.stats.totalCycles();
        m.harvested_pj = injector.harvestedPj(cycles);
        m.wall_seconds = injector.wallSeconds(cycles);
    }
    if (auto it = assembled.symbols.find("bench_result");
        it != assembled.symbols.end()) {
        m.checksum = machine.peek16(it->second);
    }
    auto counter = [&](const char *name) -> std::uint16_t {
        auto it = assembled.symbols.find(name);
        return it == assembled.symbols.end()
                   ? 0
                   : machine.peek16(it->second);
    };
    // Both cache runtimes share the checkpoint counter cells (absent
    // when the scheme is None — counter() then reads 0).
    m.rt_ckpt_commits = counter("__ckpt_ncommit");
    m.rt_ckpt_restores = counter("__ckpt_nrestore");
    if (spec.system == System::SwapRam) {
        m.rt_evictions = counter("__swp_nevict");
        m.rt_retries = counter("__swp_nretry");
        m.rt_data_in = counter("__swp_dnin");
        m.rt_data_out = counter("__swp_dnout");
        m.rt_data_full = counter("__swp_dnfull");
        // Invariants only hold for completed runs, and only when boot
        // recovery repaired any power failures (no-recovery intermittent
        // runs exist precisely to demonstrate the inconsistent state).
        if (result.done &&
            (!spec.intermittent.enabled() || swap.boot_recovery)) {
            verifySwapInvariants(machine, assembled, swap_funcs, swap);
        }
    }

    // Snapshot .data + .bss for cross-system program-flow validation.
    for (std::uint32_t a = image.data.base; a < image.data.end(); ++a)
        m.data_snapshot.push_back(
            machine.peek8(static_cast<std::uint16_t>(a)));
    for (std::uint32_t a = image.bss.base; a < image.bss.end(); ++a)
        m.data_snapshot.push_back(
            machine.peek8(static_cast<std::uint16_t>(a)));
    return m;
}

IntermittentCheck
checkIntermittent(const RunSpec &spec)
{
    IntermittentCheck check;
    RunSpec quiet = spec;
    quiet.intermittent = IntermittentSpec{};
    check.reference = runOne(quiet);
    check.faulted = runOne(spec);
    return check;
}

Metrics
run(const workloads::Workload &workload, System system,
    Placement placement, std::uint32_t clock_hz)
{
    RunSpec spec;
    spec.workload = &workload;
    spec.system = system;
    spec.placement = placement;
    spec.clock_hz = clock_hz;
    return runOne(spec);
}

} // namespace swapram::harness
