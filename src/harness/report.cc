#include "harness/report.hh"

#include <cmath>

#include "sim/memory.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "trace/event.hh"

namespace swapram::harness {

namespace json = support::json;

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        support::panic("Table: row width mismatch");
    rows_.push_back(std::move(cells));
}

std::string
Table::text() const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }
    auto emit_row = [&](const std::vector<std::string> &row) {
        std::string out;
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                out += "  ";
            std::string cell = row[c];
            if (c == 0) {
                cell.resize(width[c], ' ');
                out += cell;
            } else {
                out += std::string(width[c] - cell.size(), ' ') + cell;
            }
        }
        out += "\n";
        return out;
    };
    std::string out = emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    out += std::string(total, '-') + "\n";
    for (const auto &row : rows_)
        out += emit_row(row);
    return out;
}

std::string
percentDelta(double value, double reference)
{
    if (reference == 0)
        return "n/a";
    double pct = (value / reference - 1.0) * 100.0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", pct);
    return buf;
}

std::string
withCommas(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out += ',';
        out += *it;
        ++count;
    }
    return {out.rbegin(), out.rend()};
}

double
geoMean(const std::vector<double> &ratios)
{
    if (ratios.empty())
        return 1.0;
    double log_sum = 0;
    for (double r : ratios)
        log_sum += std::log(r);
    return std::exp(log_sum / static_cast<double>(ratios.size()));
}

std::string
geoMeanDelta(const std::vector<double> &ratios)
{
    return percentDelta(geoMean(ratios), 1.0);
}

namespace {

const char *
stopName(sim::RunResult::Stop stop)
{
    switch (stop) {
      case sim::RunResult::Stop::Done: return "done";
      case sim::RunResult::Stop::MaxCycles: return "max-cycles";
      case sim::RunResult::Stop::Livelock: return "livelock";
      case sim::RunResult::Stop::Exhausted: return "exhausted";
    }
    return "unknown";
}

json::Value
accessJson(const sim::AccessCounts &a)
{
    return json::Object{{"fetch", a.fetch},
                        {"read", a.read},
                        {"write", a.write}};
}

json::Value
statsJson(const sim::Stats &s)
{
    json::Object owners;
    for (int i = 0; i < sim::kNumOwners; ++i) {
        owners.emplace(
            sim::ownerName(static_cast<sim::CodeOwner>(i)),
            s.instr_by_owner[static_cast<std::size_t>(i)]);
    }
    return json::Object{
        {"instructions", s.instructions},
        {"base_cycles", s.base_cycles},
        {"stall_cycles", s.stall_cycles},
        {"total_cycles", s.totalCycles()},
        {"sram", accessJson(s.sram)},
        {"fram", accessJson(s.fram)},
        {"mmio", accessJson(s.mmio)},
        {"fram_cache_hits", s.fram_cache_hits},
        {"fram_cache_misses", s.fram_cache_misses},
        {"code_space_accesses", s.code_space_accesses},
        {"data_space_accesses", s.data_space_accesses},
        {"instr_by_owner", std::move(owners)},
        {"interrupts", s.interrupts},
        {"reboots", s.reboots},
        {"recovery_cycles", s.recovery_cycles},
        {"predecode_hits", s.predecode_hits},
        {"predecode_misses", s.predecode_misses},
        {"predecode_invalidations", s.predecode_invalidations},
        {"superblock_blocks_built", s.superblock_blocks_built},
        {"superblock_dispatches", s.superblock_dispatches},
        {"superblock_instructions", s.superblock_instructions},
        {"superblock_bail_operand", s.superblock_bail_operand},
        {"superblock_bail_smc", s.superblock_bail_smc},
        {"superblock_bail_boundary", s.superblock_bail_boundary},
        {"superblock_invalidations", s.superblock_invalidations},
        {"threaded_blocks_lowered", s.threaded_blocks_lowered},
        {"threaded_dispatches", s.threaded_dispatches},
        {"threaded_instructions", s.threaded_instructions},
        {"threaded_bail_operand", s.threaded_bail_operand},
        {"threaded_bail_smc", s.threaded_bail_smc},
        {"threaded_bail_boundary", s.threaded_bail_boundary},
    };
}

json::Value
profileRowJson(const trace::ProfileRow &r)
{
    return json::Object{
        {"name", r.name},
        {"addr", r.addr},
        {"size", r.size},
        {"instructions", r.instructions},
        {"base_cycles", r.base_cycles},
        {"stall_cycles", r.stall_cycles},
        {"total_cycles", r.totalCycles()},
        {"fram_fetch", r.fram_fetch},
        {"fram_read", r.fram_read},
        {"fram_write", r.fram_write},
        {"sram_fetch", r.sram_fetch},
        {"sram_read", r.sram_read},
        {"sram_write", r.sram_write},
        {"sram_resident_instructions", r.sram_resident_instructions},
        {"energy_pj", r.energy_pj},
    };
}

json::Value
swapEventJson(const trace::SwapEvent &e)
{
    json::Object o{{"kind", trace::kindName(e.kind)},
                   {"cycle", e.cycle}};
    switch (e.kind) {
      case trace::EventKind::CopyIn:
      case trace::EventKind::Evict:
        o.emplace("func", e.func);
        o.emplace("cache_addr", e.cache_addr);
        o.emplace("nvm_addr", e.nvm_addr);
        o.emplace("bytes", e.bytes);
        break;
      case trace::EventKind::DataSwapIn:
      case trace::EventKind::DataSwapOut:
        o.emplace("cache_addr", e.cache_addr);
        o.emplace("nvm_addr", e.nvm_addr);
        o.emplace("bytes", e.bytes);
        break;
      case trace::EventKind::MissExit:
        o.emplace("handler_cycles", e.handler_cycles);
        break;
      case trace::EventKind::PowerFail:
        o.emplace("pc", e.cache_addr);
        break;
      case trace::EventKind::RecoveryExit:
        o.emplace("recovery_cycles", e.handler_cycles);
        break;
      default: break;
    }
    return o;
}

json::Value
histogramJson(const metrics::Histogram &h)
{
    json::Array buckets;
    for (int i = 0; i < metrics::Histogram::kBuckets; ++i) {
        std::uint64_t n = h.buckets()[static_cast<std::size_t>(i)];
        if (!n)
            continue;
        buckets.push_back(json::Object{
            {"le", metrics::Histogram::bucketHigh(i)}, {"count", n}});
    }
    return json::Object{
        {"count", h.count()}, {"sum", h.sum()},   {"min", h.min()},
        {"max", h.max()},     {"mean", h.mean()}, {"p50", h.p50()},
        {"p95", h.p95()},     {"p99", h.p99()},
        {"buckets", std::move(buckets)},
    };
}

const char *
regionName(std::uint16_t base)
{
    switch (sim::regionOf(base)) {
      case sim::RegionKind::Sram: return "sram";
      case sim::RegionKind::Fram: return "fram";
      case sim::RegionKind::Mmio: return "mmio";
      case sim::RegionKind::Unmapped: break;
    }
    return "unmapped";
}

json::Value
pageCountsJson(const metrics::AddressHeatmap::Page &p)
{
    return json::Object{{"fetch", p.fetch},
                        {"read", p.read},
                        {"write", p.write},
                        {"stall_cycles", p.stall_cycles}};
}

json::Value
heatmapJson(const metrics::AddressHeatmap &hm)
{
    using Heatmap = metrics::AddressHeatmap;
    // Pages classify by their base address: every region boundary in
    // the platform map is 64-byte aligned or alone in its page.
    std::map<std::string, Heatmap::Page> regions;
    for (unsigned i = 0; i < Heatmap::kPages; ++i) {
        const Heatmap::Page &p = hm.page(i);
        if (p.empty())
            continue;
        regions[regionName(Heatmap::baseOf(i))].merge(p);
    }
    json::Object region_obj;
    for (const auto &[name, page] : regions)
        region_obj.emplace(name, pageCountsJson(page));

    constexpr std::size_t kTopPages = 16;
    json::Array top;
    for (unsigned i : hm.topPages(kTopPages)) {
        const Heatmap::Page &p = hm.page(i);
        top.push_back(json::Object{
            {"page", i},
            {"base", Heatmap::baseOf(i)},
            {"region", std::string(regionName(Heatmap::baseOf(i)))},
            {"fetch", p.fetch},
            {"read", p.read},
            {"write", p.write},
            {"stall_cycles", p.stall_cycles},
        });
    }
    return json::Object{
        {"page_bytes", Heatmap::kPageBytes},
        {"totals", pageCountsJson(hm.totals())},
        {"regions", std::move(region_obj)},
        {"top_pages", std::move(top)},
    };
}

} // namespace

json::Value
metricsJson(const metrics::RunMetrics &rm)
{
    json::Object counters, gauges, histograms;
    for (const auto &[name, c] : rm.registry.counters())
        counters.emplace(name, c.value);
    for (const auto &[name, g] : rm.registry.gauges())
        gauges.emplace(name, g.value);
    for (const auto &[name, h] : rm.registry.histograms())
        histograms.emplace(name, histogramJson(h));
    return json::Object{
        {"schema", "swapram-metrics/v1"},
        {"counters", std::move(counters)},
        {"gauges", std::move(gauges)},
        {"histograms", std::move(histograms)},
        {"heatmap", heatmapJson(rm.heatmap)},
    };
}

RunReport
RunReport::make(const RunSpec &spec, Metrics metrics)
{
    RunReport report;
    report.workload = spec.workload ? spec.workload->name : "";
    report.system = systemName(spec.system);
    report.placement = placementName(spec.placement);
    report.clock_hz = spec.clock_hz;
    report.main_repeats = spec.main_repeats;
    report.sram_size = spec.sram_size;
    report.metrics = std::move(metrics);
    return report;
}

json::Value
RunReport::json() const
{
    const Metrics &m = metrics;
    json::Object root{
        {"schema", kSchema},
        {"workload", workload},
        {"system", system},
        {"placement", placement},
        {"clock_hz", clock_hz},
        {"main_repeats", main_repeats},
        {"sram_size", sram_size},
        {"fits", m.fits},
        {"done", m.done},
        {"stop", stopName(m.stop)},
        {"checksum", m.checksum},
    };
    if (!m.fits) {
        root.emplace("fit_note", m.fit_note);
        return root;
    }
    root.emplace("stats", statsJson(m.stats));
    root.emplace("energy_pj", m.energy_pj);
    root.emplace("seconds", m.seconds);
    if (m.harvested_pj || m.wall_seconds) {
        root.emplace("harvested_pj", m.harvested_pj);
        root.emplace("wall_seconds", m.wall_seconds);
    }
    if (!m.console.empty())
        root.emplace("console", m.console);
    root.emplace(
        "sizes",
        json::Object{
            {"text_bytes", m.text_bytes},
            {"const_bytes", m.const_bytes},
            {"data_bytes", m.data_bytes},
            {"bss_bytes", m.bss_bytes},
            {"app_text_bytes", m.app_text_bytes},
            {"runtime_bytes", m.runtime_bytes},
            {"metadata_bytes", m.metadata_bytes},
            {"handler_bytes", m.handler_bytes},
            {"ram_bytes", m.ram_bytes},
            {"total_nvm_bytes", m.totalNvmBytes()},
            {"n_funcs", m.n_funcs},
            {"reloc_count", m.reloc_count},
        });
    if (!m.profile.empty()) {
        json::Array rows;
        for (const trace::ProfileRow &r : m.profile)
            rows.push_back(profileRowJson(r));
        root.emplace("profile", std::move(rows));
    }
    if (!m.swap_events.empty() || m.swap_summary.misses) {
        json::Array events;
        for (const trace::SwapEvent &e : m.swap_events)
            events.push_back(swapEventJson(e));
        json::Array occupancy;
        for (const trace::OccupancySample &s : m.occupancy) {
            occupancy.push_back(json::Object{
                {"cycle", s.cycle},
                {"resident_bytes", s.resident_bytes},
                {"resident_functions", s.resident_functions}});
        }
        const trace::SwapSummary &sum = m.swap_summary;
        root.emplace(
            "swap",
            json::Object{
                {"misses", sum.misses},
                {"copy_ins", sum.copy_ins},
                {"evictions", sum.evictions},
                {"bytes_copied", sum.bytes_copied},
                {"data_swap_ins", sum.data_swap_ins},
                {"data_swap_outs", sum.data_swap_outs},
                {"data_bytes_copied", sum.data_bytes_copied},
                {"handler_cycles", sum.handler_cycles},
                {"peak_resident_bytes", sum.peak_resident_bytes},
                {"power_failures", sum.power_failures},
                {"recovery_cycles", sum.recovery_cycles},
                {"ckpt_commits", sum.ckpt_commits},
                {"ckpt_restores", sum.ckpt_restores},
                {"events", std::move(events)},
                {"occupancy", std::move(occupancy)},
            });
    }
    if (system == "swapram") {
        // The generated runtime's own bookkeeping cells, read back from
        // the image (cross-checkable against the timeline above).
        root.emplace("runtime_counters",
                     json::Object{{"evictions", m.rt_evictions},
                                  {"retries", m.rt_retries},
                                  {"data_swap_ins", m.rt_data_in},
                                  {"data_swap_outs", m.rt_data_out},
                                  {"data_pool_full", m.rt_data_full}});
    }
    if (m.rt_ckpt_commits || m.rt_ckpt_restores) {
        root.emplace("ckpt",
                     json::Object{{"commits", m.rt_ckpt_commits},
                                  {"restores", m.rt_ckpt_restores}});
    }
    if (m.trace_emitted || m.trace_dropped) {
        root.emplace("trace",
                     json::Object{{"emitted", m.trace_emitted},
                                  {"dropped", m.trace_dropped}});
    }
    if (!m.folded.empty()) {
        json::Array folded;
        for (const trace::FoldedStack &f : m.folded) {
            folded.push_back(json::Object{{"stack", f.stack},
                                          {"cycles", f.cycles}});
        }
        root.emplace("folded_stacks", std::move(folded));
    }
    if (m.run_metrics)
        root.emplace("metrics", metricsJson(*m.run_metrics));
    return root;
}

std::string
RunReport::text(std::size_t profile_rows) const
{
    const Metrics &m = metrics;
    std::string out = support::cat(
        "run: workload=", workload, " system=", system,
        " placement=", placement, " clock=", clock_hz / 1'000'000,
        "MHz repeats=", main_repeats, "\n");
    if (!m.fits)
        return out + "result: DNF (" + m.fit_note + ")\n";
    const char *verdict = "done";
    if (!m.done) {
        switch (m.stop) {
          case sim::RunResult::Stop::MaxCycles: verdict = "TIMEOUT";
              break;
          case sim::RunResult::Stop::Livelock: verdict = "LIVELOCK";
              break;
          case sim::RunResult::Stop::Exhausted: verdict = "EXHAUSTED";
              break;
          case sim::RunResult::Stop::Done: verdict = "TIMEOUT"; break;
        }
    }
    out += support::cat(
        "result: ", verdict,
        " checksum=", support::hex16(m.checksum),
        " cycles=", withCommas(m.stats.totalCycles()),
        " (stall ", withCommas(m.stats.stall_cycles),
        ") instructions=", withCommas(m.stats.instructions),
        " energy=", support::fixed(m.energy_pj / 1e6, 3), "uJ\n");
    if (m.stats.reboots) {
        out += support::cat(
            "power: reboots=", withCommas(m.stats.reboots),
            " recovery_cycles=", withCommas(m.stats.recovery_cycles),
            "\n");
    }
    if (m.rt_ckpt_commits || m.rt_ckpt_restores) {
        out += support::cat(
            "ckpt: commits=", withCommas(m.rt_ckpt_commits),
            " restores=", withCommas(m.rt_ckpt_restores), "\n");
    }
    if (m.harvested_pj) {
        out += support::cat(
            "harvest: energy=",
            support::fixed(m.harvested_pj / 1e6, 3),
            "uJ wall=", support::fixed(m.wall_seconds, 6), "s\n");
    }
    if (m.swap_summary.misses || m.swap_summary.copy_ins) {
        const trace::SwapSummary &s = m.swap_summary;
        out += support::cat(
            "swap: misses=", withCommas(s.misses),
            " copy_ins=", withCommas(s.copy_ins),
            " evictions=", withCommas(s.evictions),
            " bytes_copied=", withCommas(s.bytes_copied),
            " handler_cycles=", withCommas(s.handler_cycles),
            " peak_resident=", s.peak_resident_bytes, "B\n");
        if (s.data_swap_ins || s.data_swap_outs) {
            out += support::cat(
                "data-pool: swap_ins=", withCommas(s.data_swap_ins),
                " swap_outs=", withCommas(s.data_swap_outs),
                " bytes=", withCommas(s.data_bytes_copied), "\n");
        }
    }
    if (m.rt_evictions || m.rt_retries || m.rt_data_in ||
        m.rt_data_out || m.rt_data_full) {
        out += support::cat(
            "runtime-counters: evictions=", withCommas(m.rt_evictions),
            " retries=", withCommas(m.rt_retries),
            " data_ins=", withCommas(m.rt_data_in),
            " data_outs=", withCommas(m.rt_data_out),
            " data_full=", withCommas(m.rt_data_full), "\n");
    }
    if (!m.profile.empty()) {
        Table table({"function", "instrs", "cycles", "stall", "fram",
                     "sram", "energy(nJ)", "cycle%"});
        double total =
            static_cast<double>(m.stats.totalCycles());
        std::size_t shown = 0;
        for (const trace::ProfileRow &r : m.profile) {
            if (profile_rows && shown++ >= profile_rows)
                break;
            double pct =
                total ? 100.0 * static_cast<double>(r.totalCycles()) /
                            total
                      : 0.0;
            table.addRow({r.name, withCommas(r.instructions),
                          withCommas(r.totalCycles()),
                          withCommas(r.stall_cycles),
                          withCommas(r.framAccesses()),
                          withCommas(r.sramAccesses()),
                          support::fixed(r.energy_pj / 1e3, 1),
                          support::fixed(pct, 1)});
        }
        out += "\n" + table.text();
        if (profile_rows && m.profile.size() > profile_rows) {
            out += support::cat("(", m.profile.size() - profile_rows,
                                " more rows; use --json for all)\n");
        }
    }
    return out;
}

} // namespace swapram::harness
