#include "harness/report.hh"

#include <cmath>

#include "support/logging.hh"
#include "support/strings.hh"

namespace swapram::harness {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        support::panic("Table: row width mismatch");
    rows_.push_back(std::move(cells));
}

std::string
Table::text() const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }
    auto emit_row = [&](const std::vector<std::string> &row) {
        std::string out;
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                out += "  ";
            std::string cell = row[c];
            if (c == 0) {
                cell.resize(width[c], ' ');
                out += cell;
            } else {
                out += std::string(width[c] - cell.size(), ' ') + cell;
            }
        }
        out += "\n";
        return out;
    };
    std::string out = emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    out += std::string(total, '-') + "\n";
    for (const auto &row : rows_)
        out += emit_row(row);
    return out;
}

std::string
percentDelta(double value, double reference)
{
    if (reference == 0)
        return "n/a";
    double pct = (value / reference - 1.0) * 100.0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", pct);
    return buf;
}

std::string
withCommas(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out += ',';
        out += *it;
        ++count;
    }
    return {out.rbegin(), out.rend()};
}

double
geoMean(const std::vector<double> &ratios)
{
    if (ratios.empty())
        return 1.0;
    double log_sum = 0;
    for (double r : ratios)
        log_sum += std::log(r);
    return std::exp(log_sum / static_cast<double>(ratios.size()));
}

std::string
geoMeanDelta(const std::vector<double> &ratios)
{
    return percentDelta(geoMean(ratios), 1.0);
}

} // namespace swapram::harness
