/**
 * @file
 * Experiment engine: execute a batch of independent RunSpecs across a
 * pool of worker threads and return results in deterministic submission
 * order, regardless of completion order.
 *
 * Isolation contract (audited; see docs/INTERNALS.md §7):
 *  - Every run constructs its own Machine, TraceEngine, profiler, and
 *    timeline inside harness::runOne(); no simulation state is shared
 *    between concurrent runs.
 *  - The only process-global state the run path touches is read-only
 *    after first use (workloads::all(), the opcode mnemonic table) or
 *    atomic (the support::logging level). Lazily-initialized statics
 *    are C++11 magic statics, so first-use races are safe; the engine
 *    still warms them before spawning workers so no worker pays the
 *    construction.
 *  - Callers must not share an ObserveSpec output stream between two
 *    specs of one batch: sinks write unsynchronized. Batch APIs are
 *    for plain (non-streaming) runs; stream one run at a time.
 *
 * Determinism: each run is a pure function of its RunSpec (the
 * simulator has no wall-clock or host-randomness inputs), results are
 * stored by submission index, and errors are captured per-run — so a
 * batch's outcome vector is byte-identical at any worker count.
 */

#ifndef SWAPRAM_HARNESS_ENGINE_HH
#define SWAPRAM_HARNESS_ENGINE_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace swapram::harness {

/** Result of one engine-submitted run: metrics or a captured error. */
struct RunOutcome {
    Metrics metrics;
    bool error = false;     ///< the run threw (fatal/panic)
    std::string error_text; ///< exception message when error is set

    bool ok() const { return !error; }
};

/** Live batch progress, reported once per completed run (ISSUE 6). */
struct Progress {
    std::size_t done = 0;   ///< runs completed so far (including this)
    std::size_t total = 0;  ///< batch size
    std::size_t errors = 0; ///< error outcomes so far
    double runs_per_sec = 0; ///< rolling rate since the batch started
    std::size_t index = 0;   ///< submission index of the finished run
    /** The finished run's outcome (valid only during the callback). */
    const RunOutcome *outcome = nullptr;
};

/**
 * Progress callback: invoked after each run completes, serialized
 * under an engine-internal mutex (never concurrently), from worker
 * threads. Completion order — and therefore callback order — is
 * nondeterministic with jobs > 1; only the counters are monotonic.
 * The callback must not throw and should be cheap. Wall-clock timing
 * feeds only `runs_per_sec`; results stay byte-identical.
 */
using ProgressFn = std::function<void(const Progress &)>;

/** Thread-pool executor for batches of independent experiments. */
class Engine
{
  public:
    /** @p jobs worker threads; 0 selects defaultJobs(). */
    explicit Engine(unsigned jobs = 0);

    /** Worker threads this engine uses per batch. */
    unsigned jobs() const { return jobs_; }

    /**
     * Run every spec (each workload pointer must stay valid for the
     * call); outcome i corresponds to specs[i]. A run that throws
     * support::FatalError/PanicError yields an error outcome instead
     * of aborting the batch. @p progress, when set, is invoked after
     * each completed run (see ProgressFn).
     */
    std::vector<RunOutcome>
    runAll(const std::vector<RunSpec> &specs,
           const ProgressFn &progress = {}) const;

    /** runAll(), but rethrow the first captured error (by submission
     *  order, so failures are deterministic too). */
    std::vector<Metrics> runAllOrThrow(const std::vector<RunSpec> &specs) const;

    /** Hardware concurrency, clamped to at least 1. */
    static unsigned defaultJobs();

  private:
    unsigned jobs_;
};

/**
 * Canonical spec for one (workload × system) cell of the sweep matrix —
 * shared by `swapram_tool sweep`, the golden conformance suite, and the
 * determinism tests, so all three pin exactly the same configuration.
 * The swap timeline is observed for caching systems so swap-in counts
 * land in the metrics.
 */
RunSpec sweepSpec(const workloads::Workload &workload, System system,
                  Placement placement = Placement::Unified,
                  std::uint32_t clock_hz = 24'000'000);

/** SRAM capacities swept for the ISSUE-7 hit/thrash curve. */
inline constexpr std::uint32_t kCapacitySizes[] = {1024, 2048, 4096,
                                                   8192};

/** sweepSpec() with the simulated SRAM capacity overridden; the runner
 *  re-anchors default cache bounds to the new SRAM end. */
RunSpec capacitySpec(const workloads::Workload &workload, System system,
                     std::uint32_t sram_size,
                     std::uint32_t clock_hz = 24'000'000);

/** One cell of a (workload × system × SRAM size) matrix. */
struct MatrixCell {
    const workloads::Workload *workload = nullptr;
    System system = System::Baseline;
    std::uint32_t sram_size = 0;
};

/**
 * The canonical capacity-pressure matrix (ISSUE 7): every
 * workloads::capacity() entry as a baseline reference at the platform
 * default plus a SwapRAM run per kCapacitySizes step — shared by
 * `swapram_tool sweep --capacity` and the golden conformance suite.
 */
std::vector<MatrixCell> capacityMatrix();

} // namespace swapram::harness

#endif // SWAPRAM_HARNESS_ENGINE_HH
