/**
 * @file
 * SwapRAM static instrumentation pass (paper §3.2, Figure 3).
 *
 * For every `CALL #f` whose target f is a non-blacklisted .func, the
 * pass emits:
 *
 *     ADD #1, &__swp_active+2*id(f)   ; call-stack integrity counter
 *     MOV #2*id(f), &__swp_curid      ; signal funcId to the runtime
 *     CALL &__swp_redirect+2*id(f)    ; indirect call through the cell
 *     SUB #1, &__swp_active+2*id(f)
 *
 * The redirect cell initially holds the miss handler's address; the
 * runtime points it at the SRAM copy once f is cached, so later calls
 * bypass the runtime entirely (§3.3).
 *
 * The pass also rewrites PC-relative (symbolic) data operands to
 * absolute mode inside instrumented functions, which is what makes the
 * copied code position-independent apart from the absolute branches
 * handled by the relocation pass.
 */

#ifndef SWAPRAM_SWAPRAM_PASS_HH
#define SWAPRAM_SWAPRAM_PASS_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "masm/ast.hh"
#include "swapram/options.hh"

namespace swapram::cache {

/** Stable mapping from cacheable function name to funcId. */
struct FuncIds {
    std::vector<std::string> names; ///< id -> name, in program order
    std::unordered_map<std::string, int> ids;

    bool
    contains(const std::string &name) const
    {
        return ids.find(name) != ids.end();
    }
    int count() const { return static_cast<int>(names.size()); }
};

/** Enumerate cacheable (non-blacklisted) functions of @p program. */
FuncIds collectFunctions(const masm::Program &program,
                         const Options &options);

/** Statistics about what the pass changed. */
struct PassStats {
    int call_sites_instrumented = 0;
    int symbolic_operands_absolutized = 0;
    /** `CALL #__data_swap_in/out` sites rewired to the runtime pool. */
    int data_swap_calls_retargeted = 0;
};

/** Apply the instrumentation; returns the transformed program. */
masm::Program instrumentCalls(const masm::Program &program,
                              const FuncIds &funcs, const Options &options,
                              PassStats *stats = nullptr);

} // namespace swapram::cache

#endif // SWAPRAM_SWAPRAM_PASS_HH
