#include "swapram/reloc.hh"

#include "support/logging.hh"

namespace swapram::cache {

using masm::AsmOperand;
using masm::Expr;
using masm::OperKind;
using masm::Statement;

namespace {

/** Evaluate an expression against the resolved symbol table. */
std::optional<std::int64_t>
evalWith(const Expr &e,
         const std::unordered_map<std::string, std::uint16_t> &symbols)
{
    switch (e.kind()) {
      case Expr::Kind::Number:
        return e.number();
      case Expr::Kind::Symbol: {
        auto it = symbols.find(e.symbol());
        if (it == symbols.end())
            return std::nullopt;
        return it->second;
      }
      case Expr::Kind::Neg: {
        auto v = evalWith(e.operand(), symbols);
        return v ? std::optional<std::int64_t>(-*v) : std::nullopt;
      }
      default: {
        auto l = evalWith(e.lhs(), symbols);
        auto r = evalWith(e.rhs(), symbols);
        if (!l || !r)
            return std::nullopt;
        switch (e.kind()) {
          case Expr::Kind::Add: return *l + *r;
          case Expr::Kind::Sub: return *l - *r;
          case Expr::Kind::Mul: return *l * *r;
          case Expr::Kind::Div: return *r ? *l / *r : 0;
          case Expr::Kind::ShiftLeft: return *l << (*r & 63);
          case Expr::Kind::ShiftRight:
            return static_cast<std::int64_t>(
                static_cast<std::uint64_t>(*l) >> (*r & 63));
          case Expr::Kind::And: return *l & *r;
          case Expr::Kind::Or: return *l | *r;
          default: return std::nullopt;
        }
      }
    }
}

/** Is this statement `MOV #expr, PC` (an absolute branch)? */
bool
isAbsoluteBranch(const Statement &s)
{
    if (s.kind != Statement::Kind::Instr)
        return false;
    const masm::AsmInstr &i = s.instr;
    return i.op == isa::Op::Mov && !i.byte && i.src && i.dst &&
           i.src->kind == OperKind::Immediate &&
           i.dst->kind == OperKind::Register &&
           i.dst->reg == isa::Reg::PC;
}

} // namespace

RelocResult
relocateBranches(const masm::AssembleResult &inter, const FuncIds &funcs)
{
    RelocResult out;
    out.program = inter.relaxed;
    out.func_first.assign(funcs.count() + 1, 0);

    // Walk functions in id order so entries group contiguously.
    auto ranges = masm::findFunctions(out.program);
    for (int id = 0; id < funcs.count(); ++id) {
        out.func_first[id] = static_cast<int>(out.entries.size());
        const std::string &name = funcs.names[id];
        const masm::FuncRange *range = nullptr;
        for (const auto &r : ranges) {
            if (r.name == name) {
                range = &r;
                break;
            }
        }
        if (!range)
            support::panic("relocateBranches: missing function ", name);
        const masm::FunctionInfo &info = inter.function(name);
        std::uint32_t fbegin = info.addr;
        std::uint32_t fend = info.addr + info.size;

        for (size_t i = range->func_stmt; i <= range->endfunc_stmt; ++i) {
            Statement &s = out.program.stmts[i];
            if (!isAbsoluteBranch(s))
                continue;
            auto target = evalWith(s.instr.src->expr, inter.symbols);
            if (!target)
                continue;
            std::uint32_t t = static_cast<std::uint16_t>(*target);
            if (t < fbegin || t >= fend)
                continue; // cross-function branch: stays absolute
            int k = static_cast<int>(out.entries.size());
            out.entries.push_back(
                {id, static_cast<std::uint16_t>(t - fbegin),
                 static_cast<std::uint16_t>(t)});
            s.instr.src = AsmOperand::abs(Expr::add(
                Expr::sym("__swp_rval"), Expr::num(2 * k)));
        }
    }
    out.func_first[funcs.count()] = static_cast<int>(out.entries.size());
    return out;
}

} // namespace swapram::cache
