/**
 * @file
 * SwapRAM build options: cache region, replacement structure, and the
 * function blacklist (§3.1: exclude functions with strict timing
 * requirements or known-infrequent execution).
 */

#ifndef SWAPRAM_SWAPRAM_OPTIONS_HH
#define SWAPRAM_SWAPRAM_OPTIONS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/options.hh"
#include "support/platform.hh"

namespace swapram::cache {

/** Cache-memory structure, which fixes the replacement policy (§3.4). */
enum class Policy : std::uint8_t {
    /** Circular queue: least-recently-cached replacement (the paper's
     *  proof-of-concept design). */
    CircularQueue,
    /** Stack: most-recently-cached replacement (the counterproductive
     *  alternative §3.4 discusses; kept for the ablation bench). */
    Stack,
};

/** Options for one SwapRAM build. */
struct Options {
    /** First byte of the SRAM region used as the code cache. */
    std::uint16_t cache_base = platform::kSramBase;
    /** One past the last byte of the cache region. */
    std::uint16_t cache_end =
        static_cast<std::uint16_t>(platform::kSramEnd);

    Policy policy = Policy::CircularQueue;

    /** Functions never instrumented or cached. */
    std::vector<std::string> blacklist;

    /**
     * Rewrite PC-relative (symbolic) data operands to absolute mode in
     * instrumented functions, which is required for the code to be
     * runtime-relocatable. Disable only for experiments.
     */
    bool absolutize_data_refs = true;

    /**
     * Thrash mitigation (the extension §5.4 proposes as future work):
     * after this many consecutive aborted caching attempts (a miss
     * that would have to evict an *active* function), the runtime
     * "freezes" the cache for `freeze_window` misses — frozen misses
     * run from NVM immediately, skipping the eviction scans, so a
     * pathological caller/callee pair stops paying the full handler on
     * every call. 0 disables the feature (the paper's baseline
     * behaviour).
     */
    int freeze_threshold = 0;
    /** Misses served from NVM per freeze episode. */
    int freeze_window = 32;

    /**
     * Generate the __swp_recover boot routine and have the startup
     * stub call it before main. Required for crash consistency under
     * power loss: the redirect/relocation cells persist in FRAM while
     * the SRAM copies they point into decay. Disable only to
     * demonstrate the stale-redirection crash (regression tests).
     */
    bool boot_recovery = true;

    /**
     * Eviction under capacity pressure (ISSUE 7). When a miss's
     * placement scan finds the candidate range blocked by an *active*
     * function, the pre-eviction runtime served the miss from NVM and
     * — because the blocker stays resident and active — kept serving
     * every later miss from NVM ("silent stop caching"). With eviction
     * enabled the handler instead retries the scan with the candidate
     * bumped past the blocker (second chance over the redirect cells,
     * wrapping at the cache end), un-redirecting inactive victims as
     * usual, until a bounded retry budget is spent. Disabling this
     * reproduces the pre-eviction runtime byte for byte.
     */
    bool evict = true;

    /**
     * Scan retries granted per miss once the first scan is blocked.
     * Each retry bumps the candidate past the blocking function, so a
     * budget of a few retries steps over every plausible cluster of
     * active functions; the bound keeps the handler's worst case
     * finite on pathological call stacks.
     */
    int evict_retries = 8;

    /**
     * Data-side SwapRAM pool in bytes (0 = off), carved from the top
     * of the cache region: the code cache shrinks to
     * [cache_base, cache_end - data_pool_bytes). The pool is managed
     * as 16 slots by a bitmap word; __swp_din/__swp_dout swap large
     * buffers between their FRAM homes and the pool through the same
     * simulated memcpy path code swaps pay for. Must be a multiple of
     * 32 so slot sizes stay word-aligned.
     */
    std::uint16_t data_pool_bytes = 0;

    /**
     * Crash-atomic checkpointing (ISSUE 8): scheme None reproduces the
     * pre-checkpoint runtime byte for byte; Periodic/OnLowEnergy
     * generate __ckpt_commit/__ckpt_restore and hook the miss handler.
     * Requires the stack (and everything else a resume needs) inside
     * [kSramBase, ckpt.sram_end) — the runner enforces this.
     */
    ckpt::Options ckpt;

    /** Code-cache size (the pool, when configured, is carved out). */
    std::uint16_t cacheSize() const
    {
        return static_cast<std::uint16_t>(cache_end - cache_base -
                                          data_pool_bytes);
    }

    /** First byte of the data pool (== codeCacheEnd()). */
    std::uint16_t poolBase() const
    {
        return static_cast<std::uint16_t>(cache_end - data_pool_bytes);
    }

    bool
    isBlacklisted(const std::string &name) const
    {
        for (const std::string &b : blacklist) {
            if (b == name)
                return true;
        }
        return false;
    }
};

} // namespace swapram::cache

#endif // SWAPRAM_SWAPRAM_OPTIONS_HH
