#include "swapram/runtime_gen.hh"

#include <functional>
#include <sstream>

#include "support/logging.hh"

namespace swapram::cache {

namespace {

/** Emit one .word table with a value per function. */
void
emitTable(std::ostringstream &os, const char *label, const FuncIds &funcs,
          const std::function<std::string(int)> &value)
{
    os << label << ":\n";
    for (int id = 0; id < funcs.count(); ++id)
        os << "        .word " << value(id) << "\n";
    if (funcs.count() == 0)
        os << "        .word 0\n"; // keep the label addressable
}

} // namespace

std::string
generateRuntimeAsm(const FuncIds &funcs, const RelocResult &relocs,
                   const Options &options)
{
    std::ostringstream os;
    const int n = funcs.count();
    const unsigned cache_size = options.cacheSize();
    const unsigned cache_base = options.cache_base;
    const unsigned cache_end = options.cache_end;

    os << "; ---- SwapRAM generated runtime (" << n << " functions, "
       << relocs.entries.size() << " relocatable branches) ----\n";
    os << "        .const\n        .align 2\n";
    os << "__swp_curid:   .word 0\n";
    os << "__swp_tmp:     .word 0\n";
    os << "__swp_cand:    .word 0\n";
    os << "__swp_end:     .word 0\n";
    os << "__swp_tail:    .word " << cache_base << "\n";
    os << "__swp_save:    .space 10\n";
    os << "__swp_boot:    .word 0\n"; // set once; reboots see 1
    const bool freeze = options.freeze_threshold > 0;
    if (freeze) {
        os << "__swp_abort:   .word 0\n";
        os << "__swp_freeze:  .word 0\n";
    }

    emitTable(os, "__swp_redirect", funcs,
              [](int) { return std::string("__swp_miss"); });
    emitTable(os, "__swp_cached", funcs,
              [](int) { return std::string("0xFFFF"); });
    emitTable(os, "__swp_active", funcs,
              [](int) { return std::string("0"); });
    emitTable(os, "__swp_fsize", funcs, [&](int id) {
        return "__end_" + funcs.names[id] + " - " + funcs.names[id];
    });
    emitTable(os, "__swp_fnvm", funcs,
              [&](int id) { return funcs.names[id]; });
    emitTable(os, "__swp_rbase", funcs, [&](int id) {
        return std::to_string(2 * relocs.func_first[id]);
    });
    emitTable(os, "__swp_rcnt", funcs, [&](int id) {
        return std::to_string(relocs.relocCount(id));
    });

    os << "__swp_rofs:\n";
    for (const RelocEntry &e : relocs.entries)
        os << "        .word " << e.offset << "\n";
    if (relocs.entries.empty())
        os << "        .word 0\n";
    os << "__swp_rval:\n";
    for (const RelocEntry &e : relocs.entries)
        os << "        .word " << e.target << "\n";
    if (relocs.entries.empty())
        os << "        .word 0\n";

    // ---- Miss handler ----
    os << "        .text\n";
    os << "        .func __swp_miss\n";
    // Save caller-saved registers (R11-R15; R12-R15 carry arguments per
    // the MSP430 calling convention, §4).
    os << "        MOV R11, &__swp_save\n"
          "        MOV R12, &__swp_save+2\n"
          "        MOV R13, &__swp_save+4\n"
          "        MOV R14, &__swp_save+6\n"
          "        MOV R15, &__swp_save+8\n";
    // Look up the target function.
    os << "        MOV &__swp_curid, R15\n"
          "        MOV __swp_fsize(R15), R13\n";
    // A function larger than the whole cache always runs from NVM.
    os << "        CMP #" << (cache_size + 1) << ", R13\n"
          "        JHS __swp_nvm\n";
    if (freeze) {
        // Frozen cache (thrash mitigation): serve the miss from NVM
        // without scanning, until the freeze window drains.
        os << "        MOV &__swp_freeze, R12\n"
              "        TST R12\n"
              "        JZ __swp_live\n"
              "        DEC R12\n"
              "        MOV R12, &__swp_freeze\n"
              "        JMP __swp_nvm\n"
              "__swp_live:\n";
    }
    // Placement (§3.4).
    os << "        MOV &__swp_tail, R14\n"
          "        MOV R14, R12\n"
          "        ADD R13, R12\n"
          "        CMP #" << (cache_end + 1) << ", R12\n"
          "        JLO __swp_place_ok\n";
    if (options.policy == Policy::CircularQueue) {
        // Wrap to the bottom of the cache region.
        os << "        MOV #" << cache_base << ", R14\n";
    } else {
        // Stack policy: place at the very top, overlapping (and hence
        // evicting) the most recently cached functions.
        os << "        MOV #" << cache_end << ", R14\n"
              "        SUB R13, R14\n";
    }
    os << "        MOV R14, R12\n"
          "        ADD R13, R12\n"
          "__swp_place_ok:\n"
          "        MOV R14, &__swp_cand\n"
          "        MOV R12, &__swp_end\n";

    // Scan pass 1 (§3.3.2/3.3.3): flag overlapping functions; abort to
    // NVM execution if any is active.
    os << "        CLR R11\n"
          "__swp_scan1:\n"
          "        CMP #" << (2 * n) << ", R11\n"
          "        JHS __swp_scan1_done\n"
          "        MOV __swp_cached(R11), R13\n"
          "        CMP #0xFFFF, R13\n"
          "        JEQ __swp_scan1_next\n"
          "        CMP &__swp_end, R13\n"     // cached >= end: no overlap
          "        JHS __swp_scan1_next\n"
          "        MOV R13, R15\n"
          "        ADD __swp_fsize(R11), R15\n"
          "        CMP R15, R14\n"            // cand >= cached end: none
          "        JHS __swp_scan1_next\n"
          "        TST __swp_active(R11)\n"
       << (freeze ? "        JNZ __swp_thrash\n"
                  : "        JNZ __swp_nvm\n")
       << "__swp_scan1_next:\n"
          "        INCD R11\n"
          "        JMP __swp_scan1\n"
          "__swp_scan1_done:\n";

    // Scan pass 2: evict every flagged function (reset metadata and
    // relocation cells back to their NVM values).
    os << "        CLR R11\n"
          "__swp_scan2:\n"
          "        CMP #" << (2 * n) << ", R11\n"
          "        JHS __swp_scan2_done\n"
          "        MOV __swp_cached(R11), R13\n"
          "        CMP #0xFFFF, R13\n"
          "        JEQ __swp_scan2_next\n"
          "        CMP &__swp_end, R13\n"
          "        JHS __swp_scan2_next\n"
          "        MOV R13, R15\n"
          "        ADD __swp_fsize(R11), R15\n"
          "        CMP R15, R14\n"
          "        JHS __swp_scan2_next\n"
          "        MOV #0xFFFF, __swp_cached(R11)\n"
          "        MOV #__swp_miss, __swp_redirect(R11)\n"
          "        MOV __swp_rbase(R11), R13\n"
          "        MOV R13, R15\n"
          "        ADD __swp_rcnt(R11), R15\n"
          "        ADD __swp_rcnt(R11), R15\n"
          "__swp_rst_loop:\n"
          "        CMP R15, R13\n"
          "        JHS __swp_scan2_next\n"
          "        MOV __swp_fnvm(R11), R12\n"
          "        ADD __swp_rofs(R13), R12\n"
          "        MOV R12, __swp_rval(R13)\n"
          "        INCD R13\n"
          "        JMP __swp_rst_loop\n"
          "__swp_scan2_next:\n"
          "        INCD R11\n"
          "        JMP __swp_scan2\n"
          "__swp_scan2_done:\n";

    // Copy the function into SRAM.
    os << "        MOV &__swp_curid, R15\n"
          "        MOV R14, R12\n"              // dst = candidate
          "        MOV __swp_fnvm(R15), R13\n"  // src = NVM copy
          "        MOV __swp_fsize(R15), R14\n" // len
          "        CALL #__swp_memcpy\n";

    // Compute this function's relocation values against the SRAM base.
    os << "        MOV &__swp_curid, R15\n"
          "        MOV __swp_rbase(R15), R13\n"
          "        MOV R13, R11\n"
          "        ADD __swp_rcnt(R15), R11\n"
          "        ADD __swp_rcnt(R15), R11\n"
          "__swp_set_loop:\n"
          "        CMP R11, R13\n"
          "        JHS __swp_set_done\n"
          "        MOV &__swp_cand, R12\n"
          "        ADD __swp_rofs(R13), R12\n"
          "        MOV R12, __swp_rval(R13)\n"
          "        INCD R13\n"
          "        JMP __swp_set_loop\n"
          "__swp_set_done:\n";

    // Bookkeeping: mark cached, point the redirect cell at the SRAM
    // copy, and advance the tail.
    if (freeze)
        os << "        CLR &__swp_abort\n";
    os << "        MOV &__swp_cand, R12\n"
          "        MOV R12, __swp_cached(R15)\n"
          "        MOV R12, __swp_redirect(R15)\n"
          "        MOV &__swp_end, R12\n"
          "        MOV R12, &__swp_tail\n"
          "        MOV &__swp_cand, R12\n"
          "        MOV R12, &__swp_tmp\n"
          "        JMP __swp_exit\n";

    if (freeze) {
        // An active function blocked the eviction: count consecutive
        // aborts; at the threshold, freeze the cache for a window.
        os << "__swp_thrash:\n"
              "        MOV &__swp_abort, R12\n"
              "        INC R12\n"
              "        MOV R12, &__swp_abort\n"
              "        CMP #" << options.freeze_threshold << ", R12\n"
              "        JLO __swp_nvm\n"
              "        MOV #" << options.freeze_window << ", R12\n"
              "        MOV R12, &__swp_freeze\n"
              "        CLR &__swp_abort\n";
        // falls through into the NVM path
    }

    // Fallback: execute from NVM (paper §3.3.3 — the redirect cell keeps
    // pointing at the handler, so the next call retries).
    os << "__swp_nvm:\n"
          "        MOV &__swp_curid, R15\n"
          "        MOV __swp_fnvm(R15), R12\n"
          "        MOV R12, &__swp_tmp\n"
          "__swp_exit:\n"
          "        MOV &__swp_save, R11\n"
          "        MOV &__swp_save+2, R12\n"
          "        MOV &__swp_save+4, R13\n"
          "        MOV &__swp_save+6, R14\n"
          "        MOV &__swp_save+8, R15\n"
          "        BR &__swp_tmp\n"
          "        .endfunc\n";

    // ---- Dynamic-call interface (§4 future work: "an interface for
    // the programmer to explicitly inform the runtime of dynamic
    // function calls"). The caller puts 2*funcId in R11 (the
    // __swp_id_<name> constants below) and calls this trampoline,
    // which performs exactly what an instrumented static call site
    // does: bump the callee's active counter, signal the id, and call
    // through the redirect cell. ----
    os << "        .func __swp_dyncall\n"
          "        ADD #1, __swp_active(R11)\n"
          "        MOV R11, &__swp_curid\n"
          "        PUSH R11\n"
          "        CALL __swp_redirect(R11)\n"
          "        POP R11\n"
          "        SUB #1, __swp_active(R11)\n"
          "        RET\n"
          "        .endfunc\n";
    for (int id = 0; id < n; ++id) {
        os << "        .equ __swp_id_" << funcs.names[id] << ", "
           << 2 * id << "\n";
    }

    // ---- Shared copy routine (word granularity; sizes are even) ----
    os << "        .func __swp_memcpy\n"
          "__swp_mc_loop:\n"
          "        TST R14\n"
          "        JZ __swp_mc_done\n"
          "        MOV @R13+, 0(R12)\n"
          "        INCD R12\n"
          "        DECD R14\n"
          "        JMP __swp_mc_loop\n"
          "__swp_mc_done:\n"
          "        RET\n"
          "        .endfunc\n";

    // ---- Boot recovery (crash consistency) ----
    // The metadata tables live in FRAM and survive power loss, but the
    // SRAM copies they point into do not: a redirect or relocation
    // cell left pointing at the cache after a reboot is a dangling
    // pointer into zeroed memory. The startup stub calls this routine
    // before anything else; it resets every per-function cell to its
    // cold NVM value (the same loop scan-pass 2 uses when evicting).
    // A persistent boot flag makes the clean first boot skip the walk
    // (the crt0 "dirty bit" idiom); any later boot must be a recovery
    // boot. Registers are preserved so the stub stays transparent to
    // main. Placed after __swp_memcpy so it sits outside the
    // Handler/Memcpy owner ranges and is attributed via
    // Stats::recovery_cycles instead.
    os << "        .func __swp_recover\n"
          "        TST &__swp_boot\n"
          "        JNZ __swp_rc_go\n"
          "        MOV #1, &__swp_boot\n"
          "        RET\n"
          "__swp_rc_go:\n"
          "        PUSH R11\n"
          "        PUSH R12\n"
          "        PUSH R13\n"
          "        PUSH R15\n"
          "        CLR R11\n"
          "__swp_rc_loop:\n"
          "        CMP #" << (2 * n) << ", R11\n"
          "        JHS __swp_rc_done\n"
          "        MOV #0xFFFF, __swp_cached(R11)\n"
          "        MOV #__swp_miss, __swp_redirect(R11)\n"
          "        CLR __swp_active(R11)\n"
          "        MOV __swp_rbase(R11), R13\n"
          "        MOV R13, R15\n"
          "        ADD __swp_rcnt(R11), R15\n"
          "        ADD __swp_rcnt(R11), R15\n"
          "__swp_rc_rst:\n"
          "        CMP R15, R13\n"
          "        JHS __swp_rc_next\n"
          "        MOV __swp_fnvm(R11), R12\n"
          "        ADD __swp_rofs(R13), R12\n"
          "        MOV R12, __swp_rval(R13)\n"
          "        INCD R13\n"
          "        JMP __swp_rc_rst\n"
          "__swp_rc_next:\n"
          "        INCD R11\n"
          "        JMP __swp_rc_loop\n"
          "__swp_rc_done:\n"
          "        MOV #" << cache_base << ", R12\n"
          "        MOV R12, &__swp_tail\n"
          "        CLR &__swp_curid\n";
    if (freeze) {
        os << "        CLR &__swp_abort\n"
              "        CLR &__swp_freeze\n";
    }
    os << "        POP R15\n"
          "        POP R13\n"
          "        POP R12\n"
          "        POP R11\n"
          "        RET\n"
          "        .endfunc\n";

    return os.str();
}

} // namespace swapram::cache
