#include "swapram/runtime_gen.hh"

#include <algorithm>
#include <functional>
#include <sstream>

#include "ckpt/gen.hh"
#include "support/logging.hh"

namespace swapram::cache {

namespace {

/** Emit one .word table with a value per function. */
void
emitTable(std::ostringstream &os, const char *label, const FuncIds &funcs,
          const std::function<std::string(int)> &value)
{
    os << label << ":\n";
    for (int id = 0; id < funcs.count(); ++id)
        os << "        .word " << value(id) << "\n";
    if (funcs.count() == 0)
        os << "        .word 0\n"; // keep the label addressable
}

} // namespace

ckpt::GenSpec
checkpointSpec(const FuncIds &funcs, const RelocResult &relocs,
               const Options &options,
               const ckpt::SectionSizes &sections)
{
    ckpt::GenSpec spec;
    spec.options = options.ckpt;
    spec.sections = sections;
    spec.memcpy_sym = "__swp_memcpy";
    spec.meta_begin = "__swp_meta_begin";
    // Byte size of the metadata bracket the generator emits: fixed
    // cells + save area + boot flag (+ freeze cells), the seven
    // per-function tables, both relocation tables, the gated eviction
    // and data-pool cells, and the staged register file. The builder
    // cross-checks this against the assembled
    // __swp_meta_begin/__swp_meta_end span.
    spec.meta_bytes =
        10 + 10 + 2 + (options.freeze_threshold > 0 ? 4u : 0u) +
        7u * 2u * static_cast<std::uint32_t>(std::max(funcs.count(), 1)) +
        2u * 2u * static_cast<std::uint32_t>(std::max(
                      static_cast<int>(relocs.entries.size()), 1)) +
        (options.evict ? 6u : 0u) +
        (options.data_pool_bytes ? 8u + 64u : 0u) + ckpt::kRegsBytes;
    return spec;
}

std::string
generateRuntimeAsm(const FuncIds &funcs, const RelocResult &relocs,
                   const Options &options,
                   const ckpt::SectionSizes &sections)
{
    std::ostringstream os;
    const int n = funcs.count();
    // The code cache ends where the data pool (if any) begins; every
    // placement bound below uses the shrunken region, so code swaps and
    // data swaps can never collide.
    const unsigned cache_size = options.cacheSize();
    const unsigned cache_base = options.cache_base;
    const unsigned cache_end = options.poolBase();
    const unsigned pool = options.data_pool_bytes;
    const unsigned pool_base = options.poolBase();
    unsigned slot_shift = 0; // log2(slot size); slot = pool / 16
    if (pool) {
        if (pool < 32 || (pool & (pool - 1)) != 0) {
            support::fatal("data pool must be a power of two >= 32 "
                           "bytes, got ", pool);
        }
        if (cache_end <= cache_base) {
            support::fatal("data pool (", pool,
                           " bytes) leaves no code cache in [",
                           options.cache_base, ", ", options.cache_end,
                           ")");
        }
        for (unsigned s = pool / 16; s > 1; s >>= 1)
            ++slot_shift;
    }
    // Shift-count emitters for the pool's power-of-two slot maths.
    auto shl = [&os](const char *reg, unsigned count) {
        for (unsigned i = 0; i < count; ++i)
            os << "        RLA " << reg << "\n";
    };
    auto shr = [&os](const char *reg, unsigned count) {
        for (unsigned i = 0; i < count; ++i)
            os << "        RRA " << reg << "\n";
    };

    const bool freeze = options.freeze_threshold > 0;

    // Checkpointing (ISSUE 8): everything is gated on the scheme, so
    // scheme None reproduces the pre-checkpoint runtime byte for byte.
    const bool ck = options.ckpt.enabled();
    ckpt::GenSpec ckspec = checkpointSpec(funcs, relocs, options,
                                          sections);

    os << "; ---- SwapRAM generated runtime (" << n << " functions, "
       << relocs.entries.size() << " relocatable branches) ----\n";
    os << "        .const\n        .align 2\n";
    if (ck)
        os << "__swp_meta_begin:\n";
    os << "__swp_curid:   .word 0\n";
    os << "__swp_tmp:     .word 0\n";
    os << "__swp_cand:    .word 0\n";
    os << "__swp_end:     .word 0\n";
    os << "__swp_tail:    .word " << cache_base << "\n";
    os << "__swp_save:    .space 10\n";
    os << "__swp_boot:    .word 0\n"; // set once; reboots see 1
    if (freeze) {
        os << "__swp_abort:   .word 0\n";
        os << "__swp_freeze:  .word 0\n";
    }

    emitTable(os, "__swp_redirect", funcs,
              [](int) { return std::string("__swp_miss"); });
    emitTable(os, "__swp_cached", funcs,
              [](int) { return std::string("0xFFFF"); });
    emitTable(os, "__swp_active", funcs,
              [](int) { return std::string("0"); });
    emitTable(os, "__swp_fsize", funcs, [&](int id) {
        return "__end_" + funcs.names[id] + " - " + funcs.names[id];
    });
    emitTable(os, "__swp_fnvm", funcs,
              [&](int id) { return funcs.names[id]; });
    emitTable(os, "__swp_rbase", funcs, [&](int id) {
        return std::to_string(2 * relocs.func_first[id]);
    });
    emitTable(os, "__swp_rcnt", funcs, [&](int id) {
        return std::to_string(relocs.relocCount(id));
    });

    os << "__swp_rofs:\n";
    for (const RelocEntry &e : relocs.entries)
        os << "        .word " << e.offset << "\n";
    if (relocs.entries.empty())
        os << "        .word 0\n";
    os << "__swp_rval:\n";
    for (const RelocEntry &e : relocs.entries)
        os << "        .word " << e.target << "\n";
    if (relocs.entries.empty())
        os << "        .word 0\n";

    // Eviction and data-pool cells append after the relocation tables
    // so every pre-existing cell keeps its offset within the metadata
    // block. All are gated: with eviction off and no pool the runtime
    // is byte-for-byte the pre-eviction one.
    if (options.evict) {
        os << "__swp_retry:   .word 0\n";  // leftover retry budget
        os << "__swp_nevict:  .word 0\n";  // functions un-redirected
        os << "__swp_nretry:  .word 0\n";  // blocked scans retried
    }
    if (pool) {
        os << "__swp_dmap:    .word 0\n";  // slot bitmap (bit i = used)
        os << "__swp_dnin:    .word 0\n";  // buffers swapped in
        os << "__swp_dnout:   .word 0\n";  // buffers written back
        os << "__swp_dnfull:  .word 0\n";  // requests served from FRAM
        os << "__swp_dhome:   .space 32\n"; // FRAM home per run start
        os << "__swp_dlen:    .space 32\n"; // byte length per run start
    }
    if (ck) {
        // The staged register file lives *inside* the bracket so the
        // metadata copy captures it; the cursor, counters, and buffers
        // live outside so a restore cannot roll them back.
        ckpt::emitRegsCell(os);
        os << "__swp_meta_end:\n";
        ckpt::emitConstCells(os, ckspec);
    }

    // ---- Miss handler ----
    os << "        .text\n";
    os << "        .func __swp_miss\n";
    // Save caller-saved registers (R11-R15; R12-R15 carry arguments per
    // the MSP430 calling convention, §4).
    os << "        MOV R11, &__swp_save\n"
          "        MOV R12, &__swp_save+2\n"
          "        MOV R13, &__swp_save+4\n"
          "        MOV R14, &__swp_save+6\n"
          "        MOV R15, &__swp_save+8\n";
    // Checkpoint trigger: every swap passes through here, and with the
    // app registers just saved the hook may clobber scratch freely.
    if (ck)
        ckpt::emitHook(os, ckspec);
    // Look up the target function.
    os << "        MOV &__swp_curid, R15\n"
          "        MOV __swp_fsize(R15), R13\n";
    // A function larger than the whole cache always runs from NVM.
    os << "        CMP #" << (cache_size + 1) << ", R13\n"
          "        JHS __swp_nvm\n";
    if (freeze) {
        // Frozen cache (thrash mitigation): serve the miss from NVM
        // without scanning, until the freeze window drains.
        os << "        MOV &__swp_freeze, R12\n"
              "        TST R12\n"
              "        JZ __swp_live\n"
              "        DEC R12\n"
              "        MOV R12, &__swp_freeze\n"
              "        JMP __swp_nvm\n"
              "__swp_live:\n";
    }
    // Placement (§3.4).
    os << "        MOV &__swp_tail, R14\n"
          "        MOV R14, R12\n"
          "        ADD R13, R12\n"
          "        CMP #" << (cache_end + 1) << ", R12\n"
          "        JLO __swp_place_ok\n";
    if (options.policy == Policy::CircularQueue) {
        // Wrap to the bottom of the cache region.
        os << "        MOV #" << cache_base << ", R14\n";
    } else {
        // Stack policy: place at the very top, overlapping (and hence
        // evicting) the most recently cached functions.
        os << "        MOV #" << cache_end << ", R14\n"
              "        SUB R13, R14\n";
    }
    os << "        MOV R14, R12\n"
          "        ADD R13, R12\n"
          "__swp_place_ok:\n"
          "        MOV R14, &__swp_cand\n"
          "        MOV R12, &__swp_end\n";

    // Scan pass 1 (§3.3.2/3.3.3): flag overlapping functions; abort to
    // NVM execution if any is active.
    os << "        CLR R11\n"
          "__swp_scan1:\n"
          "        CMP #" << (2 * n) << ", R11\n"
          "        JHS __swp_scan1_done\n"
          "        MOV __swp_cached(R11), R13\n"
          "        CMP #0xFFFF, R13\n"
          "        JEQ __swp_scan1_next\n"
          "        CMP &__swp_end, R13\n"     // cached >= end: no overlap
          "        JHS __swp_scan1_next\n"
          "        MOV R13, R15\n"
          "        ADD __swp_fsize(R11), R15\n"
          "        CMP R15, R14\n"            // cand >= cached end: none
          "        JHS __swp_scan1_next\n"
          "        TST __swp_active(R11)\n"
       << (options.evict ? "        JNZ __swp_evict\n"
           : freeze      ? "        JNZ __swp_thrash\n"
                         : "        JNZ __swp_nvm\n")
       << "__swp_scan1_next:\n"
          "        INCD R11\n"
          "        JMP __swp_scan1\n"
          "__swp_scan1_done:\n";

    // Scan pass 2: evict every flagged function (reset metadata and
    // relocation cells back to their NVM values).
    os << "        CLR R11\n"
          "__swp_scan2:\n"
          "        CMP #" << (2 * n) << ", R11\n"
          "        JHS __swp_scan2_done\n"
          "        MOV __swp_cached(R11), R13\n"
          "        CMP #0xFFFF, R13\n"
          "        JEQ __swp_scan2_next\n"
          "        CMP &__swp_end, R13\n"
          "        JHS __swp_scan2_next\n"
          "        MOV R13, R15\n"
          "        ADD __swp_fsize(R11), R15\n"
          "        CMP R15, R14\n"
          "        JHS __swp_scan2_next\n";
    if (options.evict)
        os << "        INC &__swp_nevict\n";
    os << "        MOV #0xFFFF, __swp_cached(R11)\n"
          "        MOV #__swp_miss, __swp_redirect(R11)\n"
          "        MOV __swp_rbase(R11), R13\n"
          "        MOV R13, R15\n"
          "        ADD __swp_rcnt(R11), R15\n"
          "        ADD __swp_rcnt(R11), R15\n"
          "__swp_rst_loop:\n"
          "        CMP R15, R13\n"
          "        JHS __swp_scan2_next\n"
          "        MOV __swp_fnvm(R11), R12\n"
          "        ADD __swp_rofs(R13), R12\n"
          "        MOV R12, __swp_rval(R13)\n"
          "        INCD R13\n"
          "        JMP __swp_rst_loop\n"
          "__swp_scan2_next:\n"
          "        INCD R11\n"
          "        JMP __swp_scan2\n"
          "__swp_scan2_done:\n";

    // Copy the function into SRAM.
    os << "        MOV &__swp_curid, R15\n"
          "        MOV R14, R12\n"              // dst = candidate
          "        MOV __swp_fnvm(R15), R13\n"  // src = NVM copy
          "        MOV __swp_fsize(R15), R14\n" // len
          "        CALL #__swp_memcpy\n";

    // Compute this function's relocation values against the SRAM base.
    os << "        MOV &__swp_curid, R15\n"
          "        MOV __swp_rbase(R15), R13\n"
          "        MOV R13, R11\n"
          "        ADD __swp_rcnt(R15), R11\n"
          "        ADD __swp_rcnt(R15), R11\n"
          "__swp_set_loop:\n"
          "        CMP R11, R13\n"
          "        JHS __swp_set_done\n"
          "        MOV &__swp_cand, R12\n"
          "        ADD __swp_rofs(R13), R12\n"
          "        MOV R12, __swp_rval(R13)\n"
          "        INCD R13\n"
          "        JMP __swp_set_loop\n"
          "__swp_set_done:\n";

    // Bookkeeping: mark cached, point the redirect cell at the SRAM
    // copy, and advance the tail.
    if (freeze)
        os << "        CLR &__swp_abort\n";
    if (options.evict)
        os << "        CLR &__swp_retry\n";
    os << "        MOV &__swp_cand, R12\n"
          "        MOV R12, __swp_cached(R15)\n"
          "        MOV R12, __swp_redirect(R15)\n"
          "        MOV &__swp_end, R12\n"
          "        MOV R12, &__swp_tail\n"
          "        MOV &__swp_cand, R12\n"
          "        MOV R12, &__swp_tmp\n"
          "        JMP __swp_exit\n";

    if (options.evict) {
        // Eviction (capacity pressure): scan 1 found the candidate
        // range blocked by an *active* function — one that is on the
        // call stack and must not be displaced. Instead of giving up
        // (the pre-eviction runtime ran the miss from NVM and, since
        // the blocker stays put, every later miss too), retry the scan
        // with the candidate bumped just past the blocker, wrapping at
        // the cache end. Inactive functions in the new range are
        // evicted by the ordinary scan-2 walk; only a bounded retry
        // budget keeps pathological stacks from scanning forever.
        // Register state from the scan-1 abort: R11 = 2*blocker id,
        // R15 = blocker's cached end, R14 = old candidate.
        os << "__swp_evict:\n"
              "        MOV &__swp_retry, R12\n"
              "        TST R12\n"
              "        JNZ __swp_ev_dec\n"
              "        MOV #" << (options.evict_retries + 1) << ", R12\n"
              "__swp_ev_dec:\n"
              "        DEC R12\n"
              "        MOV R12, &__swp_retry\n"
              "        TST R12\n"
              "        JZ __swp_ev_fail\n"
              "        MOV &__swp_curid, R12\n"
              "        MOV __swp_fsize(R12), R13\n"
              "        MOV R15, R14\n"          // candidate = blocker end
              "        MOV R14, R12\n"
              "        ADD R13, R12\n"
              "        CMP #" << (cache_end + 1) << ", R12\n"
              "        JLO __swp_ev_ok\n"
              "        MOV #" << cache_base << ", R14\n"
              "        MOV R14, R12\n"
              "        ADD R13, R12\n"
              "__swp_ev_ok:\n"
              "        MOV R14, &__swp_cand\n"
              "        MOV R12, &__swp_end\n"
              "        INC &__swp_nretry\n"
              "        CLR R11\n"
              "        JMP __swp_scan1\n"
              "__swp_ev_fail:\n"
              "        CLR &__swp_retry\n"
           << (freeze ? "        JMP __swp_thrash\n"
                      : "        JMP __swp_nvm\n");
    }

    if (freeze) {
        // An active function blocked the eviction: count consecutive
        // aborts; at the threshold, freeze the cache for a window.
        os << "__swp_thrash:\n"
              "        MOV &__swp_abort, R12\n"
              "        INC R12\n"
              "        MOV R12, &__swp_abort\n"
              "        CMP #" << options.freeze_threshold << ", R12\n"
              "        JLO __swp_nvm\n"
              "        MOV #" << options.freeze_window << ", R12\n"
              "        MOV R12, &__swp_freeze\n"
              "        CLR &__swp_abort\n";
        // falls through into the NVM path
    }

    // Fallback: execute from NVM (paper §3.3.3 — the redirect cell keeps
    // pointing at the handler, so the next call retries).
    os << "__swp_nvm:\n"
          "        MOV &__swp_curid, R15\n"
          "        MOV __swp_fnvm(R15), R12\n"
          "        MOV R12, &__swp_tmp\n"
          "__swp_exit:\n"
          "        MOV &__swp_save, R11\n"
          "        MOV &__swp_save+2, R12\n"
          "        MOV &__swp_save+4, R13\n"
          "        MOV &__swp_save+6, R14\n"
          "        MOV &__swp_save+8, R15\n"
          "        BR &__swp_tmp\n"
          "        .endfunc\n";

    // ---- Dynamic-call interface (§4 future work: "an interface for
    // the programmer to explicitly inform the runtime of dynamic
    // function calls"). The caller puts 2*funcId in R11 (the
    // __swp_id_<name> constants below) and calls this trampoline,
    // which performs exactly what an instrumented static call site
    // does: bump the callee's active counter, signal the id, and call
    // through the redirect cell. ----
    os << "        .func __swp_dyncall\n"
          "        ADD #1, __swp_active(R11)\n"
          "        MOV R11, &__swp_curid\n"
          "        PUSH R11\n"
          "        CALL __swp_redirect(R11)\n"
          "        POP R11\n"
          "        SUB #1, __swp_active(R11)\n"
          "        RET\n"
          "        .endfunc\n";
    for (int id = 0; id < n; ++id) {
        os << "        .equ __swp_id_" << funcs.names[id] << ", "
           << 2 * id << "\n";
    }

    // ---- Shared copy routine (word granularity; sizes are even) ----
    os << "        .func __swp_memcpy\n"
          "__swp_mc_loop:\n"
          "        TST R14\n"
          "        JZ __swp_mc_done\n"
          "        MOV @R13+, 0(R12)\n"
          "        INCD R12\n"
          "        DECD R14\n"
          "        JMP __swp_mc_loop\n"
          "__swp_mc_done:\n"
          "        RET\n"
          "        .endfunc\n";

    // ---- Boot recovery (crash consistency) ----
    // The metadata tables live in FRAM and survive power loss, but the
    // SRAM copies they point into do not: a redirect or relocation
    // cell left pointing at the cache after a reboot is a dangling
    // pointer into zeroed memory. The startup stub calls this routine
    // before anything else; it resets every per-function cell to its
    // cold NVM value (the same loop scan-pass 2 uses when evicting).
    // A persistent boot flag makes the clean first boot skip the walk
    // (the crt0 "dirty bit" idiom); any later boot must be a recovery
    // boot. Registers are preserved so the stub stays transparent to
    // main. Placed after __swp_memcpy so it sits outside the
    // Handler/Memcpy owner ranges and is attributed via
    // Stats::recovery_cycles instead.
    os << "        .func __swp_recover\n"
          "        TST &__swp_boot\n"
          "        JNZ __swp_rc_go\n"
          "        MOV #1, &__swp_boot\n"
          "        RET\n"
          "__swp_rc_go:\n"
          "        PUSH R11\n"
          "        PUSH R12\n"
          "        PUSH R13\n"
          "        PUSH R15\n"
          "        CLR R11\n"
          "__swp_rc_loop:\n"
          "        CMP #" << (2 * n) << ", R11\n"
          "        JHS __swp_rc_done\n"
          "        MOV #0xFFFF, __swp_cached(R11)\n"
          "        MOV #__swp_miss, __swp_redirect(R11)\n"
          "        CLR __swp_active(R11)\n"
          "        MOV __swp_rbase(R11), R13\n"
          "        MOV R13, R15\n"
          "        ADD __swp_rcnt(R11), R15\n"
          "        ADD __swp_rcnt(R11), R15\n"
          "__swp_rc_rst:\n"
          "        CMP R15, R13\n"
          "        JHS __swp_rc_next\n"
          "        MOV __swp_fnvm(R11), R12\n"
          "        ADD __swp_rofs(R13), R12\n"
          "        MOV R12, __swp_rval(R13)\n"
          "        INCD R13\n"
          "        JMP __swp_rc_rst\n"
          "__swp_rc_next:\n"
          "        INCD R11\n"
          "        JMP __swp_rc_loop\n"
          "__swp_rc_done:\n"
          "        MOV #" << cache_base << ", R12\n"
          "        MOV R12, &__swp_tail\n"
          "        CLR &__swp_curid\n";
    if (freeze) {
        os << "        CLR &__swp_abort\n"
              "        CLR &__swp_freeze\n";
    }
    if (options.evict)
        os << "        CLR &__swp_retry\n";
    if (ck) {
        // Resume from the newest committed checkpoint, if any: the
        // cold-reset walk above still ran first, so a boot without a
        // valid checkpoint keeps today's restart-from-clean-cache
        // behaviour. On resume the call never returns; on the cold
        // path it clobbers only registers the pushes above preserve.
        os << "        CALL #__ckpt_restore\n";
    }
    if (pool) {
        // Pool residency died with the SRAM: clear the bitmap and the
        // per-slot home/length cells so no stale mapping survives a
        // power failure that hit mid-swap. The FRAM homes themselves
        // are .data, which crt0 re-initialises on every boot.
        os << "        CLR &__swp_dmap\n"
              "        CLR R13\n"
              "__swp_rc_dclr:\n"
              "        CMP #32, R13\n"
              "        JHS __swp_rc_ddone\n"
              "        CLR __swp_dhome(R13)\n"
              "        CLR __swp_dlen(R13)\n"
              "        INCD R13\n"
              "        JMP __swp_rc_dclr\n"
              "__swp_rc_ddone:\n";
    }
    os << "        POP R15\n"
          "        POP R13\n"
          "        POP R12\n"
          "        POP R11\n"
          "        RET\n"
          "        .endfunc\n";

    if (pool) {
        // ---- Data-side SwapRAM (ISSUE 7 tentpole, part b) ----
        // __swp_din(R12 = FRAM home, R13 = even byte length) returns
        // R12 = the address the caller should use: the buffer's pool
        // copy (existing mapping or a fresh swap-in through
        // __swp_memcpy), or the FRAM home unchanged when the pool
        // cannot hold it — the caller then works in place, slower but
        // correct. The pool is 16 slots managed by the __swp_dmap
        // bitmap; a buffer occupies ceil(len/slot) contiguous slots,
        // with its home and length recorded in the run's first slot.
        os << "        .func __swp_din\n"
              "        CMP #" << (pool + 1) << ", R13\n"
              "        JHS __swp_di_full\n"
              "        CLR R11\n"
              "__swp_di_find:\n"
              "        CMP #32, R11\n"
              "        JHS __swp_di_alloc\n"
              "        CMP __swp_dhome(R11), R12\n"
              "        JEQ __swp_di_hit\n"
              "        INCD R11\n"
              "        JMP __swp_di_find\n"
              "__swp_di_hit:\n"
              "        MOV R11, R14\n";
        shl("R14", slot_shift - 1); // addr = pool_base + 2*slot * s/2
        os << "        ADD #" << pool_base << ", R14\n"
              "        MOV R14, R12\n"
              "        RET\n"
              "__swp_di_alloc:\n"
              "        MOV R13, R14\n"
              "        ADD #" << ((pool / 16) - 1) << ", R14\n";
        shr("R14", slot_shift); // R14 = slots needed
        os << "        CLR R15\n"
              "__swp_di_mask:\n"
              "        TST R14\n"
              "        JZ __swp_di_scan0\n"
              "        RLA R15\n"
              "        BIS #1, R15\n"
              "        DEC R14\n"
              "        JMP __swp_di_mask\n"
              "__swp_di_scan0:\n"
              "        CLR R11\n"
              "__swp_di_scan:\n"
              "        MOV &__swp_dmap, R14\n"
              "        AND R15, R14\n"
              "        JZ __swp_di_take\n"
              "        TST R15\n"  // mask reached the top slot: no room
              "        JN __swp_di_full\n"
              "        RLA R15\n"
              "        INCD R11\n"
              "        JMP __swp_di_scan\n"
              "__swp_di_take:\n"
              "        BIS R15, &__swp_dmap\n"
              "        MOV R12, __swp_dhome(R11)\n"
              "        MOV R13, __swp_dlen(R11)\n"
              "        MOV R13, R14\n"  // len
              "        MOV R12, R13\n"  // src = home
              "        MOV R11, R12\n";
        shl("R12", slot_shift - 1);
        os << "        ADD #" << pool_base << ", R12\n" // dst
              "        PUSH R12\n"
              "        CALL #__swp_memcpy\n"
              "        INC &__swp_dnin\n"
              "        POP R12\n"
              "        RET\n"
              "__swp_di_full:\n"
              "        INC &__swp_dnfull\n"
              "        RET\n"  // R12 still the home: run in place
              "        .endfunc\n";

        // __swp_dout(R12 = FRAM home): write the pool copy back to its
        // home and free the slots. A home with no mapping (swap-in ran
        // with the pool full) is a no-op — the caller worked in place.
        // Copy-back precedes the metadata clear: a power failure in
        // either window only leaves cells __swp_recover resets and a
        // home crt0's .data re-initialisation restores.
        os << "        .func __swp_dout\n"
              "        CLR R11\n"
              "__swp_do_find:\n"
              "        CMP #32, R11\n"
              "        JHS __swp_do_miss\n"
              "        CMP __swp_dhome(R11), R12\n"
              "        JEQ __swp_do_hit\n"
              "        INCD R11\n"
              "        JMP __swp_do_find\n"
              "__swp_do_hit:\n"
              "        MOV __swp_dlen(R11), R14\n" // len
              "        MOV R11, R13\n";
        shl("R13", slot_shift - 1);
        os << "        ADD #" << pool_base << ", R13\n" // src = pool
              "        CALL #__swp_memcpy\n"  // dst = R12 = home
              "        MOV __swp_dlen(R11), R13\n"
              "        ADD #" << ((pool / 16) - 1) << ", R13\n";
        shr("R13", slot_shift); // R13 = slots to free
        os << "        CLR R14\n"
              "__swp_do_mask:\n"
              "        TST R13\n"
              "        JZ __swp_do_pos\n"
              "        RLA R14\n"
              "        BIS #1, R14\n"
              "        DEC R13\n"
              "        JMP __swp_do_mask\n"
              "__swp_do_pos:\n"
              "        MOV R11, R13\n"
              "__swp_do_shift:\n"
              "        TST R13\n"
              "        JZ __swp_do_clr\n"
              "        RLA R14\n"
              "        DECD R13\n"
              "        JMP __swp_do_shift\n"
              "__swp_do_clr:\n"
              "        BIC R14, &__swp_dmap\n"
              "        CLR __swp_dhome(R11)\n"
              "        CLR __swp_dlen(R11)\n"
              "        INC &__swp_dnout\n"
              "__swp_do_miss:\n"
              "        RET\n"
              "        .endfunc\n";
    }

    // ---- Checkpoint commit/restore (ISSUE 8) ----
    // Emitted last so the pair forms one contiguous owner range
    // (attributed to Handler by the harness) and every earlier
    // routine keeps its address when the scheme is toggled on.
    if (ck)
        ckpt::emitRoutines(os, ckspec);

    return os.str();
}

} // namespace swapram::cache
