#include "swapram/pass.hh"

#include "support/logging.hh"

namespace swapram::cache {

using masm::AsmOperand;
using masm::Directive;
using masm::Expr;
using masm::OperKind;
using masm::Program;
using masm::Statement;

FuncIds
collectFunctions(const Program &program, const Options &options)
{
    FuncIds out;
    for (const masm::FuncRange &f : masm::findFunctions(program)) {
        if (options.isBlacklisted(f.name))
            continue;
        if (out.contains(f.name))
            support::fatal("duplicate function '", f.name, "'");
        out.ids[f.name] = out.count();
        out.names.push_back(f.name);
    }
    return out;
}

namespace {

/** The call target's function name, if this is `CALL #symbol`. */
const std::string *
directCallTarget(const Statement &s)
{
    if (s.kind != Statement::Kind::Instr)
        return nullptr;
    const masm::AsmInstr &i = s.instr;
    if (i.op != isa::Op::Call || !i.dst)
        return nullptr;
    if (i.dst->kind != OperKind::Immediate || !i.dst->expr.isSymbol())
        return nullptr;
    return &i.dst->expr.symbol();
}

Expr
cellAddr(const char *table, int id)
{
    return Expr::add(Expr::sym(table), Expr::num(2 * id));
}

} // namespace

Program
instrumentCalls(const Program &program, const FuncIds &funcs,
                const Options &options, PassStats *stats)
{
    PassStats local;
    Program out;
    out.stmts.reserve(program.stmts.size() * 2);

    // Track whether we are inside an instrumented function, for the
    // symbolic->absolute rewrite.
    bool in_cacheable_func = false;

    for (const Statement &s : program.stmts) {
        if (s.kind == Statement::Kind::Directive) {
            if (s.directive == Directive::Func)
                in_cacheable_func = funcs.contains(s.name);
            else if (s.directive == Directive::EndFunc)
                in_cacheable_func = false;
        }

        // Data-side SwapRAM: with a pool configured, calls to the
        // portable `__data_swap_in`/`__data_swap_out` library shims are
        // rewired to the generated pool routines. Checked before call
        // instrumentation — the shims are ordinary .funcs, so without a
        // pool they are cached and called like any other function.
        if (const std::string *target = directCallTarget(s);
            target && options.data_pool_bytes &&
            (*target == "__data_swap_in" || *target == "__data_swap_out")) {
            Statement copy = s;
            copy.instr.dst->expr = Expr::sym(*target == "__data_swap_in"
                                                 ? "__swp_din"
                                                 : "__swp_dout");
            ++local.data_swap_calls_retargeted;
            out.stmts.push_back(std::move(copy));
            continue;
        }

        if (const std::string *target = directCallTarget(s);
            target && funcs.contains(*target)) {
            int id = funcs.ids.at(*target);
            ++local.call_sites_instrumented;
            out.stmts.push_back(Statement::makeInstr(
                masm::addImmToAbs(1, cellAddr("__swp_active", id)),
                s.line));
            out.stmts.push_back(Statement::makeInstr(
                masm::movInstr(AsmOperand::imm(Expr::num(2 * id)),
                               AsmOperand::abs(Expr::sym("__swp_curid"))),
                s.line));
            out.stmts.push_back(Statement::makeInstr(
                masm::callAbs(cellAddr("__swp_redirect", id)), s.line));
            out.stmts.push_back(Statement::makeInstr(
                masm::subImmFromAbs(1, cellAddr("__swp_active", id)),
                s.line));
            continue;
        }

        Statement copy = s;
        if (in_cacheable_func && options.absolutize_data_refs &&
            copy.kind == Statement::Kind::Instr) {
            auto absolutize = [&](std::optional<AsmOperand> &op) {
                if (op && op->kind == OperKind::SymbolicMem) {
                    op->kind = OperKind::Absolute;
                    op->reg = isa::Reg::SR;
                    ++local.symbolic_operands_absolutized;
                }
            };
            absolutize(copy.instr.src);
            absolutize(copy.instr.dst);
        }
        out.stmts.push_back(std::move(copy));
    }

    if (stats)
        *stats = local;
    return out;
}

} // namespace swapram::cache
