/**
 * @file
 * SwapRAM runtime generator (paper §3.3, Figure 4 and §4).
 *
 * Emits real MSP430 assembly for the cache miss handler, the shared
 * word-copy routine, and the metadata tables, parametrized by the
 * program's function set — the analogue of the paper's generated C
 * runtime. The runtime executes inside the simulator, so its
 * instruction fetches, FRAM metadata traffic, and copy costs are
 * measured rather than modelled.
 *
 * Metadata lives in .const (FRAM): redirect cells, cached-address and
 * active-counter arrays, per-function size/NVM-address tables, and the
 * relocation offset/value arrays. Keeping runtime state in FRAM matches
 * the paper's finding (§4) that SRAM is better spent on cached code.
 */

#ifndef SWAPRAM_SWAPRAM_RUNTIME_GEN_HH
#define SWAPRAM_SWAPRAM_RUNTIME_GEN_HH

#include <string>

#include "ckpt/gen.hh"
#include "ckpt/options.hh"
#include "swapram/options.hh"
#include "swapram/pass.hh"
#include "swapram/reloc.hh"

namespace swapram::cache {

/**
 * The checkpoint emitter parameters this runtime bakes into its
 * generated assembly. The builder calls this again after the final
 * assembly to cross-check the layout (ckpt::verifyLayout).
 */
ckpt::GenSpec checkpointSpec(const FuncIds &funcs,
                             const RelocResult &relocs,
                             const Options &options,
                             const ckpt::SectionSizes &sections);

/**
 * Generate the runtime assembly (text + tables) for @p funcs.
 * @p sections carries the FRAM-resident .data/.bss sizes the
 * checkpoint machinery must capture (builder-measured; ignored when
 * options.ckpt.scheme == None).
 */
std::string generateRuntimeAsm(const FuncIds &funcs,
                               const RelocResult &relocs,
                               const Options &options,
                               const ckpt::SectionSizes &sections = {});

} // namespace swapram::cache

#endif // SWAPRAM_SWAPRAM_RUNTIME_GEN_HH
