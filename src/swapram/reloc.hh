/**
 * @file
 * Absolute-branch relocation pass (paper §3.3.1, Figure 3/4).
 *
 * After the intermediate assembly (which performs the same jump
 * relaxation msp430-gcc would), every absolute branch `MOV #target, PC`
 * whose target lies inside its own function is rewritten to read its
 * destination from a relocation value cell: `MOV &__swp_rval+2k, PC`.
 * The runtime sets rval[k] = sramBase + (target - fnBase) when the
 * function is cached, and resets it to the NVM target on eviction, so
 * the branch stays within whichever copy is executing.
 *
 * Both instruction forms are two words, so this rewrite never changes
 * code layout — which is what makes the intermediate binary's sizes
 * authoritative for the final build.
 */

#ifndef SWAPRAM_SWAPRAM_RELOC_HH
#define SWAPRAM_SWAPRAM_RELOC_HH

#include <cstdint>
#include <vector>

#include "masm/assembler.hh"
#include "swapram/pass.hh"

namespace swapram::cache {

/** One relocatable branch. */
struct RelocEntry {
    int func_id;          ///< owning function
    std::uint16_t offset; ///< target - function base
    std::uint16_t target; ///< absolute NVM target (initial cell value)
};

/** Result of the relocation pass. */
struct RelocResult {
    masm::Program program; ///< rewritten (still layout-identical)
    /** All entries, grouped contiguously by func_id in id order. */
    std::vector<RelocEntry> entries;
    /** Per-function first index into `entries` (size = nfuncs + 1). */
    std::vector<int> func_first;

    int
    relocCount(int func_id) const
    {
        return func_first[func_id + 1] - func_first[func_id];
    }
};

/** Run the pass over an intermediate assembly of the instrumented
 *  program. */
RelocResult relocateBranches(const masm::AssembleResult &inter,
                             const FuncIds &funcs);

} // namespace swapram::cache

#endif // SWAPRAM_SWAPRAM_RELOC_HH
