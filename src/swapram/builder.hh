/**
 * @file
 * SwapRAM build orchestration (paper §4): instrument calls ->
 * intermediate assembly (sizing + relaxation) -> relocate absolute
 * branches -> generate the runtime -> final assembly.
 */

#ifndef SWAPRAM_SWAPRAM_BUILDER_HH
#define SWAPRAM_SWAPRAM_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "masm/assembler.hh"
#include "swapram/options.hh"
#include "swapram/pass.hh"
#include "swapram/reloc.hh"

namespace swapram::cache {

/** Everything produced by a SwapRAM build. */
struct BuildInfo {
    masm::AssembleResult assembled; ///< final, loadable program

    FuncIds funcs;
    PassStats pass_stats;
    int reloc_count = 0;

    // Static size accounting for Figure 7 / §5.2.
    std::uint32_t app_text_bytes = 0;     ///< transformed application code
    std::uint32_t runtime_text_bytes = 0; ///< miss handler + memcpy
    std::uint32_t metadata_bytes = 0;     ///< tables and cells in FRAM
    std::uint32_t handler_bytes = 0;      ///< miss handler alone (§5.2)

    // Owner attribution ranges for Figure 8.
    std::uint16_t handler_addr = 0, handler_end = 0;
    std::uint16_t memcpy_addr = 0, memcpy_end = 0;

    // Boot-recovery routine range (Stats::recovery_cycles attribution).
    std::uint16_t recover_addr = 0, recover_end = 0;

    // Data-pool routines __swp_din/__swp_dout (zero when no pool);
    // attributed to Handler like the miss path they parallel.
    std::uint16_t datapool_addr = 0, datapool_end = 0;

    // Checkpoint routines __ckpt_commit/__ckpt_restore (zero when the
    // scheme is None); attributed to Handler.
    std::uint16_t ckpt_addr = 0, ckpt_end = 0;

    std::uint32_t
    totalNvmBytes() const
    {
        return app_text_bytes + runtime_text_bytes + metadata_bytes;
    }
};

/**
 * Build a SwapRAM-enabled binary from an application program.
 * @p layout must be the placement the final image will be loaded with
 * (the intermediate sizing pass uses the same one).
 */
BuildInfo build(const masm::Program &app, const masm::LayoutSpec &layout,
                const Options &options);

} // namespace swapram::cache

#endif // SWAPRAM_SWAPRAM_BUILDER_HH
