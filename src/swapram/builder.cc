#include "swapram/builder.hh"

#include "ckpt/gen.hh"
#include "masm/parser.hh"
#include "support/logging.hh"
#include "swapram/runtime_gen.hh"

namespace swapram::cache {

BuildInfo
build(const masm::Program &app, const masm::LayoutSpec &layout,
      const Options &options)
{
    BuildInfo info;
    info.funcs = collectFunctions(app, options);

    // 1. Call-site instrumentation (Figure 3).
    masm::Program instrumented =
        instrumentCalls(app, info.funcs, options, &info.pass_stats);

    // 2. Intermediate assembly: performs jump relaxation and fixes
    //    function sizes/addresses (the paper's "intermediate binary").
    //    The runtime's symbols do not exist yet; placeholder values are
    //    fine because absolute operands have a fixed size regardless of
    //    the resolved address.
    masm::LayoutSpec inter_layout = layout;
    for (const char *sym : {"__swp_active", "__swp_curid",
                            "__swp_redirect", "__swp_rval",
                            "__swp_miss", "__swp_dyncall",
                            "__swp_recover", "__swp_din",
                            "__swp_dout"}) {
        inter_layout.predefined.emplace(sym, 0);
    }
    for (const std::string &name : info.funcs.names)
        inter_layout.predefined.emplace("__swp_id_" + name, 0);
    masm::AssembleResult inter = masm::assemble(instrumented,
                                                inter_layout);

    // 3. Relocate intra-function absolute branches (Figure 4).
    RelocResult relocs = relocateBranches(inter, info.funcs);
    info.reloc_count = static_cast<int>(relocs.entries.size());

    // Checkpointing captures any FRAM-resident .data/.bss (crt0
    // reinitialises them every boot); measure them from the
    // intermediate image — appending the runtime never changes the
    // application sections' sizes.
    ckpt::SectionSizes sections;
    if (options.ckpt.enabled())
        sections = ckpt::measureSections(inter.image, options.ckpt);

    // 4. Generate and append the runtime + metadata tables.
    masm::Program runtime = masm::parse(
        generateRuntimeAsm(info.funcs, relocs, options, sections));
    masm::Program final_program = relocs.program;
    final_program.append(runtime);

    // 5. Final assembly.
    info.assembled = masm::assemble(final_program, layout);

    // The relocation pass recorded NVM addresses from the intermediate
    // assembly; verify the final layout kept them (it must: the rewrite
    // is size-preserving and the runtime is appended after all
    // application text).
    for (int id = 0; id < info.funcs.count(); ++id) {
        const auto &name = info.funcs.names[id];
        if (info.assembled.function(name).addr !=
            inter.function(name).addr) {
            support::panic("SwapRAM build moved function '", name,
                           "' between intermediate and final assembly");
        }
    }

    // Size accounting.
    const auto &handler = info.assembled.function("__swp_miss");
    const auto &dyncall = info.assembled.function("__swp_dyncall");
    const auto &copier = info.assembled.function("__swp_memcpy");
    info.handler_addr = handler.addr;
    // The dynamic-call trampoline sits right after the handler and is
    // runtime code too (attributed to Handler in Figure 8).
    info.handler_end =
        static_cast<std::uint16_t>(dyncall.addr + dyncall.size);
    info.handler_bytes = handler.size;
    info.memcpy_addr = copier.addr;
    info.memcpy_end =
        static_cast<std::uint16_t>(copier.addr + copier.size);
    const auto &recover = info.assembled.function("__swp_recover");
    info.recover_addr = recover.addr;
    info.recover_end =
        static_cast<std::uint16_t>(recover.addr + recover.size);
    info.runtime_text_bytes = handler.size + copier.size + recover.size;
    if (options.data_pool_bytes) {
        // __swp_din/__swp_dout are emitted back to back after the
        // recovery routine; the pair forms one owner-attribution range.
        const auto &din = info.assembled.function("__swp_din");
        const auto &dout = info.assembled.function("__swp_dout");
        info.datapool_addr = din.addr;
        info.datapool_end =
            static_cast<std::uint16_t>(dout.addr + dout.size);
        info.runtime_text_bytes += din.size + dout.size;
    }
    if (options.ckpt.enabled()) {
        // __ckpt_commit/__ckpt_restore are emitted last, back to back;
        // the pair forms one owner-attribution range (Handler).
        ckpt::GenSpec ckspec =
            checkpointSpec(info.funcs, relocs, options, sections);
        ckpt::verifyLayout(info.assembled, ckspec, "__swp_meta_end");
        const auto &commit = info.assembled.function("__ckpt_commit");
        const auto &restore = info.assembled.function("__ckpt_restore");
        info.ckpt_addr = commit.addr;
        info.ckpt_end =
            static_cast<std::uint16_t>(restore.addr + restore.size);
        info.runtime_text_bytes += commit.size + restore.size;
    }
    info.app_text_bytes =
        info.assembled.image.text.size - info.runtime_text_bytes;
    // Metadata: the fixed cells and save area plus every table entry.
    const int n = std::max(info.funcs.count(), 1);
    const int r = std::max(info.reloc_count, 1);
    info.metadata_bytes = 10 + 10 + 2 // cells, save area, boot flag
                          + 7 * 2 * static_cast<std::uint32_t>(n)
                          + 2 * 2 * static_cast<std::uint32_t>(r);
    if (options.evict)
        info.metadata_bytes += 6; // retry budget + two counters
    if (options.data_pool_bytes)
        info.metadata_bytes += 8 + 64; // bitmap, counters, home/len
    if (options.ckpt.enabled()) {
        const ckpt::GenSpec ckspec =
            checkpointSpec(info.funcs, relocs, options, sections);
        // Staged registers + cursor + scheme cell + both counters +
        // two headed buffers.
        info.metadata_bytes += ckpt::kRegsBytes + 2 + 2 + 4 +
                               2 * (4 + ckspec.payloadBytes());
    }
    return info;
}

} // namespace swapram::cache
