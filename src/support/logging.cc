#include "support/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>

#include "support/strings.hh"

namespace swapram::support {

namespace {

/** Resolve the initial level from SWAPRAM_LOG (once, lazily). */
LogLevel
levelFromEnv()
{
    const char *env = std::getenv("SWAPRAM_LOG");
    if (!env)
        return LogLevel::Warn;
    std::string v = toLower(env);
    if (v == "debug" || v == "2")
        return LogLevel::Debug;
    if (v == "info" || v == "verbose" || v == "1")
        return LogLevel::Info;
    if (v == "warn" || v == "quiet" || v == "0" || v.empty())
        return LogLevel::Warn;
    std::cerr << "warn: SWAPRAM_LOG='" << env
              << "' not recognized (want warn|info|debug)\n";
    return LogLevel::Warn;
}

/**
 * The level is read from every simulation thread (the harness engine
 * runs experiments concurrently), so it lives in an atomic. Magic-
 * static initialization resolves SWAPRAM_LOG exactly once even when
 * the first readers race.
 */
std::atomic<LogLevel> &
levelSlot()
{
    static std::atomic<LogLevel> level{levelFromEnv()};
    return level;
}

} // namespace

void
warnStr(const std::string &message)
{
    std::cerr << "warn: " << message << "\n";
}

void
informStr(const std::string &message)
{
    if (logLevel() >= LogLevel::Info)
        std::cerr << "info: " << message << "\n";
}

void
debugStr(const std::string &message)
{
    if (debugEnabled())
        std::cerr << "debug: " << message << "\n";
}

void
setVerbose(bool verbose)
{
    setLogLevel(verbose ? LogLevel::Info : LogLevel::Warn);
}

void
setLogLevel(LogLevel level)
{
    levelSlot().store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return levelSlot().load(std::memory_order_relaxed);
}

bool
debugEnabled()
{
    return logLevel() >= LogLevel::Debug;
}

} // namespace swapram::support
