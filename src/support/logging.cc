#include "support/logging.hh"

#include <iostream>

namespace swapram::support {

namespace {
bool verbose_enabled = false;
} // namespace

void
warnStr(const std::string &message)
{
    std::cerr << "warn: " << message << "\n";
}

void
informStr(const std::string &message)
{
    if (verbose_enabled)
        std::cerr << "info: " << message << "\n";
}

void
setVerbose(bool verbose)
{
    verbose_enabled = verbose;
}

} // namespace swapram::support
