/**
 * @file
 * Minimal JSON value, writer, and validating parser.
 *
 * Just enough JSON for the observability layer: machine-readable run
 * reports (harness), Chrome trace_event output validation (tests), and
 * the CI smoke check. Numbers are stored as doubles except integers,
 * which keep 64-bit precision so cycle counts round-trip exactly.
 */

#ifndef SWAPRAM_SUPPORT_JSON_HH
#define SWAPRAM_SUPPORT_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace swapram::support::json {

class Value;

using Array = std::vector<Value>;
/** std::map keeps report keys deterministically ordered. */
using Object = std::map<std::string, Value>;

/** One JSON value (null / bool / number / string / array / object). */
class Value
{
  public:
    enum class Kind : std::uint8_t {
        Null,
        Bool,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    Value() : kind_(Kind::Null) {}
    Value(std::nullptr_t) : kind_(Kind::Null) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(int v) : kind_(Kind::Int), int_(v) {}
    Value(unsigned v) : kind_(Kind::Int), int_(v) {}
    Value(std::int64_t v) : kind_(Kind::Int), int_(v) {}
    Value(std::uint64_t v)
        : kind_(Kind::Int), int_(static_cast<std::int64_t>(v))
    {
    }
    Value(double v) : kind_(Kind::Double), double_(v) {}
    Value(const char *s) : kind_(Kind::String), string_(s) {}
    Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
    Value(Array a)
        : kind_(Kind::Array), array_(std::make_shared<Array>(std::move(a)))
    {
    }
    Value(Object o)
        : kind_(Kind::Object),
          object_(std::make_shared<Object>(std::move(o)))
    {
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }
    bool isString() const { return kind_ == Kind::String; }

    bool asBool() const;
    std::int64_t asInt() const;
    double asDouble() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Object member lookup; null Value if absent or not an object. */
    const Value &operator[](const std::string &key) const;
    /** Array element; null Value if out of range or not an array. */
    const Value &at(std::size_t index) const;

    /** Serialize. @p indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0;
    std::string string_;
    std::shared_ptr<Array> array_;
    std::shared_ptr<Object> object_;
};

/** Append @p text to a JSON output with quoting and escapes. */
void escape(std::string &out, const std::string &text);

/**
 * Parse one JSON document. fatal()s (support::FatalError) on malformed
 * input — the test suite relies on this to validate emitted traces.
 */
Value parse(const std::string &text);

} // namespace swapram::support::json

#endif // SWAPRAM_SUPPORT_JSON_HH
