/**
 * @file
 * Error reporting and status-message helpers, in the spirit of gem5's
 * logging.hh: panic() for internal invariant violations, fatal() for
 * user-caused errors (bad assembly, bad configuration), warn()/inform()
 * for non-fatal status.
 */

#ifndef SWAPRAM_SUPPORT_LOGGING_HH
#define SWAPRAM_SUPPORT_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace swapram::support {

/** Thrown by panic(): a bug in this library, not in user input. */
struct PanicError : std::logic_error {
    using std::logic_error::logic_error;
};

/** Thrown by fatal(): invalid user input (assembly, config, workload). */
struct FatalError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

namespace detail {

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    appendAll(os, rest...);
}

} // namespace detail

/** Concatenate all arguments into one string using operator<<. */
template <typename... Args>
std::string
cat(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    return os.str();
}

/** Report an internal invariant violation; never returns. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(cat("panic: ", args...));
}

/** Report an unrecoverable user-input error; never returns. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(cat("fatal: ", args...));
}

/** Print a warning to stderr (does not stop execution). */
void warnStr(const std::string &message);

/** Print an informational message to stderr. */
void informStr(const std::string &message);

/** Enable/disable inform() output globally (quiet test runs). */
void setVerbose(bool verbose);

/**
 * Diagnostic verbosity. The default is Warn so test runs stay quiet;
 * the SWAPRAM_LOG environment variable ("warn" / "info" / "debug",
 * read on first use) or setLogLevel() raises it. inform() maps to
 * Info; debug() to Debug. setVerbose(true) is kept as a shorthand for
 * setLogLevel(LogLevel::Info).
 */
enum class LogLevel : int { Warn = 0, Info = 1, Debug = 2 };

/** Override the log level (beats SWAPRAM_LOG). */
void setLogLevel(LogLevel level);

/** Current effective log level (resolves SWAPRAM_LOG once). */
LogLevel logLevel();

/** Cheap check for guarding expensive debug-message construction. */
bool debugEnabled();

/** Print a debug diagnostic to stderr (only at LogLevel::Debug). */
void debugStr(const std::string &message);

template <typename... Args>
void
warn(const Args &...args)
{
    warnStr(cat(args...));
}

template <typename... Args>
void
inform(const Args &...args)
{
    informStr(cat(args...));
}

template <typename... Args>
void
debug(const Args &...args)
{
    if (debugEnabled())
        debugStr(cat(args...));
}

} // namespace swapram::support

#endif // SWAPRAM_SUPPORT_LOGGING_HH
