/**
 * @file
 * Memory map of the modelled MSP430FR2355-like platform, shared by the
 * assembler defaults, the machine model, and the experiment harness.
 *
 * Mirrors the paper's evaluation device: 32 KiB FRAM, 4 KiB SRAM, CPU up
 * to 24 MHz with 8 MHz FRAM (3 wait states per FRAM access at 24 MHz),
 * and a 2-way hardware read cache with four 8-byte lines.
 */

#ifndef SWAPRAM_SUPPORT_PLATFORM_HH
#define SWAPRAM_SUPPORT_PLATFORM_HH

#include <cstdint>

namespace swapram::platform {

inline constexpr std::uint16_t kSramBase = 0x2000;
inline constexpr std::uint32_t kSramSize = 0x1000; // 4 KiB
inline constexpr std::uint32_t kSramEnd = 0x3000;  // exclusive

inline constexpr std::uint16_t kFramBase = 0x8000;
inline constexpr std::uint32_t kFramSize = 0x8000; // 32 KiB
inline constexpr std::uint32_t kFramEnd = 0x10000; // exclusive

/** Interrupt vector table; code/data must stay below this. */
inline constexpr std::uint16_t kVectorsBase = 0xFF80;

// Memory-mapped I/O (test harness devices).
inline constexpr std::uint16_t kMmioBase = 0x0100;
inline constexpr std::uint16_t kMmioConsole = 0x0100; ///< byte out
inline constexpr std::uint16_t kMmioDone = 0x0102;    ///< write halts
inline constexpr std::uint16_t kMmioPin = 0x0104;     ///< pin toggle
inline constexpr std::uint16_t kMmioCycleLo = 0x0106; ///< latched on read
inline constexpr std::uint16_t kMmioCycleHi = 0x0108;
/** Capacitor level, 0..0xFFFF of capacity (0xFFFF = mains powered). */
inline constexpr std::uint16_t kMmioEnergy = 0x010A;
inline constexpr std::uint16_t kMmioEnd = 0x010C;     // exclusive

/** Timer interrupt vector (word holding the ISR address). */
inline constexpr std::uint16_t kTimerVector = 0xFFF0;
/** Cycles to enter an interrupt (push PC, push SR, fetch vector). */
inline constexpr std::uint32_t kInterruptCycles = 6;

// Hardware FRAM read cache geometry (MSP430FR2355: 2-way, 4 x 8-byte).
inline constexpr int kHwCacheLineBytes = 8;
inline constexpr int kHwCacheWays = 2;
inline constexpr int kHwCacheSets = 2;

/** FRAM maximum access frequency in Hz. */
inline constexpr std::uint32_t kFramMaxHz = 8'000'000;
/** Wait states per FRAM cache miss at 24 MHz (per the paper, §5.4). */
inline constexpr std::uint32_t kFramWaitStates24MHz = 3;

} // namespace swapram::platform

#endif // SWAPRAM_SUPPORT_PLATFORM_HH
