/**
 * @file
 * Deterministic xorshift RNG used by workload input generators and
 * property tests so every run is reproducible without std::random
 * implementation differences.
 */

#ifndef SWAPRAM_SUPPORT_RNG_HH
#define SWAPRAM_SUPPORT_RNG_HH

#include <cstdint>

namespace swapram::support {

/** xorshift32 generator with an explicit seed. */
class Rng
{
  public:
    explicit Rng(std::uint32_t seed = 0x5EED1234u)
        : state_(seed ? seed : 1u)
    {}

    /** Next raw 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint32_t x = state_;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        state_ = x;
        return x;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        return next() % bound;
    }

    /** Uniform byte. */
    std::uint8_t byte() { return static_cast<std::uint8_t>(next() >> 13); }

    /** Uniform 16-bit word. */
    std::uint16_t word() { return static_cast<std::uint16_t>(next() >> 11); }

  private:
    std::uint32_t state_;
};

} // namespace swapram::support

#endif // SWAPRAM_SUPPORT_RNG_HH
