/**
 * @file
 * Deterministic xorshift RNG used by workload input generators and
 * property tests so every run is reproducible without std::random
 * implementation differences.
 */

#ifndef SWAPRAM_SUPPORT_RNG_HH
#define SWAPRAM_SUPPORT_RNG_HH

#include <cstdint>

namespace swapram::support {

/** xorshift32 generator with an explicit seed.
 *
 *  `below()` is versioned: version 1 is the original `next() % bound`,
 *  which is modulo-biased when the bound does not divide 2^32 (low
 *  values are up to 2x as likely for bounds near 2^31). Version 2 (the
 *  default) rejection-samples from the largest bound-divisible prefix
 *  of the 32-bit range, so every value in [0, bound) is exactly
 *  equally likely. Callers whose generated data is pinned by golden
 *  checksums or recorded fuzz seeds construct with kLegacyBelow to
 *  keep their historical streams byte-identical. */
class Rng
{
  public:
    static constexpr int kLegacyBelow = 1; ///< biased next() % bound
    static constexpr int kUniformBelow = 2; ///< rejection sampling

    explicit Rng(std::uint32_t seed = 0x5EED1234u,
                 int version = kUniformBelow)
        : state_(seed ? seed : 1u), version_(version)
    {}

    /** Next raw 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint32_t x = state_;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        state_ = x;
        return x;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        if (version_ == kLegacyBelow)
            return next() % bound;
        // Rejection sampling: accept only draws below the largest
        // multiple of bound, then reduce. The loop terminates quickly
        // (acceptance probability is always > 1/2).
        std::uint32_t limit = ~0u - ~0u % bound;
        std::uint32_t x;
        do {
            x = next();
        } while (x >= limit);
        return x % bound;
    }

    /** Uniform byte. */
    std::uint8_t byte() { return static_cast<std::uint8_t>(next() >> 13); }

    /** Uniform 16-bit word. */
    std::uint16_t word() { return static_cast<std::uint16_t>(next() >> 11); }

  private:
    std::uint32_t state_;
    int version_ = kUniformBelow;
};

} // namespace swapram::support

#endif // SWAPRAM_SUPPORT_RNG_HH
