#include "support/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/logging.hh"

namespace swapram::support::json {

namespace {

const Value kNull{};
const Array kEmptyArray{};
const Object kEmptyObject{};

} // namespace

bool
Value::asBool() const
{
    if (kind_ != Kind::Bool)
        panic("json: asBool on non-bool");
    return bool_;
}

std::int64_t
Value::asInt() const
{
    if (kind_ == Kind::Int)
        return int_;
    if (kind_ == Kind::Double)
        return static_cast<std::int64_t>(double_);
    panic("json: asInt on non-number");
}

double
Value::asDouble() const
{
    if (kind_ == Kind::Int)
        return static_cast<double>(int_);
    if (kind_ == Kind::Double)
        return double_;
    panic("json: asDouble on non-number");
}

const std::string &
Value::asString() const
{
    if (kind_ != Kind::String)
        panic("json: asString on non-string");
    return string_;
}

const Array &
Value::asArray() const
{
    if (kind_ != Kind::Array)
        panic("json: asArray on non-array");
    return *array_;
}

const Object &
Value::asObject() const
{
    if (kind_ != Kind::Object)
        panic("json: asObject on non-object");
    return *object_;
}

const Value &
Value::operator[](const std::string &key) const
{
    if (kind_ != Kind::Object)
        return kNull;
    auto it = object_->find(key);
    return it == object_->end() ? kNull : it->second;
}

const Value &
Value::at(std::size_t index) const
{
    if (kind_ != Kind::Array || index >= array_->size())
        return kNull;
    return (*array_)[index];
}

void
escape(std::string &out, const std::string &text)
{
    out += '"';
    for (char ch : text) {
        auto c = static_cast<unsigned char>(ch);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
}

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    switch (kind_) {
      case Kind::Null:
        out += "null";
        return;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        return;
      case Kind::Int:
        out += std::to_string(int_);
        return;
      case Kind::Double: {
        if (!std::isfinite(double_)) {
            out += "null"; // JSON has no Inf/NaN
            return;
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        out += buf;
        return;
      }
      case Kind::String:
        escape(out, string_);
        return;
      case Kind::Array: {
        if (array_->empty()) {
            out += "[]";
            return;
        }
        out += '[';
        bool first = true;
        for (const Value &v : *array_) {
            if (!first)
                out += ',';
            first = false;
            newline(depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        return;
      }
      case Kind::Object: {
        if (object_->empty()) {
            out += "{}";
            return;
        }
        out += '{';
        bool first = true;
        for (const auto &[key, v] : *object_) {
            if (!first)
                out += ',';
            first = false;
            newline(depth + 1);
            escape(out, key);
            out += indent > 0 ? ": " : ":";
            v.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        return;
      }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent parser over the whole document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    document()
    {
        Value v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        fatal("json parse error at offset ", pos_, ": ", why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(cat("expected '", c, "', got '", peek(), "'"));
        ++pos_;
    }

    bool
    consume(const char *literal)
    {
        std::size_t n = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, n, literal) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Value
    value()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{': return object();
          case '[': return array();
          case '"': return Value(string());
          case 't':
            if (!consume("true"))
                fail("bad literal");
            return Value(true);
          case 'f':
            if (!consume("false"))
                fail("bad literal");
            return Value(false);
          case 'n':
            if (!consume("null"))
                fail("bad literal");
            return Value(nullptr);
          default: return number();
        }
    }

    Value
    object()
    {
        expect('{');
        Object out;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return Value(std::move(out));
        }
        while (true) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            out[std::move(key)] = value();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return Value(std::move(out));
        }
    }

    Value
    array()
    {
        expect('[');
        Array out;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return Value(std::move(out));
        }
        while (true) {
            out.push_back(value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return Value(std::move(out));
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode (surrogate pairs are passed through as
                // two 3-byte sequences; good enough for trace names).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default: fail("bad escape character");
            }
        }
    }

    Value
    number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start || (text_[start] == '-' && pos_ == start + 1))
            fail("bad number");
        std::string tok = text_.substr(start, pos_ - start);
        if (integral) {
            errno = 0;
            char *end = nullptr;
            long long v = std::strtoll(tok.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0')
                return Value(static_cast<std::int64_t>(v));
        }
        char *end = nullptr;
        double d = std::strtod(tok.c_str(), &end);
        if (!end || *end != '\0')
            fail(cat("bad number '", tok, "'"));
        return Value(d);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Value
parse(const std::string &text)
{
    return Parser(text).document();
}

} // namespace swapram::support::json
