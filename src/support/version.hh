/**
 * @file
 * Library version.
 */

#ifndef SWAPRAM_SUPPORT_VERSION_HH
#define SWAPRAM_SUPPORT_VERSION_HH

namespace swapram {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char *kVersionString = "1.0.0";

} // namespace swapram

#endif // SWAPRAM_SUPPORT_VERSION_HH
