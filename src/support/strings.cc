#include "support/strings.hh"

#include <cctype>
#include <cstdio>

namespace swapram::support {

std::string_view
trim(std::string_view text)
{
    size_t begin = 0;
    while (begin < text.size() &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    size_t end = text.size();
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
toUpper(std::string_view text)
{
    std::string out(text);
    for (char &c : out)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return out;
}

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> fields;
    size_t start = 0;
    while (true) {
        size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            fields.emplace_back(text.substr(start));
            return fields;
        }
        fields.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string
hex16(std::uint16_t value)
{
    char buf[8];
    std::snprintf(buf, sizeof(buf), "0x%04X", value);
    return buf;
}

std::string
fixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
replaceAll(std::string text, std::string_view from, std::string_view to)
{
    if (from.empty())
        return text;
    size_t pos = 0;
    while ((pos = text.find(from, pos)) != std::string::npos) {
        text.replace(pos, from.size(), to);
        pos += to.size();
    }
    return text;
}

} // namespace swapram::support
