/**
 * @file
 * Small string utilities shared by the assembler and report writers.
 */

#ifndef SWAPRAM_SUPPORT_STRINGS_HH
#define SWAPRAM_SUPPORT_STRINGS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace swapram::support {

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view text);

/** Lowercase a copy of @p text (ASCII only). */
std::string toLower(std::string_view text);

/** Uppercase a copy of @p text (ASCII only). */
std::string toUpper(std::string_view text);

/** Split @p text on @p sep, keeping empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** True if @p text starts with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** Format a 16-bit value as 0xXXXX. */
std::string hex16(std::uint16_t value);

/** Format with fixed decimals, e.g.\ fixed(1.2345, 2) == "1.23". */
std::string fixed(double value, int decimals);

/** Replace every occurrence of @p from in @p text with @p to. */
std::string replaceAll(std::string text, std::string_view from,
                       std::string_view to);

} // namespace swapram::support

#endif // SWAPRAM_SUPPORT_STRINGS_HH
