/**
 * @file
 * RunMetrics: the bundle of instruments one simulated run records into
 * when metrics collection is enabled (ISSUE 6).
 *
 * The simulator components hold a raw `RunMetrics *` that defaults to
 * nullptr (sim::Bus via setMetrics, forwarded by sim::Machine); when
 * attached, the bus feeds the address-space heatmap and the FRAM
 * stall-latency histogram inline, and the harness feeds the
 * miss-handler histogram from the reconstructed SwapTimeline after the
 * run. Everything is host-side observation: attaching metrics never
 * changes simulated timing or results (it does force the single-step
 * execution path, like tracing — see sim::Machine::run).
 *
 * Well-known instrument names (the swapram-metrics/v1 JSON keys):
 *  - "fram_stall_cycles":    one sample per stalled FRAM access, the
 *                            stall cycles charged; sum() equals
 *                            Stats::stall_cycles.
 *  - "miss_handler_cycles":  one sample per SwapRAM/block miss-handler
 *                            span (cache systems only).
 */

#ifndef SWAPRAM_METRICS_RUN_METRICS_HH
#define SWAPRAM_METRICS_RUN_METRICS_HH

#include "metrics/heatmap.hh"
#include "metrics/metrics.hh"

namespace swapram::metrics {

/** All metrics of one run. Bind instruments once, record directly. */
struct RunMetrics {
    Registry registry;
    AddressHeatmap heatmap;

    /** Cycles charged per stalled FRAM access (bus hot path). */
    Histogram &fram_stall_cycles;
    /** Duration of each reconstructed miss-handler span. */
    Histogram &miss_handler_cycles;

    RunMetrics()
        : fram_stall_cycles(registry.histogram("fram_stall_cycles")),
          miss_handler_cycles(registry.histogram("miss_handler_cycles"))
    {
    }

    RunMetrics(const RunMetrics &) = delete;
    RunMetrics &operator=(const RunMetrics &) = delete;

    /** Aggregate another run's metrics into this one (sweep roll-up;
     *  histograms merge bucket-wise, the heatmap page-wise). */
    void
    merge(const RunMetrics &other)
    {
        registry.merge(other.registry);
        heatmap.merge(other.heatmap);
    }
};

} // namespace swapram::metrics

#endif // SWAPRAM_METRICS_RUN_METRICS_HH
