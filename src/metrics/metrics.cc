#include "metrics/metrics.hh"

#include <bit>

namespace swapram::metrics {

int
Histogram::bucketFor(std::uint64_t value)
{
    return value == 0 ? 0 : std::bit_width(value);
}

std::uint64_t
Histogram::bucketLow(int i)
{
    if (i <= 0)
        return 0;
    return std::uint64_t{1} << (i - 1);
}

std::uint64_t
Histogram::bucketHigh(int i)
{
    if (i <= 0)
        return 0;
    if (i >= 64)
        return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    for (int i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    if (count_ == 0 || other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    if (p <= 0)
        return min();
    if (p > 100)
        p = 100;
    // Nearest-rank: the smallest rank r with r >= p/100 * count.
    auto target = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(count_));
    if (static_cast<double>(target) * 100.0 <
        p * static_cast<double>(count_))
        ++target;
    if (target == 0)
        target = 1;
    std::uint64_t cumulative = 0;
    for (int i = 0; i < kBuckets; ++i) {
        cumulative += buckets_[i];
        if (cumulative >= target) {
            std::uint64_t high = bucketHigh(i);
            return high < max_ ? high : max_;
        }
    }
    return max_;
}

void
Registry::merge(const Registry &other)
{
    for (const auto &[name, c] : other.counters_)
        counters_[name].merge(c);
    for (const auto &[name, g] : other.gauges_)
        gauges_[name].merge(g);
    for (const auto &[name, h] : other.histograms_)
        histograms_[name].merge(h);
}

} // namespace swapram::metrics
