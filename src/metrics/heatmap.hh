/**
 * @file
 * Address-space heatmap: per-page access and stall concentration over
 * the 64 KiB simulated address space (ISSUE 6).
 *
 * Pages are 64 bytes — fine enough to separate individual functions
 * and hot data structures, coarse enough that the whole map is a fixed
 * 1024-slot array (no allocation on the record path). The bus records
 * one page hit per access it accounts, so per-page fetch/read/write
 * totals sum exactly to sim::Stats' region access counts, and per-page
 * stall cycles sum to Stats::stall_cycles — the invariant
 * tests/metrics_test.cc and tools/check_metrics_json.py pin.
 *
 * This is deliberately region-agnostic (pure counters by address); the
 * report layer classifies pages into FRAM/SRAM/MMIO with
 * sim::regionOf. Per-page *write* concentration is the substrate the
 * ROADMAP's wear/endurance-aware NVM backends (item 4) will read.
 */

#ifndef SWAPRAM_METRICS_HEATMAP_HH
#define SWAPRAM_METRICS_HEATMAP_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace swapram::metrics {

/** Per-page heat counters for the full 16-bit address space. */
class AddressHeatmap
{
  public:
    static constexpr unsigned kPageShift = 6; ///< 64-byte pages
    static constexpr unsigned kPageBytes = 1u << kPageShift;
    static constexpr unsigned kPages = 0x10000u >> kPageShift;

    struct Page {
        std::uint64_t fetch = 0;
        std::uint64_t read = 0;
        std::uint64_t write = 0;
        std::uint64_t stall_cycles = 0;

        std::uint64_t accesses() const { return fetch + read + write; }
        std::uint64_t
        heat() const
        {
            return accesses() + stall_cycles;
        }
        void
        merge(const Page &other)
        {
            fetch += other.fetch;
            read += other.read;
            write += other.write;
            stall_cycles += other.stall_cycles;
        }
        bool
        empty() const
        {
            return fetch == 0 && read == 0 && write == 0 &&
                   stall_cycles == 0;
        }
    };

    static unsigned pageOf(std::uint16_t addr)
    {
        return addr >> kPageShift;
    }
    static std::uint16_t baseOf(unsigned page)
    {
        return static_cast<std::uint16_t>(page << kPageShift);
    }

    void recordFetch(std::uint16_t addr) { ++pages_[pageOf(addr)].fetch; }
    void recordRead(std::uint16_t addr) { ++pages_[pageOf(addr)].read; }
    void recordWrite(std::uint16_t addr) { ++pages_[pageOf(addr)].write; }
    void
    recordStall(std::uint16_t addr, std::uint32_t cycles)
    {
        pages_[pageOf(addr)].stall_cycles += cycles;
    }

    const Page &page(unsigned index) const { return pages_[index]; }
    const std::array<Page, kPages> &pages() const { return pages_; }

    /** Sum over every page (== the run's total bus accounting). */
    Page totals() const;

    /** Indices of the @p n hottest non-empty pages, ordered hottest
     *  first (ties broken by address so reports are deterministic). */
    std::vector<unsigned> topPages(std::size_t n) const;

    void merge(const AddressHeatmap &other);

  private:
    std::array<Page, kPages> pages_{};
};

} // namespace swapram::metrics

#endif // SWAPRAM_METRICS_HEATMAP_HH
