#include "metrics/heatmap.hh"

#include <algorithm>

namespace swapram::metrics {

AddressHeatmap::Page
AddressHeatmap::totals() const
{
    Page t;
    for (const Page &p : pages_)
        t.merge(p);
    return t;
}

std::vector<unsigned>
AddressHeatmap::topPages(std::size_t n) const
{
    std::vector<unsigned> hot;
    for (unsigned i = 0; i < kPages; ++i) {
        if (!pages_[i].empty())
            hot.push_back(i);
    }
    std::sort(hot.begin(), hot.end(), [this](unsigned a, unsigned b) {
        std::uint64_t ha = pages_[a].heat(), hb = pages_[b].heat();
        if (ha != hb)
            return ha > hb;
        return a < b;
    });
    if (hot.size() > n)
        hot.resize(n);
    return hot;
}

void
AddressHeatmap::merge(const AddressHeatmap &other)
{
    for (unsigned i = 0; i < kPages; ++i)
        pages_[i].merge(other.pages_[i]);
}

} // namespace swapram::metrics
