/**
 * @file
 * Low-overhead run metrics: counters, gauges, and log2-bucketed
 * histograms, collected into a named Registry (ISSUE 6).
 *
 * Design contract (the same one tracing established in ISSUE 1):
 * collection is off by default — emit sites hold a raw pointer that is
 * nullptr until a run opts in, so the disabled path is one predictable
 * branch and no allocation ever happens. Components obtain direct
 * references to their instruments at setup time; the Registry's name
 * lookup is never on a hot path.
 *
 * Histograms bucket by log2 of the value (bucket 0 holds exact zeros,
 * bucket i holds [2^(i-1), 2^i)), so recording is a bit_width() plus an
 * increment, memory is fixed (65 slots covers all of uint64), and two
 * histograms of the same shape merge bucket-wise without loss — the
 * property the sweep-level aggregation is built on. count/sum/min/max
 * are exact; percentiles are bucket-resolution estimates (the inclusive
 * upper bound of the bucket holding the nearest-rank element, clamped
 * to the exact max).
 */

#ifndef SWAPRAM_METRICS_METRICS_HH
#define SWAPRAM_METRICS_METRICS_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace swapram::metrics {

/** Monotonically increasing event count. */
struct Counter {
    std::uint64_t value = 0;

    void inc(std::uint64_t by = 1) { value += by; }
    void merge(const Counter &other) { value += other.value; }
};

/** Last-written instantaneous value (merge keeps the maximum, the only
 *  order-independent combination for point-in-time readings). */
struct Gauge {
    std::int64_t value = 0;

    void set(std::int64_t v) { value = v; }
    void merge(const Gauge &other)
    {
        if (other.value > value)
            value = other.value;
    }
};

/** Log2-bucketed distribution of unsigned values. */
class Histogram
{
  public:
    /** Bucket 0: value == 0; bucket i in [1,64]: [2^(i-1), 2^i). */
    static constexpr int kBuckets = 65;

    void
    record(std::uint64_t value)
    {
        ++buckets_[bucketFor(value)];
        ++count_;
        sum_ += value;
        if (count_ == 1 || value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }

    /** Bucket-wise merge; associative and commutative by construction. */
    void merge(const Histogram &other);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    /** Smallest / largest recorded value (0 when empty). */
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    /** Mean of recorded values (0 when empty). */
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Nearest-rank percentile estimate for @p p in (0, 100]: the
     * inclusive upper bound of the bucket holding the rank-ceil(p/100 *
     * count) element, clamped to max(). Exact when the bucket holds one
     * distinct value (e.g. constant distributions); otherwise within
     * one power of two of the true percentile.
     */
    std::uint64_t percentile(double p) const;

    std::uint64_t p50() const { return percentile(50); }
    std::uint64_t p95() const { return percentile(95); }
    std::uint64_t p99() const { return percentile(99); }

    const std::array<std::uint64_t, kBuckets> &buckets() const
    {
        return buckets_;
    }

    /** Bucket index a value lands in. */
    static int bucketFor(std::uint64_t value);
    /** Inclusive lower bound of bucket @p i (0 for bucket 0). */
    static std::uint64_t bucketLow(int i);
    /** Inclusive upper bound of bucket @p i (0 for bucket 0). */
    static std::uint64_t bucketHigh(int i);

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Named instrument store. Lookup creates on first use and returns a
 * reference that stays valid for the Registry's lifetime (std::map
 * nodes are stable), so hot paths bind once and never search. std::map
 * also keeps report iteration deterministically ordered.
 */
class Registry
{
  public:
    Counter &counter(const std::string &name) { return counters_[name]; }
    Gauge &gauge(const std::string &name) { return gauges_[name]; }
    Histogram &histogram(const std::string &name)
    {
        return histograms_[name];
    }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Gauge> &gauges() const { return gauges_; }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    /** Merge @p other instrument-by-name (missing names are created). */
    void merge(const Registry &other);

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace swapram::metrics

#endif // SWAPRAM_METRICS_METRICS_HH
