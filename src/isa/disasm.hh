/**
 * @file
 * MSP430 disassembler (text form compatible with the masm parser).
 */

#ifndef SWAPRAM_ISA_DISASM_HH
#define SWAPRAM_ISA_DISASM_HH

#include <cstdint>
#include <string>

#include "isa/instruction.hh"

namespace swapram::isa {

/** Render one operand in assembler syntax. */
std::string operandText(const Operand &op);

/** Render @p instr in assembler syntax (jump targets as 0xXXXX). */
std::string disasm(const Instr &instr);

} // namespace swapram::isa

#endif // SWAPRAM_ISA_DISASM_HH
