/**
 * @file
 * MSP430 instruction encoder: Instr -> 1..3 16-bit words.
 */

#ifndef SWAPRAM_ISA_ENCODE_HH
#define SWAPRAM_ISA_ENCODE_HH

#include <cstdint>
#include <vector>

#include "isa/instruction.hh"

namespace swapram::isa {

/**
 * Size in bytes of the encoding of @p instr (2, 4, or 6). Stable across
 * assembler passes: depends only on addressing modes and the force_ext /
 * constant-generator rules, never on resolved symbol values.
 */
std::uint16_t encodedSize(const Instr &instr);

/**
 * Encode @p instr at byte address @p addr (needed for Symbolic operands
 * and jump offsets). fatal()s on malformed operands or out-of-range jumps.
 */
std::vector<std::uint16_t> encode(const Instr &instr, std::uint16_t addr);

/** Whether @p value can be produced by the constant generator. */
bool cgEligible(std::uint16_t value, bool byte_op);

/** Maximum forward reach of a relative jump, in bytes from instr addr. */
inline constexpr int kJumpMaxForward = 2 + 2 * 511;
/** Maximum backward reach of a relative jump, in bytes from instr addr. */
inline constexpr int kJumpMaxBackward = -(2 * 512) + 2;

/** True if a jump at @p addr can reach @p target. */
bool jumpInRange(std::uint16_t addr, std::uint16_t target);

} // namespace swapram::isa

#endif // SWAPRAM_ISA_ENCODE_HH
