#include "isa/registers.hh"

#include "support/strings.hh"

namespace swapram::isa {

std::string
regName(Reg r)
{
    switch (r) {
      case Reg::PC: return "PC";
      case Reg::SP: return "SP";
      case Reg::SR: return "SR";
      default:
        return "R" + std::to_string(regIndex(r));
    }
}

std::optional<Reg>
parseReg(std::string_view name)
{
    std::string upper = support::toUpper(name);
    if (upper == "PC") return Reg::PC;
    if (upper == "SP") return Reg::SP;
    if (upper == "SR") return Reg::SR;
    if (upper == "CG2") return Reg::CG2;
    if (upper.size() >= 2 && upper[0] == 'R') {
        int index = 0;
        for (size_t i = 1; i < upper.size(); ++i) {
            if (upper[i] < '0' || upper[i] > '9')
                return std::nullopt;
            index = index * 10 + (upper[i] - '0');
        }
        if (index >= 0 && index < kNumRegs)
            return regFromIndex(static_cast<std::uint8_t>(index));
    }
    return std::nullopt;
}

} // namespace swapram::isa
