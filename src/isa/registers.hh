/**
 * @file
 * MSP430 register file names and helpers.
 *
 * The MSP430 has sixteen 16-bit registers. R0..R3 are special:
 * R0 = PC (program counter), R1 = SP (stack pointer), R2 = SR (status
 * register, doubles as constant generator CG1), R3 = CG2 (constant
 * generator only).
 */

#ifndef SWAPRAM_ISA_REGISTERS_HH
#define SWAPRAM_ISA_REGISTERS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace swapram::isa {

/** Register index, 0..15. */
enum class Reg : std::uint8_t {
    PC = 0,
    SP = 1,
    SR = 2,
    CG2 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
};

/** Number of architectural registers. */
inline constexpr int kNumRegs = 16;

/** Numeric index of a register. */
constexpr std::uint8_t
regIndex(Reg r)
{
    return static_cast<std::uint8_t>(r);
}

/** Register from a numeric index (0..15). */
constexpr Reg
regFromIndex(std::uint8_t index)
{
    return static_cast<Reg>(index & 0xF);
}

/** Canonical assembly name ("PC", "SP", "SR", "R3".."R15"). */
std::string regName(Reg r);

/** Parse a register name (case-insensitive; accepts R0..R15 aliases). */
std::optional<Reg> parseReg(std::string_view name);

/** Status-register flag bits. */
namespace sr {
inline constexpr std::uint16_t kC = 0x0001;   ///< carry
inline constexpr std::uint16_t kZ = 0x0002;   ///< zero
inline constexpr std::uint16_t kN = 0x0004;   ///< negative
inline constexpr std::uint16_t kGie = 0x0008; ///< global interrupt enable
inline constexpr std::uint16_t kV = 0x0100;   ///< overflow
} // namespace sr

} // namespace swapram::isa

#endif // SWAPRAM_ISA_REGISTERS_HH
