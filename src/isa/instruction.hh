/**
 * @file
 * Numeric (post-assembly) MSP430 instruction representation shared by the
 * encoder, decoder, CPU model, and disassembler.
 */

#ifndef SWAPRAM_ISA_INSTRUCTION_HH
#define SWAPRAM_ISA_INSTRUCTION_HH

#include <cstdint>

#include "isa/opcodes.hh"
#include "isa/registers.hh"

namespace swapram::isa {

/** Addressing mode of one operand. */
enum class Mode : std::uint8_t {
    Register,    ///< Rn
    Indexed,     ///< X(Rn)
    Symbolic,    ///< ADDR — PC-relative X(PC); `value` holds the absolute EA
    Absolute,    ///< &ADDR
    Indirect,    ///< @Rn (source only)
    IndirectInc, ///< @Rn+ (source only)
    Immediate,   ///< #N (source only)
};

/** True if the mode needs an extension word (unless the constant
 *  generator covers an immediate). */
constexpr bool
modeNeedsExtWord(Mode mode)
{
    return mode == Mode::Indexed || mode == Mode::Symbolic ||
           mode == Mode::Absolute || mode == Mode::Immediate;
}

/**
 * One operand. `value` is the index (Indexed), absolute effective address
 * (Symbolic/Absolute), or immediate (Immediate); unused otherwise.
 */
struct Operand {
    Mode mode = Mode::Register;
    Reg reg = Reg::PC;
    std::uint16_t value = 0;
    /**
     * Immediates only: encode via the constant generator (no extension
     * word). The encoder sets this automatically for eligible literal
     * values unless `force_ext` is set by the assembler (symbolic
     * immediates must keep a stable size across passes).
     */
    bool via_cg = false;
    bool force_ext = false;

    static Operand
    makeReg(Reg r)
    {
        return {Mode::Register, r, 0, false, false};
    }

    static Operand
    makeImm(std::uint16_t v, bool force_ext_word = false)
    {
        return {Mode::Immediate, Reg::PC, v, false, force_ext_word};
    }

    static Operand
    makeAbs(std::uint16_t addr)
    {
        return {Mode::Absolute, Reg::SR, addr, false, false};
    }

    static Operand
    makeIndexed(Reg r, std::uint16_t index)
    {
        return {Mode::Indexed, r, index, false, false};
    }

    static Operand
    makeSymbolic(std::uint16_t addr)
    {
        return {Mode::Symbolic, Reg::PC, addr, false, false};
    }

    static Operand
    makeIndirect(Reg r, bool post_increment)
    {
        return {post_increment ? Mode::IndirectInc : Mode::Indirect, r, 0,
                false, false};
    }
};

/**
 * A decoded/encodable instruction.
 *
 * Format I uses `src` and `dst`; format II uses `dst` only (RETI uses
 * neither); jumps use `jump_target` (absolute byte address of the
 * destination).
 */
struct Instr {
    Op op = Op::Mov;
    bool byte = false;
    Operand src{};
    Operand dst{};
    std::uint16_t jump_target = 0;
};

} // namespace swapram::isa

#endif // SWAPRAM_ISA_INSTRUCTION_HH
