/**
 * @file
 * MSP430 core opcodes: the 12 double-operand (format I) instructions,
 * 7 single-operand (format II) instructions, and 8 conditional jumps.
 *
 * Emulated instructions (RET, BR, POP, NOP, CLR, INC, ...) are expanded
 * to core instructions by the assembler front end (masm/ast.cc) and never
 * appear at this level.
 */

#ifndef SWAPRAM_ISA_OPCODES_HH
#define SWAPRAM_ISA_OPCODES_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace swapram::isa {

/** Core MSP430 opcode. */
enum class Op : std::uint8_t {
    // Format I (double operand); enum value == encoding opcode nibble.
    Mov = 0x4,
    Add = 0x5,
    Addc = 0x6,
    Subc = 0x7,
    Sub = 0x8,
    Cmp = 0x9,
    Dadd = 0xA,
    Bit = 0xB,
    Bic = 0xC,
    Bis = 0xD,
    Xor = 0xE,
    And = 0xF,

    // Format II (single operand); values 0x10+sub-opcode.
    Rrc = 0x10,
    Swpb = 0x11,
    Rra = 0x12,
    Sxt = 0x13,
    Push = 0x14,
    Call = 0x15,
    Reti = 0x16,

    // Jumps; values 0x20+condition code.
    Jne = 0x20,
    Jeq = 0x21,
    Jnc = 0x22,
    Jc = 0x23,
    Jn = 0x24,
    Jge = 0x25,
    Jl = 0x26,
    Jmp = 0x27,
};

/** Structural class of an opcode. */
enum class OpFormat : std::uint8_t {
    DoubleOperand, ///< format I: op src, dst
    SingleOperand, ///< format II: op dst (RETI takes no operand)
    Jump,          ///< conditional/unconditional relative jump
};

/** Format of @p op. */
OpFormat opFormat(Op op);

/** Canonical upper-case mnemonic ("MOV", "JNE", ...). */
std::string opMnemonic(Op op);

/**
 * Parse a core mnemonic (case-insensitive), without .B/.W suffix.
 * Jump aliases JZ/JNZ/JHS/JLO are accepted.
 */
std::optional<Op> parseOp(std::string_view mnemonic);

/** True if the instruction may take a .B (byte) suffix. */
bool supportsByte(Op op);

/** True for format-I ops that write no destination (CMP, BIT). */
bool isCompareOnly(Op op);

/** True for format-I ops that leave status flags untouched (MOV/BIC/BIS). */
bool preservesFlags(Op op);

/** Condition code (0..7) for a jump opcode. */
std::uint8_t jumpCondition(Op op);

/** Jump opcode from a condition code (0..7). */
Op jumpFromCondition(std::uint8_t condition);

} // namespace swapram::isa

#endif // SWAPRAM_ISA_OPCODES_HH
