/**
 * @file
 * Per-instruction base cycle counts for the classic MSP430 CPU
 * (SLAU144-style tables). "Base" means zero-wait-state memory; FRAM
 * wait-state and cache-contention stalls are added by the bus model.
 */

#ifndef SWAPRAM_ISA_CYCLES_HH
#define SWAPRAM_ISA_CYCLES_HH

#include <cstdint>

#include "isa/instruction.hh"

namespace swapram::isa {

/** Base (unstalled) CPU cycles to execute @p instr. */
std::uint32_t baseCycles(const Instr &instr);

} // namespace swapram::isa

#endif // SWAPRAM_ISA_CYCLES_HH
