#include "isa/opcodes.hh"

#include <unordered_map>

#include "support/logging.hh"
#include "support/strings.hh"

namespace swapram::isa {

OpFormat
opFormat(Op op)
{
    auto value = static_cast<std::uint8_t>(op);
    if (value >= 0x4 && value <= 0xF)
        return OpFormat::DoubleOperand;
    if (value >= 0x10 && value <= 0x16)
        return OpFormat::SingleOperand;
    if (value >= 0x20 && value <= 0x27)
        return OpFormat::Jump;
    support::panic("opFormat: bad opcode value ", int(value));
}

std::string
opMnemonic(Op op)
{
    switch (op) {
      case Op::Mov: return "MOV";
      case Op::Add: return "ADD";
      case Op::Addc: return "ADDC";
      case Op::Subc: return "SUBC";
      case Op::Sub: return "SUB";
      case Op::Cmp: return "CMP";
      case Op::Dadd: return "DADD";
      case Op::Bit: return "BIT";
      case Op::Bic: return "BIC";
      case Op::Bis: return "BIS";
      case Op::Xor: return "XOR";
      case Op::And: return "AND";
      case Op::Rrc: return "RRC";
      case Op::Swpb: return "SWPB";
      case Op::Rra: return "RRA";
      case Op::Sxt: return "SXT";
      case Op::Push: return "PUSH";
      case Op::Call: return "CALL";
      case Op::Reti: return "RETI";
      case Op::Jne: return "JNE";
      case Op::Jeq: return "JEQ";
      case Op::Jnc: return "JNC";
      case Op::Jc: return "JC";
      case Op::Jn: return "JN";
      case Op::Jge: return "JGE";
      case Op::Jl: return "JL";
      case Op::Jmp: return "JMP";
    }
    support::panic("opMnemonic: bad opcode");
}

std::optional<Op>
parseOp(std::string_view mnemonic)
{
    static const std::unordered_map<std::string, Op> table = {
        {"MOV", Op::Mov},   {"ADD", Op::Add},   {"ADDC", Op::Addc},
        {"SUBC", Op::Subc}, {"SUB", Op::Sub},   {"CMP", Op::Cmp},
        {"DADD", Op::Dadd}, {"BIT", Op::Bit},   {"BIC", Op::Bic},
        {"BIS", Op::Bis},   {"XOR", Op::Xor},   {"AND", Op::And},
        {"RRC", Op::Rrc},   {"SWPB", Op::Swpb}, {"RRA", Op::Rra},
        {"SXT", Op::Sxt},   {"PUSH", Op::Push}, {"CALL", Op::Call},
        {"RETI", Op::Reti}, {"JNE", Op::Jne},   {"JNZ", Op::Jne},
        {"JEQ", Op::Jeq},   {"JZ", Op::Jeq},    {"JNC", Op::Jnc},
        {"JLO", Op::Jnc},   {"JC", Op::Jc},     {"JHS", Op::Jc},
        {"JN", Op::Jn},     {"JGE", Op::Jge},   {"JL", Op::Jl},
        {"JMP", Op::Jmp},
    };
    auto it = table.find(support::toUpper(mnemonic));
    if (it == table.end())
        return std::nullopt;
    return it->second;
}

bool
supportsByte(Op op)
{
    switch (opFormat(op)) {
      case OpFormat::DoubleOperand:
        return true;
      case OpFormat::SingleOperand:
        return op == Op::Rrc || op == Op::Rra || op == Op::Push;
      case OpFormat::Jump:
        return false;
    }
    return false;
}

bool
isCompareOnly(Op op)
{
    return op == Op::Cmp || op == Op::Bit;
}

bool
preservesFlags(Op op)
{
    return op == Op::Mov || op == Op::Bic || op == Op::Bis;
}

std::uint8_t
jumpCondition(Op op)
{
    if (opFormat(op) != OpFormat::Jump)
        support::panic("jumpCondition: not a jump: ", opMnemonic(op));
    return static_cast<std::uint8_t>(op) & 0x7;
}

Op
jumpFromCondition(std::uint8_t condition)
{
    if (condition > 7)
        support::panic("jumpFromCondition: bad condition ", int(condition));
    return static_cast<Op>(0x20 | condition);
}

} // namespace swapram::isa
