#include "isa/decode.hh"

#include <optional>

#include "support/logging.hh"

namespace swapram::isa {

namespace {

enum class Fmt { One, Two, Jump };

std::optional<Fmt>
tryClassify(std::uint16_t w0)
{
    std::uint16_t top = w0 >> 12;
    if (top >= 0x4)
        return Fmt::One;
    if ((w0 & 0xE000) == 0x2000)
        return Fmt::Jump;
    if (top == 0x1 && ((w0 >> 10) & 0x3) == 0) {
        if (((w0 >> 7) & 0x7) <= 6)
            return Fmt::Two;
    }
    return std::nullopt;
}

Fmt
classify(std::uint16_t w0)
{
    if (std::optional<Fmt> fmt = tryClassify(w0))
        return *fmt;
    support::fatal("decode: invalid instruction word ", w0);
}

bool
srcHasExt(std::uint8_t as, std::uint8_t reg)
{
    if (as == 1)
        return reg != 3; // As=01 on CG2 is the +1 constant
    if (as == 3)
        return reg == 0; // @PC+ is #immediate
    return false;
}

Operand
decodeSrc(std::uint8_t as, std::uint8_t reg, std::uint16_t ext,
          std::uint16_t ext_addr)
{
    switch (as) {
      case 0:
        if (reg == 3)
            return {Mode::Immediate, Reg::CG2, 0, true, false};
        return Operand::makeReg(regFromIndex(reg));
      case 1:
        if (reg == 0) {
            return Operand::makeSymbolic(
                static_cast<std::uint16_t>(ext + ext_addr));
        }
        if (reg == 2)
            return Operand::makeAbs(ext);
        if (reg == 3)
            return {Mode::Immediate, Reg::CG2, 1, true, false};
        return Operand::makeIndexed(regFromIndex(reg), ext);
      case 2:
        if (reg == 2)
            return {Mode::Immediate, Reg::SR, 4, true, false};
        if (reg == 3)
            return {Mode::Immediate, Reg::CG2, 2, true, false};
        return Operand::makeIndirect(regFromIndex(reg), false);
      case 3:
        if (reg == 0)
            return {Mode::Immediate, Reg::PC, ext, false, true};
        if (reg == 2)
            return {Mode::Immediate, Reg::SR, 8, true, false};
        if (reg == 3)
            return {Mode::Immediate, Reg::CG2, 0xFFFF, true, false};
        return Operand::makeIndirect(regFromIndex(reg), true);
    }
    support::panic("decodeSrc: bad As");
}

} // namespace

bool
validLeadingWord(std::uint16_t w0)
{
    return tryClassify(w0).has_value();
}

Shape
decodeShape(std::uint16_t w0)
{
    switch (classify(w0)) {
      case Fmt::Jump:
        return {0, 0};
      case Fmt::Two: {
        std::uint8_t sub = (w0 >> 7) & 0x7;
        if (sub == 6) // RETI
            return {0, 0};
        std::uint8_t as = (w0 >> 4) & 0x3;
        std::uint8_t reg = w0 & 0xF;
        return {0, srcHasExt(as, reg) ? std::uint8_t(1) : std::uint8_t(0)};
      }
      case Fmt::One: {
        std::uint8_t as = (w0 >> 4) & 0x3;
        std::uint8_t sreg = (w0 >> 8) & 0xF;
        std::uint8_t ad = (w0 >> 7) & 0x1;
        Shape shape;
        shape.src_ext = srcHasExt(as, sreg) ? 1 : 0;
        shape.dst_ext = ad ? 1 : 0;
        return shape;
      }
    }
    support::panic("decodeShape: unreachable");
}

Instr
decodeWords(std::uint16_t w0, std::uint16_t ext_src, std::uint16_t ext_dst,
            std::uint16_t addr)
{
    Instr instr;
    switch (classify(w0)) {
      case Fmt::Jump: {
        std::uint8_t cond = (w0 >> 10) & 0x7;
        instr.op = jumpFromCondition(cond);
        std::int16_t offset = static_cast<std::int16_t>(
            static_cast<std::uint16_t>(w0 << 6)) >> 6; // sign-extend 10 bits
        instr.jump_target =
            static_cast<std::uint16_t>(addr + 2 + 2 * offset);
        return instr;
      }
      case Fmt::Two: {
        std::uint8_t sub = (w0 >> 7) & 0x7;
        instr.op = static_cast<Op>(0x10 + sub);
        instr.byte = (w0 & 0x0040) != 0;
        if (instr.op == Op::Reti)
            return instr;
        std::uint8_t as = (w0 >> 4) & 0x3;
        std::uint8_t reg = w0 & 0xF;
        instr.dst = decodeSrc(as, reg, ext_dst,
                              static_cast<std::uint16_t>(addr + 2));
        return instr;
      }
      case Fmt::One: {
        instr.op = static_cast<Op>(w0 >> 12);
        instr.byte = (w0 & 0x0040) != 0;
        std::uint8_t as = (w0 >> 4) & 0x3;
        std::uint8_t sreg = (w0 >> 8) & 0xF;
        std::uint8_t ad = (w0 >> 7) & 0x1;
        std::uint8_t dreg = w0 & 0xF;
        Shape shape = decodeShape(w0);
        std::uint16_t src_ext_addr = static_cast<std::uint16_t>(addr + 2);
        std::uint16_t dst_ext_addr = static_cast<std::uint16_t>(
            addr + 2 + (shape.src_ext ? 2 : 0));
        instr.src = decodeSrc(as, sreg, ext_src, src_ext_addr);
        if (ad == 0) {
            instr.dst = Operand::makeReg(regFromIndex(dreg));
        } else if (dreg == 0) {
            instr.dst = Operand::makeSymbolic(
                static_cast<std::uint16_t>(ext_dst + dst_ext_addr));
        } else if (dreg == 2) {
            instr.dst = Operand::makeAbs(ext_dst);
        } else {
            instr.dst = Operand::makeIndexed(regFromIndex(dreg), ext_dst);
        }
        return instr;
      }
    }
    support::panic("decodeWords: unreachable");
}

Decoded
decodeAt(const std::uint16_t *words, std::uint16_t addr)
{
    Shape shape = decodeShape(words[0]);
    std::uint16_t ext_src = 0;
    std::uint16_t ext_dst = 0;
    int next = 1;
    if (shape.src_ext)
        ext_src = words[next++];
    if (shape.dst_ext)
        ext_dst = words[next++];
    Decoded out;
    out.instr = decodeWords(words[0], ext_src, ext_dst, addr);
    out.size_bytes = static_cast<std::uint16_t>(2 * next);
    return out;
}

} // namespace swapram::isa
