/**
 * @file
 * MSP430 instruction decoder.
 *
 * The CPU model first decodes the shape of the leading word (how many
 * extension words follow), fetches them through the bus so every fetch is
 * accounted, then calls decodeWords().
 */

#ifndef SWAPRAM_ISA_DECODE_HH
#define SWAPRAM_ISA_DECODE_HH

#include <cstdint>

#include "isa/instruction.hh"

namespace swapram::isa {

/** Extension-word requirements of an instruction's leading word. */
struct Shape {
    std::uint8_t src_ext = 0; ///< 0 or 1 extension words for the source
    std::uint8_t dst_ext = 0; ///< 0 or 1 extension words for the dest
    std::uint8_t
    totalExt() const
    {
        return static_cast<std::uint8_t>(src_ext + dst_ext);
    }
};

/** Shape of the instruction whose first word is @p w0. fatal()s on an
 *  invalid opcode. */
Shape decodeShape(std::uint16_t w0);

/**
 * True when @p w0 is a decodable leading word (some format I/II/jump
 * encoding). Non-fatal twin of the classifier behind decodeShape(),
 * for callers that decode speculatively — e.g. the superblock builder
 * scanning ahead of the PC — and must stop at garbage words instead of
 * diagnosing them (only the execution path may fatal, and only if the
 * program actually reaches the bad word).
 */
bool validLeadingWord(std::uint16_t w0);

/**
 * Decode a full instruction.
 *
 * @param w0 leading instruction word
 * @param ext_src source extension word (ignored if the shape has none)
 * @param ext_dst destination extension word (ignored if none)
 * @param addr byte address of @p w0 (for Symbolic and jump targets)
 */
Instr decodeWords(std::uint16_t w0, std::uint16_t ext_src,
                  std::uint16_t ext_dst, std::uint16_t addr);

/** Convenience for tests/disassembly: decode from a word buffer. */
struct Decoded {
    Instr instr;
    std::uint16_t size_bytes;
};
Decoded decodeAt(const std::uint16_t *words, std::uint16_t addr);

} // namespace swapram::isa

#endif // SWAPRAM_ISA_DECODE_HH
