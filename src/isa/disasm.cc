#include "isa/disasm.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace swapram::isa {

std::string
operandText(const Operand &op)
{
    using support::hex16;
    switch (op.mode) {
      case Mode::Register:
        return regName(op.reg);
      case Mode::Indexed:
        return hex16(op.value) + "(" + regName(op.reg) + ")";
      case Mode::Symbolic:
        return hex16(op.value);
      case Mode::Absolute:
        return "&" + hex16(op.value);
      case Mode::Indirect:
        return "@" + regName(op.reg);
      case Mode::IndirectInc:
        return "@" + regName(op.reg) + "+";
      case Mode::Immediate:
        return "#" + hex16(op.value);
    }
    support::panic("operandText: bad mode");
}

std::string
disasm(const Instr &instr)
{
    std::string text = opMnemonic(instr.op);
    if (instr.byte)
        text += ".B";
    switch (opFormat(instr.op)) {
      case OpFormat::Jump:
        return text + " " + support::hex16(instr.jump_target);
      case OpFormat::SingleOperand:
        if (instr.op == Op::Reti)
            return text;
        return text + " " + operandText(instr.dst);
      case OpFormat::DoubleOperand:
        return text + " " + operandText(instr.src) + ", " +
               operandText(instr.dst);
    }
    support::panic("disasm: bad format");
}

} // namespace swapram::isa
