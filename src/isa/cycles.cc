#include "isa/cycles.hh"

#include "isa/encode.hh"
#include "support/logging.hh"

namespace swapram::isa {

namespace {

/** Addressing-mode cost class of a source operand. */
enum class SrcClass {
    Register, ///< Rn and constant-generator immediates
    IndirectLike, ///< @Rn, @Rn+, #N (extension word)
    MemIndexed, ///< X(Rn), ADDR, &ADDR
};

SrcClass
srcClass(const Operand &op, bool byte_op)
{
    switch (op.mode) {
      case Mode::Register:
        return SrcClass::Register;
      case Mode::Immediate:
        if (op.via_cg || (!op.force_ext && cgEligible(op.value, byte_op)))
            return SrcClass::Register;
        return SrcClass::IndirectLike;
      case Mode::Indirect:
      case Mode::IndirectInc:
        return SrcClass::IndirectLike;
      case Mode::Indexed:
      case Mode::Symbolic:
      case Mode::Absolute:
        return SrcClass::MemIndexed;
    }
    support::panic("srcClass: bad mode");
}

bool
dstIsMemory(const Operand &op)
{
    return op.mode != Mode::Register;
}

} // namespace

std::uint32_t
baseCycles(const Instr &instr)
{
    switch (opFormat(instr.op)) {
      case OpFormat::Jump:
        return 2;
      case OpFormat::SingleOperand: {
        if (instr.op == Op::Reti)
            return 5;
        const Operand &dst = instr.dst;
        SrcClass cls = srcClass(dst, instr.byte);
        switch (instr.op) {
          case Op::Rrc:
          case Op::Rra:
          case Op::Swpb:
          case Op::Sxt:
            if (cls == SrcClass::Register)
                return 1;
            if (cls == SrcClass::IndirectLike)
                return 3;
            return 4;
          case Op::Push:
            if (cls == SrcClass::Register)
                return 3;
            if (dst.mode == Mode::IndirectInc)
                return 5;
            if (cls == SrcClass::IndirectLike)
                return 4;
            return 5;
          case Op::Call:
            if (cls == SrcClass::Register)
                return 4;
            if (dst.mode == Mode::Indirect)
                return 4;
            if (dst.mode == Mode::Absolute)
                return 6;
            return 5;
          default:
            support::panic("baseCycles: bad format-II op");
        }
      }
      case OpFormat::DoubleOperand: {
        const bool dst_mem = dstIsMemory(instr.dst);
        const bool dst_pc =
            !dst_mem && instr.dst.reg == Reg::PC;
        std::uint32_t base;
        switch (srcClass(instr.src, instr.byte)) {
          case SrcClass::Register:
            base = dst_mem ? 4 : 1;
            break;
          case SrcClass::IndirectLike:
            base = dst_mem ? 5 : 2;
            break;
          case SrcClass::MemIndexed:
            base = dst_mem ? 6 : 3;
            break;
          default:
            support::panic("baseCycles: bad src class");
        }
        if (dst_pc)
            base += 1;
        return base;
      }
    }
    support::panic("baseCycles: bad format");
}

} // namespace swapram::isa
