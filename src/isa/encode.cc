#include "isa/encode.hh"

#include "support/logging.hh"

namespace swapram::isa {

namespace {

/** Source-operand field encoding: As bits and register number. */
struct SrcFields {
    std::uint8_t as;
    std::uint8_t reg;
    bool has_ext;
    std::uint16_t ext; // raw, before symbolic adjustment
    bool symbolic;     // ext holds an absolute EA to relativize
};

bool
needsExtWord(const Operand &op, bool byte_op)
{
    if (!modeNeedsExtWord(op.mode))
        return false;
    if (op.mode == Mode::Immediate && !op.force_ext &&
        cgEligible(op.value, byte_op)) {
        return false;
    }
    return true;
}

SrcFields
encodeSrc(const Operand &op, bool byte_op)
{
    switch (op.mode) {
      case Mode::Register:
        if (op.reg == Reg::CG2)
            support::fatal("encode: R3 is not usable as a plain register");
        return {0, regIndex(op.reg), false, 0, false};
      case Mode::Indexed:
        if (op.reg == Reg::SR || op.reg == Reg::CG2 || op.reg == Reg::PC)
            support::fatal("encode: X(Rn) requires R4..R15 or SP");
        return {1, regIndex(op.reg), true, op.value, false};
      case Mode::Symbolic:
        return {1, regIndex(Reg::PC), true, op.value, true};
      case Mode::Absolute:
        return {1, regIndex(Reg::SR), true, op.value, false};
      case Mode::Indirect:
        if (op.reg == Reg::SR || op.reg == Reg::CG2)
            support::fatal("encode: @Rn requires a general register");
        return {2, regIndex(op.reg), false, 0, false};
      case Mode::IndirectInc:
        if (op.reg == Reg::SR || op.reg == Reg::CG2)
            support::fatal("encode: @Rn+ requires a general register");
        return {3, regIndex(op.reg), false, 0, false};
      case Mode::Immediate:
        if (!op.force_ext && cgEligible(op.value, byte_op)) {
            std::uint16_t v = op.value;
            if (byte_op && v == 0xFF)
                v = 0xFFFF;
            switch (v) {
              case 0: return {0, regIndex(Reg::CG2), false, 0, false};
              case 1: return {1, regIndex(Reg::CG2), false, 0, false};
              case 2: return {2, regIndex(Reg::CG2), false, 0, false};
              case 0xFFFF: return {3, regIndex(Reg::CG2), false, 0, false};
              case 4: return {2, regIndex(Reg::SR), false, 0, false};
              case 8: return {3, regIndex(Reg::SR), false, 0, false};
              default:
                support::panic("encode: bad CG value");
            }
        }
        return {3, regIndex(Reg::PC), true, op.value, false};
    }
    support::panic("encode: bad source mode");
}

/** Destination-operand fields: Ad bit and register. */
struct DstFields {
    std::uint8_t ad;
    std::uint8_t reg;
    bool has_ext;
    std::uint16_t ext;
    bool symbolic;
};

DstFields
encodeDst(const Operand &op)
{
    switch (op.mode) {
      case Mode::Register:
        // R3 is allowed as destination (writes are discarded); NOP is
        // encoded as MOV #0, R3.
        return {0, regIndex(op.reg), false, 0, false};
      case Mode::Indexed:
        if (op.reg == Reg::SR || op.reg == Reg::CG2 || op.reg == Reg::PC)
            support::fatal("encode: X(Rn) dst requires R4..R15 or SP");
        return {1, regIndex(op.reg), true, op.value, false};
      case Mode::Symbolic:
        return {1, regIndex(Reg::PC), true, op.value, true};
      case Mode::Absolute:
        return {1, regIndex(Reg::SR), true, op.value, false};
      default:
        support::fatal("encode: invalid destination addressing mode");
    }
}

} // namespace

bool
cgEligible(std::uint16_t value, bool byte_op)
{
    switch (value) {
      case 0:
      case 1:
      case 2:
      case 4:
      case 8:
      case 0xFFFF:
        return true;
      case 0xFF:
        return byte_op;
      default:
        return false;
    }
}

bool
jumpInRange(std::uint16_t addr, std::uint16_t target)
{
    int offset_bytes = static_cast<int>(target) - static_cast<int>(addr) - 2;
    if (offset_bytes & 1)
        support::fatal("jump target must be word aligned");
    int offset_words = offset_bytes / 2;
    return offset_words >= -512 && offset_words <= 511;
}

std::uint16_t
encodedSize(const Instr &instr)
{
    switch (opFormat(instr.op)) {
      case OpFormat::Jump:
        return 2;
      case OpFormat::SingleOperand:
        if (instr.op == Op::Reti)
            return 2;
        return 2 + (needsExtWord(instr.dst, instr.byte) ? 2 : 0);
      case OpFormat::DoubleOperand:
        return 2 + (needsExtWord(instr.src, instr.byte) ? 2 : 0) +
               (needsExtWord(instr.dst, instr.byte) ? 2 : 0);
    }
    support::panic("encodedSize: bad format");
}

std::vector<std::uint16_t>
encode(const Instr &instr, std::uint16_t addr)
{
    std::vector<std::uint16_t> words;
    const bool byte_op = instr.byte;
    if (byte_op && !supportsByte(instr.op))
        support::fatal("encode: ", opMnemonic(instr.op), " has no .B form");

    switch (opFormat(instr.op)) {
      case OpFormat::Jump: {
        int offset_bytes =
            static_cast<int>(instr.jump_target) - static_cast<int>(addr) - 2;
        int offset_words = offset_bytes / 2;
        if (!jumpInRange(addr, instr.jump_target)) {
            support::fatal("encode: jump out of range at ", addr, " -> ",
                           instr.jump_target);
        }
        std::uint16_t w = 0x2000;
        w |= static_cast<std::uint16_t>(jumpCondition(instr.op)) << 10;
        w |= static_cast<std::uint16_t>(offset_words) & 0x3FF;
        words.push_back(w);
        return words;
      }
      case OpFormat::SingleOperand: {
        std::uint16_t sub =
            static_cast<std::uint16_t>(instr.op) - 0x10;
        std::uint16_t w = 0x1000 | (sub << 7) |
                          (byte_op ? 0x0040 : 0);
        if (instr.op == Op::Reti) {
            words.push_back(w);
            return words;
        }
        if (instr.dst.mode == Mode::Immediate && instr.op != Op::Push &&
            instr.op != Op::Call) {
            support::fatal("encode: immediate operand only for PUSH/CALL");
        }
        SrcFields f = encodeSrc(instr.dst, byte_op);
        w |= static_cast<std::uint16_t>(f.as) << 4;
        w |= f.reg;
        words.push_back(w);
        if (f.has_ext) {
            std::uint16_t ext_addr = static_cast<std::uint16_t>(addr + 2);
            std::uint16_t ext = f.symbolic
                ? static_cast<std::uint16_t>(f.ext - ext_addr)
                : f.ext;
            words.push_back(ext);
        }
        return words;
      }
      case OpFormat::DoubleOperand: {
        SrcFields s = encodeSrc(instr.src, byte_op);
        DstFields d = encodeDst(instr.dst);
        std::uint16_t w =
            static_cast<std::uint16_t>(static_cast<std::uint16_t>(instr.op)
                                       << 12);
        w |= static_cast<std::uint16_t>(s.reg) << 8;
        w |= static_cast<std::uint16_t>(d.ad) << 7;
        w |= byte_op ? 0x0040 : 0;
        w |= static_cast<std::uint16_t>(s.as) << 4;
        w |= d.reg;
        words.push_back(w);
        std::uint16_t next_ext_addr = static_cast<std::uint16_t>(addr + 2);
        if (s.has_ext) {
            std::uint16_t ext = s.symbolic
                ? static_cast<std::uint16_t>(s.ext - next_ext_addr)
                : s.ext;
            words.push_back(ext);
            next_ext_addr = static_cast<std::uint16_t>(next_ext_addr + 2);
        }
        if (d.has_ext) {
            std::uint16_t ext = d.symbolic
                ? static_cast<std::uint16_t>(d.ext - next_ext_addr)
                : d.ext;
            words.push_back(ext);
        }
        return words;
      }
    }
    support::panic("encode: bad format");
}

} // namespace swapram::isa
