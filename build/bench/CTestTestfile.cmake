# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_table1_runs "/root/repo/build/bench/bench_table1")
set_tests_properties(bench_table1_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig1_runs "/root/repo/build/bench/bench_fig1")
set_tests_properties(bench_fig1_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_table2_runs "/root/repo/build/bench/bench_table2")
set_tests_properties(bench_table2_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig7_runs "/root/repo/build/bench/bench_fig7")
set_tests_properties(bench_fig7_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig8_runs "/root/repo/build/bench/bench_fig8")
set_tests_properties(bench_fig8_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig9_runs "/root/repo/build/bench/bench_fig9")
set_tests_properties(bench_fig9_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig10_runs "/root/repo/build/bench/bench_fig10")
set_tests_properties(bench_fig10_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_ablation_runs "/root/repo/build/bench/bench_ablation")
set_tests_properties(bench_ablation_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;0;")
