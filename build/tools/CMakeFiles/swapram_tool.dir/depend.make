# Empty dependencies file for swapram_tool.
# This may be replaced when dependencies are built.
