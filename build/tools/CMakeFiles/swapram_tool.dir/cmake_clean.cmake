file(REMOVE_RECURSE
  "CMakeFiles/swapram_tool.dir/swapram_tool.cc.o"
  "CMakeFiles/swapram_tool.dir/swapram_tool.cc.o.d"
  "swapram_tool"
  "swapram_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swapram_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
