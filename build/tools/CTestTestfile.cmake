# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_run_swapram "/root/repo/build/tools/swapram_tool" "run" "--workload" "crc" "--system" "swapram")
set_tests_properties(tool_run_swapram PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_run_block_8mhz "/root/repo/build/tools/swapram_tool" "run" "--workload" "rc4" "--system" "block" "--clock" "8")
set_tests_properties(tool_run_block_8mhz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_run_split "/root/repo/build/tools/swapram_tool" "run" "--workload" "rsa" "--system" "swapram" "--placement" "split")
set_tests_properties(tool_run_split PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_transform_listing "/root/repo/build/tools/swapram_tool" "transform" "--workload" "bitcount" "--system" "swapram" "--listing")
set_tests_properties(tool_transform_listing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_transform_block "/root/repo/build/tools/swapram_tool" "transform" "--workload" "crc" "--system" "block")
set_tests_properties(tool_transform_block PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_assemble "/root/repo/build/tools/swapram_tool" "assemble" "--workload" "fft" "--listing")
set_tests_properties(tool_assemble PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_disasm "/root/repo/build/tools/swapram_tool" "disasm" "--workload" "crc" "--func" "crc_block")
set_tests_properties(tool_disasm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
