# Empty compiler generated dependencies file for reactive_node.
# This may be replaced when dependencies are built.
