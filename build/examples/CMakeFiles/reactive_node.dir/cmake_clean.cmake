file(REMOVE_RECURSE
  "CMakeFiles/reactive_node.dir/reactive_node.cpp.o"
  "CMakeFiles/reactive_node.dir/reactive_node.cpp.o.d"
  "reactive_node"
  "reactive_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reactive_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
