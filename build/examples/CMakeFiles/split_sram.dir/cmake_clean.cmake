file(REMOVE_RECURSE
  "CMakeFiles/split_sram.dir/split_sram.cpp.o"
  "CMakeFiles/split_sram.dir/split_sram.cpp.o.d"
  "split_sram"
  "split_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
