# Empty compiler generated dependencies file for split_sram.
# This may be replaced when dependencies are built.
