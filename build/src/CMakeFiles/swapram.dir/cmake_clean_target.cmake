file(REMOVE_RECURSE
  "libswapram.a"
)
