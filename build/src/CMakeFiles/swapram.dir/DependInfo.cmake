
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blockcache/blocks.cc" "src/CMakeFiles/swapram.dir/blockcache/blocks.cc.o" "gcc" "src/CMakeFiles/swapram.dir/blockcache/blocks.cc.o.d"
  "/root/repo/src/blockcache/builder.cc" "src/CMakeFiles/swapram.dir/blockcache/builder.cc.o" "gcc" "src/CMakeFiles/swapram.dir/blockcache/builder.cc.o.d"
  "/root/repo/src/blockcache/pass.cc" "src/CMakeFiles/swapram.dir/blockcache/pass.cc.o" "gcc" "src/CMakeFiles/swapram.dir/blockcache/pass.cc.o.d"
  "/root/repo/src/blockcache/runtime_gen.cc" "src/CMakeFiles/swapram.dir/blockcache/runtime_gen.cc.o" "gcc" "src/CMakeFiles/swapram.dir/blockcache/runtime_gen.cc.o.d"
  "/root/repo/src/harness/placement.cc" "src/CMakeFiles/swapram.dir/harness/placement.cc.o" "gcc" "src/CMakeFiles/swapram.dir/harness/placement.cc.o.d"
  "/root/repo/src/harness/report.cc" "src/CMakeFiles/swapram.dir/harness/report.cc.o" "gcc" "src/CMakeFiles/swapram.dir/harness/report.cc.o.d"
  "/root/repo/src/harness/runner.cc" "src/CMakeFiles/swapram.dir/harness/runner.cc.o" "gcc" "src/CMakeFiles/swapram.dir/harness/runner.cc.o.d"
  "/root/repo/src/isa/cycles.cc" "src/CMakeFiles/swapram.dir/isa/cycles.cc.o" "gcc" "src/CMakeFiles/swapram.dir/isa/cycles.cc.o.d"
  "/root/repo/src/isa/decode.cc" "src/CMakeFiles/swapram.dir/isa/decode.cc.o" "gcc" "src/CMakeFiles/swapram.dir/isa/decode.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/swapram.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/swapram.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/encode.cc" "src/CMakeFiles/swapram.dir/isa/encode.cc.o" "gcc" "src/CMakeFiles/swapram.dir/isa/encode.cc.o.d"
  "/root/repo/src/isa/opcodes.cc" "src/CMakeFiles/swapram.dir/isa/opcodes.cc.o" "gcc" "src/CMakeFiles/swapram.dir/isa/opcodes.cc.o.d"
  "/root/repo/src/isa/registers.cc" "src/CMakeFiles/swapram.dir/isa/registers.cc.o" "gcc" "src/CMakeFiles/swapram.dir/isa/registers.cc.o.d"
  "/root/repo/src/masm/assembler.cc" "src/CMakeFiles/swapram.dir/masm/assembler.cc.o" "gcc" "src/CMakeFiles/swapram.dir/masm/assembler.cc.o.d"
  "/root/repo/src/masm/ast.cc" "src/CMakeFiles/swapram.dir/masm/ast.cc.o" "gcc" "src/CMakeFiles/swapram.dir/masm/ast.cc.o.d"
  "/root/repo/src/masm/lexer.cc" "src/CMakeFiles/swapram.dir/masm/lexer.cc.o" "gcc" "src/CMakeFiles/swapram.dir/masm/lexer.cc.o.d"
  "/root/repo/src/masm/parser.cc" "src/CMakeFiles/swapram.dir/masm/parser.cc.o" "gcc" "src/CMakeFiles/swapram.dir/masm/parser.cc.o.d"
  "/root/repo/src/masm/printer.cc" "src/CMakeFiles/swapram.dir/masm/printer.cc.o" "gcc" "src/CMakeFiles/swapram.dir/masm/printer.cc.o.d"
  "/root/repo/src/masm/reimport.cc" "src/CMakeFiles/swapram.dir/masm/reimport.cc.o" "gcc" "src/CMakeFiles/swapram.dir/masm/reimport.cc.o.d"
  "/root/repo/src/sim/bus.cc" "src/CMakeFiles/swapram.dir/sim/bus.cc.o" "gcc" "src/CMakeFiles/swapram.dir/sim/bus.cc.o.d"
  "/root/repo/src/sim/cpu.cc" "src/CMakeFiles/swapram.dir/sim/cpu.cc.o" "gcc" "src/CMakeFiles/swapram.dir/sim/cpu.cc.o.d"
  "/root/repo/src/sim/energy.cc" "src/CMakeFiles/swapram.dir/sim/energy.cc.o" "gcc" "src/CMakeFiles/swapram.dir/sim/energy.cc.o.d"
  "/root/repo/src/sim/hw_cache.cc" "src/CMakeFiles/swapram.dir/sim/hw_cache.cc.o" "gcc" "src/CMakeFiles/swapram.dir/sim/hw_cache.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/CMakeFiles/swapram.dir/sim/machine.cc.o" "gcc" "src/CMakeFiles/swapram.dir/sim/machine.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/CMakeFiles/swapram.dir/sim/memory.cc.o" "gcc" "src/CMakeFiles/swapram.dir/sim/memory.cc.o.d"
  "/root/repo/src/sim/mmio.cc" "src/CMakeFiles/swapram.dir/sim/mmio.cc.o" "gcc" "src/CMakeFiles/swapram.dir/sim/mmio.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/swapram.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/swapram.dir/sim/stats.cc.o.d"
  "/root/repo/src/support/logging.cc" "src/CMakeFiles/swapram.dir/support/logging.cc.o" "gcc" "src/CMakeFiles/swapram.dir/support/logging.cc.o.d"
  "/root/repo/src/support/strings.cc" "src/CMakeFiles/swapram.dir/support/strings.cc.o" "gcc" "src/CMakeFiles/swapram.dir/support/strings.cc.o.d"
  "/root/repo/src/swapram/builder.cc" "src/CMakeFiles/swapram.dir/swapram/builder.cc.o" "gcc" "src/CMakeFiles/swapram.dir/swapram/builder.cc.o.d"
  "/root/repo/src/swapram/pass.cc" "src/CMakeFiles/swapram.dir/swapram/pass.cc.o" "gcc" "src/CMakeFiles/swapram.dir/swapram/pass.cc.o.d"
  "/root/repo/src/swapram/reloc.cc" "src/CMakeFiles/swapram.dir/swapram/reloc.cc.o" "gcc" "src/CMakeFiles/swapram.dir/swapram/reloc.cc.o.d"
  "/root/repo/src/swapram/runtime_gen.cc" "src/CMakeFiles/swapram.dir/swapram/runtime_gen.cc.o" "gcc" "src/CMakeFiles/swapram.dir/swapram/runtime_gen.cc.o.d"
  "/root/repo/src/workloads/aes.cc" "src/CMakeFiles/swapram.dir/workloads/aes.cc.o" "gcc" "src/CMakeFiles/swapram.dir/workloads/aes.cc.o.d"
  "/root/repo/src/workloads/arith.cc" "src/CMakeFiles/swapram.dir/workloads/arith.cc.o" "gcc" "src/CMakeFiles/swapram.dir/workloads/arith.cc.o.d"
  "/root/repo/src/workloads/bitcount.cc" "src/CMakeFiles/swapram.dir/workloads/bitcount.cc.o" "gcc" "src/CMakeFiles/swapram.dir/workloads/bitcount.cc.o.d"
  "/root/repo/src/workloads/crc.cc" "src/CMakeFiles/swapram.dir/workloads/crc.cc.o" "gcc" "src/CMakeFiles/swapram.dir/workloads/crc.cc.o.d"
  "/root/repo/src/workloads/dijkstra.cc" "src/CMakeFiles/swapram.dir/workloads/dijkstra.cc.o" "gcc" "src/CMakeFiles/swapram.dir/workloads/dijkstra.cc.o.d"
  "/root/repo/src/workloads/fft.cc" "src/CMakeFiles/swapram.dir/workloads/fft.cc.o" "gcc" "src/CMakeFiles/swapram.dir/workloads/fft.cc.o.d"
  "/root/repo/src/workloads/lib_asm.cc" "src/CMakeFiles/swapram.dir/workloads/lib_asm.cc.o" "gcc" "src/CMakeFiles/swapram.dir/workloads/lib_asm.cc.o.d"
  "/root/repo/src/workloads/lzfx.cc" "src/CMakeFiles/swapram.dir/workloads/lzfx.cc.o" "gcc" "src/CMakeFiles/swapram.dir/workloads/lzfx.cc.o.d"
  "/root/repo/src/workloads/rc4.cc" "src/CMakeFiles/swapram.dir/workloads/rc4.cc.o" "gcc" "src/CMakeFiles/swapram.dir/workloads/rc4.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/swapram.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/swapram.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/rsa.cc" "src/CMakeFiles/swapram.dir/workloads/rsa.cc.o" "gcc" "src/CMakeFiles/swapram.dir/workloads/rsa.cc.o.d"
  "/root/repo/src/workloads/stringsearch.cc" "src/CMakeFiles/swapram.dir/workloads/stringsearch.cc.o" "gcc" "src/CMakeFiles/swapram.dir/workloads/stringsearch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
