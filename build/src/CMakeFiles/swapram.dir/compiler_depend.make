# Empty compiler generated dependencies file for swapram.
# This may be replaced when dependencies are built.
