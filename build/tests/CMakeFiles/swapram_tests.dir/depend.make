# Empty dependencies file for swapram_tests.
# This may be replaced when dependencies are built.
