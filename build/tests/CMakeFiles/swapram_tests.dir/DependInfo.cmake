
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ast_interpreter.cc" "tests/CMakeFiles/swapram_tests.dir/ast_interpreter.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/ast_interpreter.cc.o.d"
  "/root/repo/tests/blockcache_test.cc" "tests/CMakeFiles/swapram_tests.dir/blockcache_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/blockcache_test.cc.o.d"
  "/root/repo/tests/differential_test.cc" "tests/CMakeFiles/swapram_tests.dir/differential_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/differential_test.cc.o.d"
  "/root/repo/tests/fuzz_systems_test.cc" "tests/CMakeFiles/swapram_tests.dir/fuzz_systems_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/fuzz_systems_test.cc.o.d"
  "/root/repo/tests/interrupt_test.cc" "tests/CMakeFiles/swapram_tests.dir/interrupt_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/interrupt_test.cc.o.d"
  "/root/repo/tests/isa_cycles_test.cc" "tests/CMakeFiles/swapram_tests.dir/isa_cycles_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/isa_cycles_test.cc.o.d"
  "/root/repo/tests/isa_encode_test.cc" "tests/CMakeFiles/swapram_tests.dir/isa_encode_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/isa_encode_test.cc.o.d"
  "/root/repo/tests/lib_asm_test.cc" "tests/CMakeFiles/swapram_tests.dir/lib_asm_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/lib_asm_test.cc.o.d"
  "/root/repo/tests/masm_assembler_test.cc" "tests/CMakeFiles/swapram_tests.dir/masm_assembler_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/masm_assembler_test.cc.o.d"
  "/root/repo/tests/masm_lexer_test.cc" "tests/CMakeFiles/swapram_tests.dir/masm_lexer_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/masm_lexer_test.cc.o.d"
  "/root/repo/tests/masm_parser_test.cc" "tests/CMakeFiles/swapram_tests.dir/masm_parser_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/masm_parser_test.cc.o.d"
  "/root/repo/tests/methodology_test.cc" "tests/CMakeFiles/swapram_tests.dir/methodology_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/methodology_test.cc.o.d"
  "/root/repo/tests/reimport_test.cc" "tests/CMakeFiles/swapram_tests.dir/reimport_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/reimport_test.cc.o.d"
  "/root/repo/tests/sim_cache_test.cc" "tests/CMakeFiles/swapram_tests.dir/sim_cache_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/sim_cache_test.cc.o.d"
  "/root/repo/tests/sim_cpu_more_test.cc" "tests/CMakeFiles/swapram_tests.dir/sim_cpu_more_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/sim_cpu_more_test.cc.o.d"
  "/root/repo/tests/sim_cpu_test.cc" "tests/CMakeFiles/swapram_tests.dir/sim_cpu_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/sim_cpu_test.cc.o.d"
  "/root/repo/tests/sim_machine_test.cc" "tests/CMakeFiles/swapram_tests.dir/sim_machine_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/sim_machine_test.cc.o.d"
  "/root/repo/tests/support_test.cc" "tests/CMakeFiles/swapram_tests.dir/support_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/support_test.cc.o.d"
  "/root/repo/tests/swapram_dyncall_test.cc" "tests/CMakeFiles/swapram_tests.dir/swapram_dyncall_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/swapram_dyncall_test.cc.o.d"
  "/root/repo/tests/swapram_freeze_test.cc" "tests/CMakeFiles/swapram_tests.dir/swapram_freeze_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/swapram_freeze_test.cc.o.d"
  "/root/repo/tests/swapram_runtime_test.cc" "tests/CMakeFiles/swapram_tests.dir/swapram_runtime_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/swapram_runtime_test.cc.o.d"
  "/root/repo/tests/swapram_test.cc" "tests/CMakeFiles/swapram_tests.dir/swapram_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/swapram_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/swapram_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/swapram_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swapram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
