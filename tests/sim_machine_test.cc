/**
 * @file
 * Machine-level tests: owner attribution, code/data classification,
 * cycle-counter MMIO, energy model, and run control.
 */

#include <gtest/gtest.h>

#include "sim/energy.hh"
#include "support/logging.hh"
#include "testutil.hh"

namespace {

using namespace swapram;
using sim::CodeOwner;

TEST(Machine, CodeVsDataClassification)
{
    // Table 1's metric: accesses to code space vs data space. A simple
    // register loop mostly fetches code.
    auto r = test::runBody("        MOV #100, R5\n"
                           "l:      DEC R5\n"
                           "        JNE l\n");
    const auto &st = r.stats();
    EXPECT_GT(st.code_space_accesses, st.data_space_accesses);
    double ratio = static_cast<double>(st.code_space_accesses) /
                   static_cast<double>(st.data_space_accesses + 1);
    EXPECT_GT(ratio, 3.0);
}

TEST(Machine, OwnerAttribution)
{
    // Mark the callee's range as Handler and check attribution.
    auto src = "        .text\n"
               "__start:\n"
               "        MOV #0x3000, SP\n"
               "        CALL #fake_handler\n"
               "        MOV.B #0, &__DONE\n"
               "        .func fake_handler\n"
               "        NOP\n"
               "        NOP\n"
               "        RET\n"
               "        .endfunc\n";
    masm::LayoutSpec layout;
    layout.data_base = 0x2000;
    auto assembled = masm::assemble(masm::parse(src), layout);
    sim::Machine machine;
    machine.load(assembled.image, 0x3000);
    const auto &f = assembled.function("fake_handler");
    machine.addOwnerRange(f.addr, f.addr + f.size, CodeOwner::Handler);
    auto result = machine.run();
    EXPECT_TRUE(result.done);
    auto owners = machine.stats().instr_by_owner;
    EXPECT_EQ(owners[static_cast<int>(CodeOwner::Handler)], 3u);
    EXPECT_EQ(owners[static_cast<int>(CodeOwner::AppFram)], 3u);
    EXPECT_EQ(owners[static_cast<int>(CodeOwner::AppSram)], 0u);
}

TEST(Machine, CycleCounterMmio)
{
    auto r = test::runBody("        MOV &__CYCLO, R5\n"
                           "        MOV &__CYCHI, R6\n"
                           "        MOV #100, R7\n"
                           "w:      DEC R7\n"
                           "        JNE w\n"
                           "        MOV &__CYCLO, R8\n");
    std::uint32_t before = r.reg(isa::Reg::R5) |
                           (static_cast<std::uint32_t>(r.reg(isa::Reg::R6))
                            << 16);
    std::uint32_t after = r.reg(isa::Reg::R8);
    EXPECT_GT(after, before);
    EXPECT_GE(after - before, 300u); // 100 iterations x 3 cycles
}

TEST(Machine, RunawayGuard)
{
    sim::MachineConfig cfg;
    cfg.max_cycles = 10'000;
    auto r = test::runBody("spin:   JMP spin\n", cfg);
    EXPECT_FALSE(r.result.done);
    EXPECT_GE(r.stats().totalCycles(), 10'000u);
}

TEST(Machine, PinToggleCounted)
{
    auto r = test::runBody("        MOV #1, &__PIN\n"
                           "        MOV #1, &__PIN\n");
    EXPECT_EQ(r.machine->mmio().pinToggles(), 2u);
}

TEST(Machine, UnmappedAccessFaults)
{
    EXPECT_THROW(test::runBody("        MOV &0x0500, R5\n"),
                 support::FatalError);
}

TEST(Energy, MoreFramAccessesCostMore)
{
    // The same loop run from SRAM must use less energy than from FRAM.
    std::string src = "        .text\n"
                      "__start:\n"
                      "        MOV #0x3000, SP\n"
                      "        MOV #200, R5\n"
                      "l:      DEC R5\n"
                      "        JNE l\n"
                      "        MOV.B #0, &__DONE\n";
    masm::LayoutSpec fram_layout;
    fram_layout.data_base = 0x2000;
    masm::LayoutSpec sram_layout;
    sram_layout.text_base = 0x2000;
    sram_layout.data_base = 0x2800;
    sim::MachineConfig cfg;
    cfg.clock_hz = 24'000'000;
    auto rf = test::runSource(src, cfg, fram_layout);
    auto rs = test::runSource(src, cfg, sram_layout);
    sim::EnergyModel model;
    double ef = model.totalPj(rf.stats(), cfg.clock_hz);
    double es = model.totalPj(rs.stats(), cfg.clock_hz);
    EXPECT_LT(es, ef);
    // And it is faster (no wait states).
    EXPECT_LT(rs.stats().totalCycles(), rf.stats().totalCycles());
}

TEST(Energy, CorePerCycleInterpolates)
{
    sim::EnergyModel model;
    EXPECT_DOUBLE_EQ(model.corePjPerCycle(8'000'000),
                     model.core_pj_per_cycle_8mhz);
    EXPECT_DOUBLE_EQ(model.corePjPerCycle(24'000'000),
                     model.core_pj_per_cycle_24mhz);
    double mid = model.corePjPerCycle(16'000'000);
    EXPECT_LT(model.core_pj_per_cycle_24mhz, mid);
    EXPECT_LT(mid, model.core_pj_per_cycle_8mhz);
}

TEST(Machine, StepExecutesOneInstruction)
{
    auto src = test::wrapBody("        NOP\n");
    masm::LayoutSpec layout;
    layout.data_base = 0x2000;
    auto assembled = masm::assemble(masm::parse(src), layout);
    sim::Machine machine;
    machine.load(assembled.image, 0x3000);
    EXPECT_EQ(machine.stats().instructions, 0u);
    machine.step();
    EXPECT_EQ(machine.stats().instructions, 1u);
    EXPECT_EQ(machine.cpu().reg(isa::Reg::SP), 0x3000);
}

} // namespace
